//! The EaseIO compiler front-end end to end: parse a program written in the
//! paper's task language, print the Figure-5 transformation the front-end
//! would emit, then run it on the simulator under intermittent power.
//!
//! Run with: `cargo run --release --example compile_and_run`

use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::easec;
use easeio_repro::kernel::{run_app, ExecConfig, Outcome};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
use easeio_repro::periph::Peripherals;

fn main() {
    let source = include_str!("programs/weather.eio");
    println!("===== source (the paper's language) =====\n{source}");
    let transformed = easec::transform_source(source).expect("compiles");
    println!("===== easec transformation (paper Fig. 5) =====\n{transformed}");

    println!("===== execution under intermittent power =====");
    for kind in [RuntimeKind::Alpaca, RuntimeKind::EaseIo] {
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), 17));
        let compiled = easec::compile(source, &mut mcu).expect("compiles");
        let mut periph = Peripherals::new(17);
        let mut rt = kind.make();
        let r = run_app(
            &compiled.app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &ExecConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        println!(
            "{:<8} {:>7.2} ms, {} failures, {} I/O executed, {} restored, {} duplicate sends",
            kind.name(),
            r.stats.total_time_us() as f64 / 1000.0,
            r.stats.power_failures,
            r.stats.io_executed,
            r.stats.io_skipped,
            periph.radio.duplicate_count(),
        );
    }
    println!(
        "\nThe front-end inferred the Send's dependencies on the senses (no\n\
         manual annotations), so EaseIO re-sends exactly when a reading\n\
         refreshed — and never otherwise."
    );
}
