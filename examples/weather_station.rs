//! A batteryless weather station: the paper's flagship application.
//!
//! Senses temperature + humidity (in an EaseIO I/O block), captures an
//! image, classifies the weather with a 5-layer fixed-point DNN on the LEA
//! accelerator, and transmits the result — across dozens of power failures.
//! Prints the pipeline's progress, the radio traffic, and how much
//! redundant I/O EaseIO avoided compared with Alpaca.
//!
//! Run with: `cargo run --release --example weather_station`

use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::apps::weather::{self, WeatherCfg};
use easeio_repro::kernel::{run_app, ExecConfig, Outcome, Verdict};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
use easeio_repro::periph::Peripherals;

fn run_station(kind: RuntimeKind, single_buffer: bool, seed: u64) {
    let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
    let mut periph = Peripherals::new(seed);
    let cfg = WeatherCfg {
        single_buffer,
        ..WeatherCfg::default()
    };
    let app = weather::build(&mut mcu, &cfg);
    let mut rt = kind.make();
    let r = run_app(
        &app,
        rt.as_mut(),
        &mut mcu,
        &mut periph,
        &ExecConfig::default(),
    );
    assert_eq!(r.outcome, Outcome::Completed);
    let verdict = match r.verdict {
        Some(Verdict::Correct) => "correct".to_string(),
        Some(Verdict::Incorrect(why)) => format!("CORRUPTED ({why})"),
        None => "unchecked".to_string(),
    };
    println!(
        "  {:<8} buffers={:<6}  {:>7.2} ms on, {:>3} failures, {:>3} I/O skipped, result {}",
        kind.name(),
        if single_buffer { "single" } else { "double" },
        r.stats.total_time_us() as f64 / 1000.0,
        r.stats.power_failures,
        r.stats.io_skipped + r.stats.dma_skipped,
        verdict,
    );
    if let Some(pkt) = periph.radio.packets().last() {
        println!(
            "           radio: temp {:.1} °C, humidity {:.1} %, class {}  (t = {:.1} ms)",
            pkt.payload[0] as f64 / 100.0,
            pkt.payload[1] as f64 / 10.0,
            pkt.payload[2],
            pkt.time_us as f64 / 1000.0
        );
    }
}

fn main() {
    println!("Batteryless weather station (11 tasks, 5-layer DNN on LEA)\n");
    println!("Double-buffered DNN activations (safe for everyone):");
    for kind in [RuntimeKind::Alpaca, RuntimeKind::Ink, RuntimeKind::EaseIo] {
        run_station(kind, false, 7);
    }
    println!("\nSingle shared activation buffer (Table 5's risky layout):");
    for seed in [3u64, 9, 21] {
        for kind in [RuntimeKind::Alpaca, RuntimeKind::EaseIo] {
            run_station(kind, true, seed);
        }
    }
    println!(
        "\nWith one shared buffer, a re-executed layer DMA reads back its own\n\
         output. Only EaseIO's run-time DMA typing + regional privatization\n\
         replays those transfers safely (paper §4.3–4.4, Table 5)."
    );
}
