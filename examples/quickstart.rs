//! Quickstart: run one intermittent application under every runtime.
//!
//! Builds the paper's uni-task DMA benchmark, runs it on a simulated
//! MSP430FR5994 that loses power every 5–20 ms, and prints what each
//! runtime paid for it — the 30-second version of the paper's Figure 7a.
//!
//! Run with: `cargo run --release --example quickstart`

use easeio_repro::apps::dma_app::{self, DmaAppCfg};
use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::kernel::{run_app, ExecConfig, Outcome};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
use easeio_repro::periph::Peripherals;

fn main() {
    println!("EaseIO quickstart — uni-task DMA benchmark, resets U[5,20] ms\n");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "runtime", "total ms", "failures", "DMA re-runs", "skipped", "energy µJ"
    );
    for kind in [RuntimeKind::Alpaca, RuntimeKind::Ink, RuntimeKind::EaseIo] {
        // Fresh MCU, same seed → identical failure schedule for each runtime.
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), 42));
        let mut periph = Peripherals::new(42);
        let app = dma_app::build(&mut mcu, &DmaAppCfg::default());
        let mut rt = kind.make();
        let r = run_app(
            &app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &ExecConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.verdict.unwrap().is_correct());
        println!(
            "{:<10} {:>10.2} {:>10} {:>12} {:>10} {:>12.1}",
            kind.name(),
            r.stats.total_time_us() as f64 / 1000.0,
            r.stats.power_failures,
            r.stats.dma_reexecutions,
            r.stats.dma_skipped,
            r.stats.total_energy_nj() as f64 / 1000.0,
        );
    }
    println!(
        "\nEaseIO resolves each NVM→NVM transfer to Single at run time and\n\
         never repeats a completed copy — the baselines redo all of them\n\
         after every reboot (paper §2.1.1)."
    );
}
