//! Motion sentinel: exactly-once alerts from a batteryless wearable.
//!
//! Collects accelerometer windows in a `call_IO` loop (one EaseIO lock per
//! iteration — the paper's §6 loop extension), detects activity bursts, and
//! transmits each alert exactly once despite power failures. Compares the
//! alert counter in FRAM against the packets actually on the air.
//!
//! Run with: `cargo run --release --example motion_sentinel`

use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::apps::motion::{self, MotionCfg};
use easeio_repro::kernel::{run_app, ExecConfig, Outcome};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
use easeio_repro::periph::Peripherals;

fn main() {
    println!("Motion sentinel — 6 windows × 16 accelerometer samples\n");
    println!(
        "{:<8} {:>6} {:>8} {:>9} {:>10} {:>16}",
        "runtime", "seed", "alerts", "packets", "failures", "invariant"
    );
    for kind in [RuntimeKind::Naive, RuntimeKind::Alpaca, RuntimeKind::EaseIo] {
        for seed in [175u64, 182, 37] {
            let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
            let mut periph = Peripherals::new(seed);
            let (app, alerts) = motion::build(&mut mcu, &MotionCfg::default());
            let mut rt = kind.make();
            let r = run_app(
                &app,
                rt.as_mut(),
                &mut mcu,
                &mut periph,
                &ExecConfig::default(),
            );
            assert_eq!(r.outcome, Outcome::Completed);
            let a = alerts.get(&mcu.mem) as usize;
            let p = periph.radio.count();
            println!(
                "{:<8} {:>6} {:>8} {:>9} {:>10} {:>16}",
                kind.name(),
                seed,
                a,
                p,
                r.stats.power_failures,
                if a == p {
                    "exactly-once ✓"
                } else {
                    "VIOLATED"
                },
            );
        }
    }
    println!(
        "\nEaseIO keeps FRAM and the airwaves consistent: the Single send never\n\
         re-transmits and regional privatization rolls back a failed attempt's\n\
         counter increment. Blind re-execution breaks the invariant either way\n\
         — an inflated counter or a duplicated packet."
    );
}
