//! FIR filtering with DMA WAR hazards: the paper's Figure 12 in miniature.
//!
//! The filter reads and writes the *same* FRAM buffer through DMA. A power
//! failure between the write-back and the task commit makes a blind
//! re-execution filter its own output a second time. This example sweeps
//! seeds and tallies corrupted results per runtime.
//!
//! Run with: `cargo run --release --example fir_pipeline`

use easeio_repro::apps::fir::{self, FirCfg};
use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::kernel::{run_app, ExecConfig, Outcome, Verdict};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
use easeio_repro::periph::Peripherals;

const SEEDS: u64 = 200;

fn tally(kind: RuntimeKind) -> (u64, u64, f64) {
    let mut correct = 0u64;
    let mut incorrect = 0u64;
    let mut total_ms = 0.0;
    for seed in 0..SEEDS {
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
        let mut periph = Peripherals::new(seed);
        let cfg = FirCfg {
            exclude_const_dma: kind.excludes_const_dma(),
            ..FirCfg::default()
        };
        let app = fir::build(&mut mcu, &cfg);
        let mut rt = kind.make();
        let r = run_app(
            &app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &ExecConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        match r.verdict {
            Some(Verdict::Correct) => correct += 1,
            Some(Verdict::Incorrect(_)) => incorrect += 1,
            None => {}
        }
        total_ms += r.stats.total_time_us() as f64 / 1000.0;
    }
    (correct, incorrect, total_ms / SEEDS as f64)
}

fn main() {
    println!("FIR filter: 4 chunks in place over one shared FRAM buffer");
    println!("{SEEDS} seeded runs per runtime, resets U[5,20] ms\n");
    println!(
        "{:<10} {:>9} {:>11} {:>12} {:>11}",
        "runtime", "correct", "incorrect", "% corrupted", "mean ms"
    );
    for kind in [
        RuntimeKind::Alpaca,
        RuntimeKind::Ink,
        RuntimeKind::EaseIo,
        RuntimeKind::EaseIoOp,
    ] {
        let (ok, bad, mean_ms) = tally(kind);
        println!(
            "{:<10} {:>9} {:>11} {:>11.1}% {:>11.2}",
            kind.name(),
            ok,
            bad,
            100.0 * bad as f64 / SEEDS as f64,
            mean_ms,
        );
    }
    println!(
        "\nAlpaca and InK privatize CPU writes but cannot see DMA: the\n\
         re-executed fetch reads already-filtered samples (paper Fig 2b).\n\
         EaseIO's Private fetch replays from its privatization buffer and\n\
         its Single write-back never repeats — zero corruptions."
    );
}
