//! Energy-harvesting power trace: the paper's Figure 1 as ASCII art.
//!
//! Runs the FIR workload from an RF-harvesting capacitor at two transmitter
//! distances and plots stored energy over time: the sawtooth of intermittent
//! computing. Near the transmitter income beats consumption and the device
//! never dies; farther away the capacitor drains, the device goes dark,
//! recharges, and resumes.
//!
//! It also records the structured event stream of one harvester run and
//! writes it as Chrome `trace_event` JSON (`power_trace.json`, loadable in
//! `chrome://tracing` or Perfetto), with the dead periods on their own track.
//!
//! Run with: `cargo run --release --example power_trace`

use easeio_repro::apps::dma_app::{self, DmaAppCfg};
use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::easeio_trace::{chrome_trace, Event, TraceSink};
use easeio_repro::kernel::{run_app, ExecConfig};
use easeio_repro::mcu_emu::{Capacitor, Mcu, RfHarvestConfig, Supply};
use easeio_repro::periph::Peripherals;

/// Samples of (wall ms, remaining energy fraction 0..=1) collected by
/// polling the supply between runs of fixed-size work slices.
fn trace(distance_inch: u64) -> (Vec<(f64, f64)>, u64, Vec<Event>) {
    let cfg = RfHarvestConfig {
        tx_power_mw: 3_000,
        distance_centi_inch: distance_inch * 100,
        efficiency_ppm: 1_500_000,
        capacitor: Capacitor::with_usable_energy(4_500),
        boot_us: 300,
        fading_permille: 180,
        fading_period_us: 23_000,
        fading_phase_us: 0,
    };
    let mut mcu = Mcu::new(Supply::harvester(cfg));
    mcu.trace = TraceSink::enabled();
    let mut periph = Peripherals::new(1);
    let app = dma_app::build(
        &mut mcu,
        &DmaAppCfg {
            iterations: 3,
            ..DmaAppCfg::default()
        },
    );
    let mut rt = RuntimeKind::EaseIo.make();
    // Sample the capacitor through a supply observer: we run the app to
    // completion and reconstruct the trace from failure timestamps.
    let r = run_app(
        &app,
        rt.as_mut(),
        &mut mcu,
        &mut periph,
        &ExecConfig::default(),
    );
    let mut samples = Vec::new();
    if let Supply::Harvester { cfg, .. } = &mcu.supply {
        samples.push((
            mcu.clock.now_us() as f64 / 1000.0,
            cfg.capacitor.remaining_nj() as f64 / cfg.capacitor.usable_nj() as f64,
        ));
    }
    (samples, r.stats.power_failures, r.events)
}

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn main() {
    println!("Stored-energy sawtooth (paper Figure 1)\n");
    for distance in [52u64, 61, 64] {
        // Re-run with live sampling: drive the supply directly in slices so
        // the capacitor can be observed between operations.
        let cfg = RfHarvestConfig {
            tx_power_mw: 3_000,
            distance_centi_inch: distance * 100,
            efficiency_ppm: 1_500_000,
            capacitor: Capacitor::with_usable_energy(4_500),
            boot_us: 300,
            fading_permille: 180,
            fading_period_us: 23_000,
            fading_phase_us: 0,
        };
        println!(
            "distance {distance} in — harvested income {:.2} mW",
            cfg.income_nw() as f64 / 1e6
        );
        let mut supply = Supply::harvester(cfg);
        let mut clock = easeio_repro::mcu_emu::Clock::new();
        // A steady 1.5 mW synthetic load in 500 µs slices, 40 ms of work
        // (the DMA benchmark's average draw).
        let mut rows = 0;
        while clock.on_us() < 40_000 && rows < 90 {
            let spend = supply.spend(&mut clock, easeio_repro::mcu_emu::Cost::new(500, 750));
            if let Supply::Harvester { cfg, .. } = &supply {
                let frac = cfg.capacitor.remaining_nj() as f64 / cfg.capacitor.usable_nj() as f64;
                if rows % 3 == 0 || spend.interrupted {
                    println!(
                        "  t={:>7.1} ms |{}| {}",
                        clock.now_us() as f64 / 1000.0,
                        bar(frac, 40),
                        if spend.interrupted {
                            "POWER FAILURE → recharge"
                        } else {
                            ""
                        }
                    );
                }
                rows += 1;
            }
        }
        println!();
    }
    // And the end-to-end effect on a real workload:
    println!("DMA benchmark (3 iterations) under the harvester, EaseIO:");
    let mut far_events = Vec::new();
    for d in [52u64, 58, 64] {
        let (_, failures, events) = trace(d);
        println!("  distance {d} in → {failures} power failures");
        if d == 64 {
            far_events = events;
        }
    }
    // Export the farthest (most intermittent) run as a Chrome trace.
    let doc = chrome_trace(&far_events, "dma on EaseIO, harvester @64in");
    let path = "power_trace.json";
    match std::fs::write(path, doc.to_pretty()) {
        Ok(()) => println!(
            "\nwrote {path} ({} events) — open in chrome://tracing or Perfetto",
            far_events.len()
        ),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
