//! easeio-repro — umbrella crate for the EaseIO (EuroSys '23) reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! depend on a single package:
//!
//! * [`easeio_trace`] — structured tracing, profiles, and run reports;
//! * [`mcu_emu`] — the simulated MSP430FR5994 platform;
//! * [`periph`] — sensors, radio, camera, DMA, LEA, environment;
//! * [`kernel`] — task model, executor, Alpaca/InK/naive runtimes;
//! * [`easeio_core`] — the EaseIO runtime (the paper's contribution);
//! * [`apps`] — the paper's evaluation applications and experiment harness.
//!
//! # Quick start
//!
//! ```
//! use easeio_repro::apps::{dma_app, harness::{MakeRuntime, RuntimeKind}};
//! use easeio_repro::kernel::{run_app, ExecConfig, Outcome};
//! use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
//! use easeio_repro::periph::Peripherals;
//!
//! // Build the paper's uni-task DMA benchmark on a simulated MCU that
//! // loses power every 5–20 ms, and run it under EaseIO.
//! let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), 42));
//! let mut periph = Peripherals::new(42);
//! let app = dma_app::build(&mut mcu, &dma_app::DmaAppCfg::default());
//! let mut rt = RuntimeKind::EaseIo.make();
//! let result = run_app(&app, rt.as_mut(), &mut mcu, &mut periph, &ExecConfig::default());
//! assert_eq!(result.outcome, Outcome::Completed);
//! ```

pub use apps;
pub use easec;
pub use easeio_core;
pub use easeio_trace;
pub use kernel;
pub use mcu_emu;
pub use periph;
