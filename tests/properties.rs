//! Property-based tests of the core invariants (proptest).
//!
//! * **Equivalence**: under an arbitrary failure schedule, EaseIO's final
//!   memory equals continuous-power execution — for the workload with the
//!   hardest hazards (FIR: DMA WAR on a shared buffer).
//! * **At-most-once**: a completed `Single` operation never re-executes
//!   within its activation.
//! * **Freshness**: a `Timely` reading used by the program is never older
//!   than its window at restore time.
//! * **Ledger**: time and energy accounting is exact and internally
//!   consistent for every runtime and schedule.
//! * **Trace well-formedness**: the structured event stream is monotonically
//!   timestamped across power failures and every span begin has a matching
//!   end, for every runtime and schedule.

use easeio_repro::apps::harness::{run_once, run_traced, MakeRuntime, RuntimeKind};
use easeio_repro::apps::{dma_app, fir, temp_app};
use easeio_repro::easeio_trace::build_profile;
use easeio_repro::kernel::{Outcome, Verdict};
use easeio_repro::mcu_emu::{EnergyCause, Mcu, Supply, TimerResetConfig};
use proptest::prelude::*;

/// Arbitrary-but-runnable failure schedules: on-periods long enough that the
/// workloads' largest atomic operations (≈4.5 ms) can complete.
fn schedule_strategy() -> impl Strategy<Value = TimerResetConfig> {
    (5_000u64..30_000, 1u64..20_000, 1u64..50_000).prop_map(|(on_max, on_min_off, off)| {
        TimerResetConfig {
            on_min_us: 5_000,
            on_max_us: on_max.max(5_001),
            off_min_us: 1 + on_min_off % 5_000,
            off_max_us: 1 + on_min_off % 5_000 + off,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn easeio_fir_equals_continuous_execution(
        cfg in schedule_strategy(),
        seed in any::<u64>(),
    ) {
        let b = |m: &mut Mcu| fir::build(m, &fir::FirCfg::default());
        let r = run_once(&b, RuntimeKind::EaseIo, Supply::timer(cfg, seed), seed);
        prop_assert_eq!(r.outcome, Outcome::Completed);
        prop_assert_eq!(r.verdict, Some(Verdict::Correct));
    }

    #[test]
    fn single_dma_executes_at_most_once_per_site_per_activation(
        cfg in schedule_strategy(),
        seed in any::<u64>(),
    ) {
        let b = |m: &mut Mcu| dma_app::build(m, &dma_app::DmaAppCfg::default());
        let r = run_once(&b, RuntimeKind::EaseIo, Supply::timer(cfg, seed), seed);
        prop_assert_eq!(r.outcome, Outcome::Completed);
        // Re-execution of a completed Single site would be counted here.
        prop_assert_eq!(r.stats.dma_reexecutions, 0);
        prop_assert_eq!(r.verdict, Some(Verdict::Correct));
    }

    #[test]
    fn ledger_is_internally_consistent_for_every_runtime(
        cfg in schedule_strategy(),
        seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let kind = [RuntimeKind::Alpaca, RuntimeKind::Ink, RuntimeKind::EaseIo][which];
        let b = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
        let r = run_once(&b, kind, Supply::timer(cfg, seed), seed);
        prop_assert_eq!(r.outcome, Outcome::Completed);
        // Total on-time is exactly app + overhead.
        prop_assert_eq!(r.stats.total_time_us(), r.stats.app_time_us + r.stats.overhead_time_us);
        // Wall time = on + off, and on-time matches the ledger.
        prop_assert_eq!(r.on_us, r.stats.total_time_us());
        prop_assert!(r.wall_us >= r.on_us);
        // With zero failures there is zero off-time.
        if r.stats.power_failures == 0 {
            prop_assert_eq!(r.wall_us, r.on_us);
        }
        // Counters are coherent: skipped + executed ≥ distinct completions.
        prop_assert!(r.stats.io_reexecutions <= r.stats.io_executed);
    }

    #[test]
    fn energy_attribution_sums_exactly_to_total_energy(
        cfg in schedule_strategy(),
        seed in any::<u64>(),
        which in 0usize..4,
        app in 0usize..2,
    ) {
        // The tentpole invariant: every nanojoule the MCU spends carries
        // exactly one cause tag, so the per-category breakdown, the
        // per-task ledger, and the headline totals are three views of the
        // same number — for every runtime, app, and failure schedule.
        let kind = [
            RuntimeKind::Naive,
            RuntimeKind::Alpaca,
            RuntimeKind::Ink,
            RuntimeKind::EaseIo,
        ][which];
        let r = if app == 0 {
            let b = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
            run_once(&b, kind, Supply::timer(cfg, seed), seed)
        } else {
            let b = |m: &mut Mcu| dma_app::build(m, &dma_app::DmaAppCfg::default());
            run_once(&b, kind, Supply::timer(cfg, seed), seed)
        };
        // No outcome assertion: Naive legitimately fails to terminate on
        // harsh schedules, and the attribution ledger must balance even then.
        prop_assert!(r.stats.attribution_balanced());
        let cause_nj: u64 = r.stats.cause_energy_nj.iter().sum();
        let cause_us: u64 = r.stats.cause_time_us.iter().sum();
        prop_assert_eq!(cause_nj, r.stats.total_energy_nj());
        prop_assert_eq!(cause_us, r.stats.total_time_us());
        // The per-task ledger covers every nanojoule, no more, no less.
        let task_nj: u64 = r
            .stats
            .cause_energy_by_task
            .values()
            .map(|per| per.iter().sum::<u64>())
            .sum();
        prop_assert_eq!(task_nj, r.stats.total_energy_nj());
        // Waste is exactly the sum of the waste-flagged categories, and the
        // per-site redundant ledger never exceeds the redundant_io bucket.
        let waste_nj: u64 = EnergyCause::ALL
            .iter()
            .filter(|c| c.is_waste())
            .map(|c| r.stats.cause_energy_nj[c.index()])
            .sum();
        prop_assert_eq!(waste_nj, r.stats.waste_energy_nj());
        let site_nj: u64 = r.stats.redundant_energy_by_site.values().sum();
        prop_assert!(site_nj <= r.stats.cause_energy_nj[EnergyCause::RedundantIo.index()]);
    }

    #[test]
    fn trace_spans_are_balanced_and_monotone_across_failures(
        cfg in schedule_strategy(),
        seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let kind = [RuntimeKind::Alpaca, RuntimeKind::Ink, RuntimeKind::EaseIo][which];
        let b = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
        let r = run_traced(&b, kind, Supply::timer(cfg, seed), seed);
        prop_assert_eq!(r.outcome, Outcome::Completed);
        prop_assert!(!r.events.is_empty());
        // Timestamps and the cumulative energy counter never go backwards,
        // even across power failures and recharge periods.
        let (mut prev_ts, mut prev_nj) = (0u64, 0u64);
        for ev in &r.events {
            prop_assert!(ev.ts_us >= prev_ts, "ts regressed: {} -> {}", prev_ts, ev.ts_us);
            prop_assert!(ev.energy_nj >= prev_nj);
            prev_ts = ev.ts_us;
            prev_nj = ev.energy_nj;
        }
        // Every span begin has a matching end (the ring didn't overflow on
        // this workload, so the stream is complete).
        prop_assert_eq!(r.events_dropped, 0);
        let p = build_profile(&r.events);
        prop_assert_eq!(p.unbalanced, 0);
        // The profile's view of the run agrees with the executor's ledger.
        prop_assert_eq!(
            p.instants.get("power_failure").copied().unwrap_or(0),
            r.stats.power_failures
        );
        let commits: u64 = p.tasks.iter().map(|t| t.commits).sum();
        prop_assert_eq!(commits, r.stats.task_commits);
        let attempts: u64 = p.tasks.iter().map(|t| t.attempts).sum();
        prop_assert_eq!(attempts, r.stats.task_attempts);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed(
        cfg in schedule_strategy(),
        seed in any::<u64>(),
    ) {
        let b = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
        let r1 = run_once(&b, RuntimeKind::EaseIo, Supply::timer(cfg.clone(), seed), seed);
        let r2 = run_once(&b, RuntimeKind::EaseIo, Supply::timer(cfg, seed), seed);
        prop_assert_eq!(r1.wall_us, r2.wall_us);
        prop_assert_eq!(r1.stats.total_energy_nj(), r2.stats.total_energy_nj());
        prop_assert_eq!(r1.stats.power_failures, r2.stats.power_failures);
    }

    #[test]
    fn timely_restores_are_never_stale(
        seed in any::<u64>(),
        window_ms in 2u64..60,
        off in 1_000u64..40_000,
    ) {
        // Construct a schedule with known off-times and check the invariant
        // through the app's own plausibility verdict plus the runtime
        // counters: whenever the outage exceeds the window, the sample is
        // re-sensed (no restore of an expired reading).
        let cfg = TimerResetConfig {
            on_min_us: 5_000,
            on_max_us: 9_000,
            off_min_us: off,
            off_max_us: off,
        };
        let app_cfg = temp_app::TempAppCfg { window_ms, ..temp_app::TempAppCfg::default() };
        let b = move |m: &mut Mcu| temp_app::build(m, &app_cfg.clone());
        let r = run_once(&b, RuntimeKind::EaseIo, Supply::timer(cfg, seed), seed);
        prop_assert_eq!(r.outcome, Outcome::Completed);
        if off > window_ms * 1000 {
            // Every restart after an outage must re-sense: restores can only
            // happen when the sample is still fresh, which it never is.
            prop_assert_eq!(r.stats.io_skipped, 0,
                "outage {}ms > window {}ms yet a sample was restored", off / 1000, window_ms);
        }
    }
}

// Deterministic (non-proptest) cross-checks that complement the properties.

#[test]
fn easeio_matches_continuous_memory_exactly_on_fir() {
    // Byte-level comparison of the full signal buffer, not just the verdict.
    let cfg = fir::FirCfg::default();
    let golden = fir::reference(&cfg);
    for seed in [1u64, 7, 1234, 0xDEAD] {
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
        let mut periph = easeio_repro::periph::Peripherals::new(seed);
        let app = fir::build(&mut mcu, &cfg);
        let mut rt = RuntimeKind::EaseIo.make();
        let r = easeio_repro::kernel::run_app(
            &app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &easeio_repro::kernel::ExecConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
        // `reference` is itself deterministic; re-derive and compare.
        assert_eq!(golden, fir::reference(&cfg));
    }
}
