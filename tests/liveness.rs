//! Liveness: the paper's non-termination argument (§3.5).
//!
//! A task whose total I/O cost exceeds what any single on-period can supply
//! can never commit under an all-or-nothing runtime — it re-executes
//! forever. EaseIO's `Single` semantics let the same task finish its I/O
//! incrementally across periods, so the application completes.

use easeio_repro::apps::dma_app::{self, DmaAppCfg};
use easeio_repro::apps::harness::{run_once, RuntimeKind};
use easeio_repro::kernel::Outcome;
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};

/// A copy task needing ~22 ms of transfers per attempt, against on-periods
/// capped at 20 ms: atomically impossible, incrementally easy.
fn heavy_cfg() -> DmaAppCfg {
    DmaAppCfg {
        bytes: 2048,
        chunks: 10,
        iterations: 1,
        pre_compute: 200,
        post_compute: 200,
    }
}

fn reset_cfg() -> TimerResetConfig {
    TimerResetConfig::default() // on-period U[5, 20] ms
}

#[test]
fn alpaca_livelocks_on_oversized_io_task() {
    let b = |m: &mut Mcu| dma_app::build(m, &heavy_cfg());
    let r = run_once(&b, RuntimeKind::Alpaca, Supply::timer(reset_cfg(), 3), 3);
    assert_eq!(
        r.outcome,
        Outcome::NonTermination,
        "a 22 ms atomic task cannot fit any on-period ≤ 20 ms"
    );
}

#[test]
fn easeio_completes_the_same_task_incrementally() {
    for seed in 0..10u64 {
        let b = |m: &mut Mcu| dma_app::build(m, &heavy_cfg());
        let r = run_once(
            &b,
            RuntimeKind::EaseIo,
            Supply::timer(reset_cfg(), seed),
            seed,
        );
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert!(r.verdict.unwrap().is_correct());
        assert!(
            r.stats.dma_skipped > 0,
            "completion must come from skipping finished transfers"
        );
    }
}

#[test]
fn easeio_needs_strictly_fewer_failures_to_finish() {
    // With Single semantics the device spends each charge on *new* work, so
    // the workload costs fewer charge cycles end to end (paper Table 4's
    // "reduces the number of power failures").
    let b = |m: &mut Mcu| dma_app::build(m, &DmaAppCfg::default());
    let mut alpaca_pf = 0;
    let mut easeio_pf = 0;
    for seed in 0..30u64 {
        alpaca_pf += run_once(
            &b,
            RuntimeKind::Alpaca,
            Supply::timer(reset_cfg(), seed),
            seed,
        )
        .stats
        .power_failures;
        easeio_pf += run_once(
            &b,
            RuntimeKind::EaseIo,
            Supply::timer(reset_cfg(), seed),
            seed,
        )
        .stats
        .power_failures;
    }
    assert!(
        easeio_pf < alpaca_pf,
        "EaseIO {easeio_pf} failures vs Alpaca {alpaca_pf}"
    );
}
