//! Property-based tests of the substrate: memory map, capacitor, supplies,
//! and the environment model.

use easeio_repro::mcu_emu::{
    Addr, Capacitor, Clock, Cost, Memory, Region, Supply, TimerResetConfig,
};
use easeio_repro::periph::Environment;
use proptest::prelude::*;

/// A random sequence of small memory operations on FRAM and SRAM.
#[derive(Debug, Clone)]
enum MemOp {
    Write {
        fram: bool,
        off: u32,
        byte: u8,
    },
    Copy {
        from_fram: bool,
        src: u32,
        to_fram: bool,
        dst: u32,
        len: u32,
    },
    Fail,
}

fn mem_op_strategy() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (any::<bool>(), 0u32..512, any::<u8>()).prop_map(|(fram, off, byte)| MemOp::Write {
            fram,
            off,
            byte
        }),
        (any::<bool>(), 0u32..256, any::<bool>(), 0u32..256, 1u32..64).prop_map(
            |(from_fram, src, to_fram, dst, len)| MemOp::Copy {
                from_fram,
                src,
                to_fram,
                dst,
                len
            }
        ),
        Just(MemOp::Fail),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FRAM contents evolve exactly like a reference model that ignores
    /// power failures; volatile contents clear at every failure.
    #[test]
    fn memory_volatility_model(ops in proptest::collection::vec(mem_op_strategy(), 1..120)) {
        let mut mem = Memory::new();
        let fram_base = mem.alloc(Region::Fram, 1024, easeio_repro::mcu_emu::AllocTag::App);
        let sram_base = mem.alloc(Region::Sram, 1024, easeio_repro::mcu_emu::AllocTag::App);
        let mut fram_ref = vec![0u8; 1024];
        let mut sram_ref = vec![0u8; 1024];
        let at = |fram: bool, off: u32| -> Addr {
            if fram { fram_base.add(off) } else { sram_base.add(off) }
        };
        for op in &ops {
            match *op {
                MemOp::Write { fram, off, byte } => {
                    mem.write_bytes(at(fram, off), &[byte]);
                    if fram { fram_ref[off as usize] = byte } else { sram_ref[off as usize] = byte }
                }
                MemOp::Copy { from_fram, src, to_fram, dst, len } => {
                    mem.copy(at(from_fram, src), at(to_fram, dst), len);
                    let data: Vec<u8> = if from_fram {
                        fram_ref[src as usize..(src + len) as usize].to_vec()
                    } else {
                        sram_ref[src as usize..(src + len) as usize].to_vec()
                    };
                    let dst_ref = if to_fram { &mut fram_ref } else { &mut sram_ref };
                    dst_ref[dst as usize..(dst + len) as usize].copy_from_slice(&data);
                }
                MemOp::Fail => {
                    mem.power_failure();
                    sram_ref.fill(0);
                }
            }
        }
        prop_assert_eq!(mem.read_bytes(fram_base, 1024), &fram_ref[..]);
        prop_assert_eq!(mem.read_bytes(sram_base, 1024), &sram_ref[..]);
    }

    /// The capacitor never exceeds its capacity, never goes negative, and
    /// drain/charge arithmetic is exact.
    #[test]
    fn capacitor_invariants(
        capacity in 1u64..1_000_000,
        ops in proptest::collection::vec((any::<bool>(), 0u64..100_000), 1..200),
    ) {
        let mut cap = Capacitor::with_usable_energy(capacity);
        let mut model: u64 = capacity;
        for (is_charge, amount) in ops {
            if is_charge {
                cap.charge(amount);
                model = (model + amount).min(capacity);
            } else {
                let ok = cap.drain(amount);
                if amount <= model {
                    prop_assert!(ok);
                    model -= amount;
                } else {
                    prop_assert!(!ok);
                    model = 0;
                }
            }
            prop_assert_eq!(cap.remaining_nj(), model);
            prop_assert!(cap.remaining_nj() <= capacity);
        }
    }

    /// The timer supply's on-periods always fall inside the configured
    /// bounds, for arbitrary configurations and work granularities.
    #[test]
    fn timer_on_periods_within_bounds(
        seed in any::<u64>(),
        on_min in 100u64..5_000,
        on_extra in 1u64..10_000,
        grain in 1u64..400,
    ) {
        let cfg = TimerResetConfig {
            on_min_us: on_min,
            on_max_us: on_min + on_extra,
            off_min_us: 10,
            off_max_us: 100,
        };
        let mut s = Supply::timer(cfg.clone(), seed);
        let mut clock = Clock::new();
        let mut boot_at = 0u64;
        let mut failures = 0;
        while failures < 20 && clock.on_us() < 2_000_000 {
            let r = s.spend(&mut clock, Cost::new(grain, grain));
            if r.interrupted {
                let period = clock.on_us() - boot_at;
                prop_assert!(period >= cfg.on_min_us);
                prop_assert!(period <= cfg.on_max_us);
                boot_at = clock.on_us();
                failures += 1;
            }
        }
        prop_assert!(failures > 0);
    }

    /// Environment readings are pure functions of (seed, time) and stay in
    /// physical ranges.
    #[test]
    fn environment_is_pure_and_bounded(seed in any::<u64>(), t in any::<u32>()) {
        let t = t as u64 * 7;
        let a = Environment::new(seed);
        let b = Environment::new(seed);
        prop_assert_eq!(a.temp_centi_c(t), b.temp_centi_c(t));
        prop_assert_eq!(a.humidity_permille(t), b.humidity_permille(t));
        prop_assert!((0..=1000).contains(&a.humidity_permille(t)));
        prop_assert!((300..=2200).contains(&a.temp_centi_c(t)),
            "temp {} out of band", a.temp_centi_c(t));
        prop_assert!((0..=4095).contains(&a.light_adc(t)));
    }
}
