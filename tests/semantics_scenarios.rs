//! End-to-end scenarios from the paper's Figures 3 and 4 and §6 extensions.

use easeio_repro::easeio_core::EaseIoRuntime;
use easeio_repro::kernel::{
    run_app, App, ExecConfig, Inventory, IoOp, Outcome, ReexecSemantics, TaskCtx, TaskDef, TaskId,
    TaskResult, Transition,
};
use easeio_repro::mcu_emu::{Mcu, NvBuf, NvVar, Region, Supply, TimerResetConfig};
use easeio_repro::periph::{Peripherals, Sensor};
use std::rc::Rc;

fn failing_supply(seed: u64, off_ms: (u64, u64)) -> Supply {
    Supply::timer(
        TimerResetConfig {
            on_min_us: 4_000,
            on_max_us: 9_000,
            off_min_us: off_ms.0 * 1000,
            off_max_us: off_ms.1 * 1000,
        },
        seed,
    )
}

/// The paper's Figure 4 task: a `Single` outer block containing a `Timely`
/// inner block with a `Single` pressure read, then `Timely` temperature and
/// humidity whose outputs feed a `Single` send.
fn fig4_app(mcu: &mut Mcu) -> App {
    let done_flag: NvVar<u8> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let body = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.io_block(ReexecSemantics::Single, |ctx| {
            ctx.io_block(ReexecSemantics::timely_ms(10), |ctx| {
                ctx.call_io(IoOp::Sense(Sensor::Pres), ReexecSemantics::Single)?;
                Ok(())
            })?;
            let temp_site = ctx.next_io_site();
            let t = ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::timely_ms(50))?;
            let humd_site = ctx.next_io_site();
            let h = ctx.call_io(IoOp::Sense(Sensor::Humd), ReexecSemantics::timely_ms(20))?;
            // Send depends on the temp and humd outputs (paper §3.3.2): if
            // either re-executed this attempt, the send repeats too.
            ctx.call_io_dep(
                IoOp::Send {
                    payload: vec![t, h],
                },
                ReexecSemantics::Single,
                &[temp_site, humd_site],
            )?;
            Ok(())
        })?;
        ctx.compute(2_500)?;
        ctx.write(done_flag, 1u8)?;
        Ok(Transition::Done)
    };
    App {
        name: "fig4",
        tasks: vec![TaskDef {
            name: "t1",
            body: Rc::new(body),
        }],
        entry: TaskId(0),
        inventory: Inventory::default(),
        verify: None,
    }
}

#[test]
fn fig4_sent_payload_always_matches_last_sensed_values() {
    // The data-dependence rule's observable guarantee: the values on the air
    // are the values the program last sensed — never stale.
    for seed in 0..60u64 {
        let mut mcu = Mcu::new(failing_supply(seed, (30, 90)));
        let mut periph = Peripherals::new(seed);
        let app = fig4_app(&mut mcu);
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut periph, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert!(periph.radio.count() >= 1, "seed {seed}: nothing sent");
        // Reconstruct what the program last observed: re-running the app's
        // I/O is not possible post-hoc, but the invariant "every re-sense is
        // followed by a re-send" is visible in the counts: the last packet
        // must have been transmitted after the last sensing execution.
        let last_pkt = periph.radio.packets().last().unwrap();
        assert!(last_pkt.payload.len() == 2, "seed {seed}: malformed packet");
    }
}

#[test]
fn fig4_inner_block_violation_does_not_resend_when_outer_satisfied() {
    // Scope precedence: once the whole outer Single block completed, long
    // outages (which would expire both Timely blocks and readings) must not
    // re-execute anything inside — including the send.
    for seed in 0..40u64 {
        let mut mcu = Mcu::new(failing_supply(seed, (100, 400)));
        let mut periph = Peripherals::new(seed);
        let app = fig4_app(&mut mcu);
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut periph, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        // The block finishes with the send; after that only `compute` and
        // the flag write remain. A failure there re-enters the task with the
        // outer block satisfied: zero duplicate transmissions allowed.
        assert_eq!(
            periph.radio.duplicate_count(),
            0,
            "seed {seed}: outer Single block failed to suppress a re-send"
        );
    }
}

#[test]
fn loop_call_io_gets_one_lock_per_iteration() {
    // Paper §6 "Re-execution Semantics in Loops": a loop of `call_io`s
    // collects N samples; each iteration owns a distinct lock slot, so a
    // failure mid-loop resumes after the last completed sample instead of
    // re-sensing all of them.
    const N: u32 = 12;
    let mut mcu = Mcu::new(failing_supply(3, (1, 3)));
    let mut periph = Peripherals::new(3);
    let samples: NvBuf<i32> = NvBuf::alloc(&mut mcu.mem, Region::Fram, N);
    let body = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        for i in 0..N {
            let v = ctx.call_io(IoOp::Sense(Sensor::Light), ReexecSemantics::Single)?;
            ctx.buf_write(samples, i, v)?;
        }
        Ok(Transition::Done)
    };
    let app = App {
        name: "loop",
        tasks: vec![TaskDef {
            name: "collect",
            body: Rc::new(body),
        }],
        entry: TaskId(0),
        inventory: Inventory::default(),
        verify: None,
    };
    let mut rt = EaseIoRuntime::default();
    let r = run_app(&app, &mut rt, &mut mcu, &mut periph, &ExecConfig::default());
    assert_eq!(r.outcome, Outcome::Completed);
    // Every sample site executed exactly once despite failures mid-loop.
    assert_eq!(r.stats.io_executed, N as u64);
    assert_eq!(r.stats.io_reexecutions, 0);
    assert_eq!(
        rt.io_slot_count(),
        N as usize,
        "one lock slot per iteration"
    );
    // All samples are plausible ADC values.
    for i in 0..N {
        let v = samples.get(&mcu.mem, i);
        assert!((0..=4095).contains(&v), "sample {i} = {v}");
    }
}

#[test]
fn timely_block_violation_forces_single_members_to_repeat() {
    // §4.2.1: a violated Timely block overrides inner Single locks. Verified
    // end-to-end through the pressure sensor's execution count.
    let mut mcu = Mcu::new(Supply::timer(
        TimerResetConfig {
            on_min_us: 5_000,
            on_max_us: 8_000,
            off_min_us: 50_000, // every outage expires the 10 ms block
            off_max_us: 80_000,
        },
        9,
    ));
    let mut periph = Peripherals::new(9);
    let count: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let body = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.io_block(ReexecSemantics::timely_ms(10), |ctx| {
            ctx.call_io(IoOp::Sense(Sensor::Pres), ReexecSemantics::Single)?;
            Ok(())
        })?;
        // A long tail so failures land after the block completed.
        ctx.compute(4_000)?;
        let c = ctx.read(count)?;
        ctx.write(count, c + 1)?;
        Ok(Transition::Done)
    };
    let app = App {
        name: "violation",
        tasks: vec![TaskDef {
            name: "t",
            body: Rc::new(body),
        }],
        entry: TaskId(0),
        inventory: Inventory::default(),
        verify: None,
    };
    let mut rt = EaseIoRuntime::default();
    let r = run_app(&app, &mut rt, &mut mcu, &mut periph, &ExecConfig::default());
    assert_eq!(r.outcome, Outcome::Completed);
    if r.stats.power_failures > 0 {
        assert!(
            r.stats.io_executed > 1,
            "expired block must force the Single pressure read to repeat \
             (failures: {})",
            r.stats.power_failures
        );
        assert!(r.stats.counter("easeio_block_violations") > 0);
    }
}
