//! Differential model checking at the workspace level: random programs ×
//! random failure schedules, EaseIO vs the continuous-execution oracle.
//!
//! `apps::synth` documents the method; this test drives it harder than the
//! crate-local tests — proptest draws both the program seed and the failure
//! schedule, so shrinking yields a minimal (program, schedule) pair on any
//! regression.

use easeio_repro::apps::harness::RuntimeKind;
use easeio_repro::apps::synth;
use easeio_repro::mcu_emu::{Supply, TimerResetConfig};
use proptest::prelude::*;

fn schedule() -> impl Strategy<Value = TimerResetConfig> {
    // On-periods at least 5 ms so every generated atomic op fits; off-times
    // spanning well past the largest Timely window the generator emits.
    (5_000u64..25_000, 500u64..60_000).prop_map(|(on_max, off_max)| TimerResetConfig {
        on_min_us: 5_000,
        on_max_us: on_max.max(5_001),
        off_min_us: 200,
        off_max_us: off_max.max(201),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline equivalence: for arbitrary programs and schedules,
    /// EaseIO's final FRAM equals the continuous-execution oracle.
    #[test]
    fn easeio_equals_continuous_execution(
        prog_seed in 0u64..100_000,
        supply_seed in any::<u64>(),
        cfg in schedule(),
    ) {
        let prog = synth::generate(prog_seed);
        let supply = Supply::timer(cfg, supply_seed);
        if let Err(e) = synth::check(&prog, RuntimeKind::EaseIo, supply, prog_seed) {
            prop_assert!(false, "program {prog_seed} diverged: {e}");
        }
    }

    /// The oracle itself is sound: on continuous power every runtime,
    /// including the naive one, matches it exactly.
    #[test]
    fn oracle_sound_on_continuous_power(
        prog_seed in 0u64..100_000,
        which in 0usize..4,
    ) {
        let kind = [
            RuntimeKind::Naive,
            RuntimeKind::Alpaca,
            RuntimeKind::Ink,
            RuntimeKind::EaseIo,
        ][which];
        let prog = synth::generate(prog_seed);
        if let Err(e) = synth::check(&prog, kind, Supply::continuous(), prog_seed) {
            prop_assert!(false, "program {prog_seed} under {}: {e}", kind.name());
        }
    }
}

/// A deterministic wide sweep on top of the proptest cases (cheap, and its
/// failures name the seed directly).
#[test]
fn easeio_sweep_500_programs() {
    for prog_seed in 0..500u64 {
        let prog = synth::generate(prog_seed);
        let supply = Supply::timer(TimerResetConfig::default(), prog_seed.wrapping_mul(7919));
        synth::check(&prog, RuntimeKind::EaseIo, supply, prog_seed)
            .unwrap_or_else(|e| panic!("program {prog_seed} diverged: {e}"));
    }
}
