//! Fuzz-style robustness tests for the easec front-end.

use easeio_repro::apps::harness::MakeRuntime;
use easeio_repro::easec::{self, ast::*, printer};
use easeio_repro::mcu_emu::{Mcu, Supply};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic: any input yields Ok or a positioned
    /// error.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = easec::parse(&input);
    }

    /// Token-shaped soup (identifiers, punctuation, keywords) — closer to
    /// real near-miss programs than raw unicode.
    #[test]
    fn parser_survives_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("task".to_string()),
                Just("__nv".to_string()),
                Just("_call_IO".to_string()),
                Just("_IO_block_begin".to_string()),
                Just("_IO_block_end".to_string()),
                Just("_DMA_copy".to_string()),
                Just("{".to_string()), Just("}".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just(";".to_string()), Just(",".to_string()),
                Just("=".to_string()), Just("<".to_string()),
                Just("Single".to_string()), Just("Timely".to_string()),
                Just("done".to_string()), Just("next".to_string()),
                Just("if".to_string()), Just("repeat".to_string()),
                Just("x".to_string()), Just("42".to_string()),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = easec::parse(&src);
    }
}

/// Generates a random valid program (seeded, reproducible).
fn gen_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_arrays = 2;
    let decls: Vec<NvDecl> = (0..3)
        .map(|i| NvDecl {
            name: format!("v{i}"),
            len: if i < n_arrays { Some(8) } else { None },
            region: DeclRegion::Fram,
            line: 0,
        })
        .collect();
    let n_tasks = rng.random_range(1..=3usize);
    let mut tasks = Vec::new();
    for t in 0..n_tasks {
        let mut body = gen_stmts(&mut rng, 0, t, n_tasks);
        // Terminate deterministically.
        if t + 1 < n_tasks {
            body.push(Stmt::Next(format!("t{}", t + 1), 0));
        } else {
            body.push(Stmt::Done(0));
        }
        tasks.push(Task {
            name: format!("t{t}"),
            body,
            line: 0,
        });
    }
    Program { decls, tasks }
}

fn gen_expr(rng: &mut StdRng, depth: u32, locals: &[String]) -> Expr {
    if depth > 2 || rng.random_range(0..3u8) == 0 {
        return match rng.random_range(0..3u8) {
            0 => Expr::Int(rng.random_range(0..100)),
            1 if !locals.is_empty() => Expr::Var(locals[rng.random_range(0..locals.len())].clone()),
            _ => Expr::Var("v2".into()), // the scalar decl
        };
    }
    match rng.random_range(0..3u8) {
        0 => Expr::Bin(
            [Op::Add, Op::Sub, Op::Mul, Op::Lt][rng.random_range(0..4usize)],
            Box::new(gen_expr(rng, depth + 1, locals)),
            Box::new(gen_expr(rng, depth + 1, locals)),
        ),
        1 => Expr::Index(
            format!("v{}", rng.random_range(0..2u8)),
            Box::new(Expr::Int(rng.random_range(0..8))),
        ),
        _ => Expr::CallIo(Box::new(IoCall {
            func: [IoFunc::Temp, IoFunc::Humd, IoFunc::Light][rng.random_range(0..3usize)],
            sem: [Sem::Single, Sem::Timely(10), Sem::Always][rng.random_range(0..3usize)],
            args: vec![],
            line: 0,
            id: 0,
        })),
    }
}

fn gen_stmts(rng: &mut StdRng, depth: u32, task: usize, _n_tasks: usize) -> Vec<Stmt> {
    let n = rng.random_range(1..=4usize);
    let mut locals: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for k in 0..n {
        let s = match rng.random_range(0..7u8) {
            0 => {
                let name = format!("l{task}_{depth}_{k}");
                let e = gen_expr(rng, 0, &locals);
                locals.push(name.clone());
                Stmt::Let {
                    name,
                    expr: e,
                    line: 0,
                }
            }
            1 => Stmt::Assign {
                name: "v2".into(),
                expr: gen_expr(rng, 0, &locals),
                line: 0,
            },
            2 => Stmt::AssignIndex {
                name: format!("v{}", rng.random_range(0..2u8)),
                index: Expr::Int(rng.random_range(0..8)),
                expr: gen_expr(rng, 0, &locals),
                line: 0,
            },
            3 => Stmt::Compute(Expr::Int(rng.random_range(10..500)), 0),
            4 => Stmt::DmaCopy {
                src: ArrRef {
                    name: "v0".into(),
                    index: Expr::Int(rng.random_range(0..4)),
                },
                dst: ArrRef {
                    name: "v1".into(),
                    index: Expr::Int(rng.random_range(0..4)),
                },
                elems: rng.random_range(1..4),
                exclude: rng.random_range(0..4u8) == 0,
                line: 0,
                id: 0,
            },
            5 if depth == 0 => Stmt::If {
                cond: gen_expr(rng, 1, &locals),
                then: gen_stmts(rng, depth + 1, task, _n_tasks),
                els: gen_stmts(rng, depth + 1, task, _n_tasks),
                line: 0,
            },
            _ => Stmt::CallIoStmt(IoCall {
                func: IoFunc::Send,
                sem: Sem::Single,
                args: vec![gen_expr(rng, 1, &locals)],
                line: 0,
                id: 0,
            }),
        };
        out.push(s);
    }
    out
}

#[test]
fn generated_programs_round_trip_and_compile() {
    for seed in 0..300u64 {
        let prog = gen_program(seed);
        let printed = printer::print_source(&prog);
        let reparsed = easec::parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
        assert!(
            printer::ast_eq(&prog, &reparsed),
            "seed {seed}: round-trip mismatch\n{printed}"
        );
        // And every generated program compiles and runs on continuous power.
        let mut mcu = Mcu::new(Supply::continuous());
        let compiled = easec::compile(&printed, &mut mcu)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{printed}"));
        let mut periph = easeio_repro::periph::Peripherals::new(seed);
        let mut rt = easeio_repro::apps::harness::RuntimeKind::EaseIo.make();
        let r = easeio_repro::kernel::run_app(
            &compiled.app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &easeio_repro::kernel::ExecConfig::default(),
        );
        assert_eq!(
            r.outcome,
            easeio_repro::kernel::Outcome::Completed,
            "seed {seed}"
        );
    }
}

#[test]
fn generated_programs_survive_intermittent_power() {
    use easeio_repro::mcu_emu::TimerResetConfig;
    for seed in 0..120u64 {
        let prog = gen_program(seed);
        let printed = printer::print_source(&prog);
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
        let compiled = match easec::compile(&printed, &mut mcu) {
            Ok(c) => c,
            Err(e) => panic!("seed {seed}: {e}"),
        };
        let mut periph = easeio_repro::periph::Peripherals::new(seed);
        let mut rt = easeio_repro::apps::harness::RuntimeKind::EaseIo.make();
        let r = easeio_repro::kernel::run_app(
            &compiled.app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &easeio_repro::kernel::ExecConfig::default(),
        );
        assert_eq!(
            r.outcome,
            easeio_repro::kernel::Outcome::Completed,
            "seed {seed}"
        );
    }
}
