//! End-to-end determinism of the parallel execution engine.
//!
//! The engine's contract is stated over *reports*, not in-memory structs:
//! the sweep report emitted at `--jobs N` must be byte-identical to the
//! serial one for every N, modulo the `timing` block (host wall-clock is
//! honest measurement and varies run to run). `identity_document` strips
//! timing; everything these tests compare goes through it, exactly like the
//! CI divergence gate.

use crashcheck::{SweepMode, SweepOutcome, SweepPlan};
use easeio_exec::{parallel_sweep, run_grid, GridSpec, SweepTiming};
use easeio_repro::apps::dma_app;
use easeio_repro::apps::harness::RuntimeKind;
use easeio_repro::easeio_trace::{
    build_sweep_report, identity_document, validate_any_report, FaultSpecDoc, ReportKind,
    SweepInputs, SweepPruneDoc, SweepTimingDoc, SweepViolation, SweepWasteDoc, CATEGORY_NAMES,
};
use easeio_repro::kernel::{App, FaultSpec};
use easeio_repro::mcu_emu::Mcu;

fn small_dma(m: &mut Mcu) -> App {
    dma_app::build(
        m,
        &dma_app::DmaAppCfg {
            bytes: 256,
            chunks: 3,
            iterations: 1,
            pre_compute: 200,
            post_compute: 200,
        },
    )
}

fn report_for(out: &SweepOutcome, plan: &SweepPlan, timing: &SweepTiming) -> String {
    let inputs = SweepInputs {
        runtime: out.runtime.into(),
        app: out.app.into(),
        seed: plan.seed,
        off_us: plan.off_us,
        mode: plan.mode.name().into(),
        oracle_boundaries: out.oracle_boundaries,
        strict_memory: plan.strict_memory,
        injections: out.injections,
        violations: out
            .violations
            .iter()
            .map(|v| SweepViolation {
                boundary: v.boundary,
                kind: v.kind.name().into(),
                detail: v.detail.clone(),
            })
            .collect(),
        fault_spec: plan.fault.plan.map(|p| FaultSpecDoc {
            seed: p.seed,
            rate_permille: p.rate_permille as u64,
            max_retries: plan.fault.retry.max_retries as u64,
            backoff_base_us: plan.fault.retry.backoff_base_us,
        }),
        // The per-boundary energy-attribution fold is part of report
        // identity: waste means and cause totals must merge canonically.
        waste: Some(SweepWasteDoc::from_series(
            &out.boundary_waste_nj,
            CATEGORY_NAMES
                .iter()
                .zip(out.cause_energy_nj)
                .map(|(name, nj)| ((*name).to_string(), nj))
                .collect(),
        )),
        timing: Some(SweepTimingDoc {
            jobs: timing.jobs as u64,
            wall_us: timing.wall_us,
            injections_per_sec_milli: timing.injections_per_sec_milli,
            oracle_us: timing.oracle_us,
            classify_us: timing.classify_us,
            inject_us: timing.inject_us,
            merge_us: timing.merge_us,
            injections_per_worker: timing.injections_per_worker.clone(),
            busy_us_per_worker: timing.busy_us_per_worker.clone(),
            prune: Some(SweepPruneDoc {
                enabled: timing.prune.enabled,
                injections_executed: timing.prune.injections_executed,
                injections_pruned: timing.prune.injections_pruned,
                classes: timing.prune.classes,
                time_observed: timing.prune.time_observed,
            }),
        }),
    };
    let doc = build_sweep_report(&inputs);
    assert_eq!(validate_any_report(&doc), Ok(ReportKind::Sweep));
    let text = identity_document(&doc).to_pretty();
    assert!(
        text.contains("\"waste\""),
        "sweep report must carry the waste fold"
    );
    text
}

/// The tentpole guarantee: `--jobs 1`, `--jobs 4`, and `--jobs 8` emit
/// byte-identical sweep reports once timing is stripped — on a kernel that
/// produces violations (Naive), where merge *order* is load-bearing.
#[test]
fn sweep_reports_are_byte_identical_across_jobs() {
    let plan = SweepPlan {
        strict_memory: true,
        ..SweepPlan::with_env_seed(5)
    };
    let (serial_out, serial_timing) = parallel_sweep(&small_dma, RuntimeKind::Naive, &plan, 1);
    assert!(
        !serial_out.violations.is_empty(),
        "Naive must violate for the order check to bite"
    );
    let serial_doc = report_for(&serial_out, &plan, &serial_timing);
    for jobs in [4, 8] {
        let (out, timing) = parallel_sweep(&small_dma, RuntimeKind::Naive, &plan, jobs);
        let doc = report_for(&out, &plan, &timing);
        assert_eq!(
            doc, serial_doc,
            "sweep report diverged between --jobs 1 and --jobs {jobs}"
        );
    }
}

/// Same guarantee on a clean sweep (EaseIO), where the sensitive part is
/// the injection bookkeeping rather than violation order.
#[test]
fn clean_sweep_reports_are_byte_identical_across_jobs() {
    let plan = SweepPlan {
        mode: SweepMode::Sample(40),
        strict_memory: true,
        ..SweepPlan::with_env_seed(9)
    };
    let (serial_out, serial_timing) = parallel_sweep(&small_dma, RuntimeKind::EaseIo, &plan, 1);
    assert!(serial_out.is_clean());
    let serial_doc = report_for(&serial_out, &plan, &serial_timing);
    let (out, timing) = parallel_sweep(&small_dma, RuntimeKind::EaseIo, &plan, 8);
    assert_eq!(report_for(&out, &plan, &timing), serial_doc);
}

/// Same guarantee with a fault plan installed: boundary × fault-schedule
/// injection stays deterministic at any width, and the report's fault_spec
/// block is part of the compared identity.
#[test]
fn faulted_sweep_reports_are_byte_identical_across_jobs() {
    let plan = SweepPlan {
        mode: SweepMode::Sample(40),
        strict_memory: true,
        fault: FaultSpec::with_rate(11, 80),
        ..SweepPlan::with_env_seed(5)
    };
    let (serial_out, serial_timing) = parallel_sweep(&small_dma, RuntimeKind::Naive, &plan, 1);
    let serial_doc = report_for(&serial_out, &plan, &serial_timing);
    assert!(
        serial_doc.contains("fault_spec"),
        "faulted sweep report must carry its fault spec"
    );
    let (out, timing) = parallel_sweep(&small_dma, RuntimeKind::Naive, &plan, 8);
    assert_eq!(report_for(&out, &plan, &timing), serial_doc);
}

/// The experiment grid merges to the same table at any width.
#[test]
fn grid_cells_are_identical_across_jobs() {
    let spec = GridSpec {
        kernels: vec![RuntimeKind::Alpaca, RuntimeKind::EaseIo],
        distances_inch: vec![55, 61],
        on_times_ms: vec![12],
        runs: 2,
        seed: 77,
        fault: FaultSpec::none(),
    };
    let builder = |_: RuntimeKind, m: &mut Mcu| small_dma(m);
    let (serial, _) = run_grid(&builder, &spec, 1);
    for jobs in [4, 8] {
        let (parallel, _) = run_grid(&builder, &spec, jobs);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!((a.kernel, &a.supply), (b.kernel, &b.supply));
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.correct, b.correct);
            assert_eq!(a.mean_wall_us, b.mean_wall_us);
            assert_eq!(a.mean_on_us, b.mean_on_us);
            assert_eq!(a.mean_failures, b.mean_failures);
        }
    }
}
