//! Property-based pins for the bounded-memory streaming primitives
//! (ISSUE 10): the [`Sketch`] quantile error bound its module docs
//! promise, merge/serial equivalence, and progress-snapshot totality.
//!
//! * **Error bound** — for any population and any integer percent `q`,
//!   `quantile(q) ≤ exact ≤ quantile(q) + quantile(q)/32`, where `exact`
//!   is [`agg::percentile`] over the sorted population at the same
//!   floor-index rank. This is the bound the fleet report's straggler
//!   percentiles inherit when the streamed path replaces the
//!   whole-population vector.
//! * **Exact extremes** — `quantile(0)` is the exact minimum and
//!   `quantile(100)` the exact maximum; both are tracked outside the
//!   buckets, so the report's min/max columns carry no sketch error.
//! * **Merge ≡ serial** — partitioning the samples arbitrarily across
//!   per-worker sketches and merging reproduces the serially-recorded
//!   sketch exactly (count, sum, extremes, and every quantile), the
//!   property that makes the streamed fleet report byte-identical at any
//!   `--jobs` width.

use easeio_repro::easeio_trace::agg::percentile;
use easeio_repro::easeio_trace::{ProgressSnapshot, Sketch};
use proptest::prelude::*;

/// Samples spanning the sketch's exact range, every octave up to 2^61,
/// and the all-equal / tiny-population degenerate shapes.
fn populations() -> impl Strategy<Value = Vec<u64>> {
    let wide = (0u64..1024, 0u32..52).prop_map(|(base, shift)| base << shift);
    prop_oneof![
        proptest::collection::vec(wide, 1..200),
        // All-equal: every quantile must collapse to the one value.
        (1usize..50, 0u64..1 << 40).prop_map(|(n, v)| vec![v; n]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The documented 1/32 relative error bound, at every integer
    /// percent, against the exact floor-index percentile.
    #[test]
    fn sketch_quantiles_are_within_the_pinned_error_bound(values in populations()) {
        let mut sketch = Sketch::new();
        for &v in &values {
            sketch.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in 0..=100u64 {
            let est = sketch.quantile(q);
            let exact = percentile(&sorted, q);
            prop_assert!(
                est <= exact,
                "q={q}: estimate {est} overshoots exact {exact}"
            );
            prop_assert!(
                exact <= est + est / 32,
                "q={q}: exact {exact} outside bound {est} + {}",
                est / 32
            );
        }
    }

    /// The extremes are tracked exactly, and the estimates never leave
    /// the [min, max] envelope or decrease in `q`.
    #[test]
    fn sketch_extremes_are_exact_and_quantiles_monotone(values in populations()) {
        let mut sketch = Sketch::new();
        for &v in &values {
            sketch.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sketch.min(), sorted[0]);
        prop_assert_eq!(sketch.max(), *sorted.last().unwrap());
        prop_assert_eq!(sketch.quantile(0), sorted[0]);
        prop_assert_eq!(sketch.quantile(100), *sorted.last().unwrap());
        prop_assert_eq!(sketch.count(), values.len() as u64);
        let mut prev = 0u64;
        for q in 0..=100u64 {
            let est = sketch.quantile(q);
            prop_assert!(est >= prev, "quantile({q}) = {est} < quantile({}) = {prev}", q - 1);
            prop_assert!(est <= sketch.max());
            prev = est;
        }
    }

    /// Merging per-worker sketches (any partition, any order) equals
    /// recording the whole population serially.
    #[test]
    fn merged_worker_sketches_equal_the_serial_sketch(
        values in populations(),
        workers in 1usize..9,
    ) {
        let mut serial = Sketch::new();
        for &v in &values {
            serial.record(v);
        }
        // Deal samples round-robin across `workers` sketches, then merge
        // in reverse order to rule out order dependence.
        let mut shards = vec![Sketch::new(); workers];
        for (i, &v) in values.iter().enumerate() {
            shards[i % workers].record(v);
        }
        let mut merged = Sketch::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }
        prop_assert_eq!(merged.count(), serial.count());
        prop_assert_eq!(merged.sum(), serial.sum());
        prop_assert_eq!(merged.min(), serial.min());
        prop_assert_eq!(merged.max(), serial.max());
        for q in 0..=100u64 {
            prop_assert_eq!(merged.quantile(q), serial.quantile(q), "q = {}", q);
        }
    }

    /// Progress snapshots render totally: any counter combination yields
    /// a well-formed stderr line and a parseable JSONL record, and the
    /// ETA extrapolation never divides by zero or overshoots the phase.
    #[test]
    fn progress_snapshots_render_for_any_counters(
        done in 0u64..1 << 20,
        extra in 0u64..1 << 20,
        wave in 0u64..100,
        waves in 0u64..100,
        elapsed_ms in 0u64..1 << 24,
    ) {
        let s = ProgressSnapshot {
            phase: "devices".into(),
            done,
            total: done + extra,
            wave,
            waves,
            elapsed_ms,
        };
        let line = s.stderr_line();
        prop_assert!(line.starts_with("progress: devices "), "{}", line);
        let json = s.to_json_line();
        let parsed = easeio_repro::easeio_trace::parse_json(&json)
            .map_err(|e| TestCaseError::fail(format!("bad JSON {json}: {e}")))?;
        prop_assert_eq!(
            parsed.get("done").and_then(easeio_repro::easeio_trace::Value::as_u64),
            Some(done)
        );
        if let Some(eta) = s.eta_ms() {
            prop_assert!(extra > 0 && s.rate_per_sec() > 0);
            // ETA is remaining work over observed throughput, exactly.
            prop_assert_eq!(eta, extra * 1000 / s.rate_per_sec());
        }
    }
}
