//! Cross-crate correctness matrix: every application under every runtime.
//!
//! The paper's memory-consistency claims, end to end: EaseIO must produce
//! the continuous-power result under *any* failure schedule, for every
//! workload; the baselines must be correct exactly where the paper says
//! they are (no DMA WAR, or double-buffered layouts).

use easeio_repro::apps::harness::{run_once, MakeRuntime, RuntimeKind};
use easeio_repro::apps::{dma_app, fir, lea_app, temp_app, unsafe_branch, weather};
use easeio_repro::kernel::{App, Outcome, Verdict};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};

type Builder = Box<dyn Fn(&mut Mcu) -> App>;

fn all_apps() -> Vec<(&'static str, Builder)> {
    vec![
        (
            "dma",
            Box::new(|m: &mut Mcu| dma_app::build(m, &dma_app::DmaAppCfg::default())) as Builder,
        ),
        (
            "temp",
            Box::new(|m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default())),
        ),
        (
            "lea",
            Box::new(|m: &mut Mcu| lea_app::build(m, &lea_app::LeaAppCfg::default())),
        ),
        (
            "fir",
            Box::new(|m: &mut Mcu| fir::build(m, &fir::FirCfg::default())),
        ),
        (
            "weather",
            Box::new(|m: &mut Mcu| weather::build(m, &weather::WeatherCfg::default())),
        ),
        (
            "weather/single",
            Box::new(|m: &mut Mcu| {
                weather::build(
                    m,
                    &weather::WeatherCfg {
                        single_buffer: true,
                        ..weather::WeatherCfg::default()
                    },
                )
            }),
        ),
        (
            "branch",
            Box::new(|m: &mut Mcu| unsafe_branch::build(m, &unsafe_branch::BranchCfg::default()).0),
        ),
    ]
}

#[test]
fn every_app_correct_on_continuous_power_under_every_runtime() {
    for (name, builder) in all_apps() {
        for kind in [
            RuntimeKind::Naive,
            RuntimeKind::Alpaca,
            RuntimeKind::Ink,
            RuntimeKind::EaseIo,
        ] {
            let r = run_once(builder.as_ref(), kind, Supply::continuous(), 5);
            assert_eq!(r.outcome, Outcome::Completed, "{name} / {}", kind.name());
            assert_eq!(
                r.verdict,
                Some(Verdict::Correct),
                "{name} / {} on continuous power",
                kind.name()
            );
            assert_eq!(r.stats.power_failures, 0);
        }
    }
}

#[test]
fn easeio_correct_on_every_app_under_failures() {
    for (name, builder) in all_apps() {
        for seed in 0..25u64 {
            let supply = Supply::timer(TimerResetConfig::default(), seed);
            let r = run_once(builder.as_ref(), RuntimeKind::EaseIo, supply, seed);
            assert_eq!(r.outcome, Outcome::Completed, "{name} seed {seed}");
            assert_eq!(
                r.verdict,
                Some(Verdict::Correct),
                "{name} seed {seed}: EaseIO must match continuous execution"
            );
        }
    }
}

#[test]
fn baselines_correct_on_war_free_apps_under_failures() {
    // DMA (no overlap), temp, lea, and double-buffered weather have no DMA
    // WAR hazard: Alpaca and InK must be correct there (paper Table 1:
    // their CPU-level privatization works).
    for (name, builder) in all_apps() {
        if name == "fir" || name == "weather/single" || name == "branch" {
            continue; // the three workloads with known baseline bugs
        }
        for kind in [RuntimeKind::Alpaca, RuntimeKind::Ink] {
            for seed in 0..15u64 {
                let supply = Supply::timer(TimerResetConfig::default(), seed);
                let r = run_once(builder.as_ref(), kind, supply, seed);
                assert_eq!(r.outcome, Outcome::Completed, "{name} seed {seed}");
                assert_eq!(
                    r.verdict,
                    Some(Verdict::Correct),
                    "{name} / {} seed {seed}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn baseline_corruption_appears_exactly_on_the_war_workloads() {
    let mut fir_bad = 0;
    let mut weather_single_bad = 0;
    for seed in 0..60u64 {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let b: Builder = Box::new(|m: &mut Mcu| fir::build(m, &fir::FirCfg::default()));
        if matches!(
            run_once(b.as_ref(), RuntimeKind::Alpaca, supply, seed).verdict,
            Some(Verdict::Incorrect(_))
        ) {
            fir_bad += 1;
        }
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let b: Builder = Box::new(|m: &mut Mcu| {
            weather::build(
                m,
                &weather::WeatherCfg {
                    single_buffer: true,
                    ..weather::WeatherCfg::default()
                },
            )
        });
        if matches!(
            run_once(b.as_ref(), RuntimeKind::Alpaca, supply, seed).verdict,
            Some(Verdict::Incorrect(_))
        ) {
            weather_single_bad += 1;
        }
    }
    assert!(fir_bad > 0, "FIR corruption must reproduce (paper Fig 12)");
    assert!(
        weather_single_bad > 0,
        "single-buffer DNN corruption must reproduce (paper Table 5)"
    );
}

#[test]
fn radio_never_receives_duplicate_packets_under_easeio() {
    // The Single send: even across failures the same payload is never
    // transmitted twice (paper Fig 2a).
    for seed in 0..30u64 {
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
        let mut periph = easeio_repro::periph::Peripherals::new(seed);
        let app = weather::build(&mut mcu, &weather::WeatherCfg::default());
        let mut rt = RuntimeKind::EaseIo.make();
        let r = easeio_repro::kernel::run_app(
            &app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &easeio_repro::kernel::ExecConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(
            periph.radio.duplicate_count(),
            0,
            "seed {seed}: duplicate transmission"
        );
    }
}

#[test]
fn naive_runtime_duplicates_packets_under_failures() {
    // Contrast: without I/O semantics, a failure after the send re-sends.
    let mut dupes = 0;
    for seed in 0..60u64 {
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
        let mut periph = easeio_repro::periph::Peripherals::new(seed);
        let app = weather::build(&mut mcu, &weather::WeatherCfg::default());
        let mut rt = RuntimeKind::Naive.make();
        let r = easeio_repro::kernel::run_app(
            &app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &easeio_repro::kernel::ExecConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        dupes += periph.radio.duplicate_count();
    }
    assert!(dupes > 0, "blind re-execution never duplicated a packet");
}
