//! End-to-end tests of the easec front-end: programs written in the paper's
//! own surface syntax get the paper's guarantees when run under EaseIO.

use easeio_repro::apps::harness::{MakeRuntime, RuntimeKind};
use easeio_repro::easec;
use easeio_repro::kernel::{run_app, ExecConfig, Outcome};
use easeio_repro::mcu_emu::{Mcu, Supply, TimerResetConfig};
use easeio_repro::periph::Peripherals;

fn run_compiled(
    src: &str,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
) -> (Mcu, Peripherals, easec::Compiled, kernel::RunResult) {
    let mut mcu = Mcu::new(supply);
    let compiled = easec::compile(src, &mut mcu).unwrap_or_else(|e| panic!("{e}"));
    let mut periph = Peripherals::new(env_seed);
    let mut rt = kind.make();
    let r = run_app(
        &compiled.app,
        rt.as_mut(),
        &mut mcu,
        &mut periph,
        &ExecConfig::default(),
    );
    (mcu, periph, compiled, r)
}

/// The paper's Figure 2c program, written in the paper's syntax.
const FIG2C: &str = r#"
    __nv int stdy;
    __nv int alarm;
    task sense {
        let temp = _call_IO(Temp, Single);
        compute(500);
        if (temp < 1000) { stdy = 1; } else { alarm = 1; }
        compute(2500);
        done;
    }
"#;

#[test]
fn fig2c_compiled_program_is_safe_under_easeio() {
    for seed in 0..60u64 {
        let supply = Supply::timer(
            TimerResetConfig {
                on_min_us: 2_000,
                on_max_us: 7_000,
                off_min_us: 200_000,
                off_max_us: 2_000_000,
            },
            seed,
        );
        let (mcu, _, c, r) = run_compiled(FIG2C, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed);
        let both = c.vars["stdy"].get(&mcu.mem) == 1 && c.vars["alarm"].get(&mcu.mem) == 1;
        assert!(!both, "seed {seed}: both actuation flags set");
    }
}

/// The paper's Figure 4 program: inferred dependencies must make the
/// `Single` send repeat whenever a `Timely` sense refreshed.
const FIG4: &str = r#"
    task T1 {
        _IO_block_begin(Single);
        _IO_block_begin(Timely, 10);
        let p = _call_IO(Pres, Single);
        _IO_block_end;
        _IO_block_end;
        let temp = _call_IO(Temp, Timely, 50);
        let humd = _call_IO(Humd, Timely, 20);
        _call_IO(Send, Single, temp, humd);
        compute(2500);
        done;
    }
"#;

#[test]
fn fig4_compiled_dependencies_prevent_stale_sends() {
    // No manual dep declarations anywhere in the source: the front-end
    // infers that Send depends on temp and humd. Across long outages the
    // senses refresh; every refresh before a completed send must re-send,
    // so no two consecutive packets may carry identical payloads AND the
    // last packet must reflect the final sensing.
    for seed in 0..60u64 {
        let supply = Supply::timer(
            TimerResetConfig {
                on_min_us: 4_000,
                on_max_us: 9_000,
                off_min_us: 60_000,
                off_max_us: 120_000,
            },
            seed,
        );
        let (_, periph, _, r) = run_compiled(FIG4, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert!(periph.radio.count() >= 1, "seed {seed}");
        assert_eq!(
            periph.radio.duplicate_count(),
            0,
            "seed {seed}: a refreshed sense must trigger a fresh send, and a \
             skipped sense must not re-send"
        );
    }
}

#[test]
fn fig4_transformation_matches_the_paper_figure() {
    let out = easec::transform_source(FIG4).unwrap();
    // Fig 5's structure: time-window checks, private copies, depend flags.
    assert!(out.contains("(GetTime() - ts_Temp_T1_0) > 50"));
    assert!(out.contains("(GetTime() - ts_Humd_T1_0) > 20"));
    assert!(out.contains("depend_flg_Temp_T1_0"));
    assert!(out.contains("depend_flg_Humd_T1_0"));
    assert!(out.contains("flag_block_T1_0"));
    assert!(out.contains("flag_block_T1_1"));
}

/// A DSL version of the FIR-like in-place DMA pattern (Figure 2b / 6).
const WAR_DMA: &str = r#"
    __nv int sig[16];
    __nv int seen;
    task init {
        repeat (i, 16) { sig[i] = i * 3; }
        next work;
    }
    task work {
        let z = sig[0];
        _DMA_copy(sig[0], sig[4], 4);
        compute(2000);
        seen = z;
        compute(2000);
        done;
    }
"#;

#[test]
fn war_dma_pattern_is_consistent_under_easeio() {
    for seed in 0..80u64 {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, _, c, r) = run_compiled(WAR_DMA, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        let sig = &c.arrays["sig"];
        // Continuous semantics: sig[4..8] = sig[0..4] = [0,3,6,9];
        // z read before the DMA = 0.
        for (i, expected) in [(4u32, 0i16), (5, 3), (6, 6), (7, 9)] {
            assert_eq!(sig.get(&mcu.mem, i), expected, "seed {seed} sig[{i}]");
        }
        assert_eq!(
            c.vars["seen"].get(&mcu.mem),
            0,
            "seed {seed}: z must be the pre-DMA value"
        );
    }
}

#[test]
fn compiled_sensor_loop_uses_lock_arrays() {
    let src = r#"
        __nv int samples[8];
        task collect {
            repeat (i, 8) {
                samples[i] = _call_IO(Light, Single);
                compute(150);
            }
            done;
        }
    "#;
    let mut total_skipped = 0;
    let mut total_failures = 0;
    for seed in 0..20u64 {
        let supply = Supply::timer(
            TimerResetConfig {
                on_min_us: 1_500,
                on_max_us: 4_000,
                off_min_us: 300,
                off_max_us: 800,
            },
            seed,
        );
        let (mcu, _, c, r) = run_compiled(src, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        // Despite failures mid-loop, each sample was sensed exactly once.
        assert_eq!(r.stats.io_executed, 8, "seed {seed}");
        total_skipped += r.stats.io_skipped;
        total_failures += r.stats.power_failures;
        for i in 0..8 {
            let v = c.arrays["samples"].get(&mcu.mem, i);
            assert!((0..=4095).contains(&v), "seed {seed} sample {i} = {v}");
        }
    }
    assert!(total_failures > 0, "the schedule must produce failures");
    assert!(total_skipped > 0, "mid-loop failures must restore samples");
}

#[test]
fn compiled_apps_run_identically_on_baselines() {
    // The front-end targets the runtime interface, not EaseIO specifically:
    // the same compiled app runs under Alpaca/InK (which simply ignore the
    // annotations).
    for kind in [RuntimeKind::Alpaca, RuntimeKind::Ink, RuntimeKind::Naive] {
        let (mcu, _, c, r) = run_compiled(WAR_DMA, kind, Supply::continuous(), 1);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(c.arrays["sig"].get(&mcu.mem, 4), 0, "{}", kind.name());
    }
}

#[test]
fn compile_errors_are_reported_with_lines() {
    let mut mcu = Mcu::new(Supply::continuous());
    let err = easec::compile("task t {\n  x = 1;\n  done;\n}", &mut mcu).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.msg.contains("undeclared"));
}

#[test]
fn artifact_temp_demo_runs_from_its_eio_source() {
    // The artifact appendix's benchmark, shipped as a program file.
    let src = include_str!("../examples/programs/artifact_temp.eio");
    let supply = Supply::timer(
        TimerResetConfig {
            on_min_us: 5_000,
            on_max_us: 15_000,
            off_min_us: 500,
            off_max_us: 2_000,
        },
        13,
    );
    let (mcu, _, c, r) = run_compiled(src, RuntimeKind::EaseIo, supply, 13);
    assert_eq!(r.outcome, Outcome::Completed);
    // At least one sense per sample; expired samples re-sense.
    assert!(r.stats.io_executed >= 30);
    for i in 0..30 {
        let v = c.arrays["samples"].get(&mcu.mem, i);
        assert!((100..=2500).contains(&v), "sample {i} = {v}");
    }
    assert_ne!(c.vars["checksum"].get(&mcu.mem), 0);
}

/// Software reference of the `.eio` FIR program (same fixed-point math as
/// the simulated LEA).
fn fir_eio_reference() -> Vec<i16> {
    let mut sig: Vec<i16> = (0..71).map(|i| (i * 3 - 90) as i16).collect();
    let coef: Vec<i16> = (0..8).map(|k| (k * 5 + 10) as i16).collect();
    for c in 0..4usize {
        let base = c * 16;
        let input: Vec<i16> = sig[base..base + 23].to_vec();
        for i in 0..16 {
            let mut acc: i32 = 0;
            for (k, h) in coef.iter().enumerate() {
                acc += *h as i32 * input[i + k] as i32;
            }
            sig[base + i] =
                (acc >> easeio_repro::periph::lea::ACC_SHIFT).clamp(-32768, 32767) as i16;
        }
    }
    sig
}

#[test]
fn fir_eio_program_matches_reference_under_easeio() {
    let src = include_str!("../examples/programs/fir.eio");
    let expected = fir_eio_reference();
    for seed in 0..50u64 {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, _, c, r) = run_compiled(src, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert_eq!(
            c.arrays["sig"].to_vec(&mcu.mem),
            expected,
            "seed {seed}: compiled FIR diverged from the reference"
        );
    }
}

#[test]
fn fir_eio_program_corrupts_under_alpaca() {
    let src = include_str!("../examples/programs/fir.eio");
    let expected = fir_eio_reference();
    let mut bad = 0;
    for seed in 0..80u64 {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, _, c, r) = run_compiled(src, RuntimeKind::Alpaca, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        if c.arrays["sig"].to_vec(&mcu.mem) != expected {
            bad += 1;
        }
    }
    assert!(
        bad > 0,
        "Alpaca never tripped over the in-place DMA pattern"
    );
}

#[test]
fn weather_dnn_eio_matches_the_reference_network() {
    use easeio_repro::apps::dnn;
    let src = include_str!("../examples/programs/weather_dnn.eio");
    let (fc_ref, class_ref) = dnn::reference_inference(&dnn::scene(7));
    for seed in [0u64, 7, 23, 91, 144] {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, periph, c, r) = run_compiled(src, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert_eq!(
            c.vars["cls"].get(&mcu.mem),
            class_ref as i32,
            "seed {seed}: inferred class"
        );
        let got: Vec<i16> = (0..4).map(|i| c.arrays["bufb"].get(&mcu.mem, i)).collect();
        assert_eq!(got, fc_ref, "seed {seed}: fully-connected activations");
        // And the class went out on the radio exactly once per value.
        let last = periph.radio.packets().last().expect("sent");
        assert_eq!(last.payload[2], class_ref as i32, "seed {seed}");
        assert_eq!(periph.radio.duplicate_count(), 0, "seed {seed}");
    }
}

#[test]
fn weather_dnn_eio_is_double_buffered_and_safe_on_baselines() {
    use easeio_repro::apps::dnn;
    let src = include_str!("../examples/programs/weather_dnn.eio");
    let (_, class_ref) = dnn::reference_inference(&dnn::scene(7));
    for seed in [3u64, 17] {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, _, c, r) = run_compiled(src, RuntimeKind::Alpaca, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert_eq!(
            c.vars["cls"].get(&mcu.mem),
            class_ref as i32,
            "seed {seed}: double buffering keeps even Alpaca correct (Table 5)"
        );
    }
}

#[test]
fn weather_dnn_single_buffer_eio_reproduces_table5() {
    use easeio_repro::apps::dnn;
    let src = include_str!("../examples/programs/weather_dnn_single.eio");
    let (fc_ref, class_ref) = dnn::reference_inference(&dnn::scene(7));
    // EaseIO: always correct.
    for seed in 0..30u64 {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, _, c, r) = run_compiled(src, RuntimeKind::EaseIo, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert_eq!(c.vars["cls"].get(&mcu.mem), class_ref as i32, "seed {seed}");
        let got: Vec<i16> = (0..4).map(|i| c.arrays["img"].get(&mcu.mem, i)).collect();
        assert_eq!(got, fc_ref, "seed {seed}: shared-buffer activations");
    }
    // Alpaca: corrupts somewhere across the sweep (paper Table 5: ✗).
    let mut bad = 0;
    for seed in 0..60u64 {
        let supply = Supply::timer(TimerResetConfig::default(), seed);
        let (mcu, _, c, r) = run_compiled(src, RuntimeKind::Alpaca, supply, seed);
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        if c.vars["cls"].get(&mcu.mem) != class_ref as i32 {
            bad += 1;
            continue;
        }
        let got: Vec<i16> = (0..4).map(|i| c.arrays["img"].get(&mcu.mem, i)).collect();
        if got != fc_ref {
            bad += 1;
        }
    }
    assert!(bad > 0, "single-buffer Alpaca never corrupted the pipeline");
}
