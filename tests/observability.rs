//! Golden-file and schema tests for the observability stack.
//!
//! The Chrome `trace_event` export and the run report are consumed by
//! external tooling (trace viewers, CI schema checks, plotting scripts), so
//! their byte-level layout is pinned here against golden files built from a
//! small synthetic event stream that exercises every record shape: task
//! attempts and re-executions, I/O with all outcomes, DMA, commits, a power
//! failure with its off-period span, and runtime instants.
//!
//! Regenerate the goldens after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test --test observability`
//!
//! A second group runs the real simulator end-to-end and checks that a fresh
//! report always satisfies its own schema.

use easeio_repro::apps::harness::{golden, run_traced, RuntimeKind};
use easeio_repro::apps::temp_app;
use easeio_repro::easeio_trace::fleet::{
    build_fleet_report, FleetDeliveryDoc, FleetEnergyDoc, FleetInputs, FleetMediumDoc,
    FleetOutcomesDoc, FleetStragglerDoc,
};
use easeio_repro::easeio_trace::{
    build_metrics_report, build_profile, build_report, build_sweep_report, chrome_trace,
    compare_metrics, jsonl, parse_json, validate_any_report, validate_metrics_report,
    validate_report, Event, EventKind, FaultSpecDoc, InstantKind, MetricsEntry, MetricsInputs,
    ReportInputs, ReportKind, SiteWasteRow, SpanKind, Status, SweepInputs, SweepViolation,
    SweepWasteDoc, TaskWasteRow, Value, CATEGORY_COUNT, CATEGORY_NAMES, NO_SITE, NO_TASK,
    WASTE_CATEGORY_NAMES,
};
use easeio_repro::kernel::Outcome;
use easeio_repro::mcu_emu::{EnergyCause, Mcu, Supply, TimerResetConfig, KERNEL_TASK};
use std::path::PathBuf;

fn ev(ts: u64, nj: u64, task: u16, site: u16, name: &'static str, kind: EventKind) -> Event {
    Event {
        ts_us: ts,
        energy_nj: nj,
        task,
        site,
        name,
        kind,
    }
}

/// A fixed stream covering every exported record shape: one committed
/// attempt with an executed I/O and a skipped DMA, a power failure mid-I/O,
/// and a committed re-execution whose repeated I/O is redundant.
fn synthetic_events() -> Vec<Event> {
    use EventKind::{SpanBegin, SpanEnd};
    use InstantKind::*;
    use SpanKind::*;
    vec![
        Event::instant(0, 0, Boot, "boot"),
        ev(10, 5, 0, 0, "sense", SpanBegin(TaskAttempt)),
        ev(12, 8, 0, 0, "temp", SpanBegin(IoCall)),
        Event::task_instant(13, 9, 0, FlagCheck, "clear"),
        ev(20, 40, 0, 0, "temp", SpanEnd(IoCall, Status::Executed)),
        ev(22, 44, 0, 1, "dma", SpanBegin(DmaCopy)),
        ev(25, 50, 0, 1, "dma", SpanEnd(DmaCopy, Status::Skipped)),
        ev(26, 52, 0, NO_SITE, "sense", SpanBegin(Commit)),
        ev(
            30,
            60,
            0,
            NO_SITE,
            "sense",
            SpanEnd(Commit, Status::Committed),
        ),
        ev(
            30,
            60,
            0,
            NO_SITE,
            "sense",
            SpanEnd(TaskAttempt, Status::Committed),
        ),
        ev(32, 62, 1, 0, "send", SpanBegin(TaskAttempt)),
        ev(34, 64, 1, 0, "radio", SpanBegin(IoCall)),
        Event::instant(40, 70, PowerFailure, "timer"),
        ev(40, 70, NO_TASK, NO_SITE, "off", SpanBegin(PowerOff)),
        ev(
            90,
            70,
            NO_TASK,
            NO_SITE,
            "off",
            SpanEnd(PowerOff, Status::None),
        ),
        Event::instant(90, 70, ChargeCycle, "timer"),
        ev(90, 70, 1, 0, "radio", SpanEnd(IoCall, Status::Failed)),
        ev(
            90,
            70,
            1,
            NO_SITE,
            "send",
            SpanEnd(TaskAttempt, Status::Failed),
        ),
        Event::instant(90, 70, Boot, "boot"),
        ev(92, 72, 1, 1, "send", SpanBegin(TaskAttempt)),
        ev(94, 74, 1, 0, "radio", SpanBegin(IoCall)),
        ev(102, 110, 1, 0, "radio", SpanEnd(IoCall, Status::Redundant)),
        ev(104, 112, 1, NO_SITE, "send", SpanBegin(Commit)),
        ev(
            108,
            120,
            1,
            NO_SITE,
            "send",
            SpanEnd(Commit, Status::Committed),
        ),
        ev(
            108,
            120,
            1,
            NO_SITE,
            "send",
            SpanEnd(TaskAttempt, Status::Committed),
        ),
    ]
}

fn sample_inputs() -> ReportInputs {
    ReportInputs {
        runtime: "EaseIO".into(),
        app: "synthetic".into(),
        supply: Value::Obj(vec![("kind".into(), Value::str("timer"))]),
        seed: 42,
        outcome: "completed".into(),
        correct: Some(true),
        wall_us: 108,
        on_us: 58,
        app_time_us: 40,
        overhead_time_us: 18,
        app_energy_nj: 90,
        overhead_energy_nj: 30,
        golden_app_time_us: 32,
        golden_app_energy_nj: 72,
        power_failures: 1,
        task_attempts: 3,
        task_commits: 2,
        io_executed: 2,
        io_skipped: 0,
        io_reexecutions: 1,
        dma_executed: 0,
        dma_skipped: 1,
        dma_reexecutions: 0,
        memory: Some((1480, 128, 512)),
        events_recorded: 25,
        events_dropped: 0,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test observability` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let mut doc = chrome_trace(&synthetic_events(), "synthetic on EaseIO").to_pretty();
    doc.push('\n');
    assert_matches_golden("chrome_trace.json", &doc);
    // And it stays parseable JSON with the two required top-level keys.
    let parsed = parse_json(&doc).unwrap();
    assert!(parsed.get("traceEvents").is_some());
    assert!(parsed.get("displayTimeUnit").is_some());
}

#[test]
fn jsonl_export_matches_golden() {
    let doc = jsonl(&synthetic_events());
    assert_matches_golden("trace.jsonl", &doc);
    for line in doc.lines() {
        parse_json(line).expect("every JSONL line parses on its own");
    }
}

#[test]
fn report_matches_golden_and_validates() {
    let profile = build_profile(&synthetic_events());
    assert_eq!(profile.unbalanced, 0, "the synthetic stream is well-formed");
    let report = build_report(&sample_inputs(), &profile);
    let mut doc = report.to_pretty();
    doc.push('\n');
    assert_matches_golden("report.json", &doc);
    let parsed = parse_json(&doc).unwrap();
    validate_report(&parsed).expect("golden report satisfies the schema");
    assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Run));
}

#[test]
fn archived_v1_report_still_validates() {
    // `report_v1.json` is a frozen schema-v1 document (the pre-envelope flat
    // layout). It must keep reading through the single validator entry point
    // for as long as v1 is a supported legacy format — never regenerate it.
    let text = std::fs::read_to_string(golden_path("report_v1.json")).unwrap();
    let doc = parse_json(&text).unwrap();
    assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));
    assert_eq!(validate_any_report(&doc), Ok(ReportKind::Run));
    // The v2-only validator must reject it: readers that need the new
    // envelope cannot silently accept the old shape.
    assert!(validate_report(&doc).is_err());
}

/// A fixed two-entry metrics document covering every record shape: a wasteful
/// baseline with per-task rows for an app task and the kernel pseudo-task,
/// redundant I/O and DMA site rows, and a clean EaseIO entry with DMA
/// privatization cost but no redundant sites. Every ledger invariant
/// (category sums, task coverage) holds by construction.
fn sample_metrics_inputs() -> MetricsInputs {
    MetricsInputs {
        seed: 42,
        entries: vec![
            MetricsEntry {
                runtime: "Naive".into(),
                app: "dma".into(),
                outcome: "completed".into(),
                correct: true,
                reboots: 3,
                total_time_us: 90,
                total_energy_nj: 900,
                cause_time_us: [50, 20, 12, 6, 0, 0, 2, 0],
                cause_energy_nj: [500, 200, 120, 60, 0, 0, 20, 0],
                tasks: vec![
                    TaskWasteRow {
                        task: 0,
                        energy_nj: [300, 200, 120, 30, 0, 0, 0, 0],
                    },
                    TaskWasteRow {
                        task: KERNEL_TASK,
                        energy_nj: [200, 0, 0, 30, 0, 0, 20, 0],
                    },
                ],
                redundant_sites: vec![
                    SiteWasteRow {
                        site: 0,
                        dma: false,
                        energy_nj: 60,
                    },
                    SiteWasteRow {
                        site: 1,
                        dma: true,
                        energy_nj: 60,
                    },
                ],
            },
            MetricsEntry {
                runtime: "EaseIO".into(),
                app: "dma".into(),
                outcome: "completed".into(),
                correct: true,
                reboots: 3,
                total_time_us: 86,
                total_energy_nj: 860,
                cause_time_us: [70, 4, 0, 8, 0, 3, 1, 0],
                cause_energy_nj: [700, 40, 0, 80, 0, 30, 10, 0],
                tasks: vec![
                    TaskWasteRow {
                        task: 0,
                        energy_nj: [700, 40, 0, 0, 0, 0, 0, 0],
                    },
                    TaskWasteRow {
                        task: KERNEL_TASK,
                        energy_nj: [0, 0, 0, 80, 0, 30, 10, 0],
                    },
                ],
                redundant_sites: vec![],
            },
        ],
        skipped: Vec::new(),
    }
}

#[test]
fn metrics_report_matches_golden_and_validates() {
    let mut doc = build_metrics_report(&sample_metrics_inputs()).to_pretty();
    doc.push('\n');
    assert_matches_golden("metrics_report.json", &doc);
    // Round-trip through text, then through the single dispatch entry point:
    // the document must both satisfy its own schema and be recognized as a
    // metrics report by kind.
    let parsed = parse_json(&doc).unwrap();
    validate_metrics_report(&parsed).expect("golden metrics report satisfies the schema");
    assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Metrics));
}

/// The trace crate sits below mcu-emu and pins its own copy of the category
/// names. This is the one place the two ledgers meet: the pinned names must
/// match `EnergyCause::ALL` index-for-index, and the waste subset must match
/// `EnergyCause::is_waste`, or every document downstream silently mislabels
/// its joules.
#[test]
fn category_names_match_the_emulator_ledger() {
    assert_eq!(CATEGORY_COUNT, EnergyCause::ALL.len());
    for (i, cause) in EnergyCause::ALL.iter().enumerate() {
        assert_eq!(
            CATEGORY_NAMES[i],
            cause.name(),
            "category {i} diverged between trace and mcu-emu"
        );
        assert_eq!(
            WASTE_CATEGORY_NAMES.contains(&cause.name()),
            cause.is_waste(),
            "waste classification of '{}' diverged",
            cause.name()
        );
    }
}

#[test]
fn compare_gate_fails_on_injected_regression() {
    let old = build_metrics_report(&sample_metrics_inputs());
    // Inject a waste regression into the baseline entry: 200 nJ of extra
    // re-executed compute, threaded through every ledger so the tampered
    // document still validates (the gate must catch it, not the schema).
    let mut worse = sample_metrics_inputs();
    worse.entries[0].cause_energy_nj[1] += 200;
    worse.entries[0].total_energy_nj += 200;
    worse.entries[0].tasks[0].energy_nj[1] += 200;
    let new = build_metrics_report(&worse);
    validate_metrics_report(&new).expect("the tampered document is schema-valid");

    let regressions = compare_metrics(&old, &new, 5.0).unwrap();
    assert!(
        regressions
            .iter()
            .any(|r| r.runtime == "Naive" && r.app == "dma" && r.metric == "waste_nj"),
        "waste growth must trip the gate: {regressions:?}"
    );
    assert!(
        regressions.iter().any(|r| r.metric == "total_energy_nj"),
        "total-energy growth must trip the gate"
    );
    // A permissive-enough gate lets the same pair through, and the identity
    // comparison is clean at gate 0.
    assert_eq!(compare_metrics(&old, &new, 1000.0).unwrap(), vec![]);
    assert_eq!(compare_metrics(&old, &old, 0.0).unwrap(), vec![]);
}

/// A small well-formed fleet document: every ledger (delivery, outcomes,
/// cause energy) balances by construction.
fn sample_fleet_inputs() -> FleetInputs {
    FleetInputs {
        runtime: "EaseIO".into(),
        app: "flaky-radio".into(),
        devices: 8,
        seed: 1000,
        supply: "timer".into(),
        medium: FleetMediumDoc {
            seed: 77,
            loss_permille: 100,
            airtime_base_us: 32,
            airtime_us_per_word: 4,
        },
        fault_spec: None,
        outcomes: FleetOutcomesDoc {
            completed: 8,
            non_terminated: 0,
            faulted: 0,
            correct: 8,
            incorrect: 0,
            unverified: 0,
        },
        power_failures: 42,
        delivery: FleetDeliveryDoc {
            transmissions: 64,
            unique_sent: 64,
            air_duplicates: 0,
            delivered: 50,
            delivered_unique: 50,
            gateway_duplicates: 0,
            lost_collision: 8,
            lost_channel: 6,
            delivery_rate_milli: 50 * 1000 / 64,
        },
        energy: FleetEnergyDoc {
            total_time_us: 800,
            total_energy_nj: 140,
            cause_energy_nj: [80, 20, 0, 24, 0, 6, 10, 0],
        },
        stragglers: FleetStragglerDoc {
            p50_wall_us: 9_000,
            p90_wall_us: 12_000,
            p99_wall_us: 15_000,
            max_wall_us: 15_100,
        },
        rollout: None,
        timing: None,
    }
}

/// The single dispatch entry point accepts a well-formed `kind: "fleet"`
/// document and rejects malformed ones — the property the CI fleet smoke
/// job's schema check leans on. Tampering goes through the *text* form, the
/// same way an external document would arrive.
#[test]
fn fleet_report_dispatch_accepts_valid_and_rejects_malformed() {
    let doc = build_fleet_report(&sample_fleet_inputs()).to_pretty();
    let parsed = parse_json(&doc).unwrap();
    assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Fleet));

    // A packet vanishes from the delivery ledger: delivered + lost_collision
    // + lost_channel no longer equals transmissions.
    let tampered = doc.replace("\"delivered\": 50", "\"delivered\": 49");
    assert_ne!(tampered, doc, "tamper must hit");
    let errs = validate_any_report(&parse_json(&tampered).unwrap()).unwrap_err();
    assert!(
        errs.iter()
            .any(|e| e.contains("every packet must be accounted for")),
        "{errs:?}"
    );

    // Cause-energy attribution no longer sums to the total.
    let tampered = doc.replace("\"total_energy_nj\": 140", "\"total_energy_nj\": 141");
    assert_ne!(tampered, doc, "tamper must hit");
    let errs = validate_any_report(&parse_json(&tampered).unwrap()).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("attribution invariant")),
        "{errs:?}"
    );

    // Outcome tally stops partitioning the fleet.
    let tampered = doc.replace("\"completed\": 8", "\"completed\": 7");
    assert_ne!(tampered, doc, "tamper must hit");
    assert!(validate_any_report(&parse_json(&tampered).unwrap()).is_err());

    // A required block goes missing entirely.
    let tampered = doc.replace("\"stragglers\"", "\"strugglers\"");
    assert_ne!(tampered, doc, "tamper must hit");
    let errs = validate_any_report(&parse_json(&tampered).unwrap()).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("stragglers")), "{errs:?}");
}

/// Schema-v2 sweep documents round-trip with the optional `fault_spec` block
/// both absent (plain power-failure sweep) and present (fault-injection
/// sweep) — readers must accept both shapes from the same validator.
#[test]
fn sweep_report_round_trips_with_and_without_faults() {
    let base = SweepInputs {
        runtime: "EaseIO".into(),
        app: "dma".into(),
        seed: 7,
        off_us: 50_000,
        mode: "sample".into(),
        oracle_boundaries: 120,
        strict_memory: true,
        injections: 40,
        violations: vec![SweepViolation {
            boundary: 17,
            kind: "io_reexecuted".into(),
            detail: "site 2 re-executed".into(),
        }],
        fault_spec: None,
        waste: Some(SweepWasteDoc::from_series(
            &[40, 10, 20, 1000],
            CATEGORY_NAMES
                .iter()
                .enumerate()
                .map(|(i, name)| ((*name).to_string(), (i as u64 + 1) * 10))
                .collect(),
        )),
        timing: None,
    };
    let with_faults = SweepInputs {
        fault_spec: Some(FaultSpecDoc {
            seed: 11,
            rate_permille: 80,
            max_retries: 3,
            backoff_base_us: 200,
        }),
        ..base.clone()
    };
    for (inp, has_faults) in [(&base, false), (&with_faults, true)] {
        let text = build_sweep_report(inp).to_pretty();
        let parsed = parse_json(&text).unwrap();
        assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Sweep));
        assert_eq!(parsed.get("report").unwrap().get("fault_spec").is_some(), {
            has_faults
        });
        // The waste fold survives the round trip with its values intact.
        let waste = parsed.get("report").unwrap().get("waste").unwrap();
        assert_eq!(waste.get("boundaries").and_then(Value::as_u64), Some(4));
        assert_eq!(waste.get("p95_waste_nj").and_then(Value::as_u64), Some(40));
        assert_eq!(
            waste.get("max_waste_nj").and_then(Value::as_u64),
            Some(1000)
        );
    }
}

#[test]
fn real_run_report_satisfies_the_schema() {
    // End-to-end: trace a real intermittent run, derive its profile, build
    // the report exactly as `easeio-sim --report` does, and validate.
    let build = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
    let kind = RuntimeKind::EaseIo;
    let seed = 7;
    let r = run_traced(
        &build,
        kind,
        Supply::timer(TimerResetConfig::default(), seed),
        seed,
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert!(!r.events.is_empty());
    let (golden_us, golden_nj) = golden(&build, kind, seed);
    let profile = build_profile(&r.events);
    assert_eq!(profile.unbalanced, 0);
    let inputs = ReportInputs {
        runtime: kind.name().into(),
        app: "temp".into(),
        supply: Value::Obj(vec![("kind".into(), Value::str("timer"))]),
        seed,
        outcome: "completed".into(),
        correct: None,
        wall_us: r.wall_us,
        on_us: r.on_us,
        app_time_us: r.stats.app_time_us,
        overhead_time_us: r.stats.overhead_time_us,
        app_energy_nj: r.stats.app_energy_nj,
        overhead_energy_nj: r.stats.overhead_energy_nj,
        golden_app_time_us: golden_us,
        golden_app_energy_nj: golden_nj,
        power_failures: r.stats.power_failures,
        task_attempts: r.stats.task_attempts,
        task_commits: r.stats.task_commits,
        io_executed: r.stats.io_executed,
        io_skipped: r.stats.io_skipped,
        io_reexecutions: r.stats.io_reexecutions,
        dma_executed: r.stats.dma_executed,
        dma_skipped: r.stats.dma_skipped,
        dma_reexecutions: r.stats.dma_reexecutions,
        memory: None,
        events_recorded: r.events.len() as u64,
        events_dropped: r.events_dropped,
    };
    let report = build_report(&inputs, &profile);
    validate_report(&report).expect("fresh report from a real run must validate");
    // Round-trip through text like CI's smoke run does.
    let reparsed = parse_json(&report.to_pretty()).unwrap();
    validate_report(&reparsed).unwrap();
    // The per-site table reflects the ledger. `stats.io_executed` counts
    // every physical execution (redundant included); the profile counts the
    // same except for calls interrupted after the peripheral ran, which land
    // in `failed` instead.
    let io_execs: u64 = profile
        .sites
        .iter()
        .filter(|s| s.kind == SpanKind::IoCall)
        .map(|s| s.executions)
        .sum();
    let io_failed: u64 = profile
        .sites
        .iter()
        .filter(|s| s.kind == SpanKind::IoCall)
        .map(|s| s.failed)
        .sum();
    assert!(io_execs <= r.stats.io_executed);
    assert!(io_execs + io_failed >= r.stats.io_executed);
    let redundant: u64 = profile.sites.iter().map(|s| s.redundant).sum();
    assert_eq!(
        redundant,
        r.stats.io_reexecutions + r.stats.dma_reexecutions
    );
}
