//! Retry × power-failure interleaving for `Single` operations (paper §3.2).
//!
//! The transient-fault retry loop adds a second failure axis to the crash
//! space: a radio NACK means the packet *is* in the air while the call site
//! reports failure, and a power outage can now land between any retry
//! attempt, its backoff spend, and the completion bookkeeping. Under EaseIO
//! the pre-charged completion record absorbs the NACK and re-execution after
//! the reboot skips the completed send, so the external effect count of a
//! `Single` site can never exceed one — no matter where the outage lands in
//! the retry loop and no matter which attempts the fault schedule hits.
//!
//! Proptest chooses the fault schedule (seed and rate) and the compute
//! padding around the send; for each case the app is first run to
//! completion on continuous power to count its energy-spend boundaries
//! (backoff spends included), then re-run once per boundary with
//! [`Supply::injected`] firing exactly there, checking the invariant on the
//! final machine each time — `lock_last.rs` style, lifted from a single
//! table operation to a whole kernel run.

use std::rc::Rc;

use easeio_core::runtime::EaseIoRuntime;
use kernel::{
    run_app, App, ExecConfig, FaultSpec, Inventory, IoOp, Outcome, ReexecSemantics, TaskDef,
    TaskId, Transition,
};
use mcu_emu::{Mcu, Supply};
use periph::Peripherals;
use proptest::prelude::*;

const OFF_US: u64 = 20_000;

/// A one-shot reporter: some compute, one `Single` send, more compute.
/// The compute padding moves the send around inside the boundary space so
/// different cases interrupt different phases of the retry loop.
fn reporter(pre_us: u64, post_us: u64) -> App {
    let body = move |ctx: &mut kernel::TaskCtx<'_>| {
        ctx.compute(pre_us)?;
        ctx.call_io(
            IoOp::Send {
                payload: vec![0x5E17],
            },
            ReexecSemantics::Single,
        )?;
        ctx.compute(post_us)?;
        Ok(Transition::Done)
    };
    App {
        name: "retry-interleave",
        tasks: vec![TaskDef {
            name: "report",
            body: Rc::new(body),
        }],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 1,
            io_funcs: 1,
            io_sites: 1,
            ..Inventory::default()
        },
        verify: None,
    }
}

/// Runs the reporter once. Returns (outcome, packets on air, boundaries
/// spent).
fn run_once(supply: Supply, fault: &FaultSpec, pre_us: u64, post_us: u64) -> (Outcome, u64, u64) {
    let mut mcu = Mcu::new(supply);
    let mut periph = Peripherals::new(7);
    fault.apply(&mut periph);
    let app = reporter(pre_us, post_us);
    let mut rt = EaseIoRuntime::default();
    let cfg = ExecConfig {
        retry: fault.retry,
        ..ExecConfig::default()
    };
    let r = run_app(&app, &mut rt, &mut mcu, &mut periph, &cfg);
    (r.outcome, periph.radio.count() as u64, mcu.stats.boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every boundary of every chosen fault schedule: the packet count of a
    /// `Single` send never exceeds one, and a completed run sent exactly
    /// once.
    #[test]
    fn single_send_effect_count_never_exceeds_one(
        plan_seed in 0u64..1_000_000,
        rate in 0u32..=400,
        pre in 0u64..400,
        post in 0u64..400,
    ) {
        let fault = FaultSpec::with_rate(plan_seed, rate);
        // Continuous-power reference: counts the boundary space and pins the
        // fault-free-of-power-failures behaviour.
        let (outcome, sent, boundaries) =
            run_once(Supply::continuous(), &fault, pre, post);
        match outcome {
            Outcome::Completed => prop_assert_eq!(sent, 1),
            // Retry exhaustion on a pre-effect fault (packet drop) aborts
            // with nothing on the air; a NACK is absorbed and never
            // exhausts.
            _ => prop_assert_eq!(sent, 0),
        }
        // One injected run per boundary of the reference run.
        for b in 0..boundaries {
            let (outcome, sent, _) =
                run_once(Supply::injected(b, OFF_US), &fault, pre, post);
            prop_assert!(
                sent <= 1,
                "boundary {b}: Single send duplicated ({sent} packets on air)"
            );
            if outcome == Outcome::Completed {
                prop_assert_eq!(sent, 1, "boundary {b}: completed without the packet");
            }
        }
    }
}
