//! Lock-last ordering under power failure (paper §6): a completion flag must
//! be stored strictly *after* the state it guards, so a failure landing
//! anywhere inside the window can never leave the flag set over stale data.
//!
//! Two windows are swept exhaustively, with proptest choosing the data:
//!
//! * `IoSlotTable::record_completion` — between the private-output store
//!   (and timestamp store) and the lock-flag store;
//! * `DmaTable::copy`, `Private` phase 1 — between the source→buffer
//!   transfer and the phase-1 flag store.
//!
//! Each case first runs the operation under continuous power to count its
//! energy-spend boundaries, then re-runs it once per boundary with
//! `Supply::injected` firing exactly there, and checks the invariant on the
//! interrupted machine. Reordering either flag store before its payload
//! store makes these tests fail.

use easeio_core::dma_rules::DmaTable;
use easeio_core::flags::IoSlotTable;
use kernel::{DmaAnnotation, Fault, TaskId};
use mcu_emu::{Addr, AllocTag, Mcu, Region, Supply};
use proptest::prelude::*;

const STALE: i32 = 0x5A5A_5A5A_u32 as i32;
const OFF_US: u64 = 10_000;

/// Runs one `record_completion` with an optional injected failure at
/// boundary `fail_at` (counted from the call). Returns
/// (failed, lock_set, out_raw, ts_raw, boundaries_spent).
fn record_once(fail_at: Option<u64>, value: i32, ts: u64) -> (bool, bool, u32, u64, u64) {
    let mut mcu = Mcu::new(Supply::continuous());
    let mut table = IoSlotTable::new();
    let task = TaskId(0);
    let slot = table.ensure(&mut mcu, task, 0);
    // A previous activation left a different value behind, lock clear.
    slot.out.store(&mut mcu.mem, STALE as u32 as u64);
    slot.lock.store(&mut mcu.mem, 0);
    let before = mcu.stats.boundaries;
    if let Some(b) = fail_at {
        mcu.supply = Supply::injected(b, OFF_US);
    }
    let res = table.record_completion(&mut mcu, task, 0, slot, value, true, Some(ts));
    // The slot handle predates the lazy timestamp allocation; re-fetch.
    let slot = table.ensure(&mut mcu, task, 0);
    (
        res.is_err(),
        slot.lock.load(&mcu.mem) != 0,
        slot.out.load(&mcu.mem) as u32,
        slot.ts.map_or(0, |t| t.load(&mcu.mem)),
        mcu.stats.boundaries - before,
    )
}

/// Runs one `Private` DMA copy with an optional injected failure. Returns
/// (failed, phase1_set, priv_buf_contents, boundaries_spent).
fn private_copy_once(fail_at: Option<u64>, pattern: &[u8]) -> (bool, bool, Vec<u8>, u64) {
    let mut mcu = Mcu::new(Supply::continuous());
    let mut table = DmaTable::new(4096);
    let task = TaskId(0);
    let bytes = pattern.len() as u32;
    let src = mcu.mem.alloc(Region::Fram, bytes, AllocTag::App);
    let dst = mcu.mem.alloc(Region::Sram, bytes, AllocTag::App);
    mcu.mem.write_bytes(src, pattern);
    let before = mcu.stats.boundaries;
    if let Some(b) = fail_at {
        mcu.supply = Supply::injected(b, OFF_US);
    }
    let res = table.copy(
        &mut mcu,
        task,
        0,
        src,
        dst,
        bytes,
        DmaAnnotation::Auto,
        false,
    );
    if let Err(Fault::Dma(e)) = res {
        panic!("unexpected DMA fault: {e}");
    }
    let (phase1, buf) = table
        .probe_phase1(&mcu, task, 0, bytes)
        .map_or((false, Vec::new()), |(p, b)| (p, b));
    (res.is_err(), phase1, buf, mcu.stats.boundaries - before)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Failure at every boundary of `record_completion`: the lock flag is
    /// never observed set while the private output (or timestamp) is stale.
    #[test]
    fn lock_never_set_over_stale_output(value in any::<i32>(), ts in 1u64..u64::MAX) {
        // The vendored proptest has no prop_assume; dodge the sentinel.
        let value = if value == STALE { value.wrapping_add(1) } else { value };
        let (failed, lock, out, got_ts, total) = record_once(None, value, ts);
        prop_assert!(!failed);
        prop_assert!(lock);
        prop_assert_eq!(out, value as u32);
        prop_assert_eq!(got_ts, ts);
        prop_assert!(total > 0);
        for b in 0..total {
            let (failed, lock, out, got_ts, _) = record_once(Some(b), value, ts);
            prop_assert!(failed, "boundary {} of {} did not fire", b, total);
            // Lock-last: the flag store is the final fallible-free step, so
            // an interrupted call must leave the lock clear…
            prop_assert!(!lock, "boundary {}: lock set by an interrupted call", b);
            // …and a fortiori the guarded invariant holds: a set lock would
            // have to cover fresh output and timestamp.
            if lock {
                prop_assert_eq!(out, value as u32);
                prop_assert_eq!(got_ts, ts);
            }
        }
    }

    /// Failure at every boundary of a `Private` DMA copy: the phase-1 flag
    /// is never observed set while the privatization buffer is stale.
    #[test]
    fn phase1_never_set_over_stale_buffer(seed in any::<u64>(), len in 1usize..96) {
        let pattern: Vec<u8> = (0..len).map(|i| (seed.rotate_left(i as u32 % 64) as u8) | 1).collect();
        let (failed, phase1, buf, total) = private_copy_once(None, &pattern);
        prop_assert!(!failed);
        prop_assert!(phase1);
        prop_assert_eq!(&buf, &pattern);
        prop_assert!(total > 0);
        for b in 0..total {
            let (failed, phase1, buf, _) = private_copy_once(Some(b), &pattern);
            prop_assert!(failed, "boundary {} of {} did not fire", b, total);
            if phase1 {
                // Flag set ⟹ the buffer holds the complete privatized copy.
                prop_assert_eq!(&buf, &pattern, "boundary {}: phase-1 flag set over a stale buffer", b);
            }
        }
    }
}

/// Deterministic cross-check: the `Private` phase-1 flag store happens after
/// the transfer, so the *last* boundary of an interrupted phase 1 leaves the
/// buffer fully written but the flag still clear — a safe re-privatization
/// on the next attempt, never a skipped one.
#[test]
fn interrupted_phase1_reprivatizes_rather_than_skipping() {
    let pattern = [7u8; 32];
    let (_, _, _, total) = private_copy_once(None, &pattern);
    let mut saw_full_buffer_with_clear_flag = false;
    for b in 0..total {
        let (failed, phase1, buf, _) = private_copy_once(Some(b), &pattern);
        assert!(failed);
        if !phase1 && buf == pattern {
            saw_full_buffer_with_clear_flag = true;
        }
    }
    // The failure between transfer and flag store is a real boundary of the
    // sweep, not a window the cost model skips over.
    assert!(saw_full_buffer_with_clear_flag);
}

// Sanity for the helpers: Addr/Region wiring gives a Private resolution.
#[test]
fn helper_copy_is_private() {
    let mut mcu = Mcu::new(Supply::continuous());
    let src = mcu.mem.alloc(Region::Fram, 4, AllocTag::App);
    let dst = mcu.mem.alloc(Region::Sram, 4, AllocTag::App);
    assert_eq!(
        easeio_core::dma_rules::resolve(src, dst, DmaAnnotation::Auto),
        easeio_core::dma_rules::ResolvedDma::Private
    );
    let _ = Addr::new(Region::Fram, 0);
}
