//! I/O blocks and semantic precedence (paper §3.3, §4.2.1).
//!
//! An I/O block groups peripheral operations that must execute atomically
//! under one block-level re-execution semantic. The rules this module
//! implements:
//!
//! * a block has its own done-flag and timestamp in FRAM, set at
//!   `_IO_block_end` (after all inner operations completed);
//! * **scope precedence** — within nesting, the *outermost* block whose
//!   state is decisive wins: a satisfied outer block skips everything
//!   inside; a violated outer block forces everything inside to re-execute,
//!   overriding inner `Single` locks (the paper's `depend_flg` mechanism);
//! * a `Timely` block whose window has expired becomes *violated* and its
//!   done-flag is cleared so the whole block repeats.

use kernel::{ReexecSemantics, TaskId};
use mcu_emu::{AllocTag, EnergyCause, Mcu, PowerFailure, RawVar, Region, WorkKind};
use std::collections::HashMap;

/// State a block contributes to the precedence decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// The block neither skips nor forces: inner ops use their own
    /// semantics.
    Neutral,
    /// The block's semantics hold (e.g. `Single` and completed): skip every
    /// inner operation, restoring recorded outputs.
    Satisfied,
    /// The block's semantics are violated (e.g. `Timely` expired) or the
    /// block is `Always`: force every inner operation to re-execute.
    Violated,
}

/// FRAM control block of one `_IO_block`.
#[derive(Debug, Clone, Copy)]
pub struct BlockSlot {
    /// Block completion flag (`flag_block`).
    pub done: RawVar,
    /// Timestamp written at block end (`time_blck`).
    pub ts: RawVar,
}

/// One open block on the nesting stack (host-side mirror of the program
/// counter position; carries no charged state of its own).
#[derive(Debug, Clone, Copy)]
pub struct OpenBlock {
    /// The block's index within the task body.
    pub block: u16,
    /// Annotated semantics.
    pub sem: ReexecSemantics,
    /// Decision computed at `_IO_block_begin`.
    pub state: BlockState,
}

/// Table of block control slots plus the live nesting stack.
#[derive(Debug, Default)]
pub struct BlockTable {
    slots: HashMap<(TaskId, u16), BlockSlot>,
    stack: Vec<OpenBlock>,
    dirty: Vec<(TaskId, u16)>,
    /// Without a persistent timekeeper, `Timely` freshness cannot be
    /// verified across reboots and must be treated as expired.
    no_persistent_timer: bool,
}

impl BlockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Degrades `Timely` checks to always-expired (no timekeeping circuit).
    pub fn without_persistent_timer(mut self) -> Self {
        self.no_persistent_timer = true;
        self
    }

    fn ensure(&mut self, mcu: &mut Mcu, task: TaskId, block: u16) -> BlockSlot {
        *self.slots.entry((task, block)).or_insert_with(|| {
            let alloc = |mcu: &mut Mcu, width: u32| RawVar {
                addr: mcu.mem.alloc(Region::Fram, width, AllocTag::Runtime),
                width,
            };
            BlockSlot {
                done: alloc(mcu, 1),
                ts: alloc(mcu, 8),
            }
        })
    }

    /// The decision currently in force: the outermost non-neutral open
    /// block's state (scope precedence, paper §3.3.1).
    pub fn enclosing_decision(&self) -> BlockState {
        for b in &self.stack {
            if b.state != BlockState::Neutral {
                return b.state;
            }
        }
        BlockState::Neutral
    }

    /// Whether any block is open (inner ops always privatize outputs).
    pub fn in_block(&self) -> bool {
        !self.stack.is_empty()
    }

    /// `_IO_block_begin`: evaluates the block's flag/timestamp and pushes it
    /// on the nesting stack.
    pub fn begin(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        block: u16,
        sem: ReexecSemantics,
    ) -> Result<(), PowerFailure> {
        // Inside an already-satisfied outer block the generated code skips
        // the whole body, flag checks included.
        if self.enclosing_decision() == BlockState::Satisfied {
            self.stack.push(OpenBlock {
                block,
                sem,
                state: BlockState::Neutral,
            });
            return Ok(());
        }
        let slot = self.ensure(mcu, task, block);
        let state = match sem {
            ReexecSemantics::Always => BlockState::Violated,
            ReexecSemantics::Single => {
                let c = mcu.cost.flag_check;
                mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
                if slot.done.load(&mcu.mem) != 0 {
                    BlockState::Satisfied
                } else {
                    BlockState::Neutral
                }
            }
            ReexecSemantics::Timely { window_us } => {
                let c = mcu.cost.flag_check;
                mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
                if slot.done.load(&mcu.mem) != 0 {
                    let ts = mcu.with_cause(EnergyCause::Commit, |m| {
                        m.load_var(WorkKind::Overhead, slot.ts)
                    })?;
                    let now = mcu.with_cause(EnergyCause::Commit, |m| {
                        m.read_timestamp(WorkKind::Overhead)
                    })?;
                    // Without reliable elapsed time across reboots, the
                    // block is conservatively treated as expired.
                    if !self.no_persistent_timer && now.saturating_sub(ts) <= window_us {
                        BlockState::Satisfied
                    } else {
                        // Expired: the whole block must repeat. Clear the
                        // done flag so a failure mid-repeat re-enters the
                        // repeat, not a stale skip.
                        let c = mcu.cost.flag_write;
                        mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
                        slot.done.store(&mut mcu.mem, 0);
                        mcu.stats.bump("easeio_block_violations");
                        BlockState::Violated
                    }
                } else {
                    BlockState::Neutral
                }
            }
        };
        self.stack.push(OpenBlock { block, sem, state });
        Ok(())
    }

    /// `_IO_block_end`: pops the innermost block; if it ran (not skipped),
    /// sets its done flag and timestamp.
    pub fn end(&mut self, mcu: &mut Mcu, task: TaskId) -> Result<(), PowerFailure> {
        let open = self
            .stack
            .pop()
            .expect("_IO_block_end without matching _IO_block_begin");
        // A block under a satisfied outer block (or itself satisfied) was
        // skipped: its flags are already in their completed state.
        if open.state == BlockState::Satisfied || self.enclosing_decision() == BlockState::Satisfied
        {
            return Ok(());
        }
        let slot = self.ensure(mcu, task, open.block);
        if let ReexecSemantics::Timely { .. } = open.sem {
            let now = mcu.with_cause(EnergyCause::Commit, |m| {
                m.read_timestamp(WorkKind::Overhead)
            })?;
            mcu.with_cause(EnergyCause::Commit, |m| {
                m.store_var(WorkKind::Overhead, slot.ts, now)
            })?;
        }
        let c = mcu.cost.flag_write;
        mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
        slot.done.store(&mut mcu.mem, 1);
        self.dirty.push((task, open.block));
        Ok(())
    }

    /// Clears the nesting stack (power failure unwound the task body).
    pub fn reset_stack(&mut self) {
        self.stack.clear();
    }

    /// Dirty blocks belonging to `task` (commit pricing).
    pub fn dirty_for(&self, task: TaskId) -> u64 {
        self.dirty.iter().filter(|(t, _)| *t == task).count() as u64
    }

    /// Clears the done flags of `task`'s completed blocks at commit; the
    /// caller has already priced this.
    pub fn clear_task(&mut self, mcu: &mut Mcu, task: TaskId) -> u64 {
        let mut cleared = 0;
        self.dirty.retain(|(t, b)| {
            if *t == task {
                if let Some(slot) = self.slots.get(&(*t, *b)) {
                    slot.done.store(&mut mcu.mem, 0);
                }
                cleared += 1;
                false
            } else {
                true
            }
        });
        cleared
    }

    /// Number of block slots allocated (footprint reporting).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::Supply;

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn single_block_satisfied_after_completion() {
        let mut m = mcu();
        let mut t = BlockTable::new();
        let task = TaskId(0);
        t.begin(&mut m, task, 0, ReexecSemantics::Single).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Neutral);
        t.end(&mut m, task).unwrap();
        // Re-entry (same activation, after a failure): now satisfied.
        t.begin(&mut m, task, 0, ReexecSemantics::Single).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Satisfied);
        t.end(&mut m, task).unwrap();
    }

    #[test]
    fn timely_block_expires_into_violation() {
        let mut m = mcu();
        let mut t = BlockTable::new();
        let task = TaskId(0);
        let sem = ReexecSemantics::Timely { window_us: 100 };
        t.begin(&mut m, task, 0, sem).unwrap();
        t.end(&mut m, task).unwrap();
        // Within the window: satisfied.
        t.begin(&mut m, task, 0, sem).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Satisfied);
        t.end(&mut m, task).unwrap();
        // Let far more than the window elapse.
        m.spend(WorkKind::App, mcu_emu::Cost::new(10_000, 0))
            .unwrap();
        t.begin(&mut m, task, 0, sem).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Violated);
        t.end(&mut m, task).unwrap();
        // Completing the violated block re-arms it.
        t.begin(&mut m, task, 0, sem).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Satisfied);
    }

    #[test]
    fn outermost_decision_wins() {
        // Fig. 4: a satisfied Single outer block must override a violated
        // inner block.
        let mut m = mcu();
        let mut t = BlockTable::new();
        let task = TaskId(0);
        // First pass completes both blocks.
        t.begin(&mut m, task, 0, ReexecSemantics::Single).unwrap();
        t.begin(&mut m, task, 1, ReexecSemantics::Timely { window_us: 1 })
            .unwrap();
        t.end(&mut m, task).unwrap();
        t.end(&mut m, task).unwrap();
        // Much later, re-enter: outer Single is satisfied, so the expired
        // inner Timely is never even evaluated.
        m.spend(WorkKind::App, mcu_emu::Cost::new(10_000, 0))
            .unwrap();
        t.begin(&mut m, task, 0, ReexecSemantics::Single).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Satisfied);
        t.begin(&mut m, task, 1, ReexecSemantics::Timely { window_us: 1 })
            .unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Satisfied);
        // The inner flag state was not disturbed (no violation counted).
        assert_eq!(m.stats.counter("easeio_block_violations"), 0);
        t.end(&mut m, task).unwrap();
        t.end(&mut m, task).unwrap();
    }

    #[test]
    fn always_block_forces_inner_ops() {
        let mut m = mcu();
        let mut t = BlockTable::new();
        t.begin(&mut m, TaskId(0), 0, ReexecSemantics::Always)
            .unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Violated);
        t.end(&mut m, TaskId(0)).unwrap();
    }

    #[test]
    fn commit_clears_block_flags() {
        let mut m = mcu();
        let mut t = BlockTable::new();
        let task = TaskId(0);
        t.begin(&mut m, task, 0, ReexecSemantics::Single).unwrap();
        t.end(&mut m, task).unwrap();
        assert_eq!(t.dirty_for(task), 1);
        t.clear_task(&mut m, task);
        // A new activation sees a fresh block.
        t.begin(&mut m, task, 0, ReexecSemantics::Single).unwrap();
        assert_eq!(t.enclosing_decision(), BlockState::Neutral);
    }

    #[test]
    fn reset_stack_on_power_failure() {
        let mut m = mcu();
        let mut t = BlockTable::new();
        t.begin(&mut m, TaskId(0), 0, ReexecSemantics::Single)
            .unwrap();
        assert!(t.in_block());
        t.reset_stack();
        assert!(!t.in_block());
        assert_eq!(t.enclosing_decision(), BlockState::Neutral);
    }
}
