//! Run-time DMA semantics resolution and memory-safe transfers (paper §4.3).
//!
//! `_DMA_copy` inspects its operands' memory types at run time:
//!
//! * destination in FRAM → **Single**: the copied data survives power
//!   failures, so a completed transfer is never repeated;
//! * FRAM source, volatile destination → **Private**: must repeat after
//!   every reboot, but a later write to the source would corrupt the repeat
//!   (WAR), so the transfer is split into two phases through a privatization
//!   buffer — source→buffer once, buffer→destination on every attempt;
//! * volatile→volatile → **Always**: repeating is harmless;
//! * the `Exclude` annotation opts constant data out of privatization and
//!   forces **Always** at compile time (evaluated as "EaseIO/Op").
//!
//! The privatization buffers come from a fixed pool whose size the
//! programmer configures (the paper uses 4 KB); exhausting it is a hard
//! error, mirroring the buffer-limit discussion in the paper's §6.

use kernel::{DmaAnnotation, DmaError, Fault, TaskId};
use mcu_emu::{Addr, AllocTag, EnergyCause, Mcu, RawVar, Region, WorkKind};
use periph::dma::{classify, DmaClass};
use std::collections::{HashMap, HashSet};

/// Re-execution policy resolved for one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedDma {
    /// Completed transfer never repeats.
    Single,
    /// Two-phase transfer through a privatization buffer.
    Private,
    /// Plain transfer, repeated every attempt.
    Always,
}

/// Resolves the policy from operands and annotation.
pub fn resolve(src: Addr, dst: Addr, annotation: DmaAnnotation) -> ResolvedDma {
    if annotation == DmaAnnotation::Exclude {
        return ResolvedDma::Always;
    }
    match classify(src, dst) {
        DmaClass::ToNonVolatile => ResolvedDma::Single,
        DmaClass::NonVolatileToVolatile => ResolvedDma::Private,
        DmaClass::VolatileToVolatile => ResolvedDma::Always,
    }
}

/// FRAM control state of one `_DMA_copy` site.
#[derive(Debug, Clone, Copy)]
struct DmaSlot {
    /// Completion flag for `Single` transfers.
    done: RawVar,
    /// Phase-1 flag for `Private` transfers (privatization buffer valid).
    phase1: RawVar,
    /// Privatization buffer, allocated on first `Private` use.
    priv_buf: Option<Addr>,
}

/// How privatization buffers are assigned to `Private` DMA sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// One dedicated buffer per DMA site, sized to the site's transfer.
    /// Simple and safe; total memory grows with the number of sites
    /// (the paper's evaluated configuration).
    Dedicated,
    /// Buffers are shared across *tasks*: site `i` of every task maps to
    /// shared slot `i`, each of `slot_bytes` bytes. Safe because only one
    /// task is active at a time and commit clears the phase flags, so a
    /// slot's contents are never needed after its task commits. A transfer
    /// larger than `slot_bytes` is a hard error — the size check the
    /// paper's §6 leaves to future compile-time analysis.
    Shared {
        /// Size of each shared slot in bytes.
        slot_bytes: u32,
    },
}

/// Table of DMA control slots plus the privatization-buffer pool.
#[derive(Debug)]
pub struct DmaTable {
    slots: HashMap<(TaskId, u16), DmaSlot>,
    pool_limit: u32,
    pool_used: u32,
    mode: BufferMode,
    /// Shared slots (BufferMode::Shared): site index → buffer.
    shared: HashMap<u16, Addr>,
    dirty: Vec<(TaskId, u16)>,
}

impl DmaTable {
    /// Creates a table with a privatization pool of `pool_limit` bytes and
    /// dedicated per-site buffers.
    pub fn new(pool_limit: u32) -> Self {
        Self::with_mode(pool_limit, BufferMode::Dedicated)
    }

    /// Creates a table with an explicit buffer-assignment mode.
    pub fn with_mode(pool_limit: u32, mode: BufferMode) -> Self {
        Self {
            slots: HashMap::new(),
            pool_limit,
            pool_used: 0,
            mode,
            shared: HashMap::new(),
            dirty: Vec::new(),
        }
    }

    fn ensure(&mut self, mcu: &mut Mcu, task: TaskId, site: u16) -> DmaSlot {
        *self.slots.entry((task, site)).or_insert_with(|| {
            let alloc = |mcu: &mut Mcu, width: u32| RawVar {
                addr: mcu.mem.alloc(Region::Fram, width, AllocTag::Runtime),
                width,
            };
            DmaSlot {
                done: alloc(mcu, 1),
                phase1: alloc(mcu, 1),
                priv_buf: None,
            }
        })
    }

    fn ensure_priv_buf(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        bytes: u32,
    ) -> Result<Addr, DmaError> {
        if let BufferMode::Shared { slot_bytes } = self.mode {
            if bytes > slot_bytes {
                // Paper §6: the compile-time size check. Surfaced as a typed
                // error so the simulator can report it instead of aborting.
                return Err(DmaError::OversizedTransfer { bytes, slot_bytes });
            }
            if let Some(buf) = self.shared.get(&site) {
                return Ok(*buf);
            }
            if self.pool_used + slot_bytes > self.pool_limit {
                return Err(DmaError::PoolExhausted {
                    requested: slot_bytes,
                    used: self.pool_used,
                    limit: self.pool_limit,
                });
            }
            self.pool_used += slot_bytes;
            let buf = mcu
                .mem
                .alloc(Region::Fram, slot_bytes, AllocTag::DmaPrivBuf);
            self.shared.insert(site, buf);
            return Ok(buf);
        }
        let slot = self.slots.get_mut(&(task, site)).expect("slot exists");
        if let Some(buf) = slot.priv_buf {
            return Ok(buf);
        }
        // Paper §6, "DMA Privatization Buffer Limits".
        if self.pool_used + bytes > self.pool_limit {
            return Err(DmaError::PoolExhausted {
                requested: bytes,
                used: self.pool_used,
                limit: self.pool_limit,
            });
        }
        self.pool_used += bytes;
        let buf = mcu.mem.alloc(Region::Fram, bytes, AllocTag::DmaPrivBuf);
        slot.priv_buf = Some(buf);
        Ok(buf)
    }

    /// Executes `_DMA_copy` under the resolved policy. `dep_forced` is the
    /// `RelatedConstFlag`: a related I/O operation re-executed this attempt,
    /// so stale skip/phase state must be refreshed (paper §4.3.1).
    ///
    /// Returns whether the destination was written this call.
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        src: Addr,
        dst: Addr,
        bytes: u32,
        annotation: DmaAnnotation,
        dep_forced: bool,
    ) -> Result<bool, Fault> {
        match resolve(src, dst, annotation) {
            ResolvedDma::Always => {
                // `Exclude` (or volatile→volatile): no flags, no buffers.
                kernel::io::perform_dma(mcu, src, dst, bytes, WorkKind::App)?;
                mcu.stats.bump("easeio_dma_always");
                Ok(true)
            }
            ResolvedDma::Single => {
                let slot = self.ensure(mcu, task, site);
                let c = mcu.cost.flag_check;
                mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
                if slot.done.load(&mcu.mem) != 0 && !dep_forced {
                    mcu.stats.bump("easeio_dma_single_skipped");
                    return Ok(false);
                }
                kernel::io::perform_dma(mcu, src, dst, bytes, WorkKind::App)?;
                let c = mcu.cost.flag_write;
                mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
                slot.done.store(&mut mcu.mem, 1);
                // A dep-forced repeat re-dirties an already-listed site; a
                // duplicate entry would double-price the commit.
                if !self.dirty.contains(&(task, site)) {
                    self.dirty.push((task, site));
                }
                mcu.stats.bump("easeio_dma_single_executed");
                Ok(true)
            }
            ResolvedDma::Private => {
                self.ensure(mcu, task, site);
                let priv_buf = self.ensure_priv_buf(mcu, task, site, bytes)?;
                let slot = self.slots[&(task, site)];
                // Phase 1: source → privatization buffer, once per
                // activation (or again if a related I/O refreshed the
                // source). This is privatization work: overhead.
                let c = mcu.cost.flag_check;
                mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
                let phase1_done = slot.phase1.load(&mcu.mem) != 0;
                if !phase1_done || dep_forced {
                    let cost = periph::dma::transfer_cost(&mcu.cost, bytes);
                    mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, cost))?;
                    periph::dma::transfer(&mut mcu.mem, src, priv_buf, bytes);
                    let c = mcu.cost.flag_write;
                    mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
                    slot.phase1.store(&mut mcu.mem, 1);
                    // Re-privatization after a failure (or dep-force) must
                    // not enter the site twice: commit clears it once.
                    if !self.dirty.contains(&(task, site)) {
                        self.dirty.push((task, site));
                    }
                    mcu.stats.bump("easeio_dma_privatizations");
                }
                // Phase 2: buffer → destination, every attempt (the
                // destination is volatile and was lost at the failure).
                kernel::io::perform_dma(mcu, priv_buf, dst, bytes, WorkKind::App)?;
                mcu.stats.bump("easeio_dma_private_executed");
                Ok(true)
            }
        }
    }

    /// Dirty sites for `task` (commit pricing).
    pub fn dirty_for(&self, task: TaskId) -> u64 {
        self.dirty.iter().filter(|(t, _)| *t == task).count() as u64
    }

    /// Distinct dirty sites for `task`. Commit pricing must equal this —
    /// `clear_task` resets each site's flags exactly once — and the crash
    /// sweep's pricing probe compares the two.
    pub fn distinct_dirty_for(&self, task: TaskId) -> u64 {
        self.dirty
            .iter()
            .filter(|(t, _)| *t == task)
            .collect::<HashSet<_>>()
            .len() as u64
    }

    /// Clears `task`'s DMA flags at commit (caller priced it).
    pub fn clear_task(&mut self, mcu: &mut Mcu, task: TaskId) -> u64 {
        let mut cleared = 0;
        self.dirty.retain(|(t, s)| {
            if *t == task {
                if let Some(slot) = self.slots.get(&(*t, *s)) {
                    slot.done.store(&mut mcu.mem, 0);
                    slot.phase1.store(&mut mcu.mem, 0);
                }
                cleared += 1;
                false
            } else {
                true
            }
        });
        cleared
    }

    /// Crash-consistency probe: a `Private` site's phase-1 flag and the
    /// current contents of its privatization buffer, read directly from
    /// memory without charging the MCU. `None` until the site's first copy
    /// allocates its buffer. The power-failure sweep uses this to check
    /// that the phase-1 flag is never set while the buffer is stale.
    pub fn probe_phase1(
        &self,
        mcu: &Mcu,
        task: TaskId,
        site: u16,
        bytes: u32,
    ) -> Option<(bool, Vec<u8>)> {
        let slot = self.slots.get(&(task, site))?;
        let buf = slot.priv_buf.or_else(|| self.shared.get(&site).copied())?;
        Some((
            slot.phase1.load(&mcu.mem) != 0,
            mcu.mem.read_bytes(buf, bytes).to_vec(),
        ))
    }

    /// Bytes of privatization pool in use (footprint reporting).
    pub fn pool_used(&self) -> u32 {
        self.pool_used
    }

    /// Number of DMA slots allocated.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::Supply;

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    fn fram(mcu: &mut Mcu, bytes: u32) -> Addr {
        mcu.mem.alloc(Region::Fram, bytes, AllocTag::App)
    }

    fn sram(mcu: &mut Mcu, bytes: u32) -> Addr {
        mcu.mem.alloc(Region::Sram, bytes, AllocTag::App)
    }

    #[test]
    fn resolution_rules() {
        let f = Addr::new(Region::Fram, 0);
        let s = Addr::new(Region::Sram, 0);
        assert_eq!(resolve(f, f, DmaAnnotation::Auto), ResolvedDma::Single);
        assert_eq!(resolve(s, f, DmaAnnotation::Auto), ResolvedDma::Single);
        assert_eq!(resolve(f, s, DmaAnnotation::Auto), ResolvedDma::Private);
        assert_eq!(resolve(s, s, DmaAnnotation::Auto), ResolvedDma::Always);
        assert_eq!(resolve(f, s, DmaAnnotation::Exclude), ResolvedDma::Always);
    }

    #[test]
    fn single_executes_once_then_skips() {
        let mut m = mcu();
        let mut t = DmaTable::new(4096);
        let src = fram(&mut m, 4);
        let dst = fram(&mut m, 4);
        m.mem.write_bytes(src, &[1, 2, 3, 4]);
        let ran = t
            .copy(
                &mut m,
                TaskId(0),
                0,
                src,
                dst,
                4,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap();
        assert!(ran);
        assert_eq!(m.mem.read_bytes(dst, 4), &[1, 2, 3, 4]);
        // Re-execution after a failure: skipped, destination persists.
        let ran = t
            .copy(
                &mut m,
                TaskId(0),
                0,
                src,
                dst,
                4,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap();
        assert!(!ran);
        assert_eq!(m.stats.counter("easeio_dma_single_skipped"), 1);
    }

    #[test]
    fn single_reexecutes_when_dep_forced() {
        let mut m = mcu();
        let mut t = DmaTable::new(4096);
        let src = fram(&mut m, 4);
        let dst = fram(&mut m, 4);
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            4,
            DmaAnnotation::Auto,
            false,
        )
        .unwrap();
        // A related Always I/O re-executed: the DMA must repeat so the fresh
        // output reaches non-volatile memory.
        m.mem.write_bytes(src, &[9, 9, 9, 9]);
        let ran = t
            .copy(&mut m, TaskId(0), 0, src, dst, 4, DmaAnnotation::Auto, true)
            .unwrap();
        assert!(ran);
        assert_eq!(m.mem.read_bytes(dst, 4), &[9, 9, 9, 9]);
    }

    #[test]
    fn private_is_war_safe() {
        // The §4.3(ii) scenario: FRAM→SRAM copy whose source is later
        // overwritten; the repeat must deliver the *original* data.
        let mut m = mcu();
        let mut t = DmaTable::new(4096);
        let src = fram(&mut m, 4);
        let dst = sram(&mut m, 4);
        m.mem.write_bytes(src, &[5, 5, 5, 5]);
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            4,
            DmaAnnotation::Auto,
            false,
        )
        .unwrap();
        assert_eq!(m.mem.read_bytes(dst, 4), &[5, 5, 5, 5]);
        // Another DMA overwrites the source (WAR), then power fails.
        m.mem.write_bytes(src, &[6, 6, 6, 6]);
        m.mem.power_failure();
        // Re-execution: phase 2 repeats from the privatization buffer and
        // still delivers the original bytes.
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            4,
            DmaAnnotation::Auto,
            false,
        )
        .unwrap();
        assert_eq!(m.mem.read_bytes(dst, 4), &[5, 5, 5, 5]);
        assert_eq!(m.stats.counter("easeio_dma_privatizations"), 1);
        assert_eq!(m.stats.counter("easeio_dma_private_executed"), 2);
    }

    #[test]
    fn exclude_skips_privatization_entirely() {
        let mut m = mcu();
        let mut t = DmaTable::new(4096);
        let src = fram(&mut m, 8);
        let dst = sram(&mut m, 8);
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            8,
            DmaAnnotation::Exclude,
            false,
        )
        .unwrap();
        assert_eq!(t.pool_used(), 0);
        assert_eq!(m.stats.counter("easeio_dma_privatizations"), 0);
        assert_eq!(m.stats.counter("easeio_dma_always"), 1);
    }

    #[test]
    fn pool_limit_is_a_typed_error_not_a_panic() {
        // Regression: this used to `assert!` and abort the whole process;
        // now it surfaces as `Fault::Dma` so the caller can degrade
        // gracefully (nonzero exit, report entry).
        let mut m = mcu();
        let mut t = DmaTable::new(16);
        let src = fram(&mut m, 32);
        let dst = sram(&mut m, 32);
        let err = t
            .copy(
                &mut m,
                TaskId(0),
                0,
                src,
                dst,
                32,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap_err();
        assert_eq!(
            err,
            Fault::Dma(DmaError::PoolExhausted {
                requested: 32,
                used: 0,
                limit: 16
            })
        );
        assert!(err.to_string().contains("privatization pool exhausted"));
        // The pool is untouched by the failed attempt.
        assert_eq!(t.pool_used(), 0);
    }

    #[test]
    fn dep_forced_repeat_does_not_double_count_dirty_site() {
        // Regression for the dirty-list duplication bug: a dep-forced Single
        // repeat (and a re-privatized Private phase 1) pushed the same
        // (task, site) twice, so commit priced two flag-clears for one site.
        let mut m = mcu();
        let mut t = DmaTable::new(4096);
        let task = TaskId(0);
        let src = fram(&mut m, 4);
        let dst = fram(&mut m, 4);
        for forced in [false, true, true] {
            t.copy(&mut m, task, 0, src, dst, 4, DmaAnnotation::Auto, forced)
                .unwrap();
        }
        assert_eq!(t.dirty_for(task), 1, "one site, one dirty entry");
        assert_eq!(t.dirty_for(task), t.distinct_dirty_for(task));
        // Same for a Private site whose phase 1 repeats under dep-force.
        let vdst = sram(&mut m, 4);
        for forced in [false, true] {
            t.copy(&mut m, task, 1, src, vdst, 4, DmaAnnotation::Auto, forced)
                .unwrap();
        }
        assert_eq!(t.dirty_for(task), 2);
        assert_eq!(t.dirty_for(task), t.distinct_dirty_for(task));
        assert_eq!(t.clear_task(&mut m, task), 2);
    }

    #[test]
    fn commit_resets_flags_for_next_activation() {
        let mut m = mcu();
        let mut t = DmaTable::new(4096);
        let src = fram(&mut m, 4);
        let dst = fram(&mut m, 4);
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            4,
            DmaAnnotation::Auto,
            false,
        )
        .unwrap();
        assert_eq!(t.clear_task(&mut m, TaskId(0)), 1);
        // Next activation of the same task executes the DMA again.
        m.mem.write_bytes(src, &[7, 7, 7, 7]);
        let ran = t
            .copy(
                &mut m,
                TaskId(0),
                0,
                src,
                dst,
                4,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap();
        assert!(ran);
        assert_eq!(m.mem.read_bytes(dst, 4), &[7, 7, 7, 7]);
    }

    #[test]
    fn private_buffer_reused_across_activations() {
        let mut m = mcu();
        let mut t = DmaTable::new(64);
        let src = fram(&mut m, 32);
        let dst = sram(&mut m, 32);
        for _ in 0..4 {
            t.copy(
                &mut m,
                TaskId(0),
                0,
                src,
                dst,
                32,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap();
            t.clear_task(&mut m, TaskId(0));
        }
        assert_eq!(t.pool_used(), 32, "one buffer, reused");
    }
}

#[cfg(test)]
mod shared_mode_tests {
    use super::*;
    use mcu_emu::Supply;

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn shared_slots_are_reused_across_tasks() {
        let mut m = mcu();
        let mut t = DmaTable::with_mode(4096, BufferMode::Shared { slot_bytes: 64 });
        let src = m.mem.alloc(Region::Fram, 64, AllocTag::App);
        let dst = m.mem.alloc(Region::Sram, 64, AllocTag::App);
        // Five tasks each run a Private transfer at site 0: one shared slot.
        for task in 0..5u16 {
            t.copy(
                &mut m,
                TaskId(task),
                0,
                src,
                dst,
                64,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap();
            t.clear_task(&mut m, TaskId(task));
        }
        assert_eq!(t.pool_used(), 64, "one shared slot, not five");
        assert_eq!(m.mem.read_bytes(dst, 4), m.mem.read_bytes(src, 4));
    }

    #[test]
    fn shared_mode_preserves_war_safety() {
        // Same §4.3(ii) scenario as the dedicated-mode test: the repeat must
        // deliver the original data even though the source was overwritten.
        let mut m = mcu();
        let mut t = DmaTable::with_mode(4096, BufferMode::Shared { slot_bytes: 64 });
        let src = m.mem.alloc(Region::Fram, 8, AllocTag::App);
        let dst = m.mem.alloc(Region::Sram, 8, AllocTag::App);
        m.mem.write_bytes(src, &[1, 1, 1, 1, 1, 1, 1, 1]);
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            8,
            DmaAnnotation::Auto,
            false,
        )
        .unwrap();
        m.mem.write_bytes(src, &[2; 8]);
        m.mem.power_failure();
        t.copy(
            &mut m,
            TaskId(0),
            0,
            src,
            dst,
            8,
            DmaAnnotation::Auto,
            false,
        )
        .unwrap();
        assert_eq!(m.mem.read_bytes(dst, 8), &[1; 8]);
    }

    #[test]
    fn oversized_transfer_is_a_typed_error() {
        // Regression: previously an `assert!` abort; now a typed error the
        // executor converts into `Outcome::Fault`.
        let mut m = mcu();
        let mut t = DmaTable::with_mode(4096, BufferMode::Shared { slot_bytes: 16 });
        let src = m.mem.alloc(Region::Fram, 32, AllocTag::App);
        let dst = m.mem.alloc(Region::Sram, 32, AllocTag::App);
        let err = t
            .copy(
                &mut m,
                TaskId(0),
                0,
                src,
                dst,
                32,
                DmaAnnotation::Auto,
                false,
            )
            .unwrap_err();
        assert_eq!(
            err,
            kernel::Fault::Dma(kernel::DmaError::OversizedTransfer {
                bytes: 32,
                slot_bytes: 16
            })
        );
        assert!(err
            .to_string()
            .contains("exceeds the shared privatization slot"));
    }

    #[test]
    fn weather_app_runs_with_shared_buffers_and_uses_less_fram() {
        use crate::{EaseIoConfig, EaseIoRuntime};
        use kernel::{run_app, ExecConfig, Outcome, Verdict};

        let run = |mode: BufferMode| {
            let mut m = mcu();
            let mut p = periph::Peripherals::new(7);
            let app = apps_build(&mut m);
            let mut rt = EaseIoRuntime::new(EaseIoConfig {
                dma_priv_pool_bytes: 4096,
                dma_buffer_mode: mode,
                ..EaseIoConfig::default()
            });
            let r = run_app(&app, &mut rt, &mut m, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            assert_eq!(r.verdict, Some(Verdict::Correct));
            rt.dma_pool_used()
        };
        let dedicated = run(BufferMode::Dedicated);
        let shared = run(BufferMode::Shared { slot_bytes: 512 });
        assert!(
            shared < dedicated,
            "shared slots ({shared} B) must undercut dedicated ({dedicated} B)"
        );
    }

    // A tiny DMA-heavy multi-task app local to this test (avoids a circular
    // dev-dependency on the `apps` crate).
    fn apps_build(mcu: &mut Mcu) -> kernel::App {
        use kernel::{App, Inventory, TaskCtx, TaskDef, TaskResult, Transition};
        use mcu_emu::NvBuf;
        use std::rc::Rc;

        let srcs: Vec<NvBuf<i16>> = (0..3)
            .map(|_| NvBuf::alloc(&mut mcu.mem, Region::Fram, 128))
            .collect();
        let stage: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, 128);
        let out: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, 128);
        for (i, s) in srcs.iter().enumerate() {
            let data: Vec<i16> = (0..128).map(|j| (i as i16 + 1) * (j as i16 % 7)).collect();
            s.fill_from(&mut mcu.mem, &data);
        }
        let mk = |i: usize, src: NvBuf<i16>, last: bool| {
            move |ctx: &mut TaskCtx<'_>| -> TaskResult {
                ctx.dma_copy(src.addr(), stage.addr(), 256)?; // Private
                ctx.dma_copy(stage.addr(), out.addr(), 256)?; // Single
                ctx.compute(300)?;
                if last {
                    Ok(Transition::Done)
                } else {
                    Ok(Transition::To(kernel::TaskId(i as u16 + 1)))
                }
            }
        };
        let expected: Vec<i16> = (0..128).map(|j| 3 * (j % 7)).collect();
        let verify = move |m: &Mcu, _p: &periph::Peripherals| {
            if out.to_vec(&m.mem) == expected {
                kernel::Verdict::Correct
            } else {
                kernel::Verdict::Incorrect("stage pipeline mismatch".into())
            }
        };
        App {
            name: "dma-pipeline",
            tasks: (0..3)
                .map(|i| TaskDef {
                    name: "stage",
                    body: Rc::new(mk(i, srcs[i], i == 2)) as _,
                })
                .collect(),
            entry: kernel::TaskId(0),
            inventory: Inventory::default(),
            verify: Some(Rc::new(verify)),
        }
    }
}
