//! Regional privatization (paper §4.4, Fig. 6).
//!
//! A task containing N DMA operations is split into N+1 regions at the DMA
//! sites. Within a region, the first access to each non-volatile variable
//! snapshots its region-entry value into a private FRAM slot (with a
//! per-variable `regionalPriveFlag`); when the task re-executes and control
//! re-enters a region, every snapshotted variable is restored from its slot.
//!
//! Why this works where task-level privatization fails: a `Single` DMA that
//! completed does not repeat on re-execution, so memory state legitimately
//! differs *across* the DMA boundary. Each region's snapshot captures the
//! state *including* the effects of all earlier (now-skipped) DMAs, so
//! restoring per-region reconstructs exactly the state the original
//! execution saw at that point — CPU effects rolled back, DMA effects kept.
//!
//! Snapshot-at-first-access equals snapshot-at-region-entry because only the
//! CPU mutates variables inside a region (DMA is a region *boundary*), and
//! each variable's snapshot flag is persisted before the access proceeds.

use kernel::TaskId;
use mcu_emu::{AllocTag, EnergyCause, Mcu, PowerFailure, RawVar, Region, WorkKind};
use std::collections::{HashMap, HashSet};

/// Regional privatization state.
#[derive(Debug, Default)]
pub struct Regional {
    /// Persistent snapshot slots, reused across activations.
    slots: HashMap<(TaskId, u16, RawVar), RawVar>,
    /// Per-activation snapshot lists: (task, region) → [(master, slot)].
    snaps: HashMap<(TaskId, u16), Vec<(RawVar, RawVar)>>,
    /// Which (task, region, var) triples are snapshotted this activation
    /// (host mirror of the per-variable `regionalPriveFlag`s in FRAM).
    snapped: HashSet<(TaskId, u16, RawVar)>,
}

impl Regional {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `var` is snapshotted in `region` before an access proceeds.
    /// First touch copies the master into the private slot and sets the
    /// flag; later touches are free (the generated code's flag test is
    /// folded into the region-entry check).
    pub fn snap_before_access(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        region: u16,
        var: RawVar,
    ) -> Result<(), PowerFailure> {
        let key = (task, region, var);
        if self.snapped.contains(&key) {
            return Ok(());
        }
        let slot = *self.slots.entry(key).or_insert_with(|| RawVar {
            addr: mcu.mem.alloc(Region::Fram, var.width, AllocTag::Runtime),
            width: var.width,
        });
        // Copy master → private, then set the flag; both are runtime
        // overhead. The copy must complete before the flag is set so a
        // failure between them re-snapshots (the master is still clean:
        // the triggering access has not happened yet).
        mcu.with_cause(EnergyCause::DmaPriv, |m| {
            m.copy_var(WorkKind::Overhead, var, slot)
        })?;
        let c = mcu.cost.flag_write;
        mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
        self.snapped.insert(key);
        self.snaps
            .entry((task, region))
            .or_default()
            .push((var, slot));
        mcu.stats.bump("easeio_regional_snapshots");
        let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
        mcu.trace.emit_with(|| {
            easeio_trace::Event::task_instant(
                ts,
                e,
                task.0,
                easeio_trace::InstantKind::Privatize,
                "region_snapshot",
            )
        });
        Ok(())
    }

    /// Called when control enters `region` (task entry for region 0, the
    /// instruction after each DMA otherwise): restores every variable the
    /// region snapshotted in an earlier attempt of this activation.
    pub fn enter_region(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        region: u16,
    ) -> Result<(), PowerFailure> {
        // The generated code tests the region's privatization flag once.
        let c = mcu.cost.flag_check;
        mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
        let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
        mcu.trace.emit_with(|| {
            easeio_trace::Event::task_instant(
                ts,
                e,
                task.0,
                easeio_trace::InstantKind::RegionEnter,
                "region",
            )
        });
        let Some(entries) = self.snaps.get(&(task, region)) else {
            return Ok(());
        };
        // Restores are priced and applied one variable at a time; each
        // slot→master copy is idempotent, so a failure mid-restore simply
        // redoes the restore on the next attempt.
        for (master, slot) in entries.clone() {
            mcu.with_cause(EnergyCause::DmaPriv, |m| {
                m.copy_var(WorkKind::Overhead, slot, master)
            })?;
            mcu.stats.bump("easeio_regional_restores");
        }
        Ok(())
    }

    /// Region entry after a *diverged* re-execution: an upstream I/O
    /// produced a different output this attempt, so the region-entry state
    /// legitimately changed for every variable the new attempt has already
    /// rewritten. Restoring the old snapshot for those would reinstate
    /// values derived from the previous reading — mixing two executions'
    /// data (a gap in the paper's Fig 6 machinery, found by the
    /// differential model checker; see DESIGN.md §8). Per variable:
    ///
    /// * rewritten this attempt (by CPU or by a re-executed DMA) → the
    ///   master holds the fresh entry value: *refresh* the snapshot;
    /// * untouched this attempt → the master still holds the previous
    ///   attempt's in-region writes: *restore* it from the snapshot.
    pub fn reconcile_region(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        region: u16,
        fresh: &dyn Fn(RawVar) -> bool,
    ) -> Result<(), PowerFailure> {
        let c = mcu.cost.flag_check;
        mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
        let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
        mcu.trace.emit_with(|| {
            easeio_trace::Event::task_instant(
                ts,
                e,
                task.0,
                easeio_trace::InstantKind::RegionReconcile,
                "region",
            )
        });
        let Some(entries) = self.snaps.get(&(task, region)) else {
            return Ok(());
        };
        for (master, slot) in entries.clone() {
            if fresh(master) {
                mcu.with_cause(EnergyCause::DmaPriv, |m| {
                    m.copy_var(WorkKind::Overhead, master, slot)
                })?;
                mcu.stats.bump("easeio_regional_refreshes");
            } else {
                mcu.with_cause(EnergyCause::DmaPriv, |m| {
                    m.copy_var(WorkKind::Overhead, slot, master)
                })?;
                mcu.stats.bump("easeio_regional_restores");
            }
        }
        Ok(())
    }

    /// Number of snapshots currently held for `task` (commit pricing).
    pub fn snapshot_count(&self, task: TaskId) -> u64 {
        self.snaps
            .iter()
            .filter(|((t, _), _)| *t == task)
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Drops all of `task`'s snapshots at commit (caller has priced it).
    pub fn clear_task(&mut self, task: TaskId) {
        self.snaps.retain(|(t, _), _| *t != task);
        self.snapped.retain(|(t, _, _)| *t != task);
    }

    /// Total snapshot slots ever allocated (footprint reporting).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{NvVar, Scalar, Supply};

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn fig6_scenario_cpu_effects_rolled_back_dma_effects_kept() {
        // Reproduces the paper's Figure 6 flow:
        //   region 0: z = b0;   DMA(a0 → b0)  [Single, skipped on re-exec]
        //   region 1: t = b0;   a0 = z;
        // Power failure in region 1, then re-execution.
        let mut m = mcu();
        let mut r = Regional::new();
        let task = TaskId(0);
        let a0: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        let b0: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        a0.set(&mut m.mem, 100); // source of the DMA
        b0.set(&mut m.mem, 7); // original value the task must read

        // --- attempt 1 ---
        r.enter_region(&mut m, task, 0).unwrap();
        r.snap_before_access(&mut m, task, 0, b0.raw()).unwrap();
        let z = b0.get(&m.mem); // z = 7
                                // DMA executes: b0 ← a0 (region boundary).
        let a0_val = a0.get(&m.mem);
        b0.set(&mut m.mem, a0_val);
        r.enter_region(&mut m, task, 1).unwrap();
        r.snap_before_access(&mut m, task, 1, b0.raw()).unwrap();
        let _t = b0.get(&m.mem); // t = 100
        r.snap_before_access(&mut m, task, 1, a0.raw()).unwrap();
        a0.set(&mut m.mem, z); // a0 = 7  ← CPU write in region 1
                               // POWER FAILURE here (before commit).

        // --- attempt 2 (DMA skipped: Single) ---
        r.enter_region(&mut m, task, 0).unwrap();
        // Region-0 restore rolled b0 back to its pre-DMA value:
        assert_eq!(b0.get(&m.mem), 7, "region 0 must see the pre-DMA b0");
        r.snap_before_access(&mut m, task, 0, b0.raw()).unwrap();
        let z = b0.get(&m.mem);
        assert_eq!(z, 7);
        // DMA skipped. Enter region 1: restore brings back the post-DMA b0.
        r.enter_region(&mut m, task, 1).unwrap();
        assert_eq!(b0.get(&m.mem), 100, "region 1 must see the post-DMA b0");
        r.snap_before_access(&mut m, task, 1, b0.raw()).unwrap();
        let t = b0.get(&m.mem);
        r.snap_before_access(&mut m, task, 1, a0.raw()).unwrap();
        a0.set(&mut m.mem, z);
        // Final state identical to an uninterrupted run:
        assert_eq!((t, z, a0.get(&m.mem), b0.get(&m.mem)), (100, 7, 7, 100));
    }

    #[test]
    fn snapshot_taken_once_per_region_per_var() {
        let mut m = mcu();
        let mut r = Regional::new();
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        r.snap_before_access(&mut m, TaskId(0), 0, v.raw()).unwrap();
        r.snap_before_access(&mut m, TaskId(0), 0, v.raw()).unwrap();
        assert_eq!(m.stats.counter("easeio_regional_snapshots"), 1);
        // Same var in a different region is a separate snapshot.
        r.snap_before_access(&mut m, TaskId(0), 1, v.raw()).unwrap();
        assert_eq!(m.stats.counter("easeio_regional_snapshots"), 2);
        assert_eq!(r.snapshot_count(TaskId(0)), 2);
    }

    #[test]
    fn snapshot_captures_value_before_the_write() {
        let mut m = mcu();
        let mut r = Regional::new();
        let task = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        v.set(&mut m.mem, 5);
        // attempt 1: write 9 (snap first), then fail.
        r.snap_before_access(&mut m, task, 0, v.raw()).unwrap();
        v.set(&mut m.mem, 9);
        // attempt 2: restore yields the pre-write value.
        r.enter_region(&mut m, task, 0).unwrap();
        assert_eq!(v.get(&m.mem), 5);
    }

    #[test]
    fn commit_clears_but_reuses_slots() {
        let mut m = mcu();
        let mut r = Regional::new();
        let task = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        r.snap_before_access(&mut m, task, 0, v.raw()).unwrap();
        r.clear_task(task);
        assert_eq!(r.snapshot_count(task), 0);
        // New activation: snapshot again, no new slot allocated.
        r.snap_before_access(&mut m, task, 0, v.raw()).unwrap();
        assert_eq!(r.slot_count(), 1);
        // And the stale snapshot from the previous activation is gone:
        // restoring now uses the new snapshot value.
        v.set(&mut m.mem, 42);
        r.clear_task(task);
        r.snap_before_access(&mut m, task, 0, v.raw()).unwrap();
        v.set(&mut m.mem, 1);
        r.enter_region(&mut m, task, 0).unwrap();
        assert_eq!(v.get(&m.mem), 42);
    }

    #[test]
    fn raw_value_write_uses_scalar_roundtrip() {
        // Guard against raw/typed mismatches in the test helpers themselves.
        let mut m = mcu();
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        v.raw().store(&mut m.mem, (-3i32).to_raw());
        assert_eq!(v.get(&m.mem), -3);
    }
}
