//! EaseIO — efficient and safe I/O operations for intermittent systems.
//!
//! This crate is the paper's primary contribution: an intermittent-computing
//! runtime that attaches *re-execution semantics* to peripheral operations so
//! a re-executed task skips I/O whose previous effect is still valid, while
//! staying memory-consistent and control-flow-safe. It implements
//! [`kernel::Runtime`] and plugs into the same executor as the baselines.
//!
//! The implementation mirrors the paper's architecture:
//!
//! * [`flags`] — the lock flag / timestamp / private-output control block
//!   the compiler front-end emits per `_call_IO` site (paper Fig. 5);
//! * [`blocks`] — `_IO_block_begin/_end` nesting and semantic precedence:
//!   the outermost decisive block wins, and a violated block forces its
//!   inner operations to re-execute (paper §3.3, §4.2.1);
//! * [`deps`] — data-dependence tracking: an operation re-executes when an
//!   operation it depends on re-executed (paper §3.3.2, §4.3.1);
//! * [`dma_rules`] — run-time DMA semantics resolution from operand memory
//!   types, including the two-phase `Private` copy through a privatization
//!   buffer and the `Exclude` opt-out (paper §4.3);
//! * [`regional`] — regional privatization: tasks are split into regions at
//!   DMA sites and non-volatile variables are snapshotted per region and
//!   restored on region re-entry (paper §4.4, Fig. 6);
//! * [`runtime`] — [`runtime::EaseIoRuntime`], the glue implementing
//!   [`kernel::Runtime`].
//!
//! The original system performs a Clang source-to-source transformation;
//! here the runtime executes the same injected control logic directly (the
//! substitution argument is in DESIGN.md §2).

pub mod blocks;
pub mod deps;
pub mod dma_rules;
pub mod flags;
pub mod regional;
pub mod runtime;

pub use runtime::{EaseIoConfig, EaseIoRuntime};
