//! Data-dependence tracking between I/O operations (paper §3.3.2, §4.3.1).
//!
//! If operation B consumes the output of operation A and A re-executed after
//! a reboot, B must re-execute too — otherwise memory holds A's fresh value
//! while the world saw B act on the stale one (e.g. a `Single` send that
//! never re-sends updated `Timely` sensor readings). The compiler front-end
//! wires A's `constraint_check` flag to B's `RelatedConstFlag`; here we keep
//! the equivalent: the set of call sites that physically executed during the
//! current attempt.

use std::collections::HashSet;

/// Execution record of the current attempt.
#[derive(Debug, Default)]
pub struct DepTracker {
    executed: HashSet<u16>,
}

impl DepTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that call site `site` physically executed in this attempt.
    pub fn mark_executed(&mut self, site: u16) {
        self.executed.insert(site);
    }

    /// Whether any of `deps` executed in this attempt — if so, the dependent
    /// operation must re-execute regardless of its own lock.
    pub fn any_executed(&self, deps: &[u16]) -> bool {
        deps.iter().any(|d| self.executed.contains(d))
    }

    /// Whether a specific site executed this attempt (used by DMA's
    /// `RelatedConstFlag`).
    pub fn executed(&self, site: u16) -> bool {
        self.executed.contains(&site)
    }

    /// Clears the record at attempt (re-)entry.
    pub fn reset(&mut self) {
        self.executed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_executions_within_attempt() {
        let mut d = DepTracker::new();
        assert!(!d.any_executed(&[0, 1]));
        d.mark_executed(1);
        assert!(d.any_executed(&[0, 1]));
        assert!(!d.any_executed(&[0]));
        assert!(d.executed(1));
        assert!(!d.executed(0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = DepTracker::new();
        d.mark_executed(3);
        d.reset();
        assert!(!d.executed(3));
        assert!(!d.any_executed(&[3]));
    }

    #[test]
    fn empty_dep_list_never_forces() {
        let mut d = DepTracker::new();
        d.mark_executed(0);
        assert!(!d.any_executed(&[]));
    }
}
