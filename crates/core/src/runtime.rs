//! The EaseIO runtime: glue between the task kernel and the EaseIO
//! mechanisms (paper §4).
//!
//! Responsibilities at each hook:
//!
//! * **task entry** — reset the volatile nesting/dependence state; on
//!   re-execution, restore region 0's privatized variables;
//! * **variable access** — regional snapshot-before-first-access, then the
//!   plain access (paper §4.4);
//! * **`_call_IO`** — semantic precedence (enclosing block decision →
//!   dependence forcing → own semantics), lock/timestamp checks, private
//!   output restoration (paper §4.2);
//! * **`_IO_block_begin/_end`** — delegated to [`crate::blocks`];
//! * **`_DMA_copy`** — run-time typing and two-phase privatization
//!   ([`crate::dma_rules`]), then a region boundary: the region counter
//!   advances and the new region's snapshot is restored (paper §4.3–4.4);
//! * **commit** — clear every lock, block flag, DMA flag, and regional
//!   snapshot the activation created, priced as one atomic step.

use crate::blocks::{BlockState, BlockTable};
use crate::deps::DepTracker;
use crate::dma_rules::DmaTable;
use crate::flags::IoSlotTable;
use crate::regional::Regional;
use kernel::io::perform_io;
use kernel::{
    DmaAnnotation, DmaOutcome, Fault, IoFailure, IoOp, IoOutcome, ReexecSemantics, Runtime, TaskId,
};
use mcu_emu::{Addr, Cost, EnergyCause, Mcu, PowerFailure, RawVar, WorkKind};
use periph::Peripherals;
use std::collections::HashSet;

/// EaseIO configuration.
#[derive(Debug, Clone)]
pub struct EaseIoConfig {
    /// Size of the DMA privatization buffer pool in bytes. The paper's
    /// evaluation uses 4 KB; set 0 for applications without DMA.
    pub dma_priv_pool_bytes: u32,
    /// Buffer-assignment policy for `Private` transfers: dedicated per-site
    /// buffers (the paper's configuration) or cross-task shared slots with
    /// a hard size check (the paper's §6 buffer-sharing discussion).
    pub dma_buffer_mode: crate::dma_rules::BufferMode,
    /// Whether the platform has a persistent timekeeping circuit (paper
    /// §4.1, citing de Winkel et al.). Without one, elapsed time across a
    /// power failure is unknowable and every `Timely` check conservatively
    /// expires — `Timely` degrades to `Always` plus bookkeeping. This is
    /// the timekeeping ablation.
    pub persistent_timekeeper: bool,
}

impl Default for EaseIoConfig {
    fn default() -> Self {
        Self {
            dma_priv_pool_bytes: 4096,
            dma_buffer_mode: crate::dma_rules::BufferMode::Dedicated,
            persistent_timekeeper: true,
        }
    }
}

/// The EaseIO runtime.
#[derive(Debug)]
pub struct EaseIoRuntime {
    io: IoSlotTable,
    blocks: BlockTable,
    dma: DmaTable,
    regional: Regional,
    deps: DepTracker,
    current_region: u16,
    persistent_timekeeper: bool,
    /// Set when a re-executed I/O produced a *different* output than its
    /// previous execution this attempt. From that point on, downstream
    /// regional snapshots are reconciled per variable instead of blindly
    /// restored, and downstream DMA completion flags are untrusted.
    diverged: bool,
    /// Variables the CPU wrote during the current attempt.
    written_this_attempt: HashSet<RawVar>,
    /// Destination ranges of DMA transfers performed this attempt.
    dma_written: Vec<(Addr, u32)>,
    /// Destination ranges holding data derived from diverged values
    /// (written by taint-forced or dependence-forced transfers).
    tainted_dma: Vec<(Addr, u32)>,
}

impl Default for EaseIoRuntime {
    fn default() -> Self {
        Self::new(EaseIoConfig::default())
    }
}

impl EaseIoRuntime {
    /// Creates the runtime.
    pub fn new(cfg: EaseIoConfig) -> Self {
        let blocks = if cfg.persistent_timekeeper {
            BlockTable::new()
        } else {
            BlockTable::new().without_persistent_timer()
        };
        Self {
            io: IoSlotTable::new(),
            blocks,
            dma: DmaTable::with_mode(cfg.dma_priv_pool_bytes, cfg.dma_buffer_mode),
            regional: Regional::new(),
            deps: DepTracker::new(),
            current_region: 0,
            persistent_timekeeper: cfg.persistent_timekeeper,
            diverged: false,
            written_this_attempt: HashSet::new(),
            dma_written: Vec::new(),
            tainted_dma: Vec::new(),
        }
    }

    /// Evaluates the `RelatedConstFlag`s: one flag check per dependency,
    /// true if any dependency re-executed this attempt.
    fn deps_force(&mut self, mcu: &mut Mcu, deps: &[u16]) -> Result<bool, PowerFailure> {
        if deps.is_empty() {
            return Ok(false);
        }
        let c = mcu.cost.flag_check.times(deps.len() as u64);
        mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
        Ok(self.deps.any_executed(deps))
    }

    /// Executes the operation and records completion state.
    #[allow(clippy::too_many_arguments)]
    fn execute_io(
        &mut self,
        mcu: &mut Mcu,
        periph: &mut Peripherals,
        task: TaskId,
        site: u16,
        op: &IoOp,
        sem: ReexecSemantics,
        _in_block: bool,
    ) -> Result<IoOutcome, IoFailure> {
        // Divergence check: if this site already produced a value in this
        // activation, compare against it after executing. A changed output
        // means downstream state derived from the old value is stale.
        let slot = self.io.ensure(mcu, task, site);
        let prev = if self.io.out_recorded(task, site) {
            Some(self.io.load_out(mcu, slot)?)
        } else {
            None
        };
        // The paper privatizes every return value used across failures:
        // Single/Timely ops always, and any op inside a block (Fig. 3 shows
        // `humd_priv = Humd()` for an Always op in a block). Bare Always
        // ops store only the output (for the divergence comparison above),
        // never a lock.
        let needs_lock = !matches!(sem, ReexecSemantics::Always);
        let value = if needs_lock {
            // Atomic I/O section: the timestamp read and the full completion
            // bookkeeping are charged *before* the operation, so once its
            // external effect happens nothing fallible separates it from
            // the lock store. A failure in between would otherwise
            // re-perform the `Single` op on reboot (the power-failure sweep
            // catches exactly that as a duplicated radio packet).
            let ts = if matches!(sem, ReexecSemantics::Timely { .. }) {
                Some(mcu.with_cause(EnergyCause::Commit, |m| {
                    m.read_timestamp(WorkKind::Overhead)
                })?)
            } else {
                None
            };
            let c = self.io.completion_cost(mcu, slot, true, ts.is_some());
            mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
            let value = match perform_io(mcu, periph, op, task, site) {
                Ok(v) => v,
                // A post-effect fault (radio NACK): the packet is in the
                // air and the completion record is already paid for, so
                // absorb the fault — record completion with the effect's
                // value and never re-run the operation. This is what keeps
                // `Single` effect-idempotent under the retry loop.
                Err(IoFailure::Fault(f)) if f.effect_done => {
                    mcu.stats.bump("easeio_effect_fault_absorbed");
                    f.value
                }
                Err(e) => return Err(e),
            };
            self.deps.mark_executed(site);
            self.io
                .record_completion_prepaid(mcu, task, site, slot, value, true, ts);
            value
        } else {
            // No lock: nothing distinguishes this attempt's effect from a
            // re-execution, so a fault — post-effect or not — goes to the
            // task context's retry loop (re-running an `Always` op is
            // within its semantics).
            let value = perform_io(mcu, periph, op, task, site)?;
            self.deps.mark_executed(site);
            self.io.store_out(mcu, task, site, slot, value)?;
            value
        };
        if let Some(old) = prev {
            if old != value {
                self.diverged = true;
                mcu.stats.bump("easeio_divergences");
            }
        }
        Ok(IoOutcome {
            value,
            executed: true,
        })
    }

    /// Whether `[base, base+len)` overlaps data written from diverged
    /// values this attempt (CPU writes, or destinations of forced DMAs).
    fn range_tainted(&self, base: Addr, len: u32) -> bool {
        let var_hit = self.written_this_attempt.iter().any(|v| {
            v.addr.region == base.region
                && v.addr.offset < base.offset + len
                && base.offset < v.addr.offset + v.width
        });
        var_hit
            || self.tainted_dma.iter().any(|(b, l)| {
                b.region == base.region
                    && b.offset < base.offset + len
                    && base.offset < b.offset + l
            })
    }

    /// Number of FRAM control slots allocated for I/O sites.
    pub fn io_slot_count(&self) -> usize {
        self.io.slot_count()
    }

    /// Bytes of the DMA privatization pool in use.
    pub fn dma_pool_used(&self) -> u32 {
        self.dma.pool_used()
    }

    /// Number of regional-privatization slots allocated.
    pub fn regional_slot_count(&self) -> usize {
        self.regional.slot_count()
    }
}

impl Runtime for EaseIoRuntime {
    fn name(&self) -> &'static str {
        "EaseIO"
    }

    fn on_task_entry(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        reexecution: bool,
    ) -> Result<(), PowerFailure> {
        self.blocks.reset_stack();
        self.deps.reset();
        self.current_region = 0;
        self.diverged = false;
        self.written_this_attempt.clear();
        self.dma_written.clear();
        self.tainted_dma.clear();
        if reexecution {
            // Restore region 0's privatized variables (Fig. 6's recovery at
            // the head of the first region). Region 0's entry state is the
            // task's committed state, which never diverges.
            self.regional.enter_region(mcu, task, 0)?;
        }
        Ok(())
    }

    fn commit_cost(&self, mcu: &Mcu, task: TaskId) -> Cost {
        // One flag write per lock/block/DMA flag to clear plus one per
        // regional snapshot flag, all cleared in one atomic commit step.
        let flags = self.io.dirty_for(task)
            + self.blocks.dirty_for(task)
            + self.dma.dirty_for(task)
            + self.regional.snapshot_count(task);
        mcu.cost.flag_write.times(flags)
    }

    fn commit_apply(&mut self, mcu: &mut Mcu, task: TaskId) {
        // Pricing probe for the crash sweep: commit was priced from the raw
        // dirty lists (`dirty_for`), but each site's flags clear exactly
        // once, so the priced count must equal the *distinct* count. A
        // mismatch means a duplicated dirty entry double-charged the commit.
        if self.io.dirty_for(task) != self.io.distinct_dirty_for(task)
            || self.dma.dirty_for(task) != self.dma.distinct_dirty_for(task)
        {
            mcu.stats.bump("probe_commit_overpriced");
        }
        self.io.clear_task(mcu, task);
        self.blocks.clear_task(mcu, task);
        self.dma.clear_task(mcu, task);
        self.regional.clear_task(task);
    }

    fn read_var(&mut self, mcu: &mut Mcu, task: TaskId, var: RawVar) -> Result<u64, PowerFailure> {
        if var.addr.is_nonvolatile() {
            self.regional
                .snap_before_access(mcu, task, self.current_region, var)?;
        }
        mcu.load_var(WorkKind::App, var)
    }

    fn write_var(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        var: RawVar,
        raw: u64,
    ) -> Result<(), PowerFailure> {
        if var.addr.is_nonvolatile() {
            self.regional
                .snap_before_access(mcu, task, self.current_region, var)?;
            self.written_this_attempt.insert(var);
        }
        mcu.store_var(WorkKind::App, var, raw)
    }

    fn io_call(
        &mut self,
        mcu: &mut Mcu,
        periph: &mut Peripherals,
        task: TaskId,
        site: u16,
        op: &IoOp,
        sem: ReexecSemantics,
        deps: &[u16],
    ) -> Result<IoOutcome, IoFailure> {
        let in_block = self.blocks.in_block();
        match self.blocks.enclosing_decision() {
            BlockState::Satisfied => {
                // The whole block body is skipped; only the private output
                // is restored where the value is used.
                let slot = self.io.ensure(mcu, task, site);
                let value = self.io.restore_out(mcu, slot)?;
                Ok(IoOutcome {
                    value,
                    executed: false,
                })
            }
            BlockState::Violated => {
                // Block semantics override the operation's own lock.
                self.execute_io(mcu, periph, task, site, op, sem, in_block)
            }
            BlockState::Neutral => match sem {
                ReexecSemantics::Always => {
                    self.execute_io(mcu, periph, task, site, op, sem, in_block)
                }
                ReexecSemantics::Single => {
                    let slot = self.io.ensure(mcu, task, site);
                    let locked = self.io.lock_is_set(mcu, slot)?;
                    let forced = self.deps_force(mcu, deps)?;
                    if locked && !forced {
                        let value = self.io.restore_out(mcu, slot)?;
                        return Ok(IoOutcome {
                            value,
                            executed: false,
                        });
                    }
                    self.execute_io(mcu, periph, task, site, op, sem, in_block)
                }
                ReexecSemantics::Timely { window_us } => {
                    let slot = self.io.ensure(mcu, task, site);
                    let locked = self.io.lock_is_set(mcu, slot)?;
                    let forced = self.deps_force(mcu, deps)?;
                    if locked && !forced && self.persistent_timekeeper {
                        let ts = self.io.last_timestamp(mcu, slot)?;
                        let now = mcu.with_cause(EnergyCause::Commit, |m| {
                            m.read_timestamp(WorkKind::Overhead)
                        })?;
                        let fresh = now.saturating_sub(ts) <= window_us;
                        let (ets, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
                        mcu.trace.emit_with(|| {
                            easeio_trace::Event::task_instant(
                                ets,
                                e,
                                task.0,
                                easeio_trace::InstantKind::TimestampCheck,
                                if fresh { "fresh" } else { "expired" },
                            )
                        });
                        if fresh {
                            // Staleness probe for the crash sweep: the
                            // control block judged the sample fresh, so its
                            // true age must be within the window (plus a
                            // small slack for the restore path's own cost).
                            // A hit means a corrupted timestamp let a stale
                            // value through.
                            let age = mcu.now_us().saturating_sub(ts);
                            if age > window_us + 50 {
                                mcu.stats.bump("probe_timely_stale");
                            }
                            let value = self.io.restore_out(mcu, slot)?;
                            return Ok(IoOutcome {
                                value,
                                executed: false,
                            });
                        }
                        mcu.stats.bump("easeio_timely_expired");
                    }
                    self.execute_io(mcu, periph, task, site, op, sem, in_block)
                }
            },
        }
    }

    fn degraded_fallback(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        window_us: u64,
        _last: Option<(i32, u64)>,
    ) -> Result<Option<i32>, PowerFailure> {
        // Serve the FRAM-resident private output only if its recorded
        // timestamp proves the value is still within the `Timely` window.
        // Without a persistent timekeeper — or without a recorded
        // timestamp — the age is unknowable: refuse rather than let stale
        // data masquerade as fresh (the harness cache in `_last` is the
        // logic analyzer's knowledge, not the MCU's, so it is ignored).
        if !self.persistent_timekeeper {
            return Ok(None);
        }
        let slot = self.io.ensure(mcu, task, site);
        let ts = self.io.last_timestamp(mcu, slot)?;
        if ts == 0 {
            return Ok(None);
        }
        let now = mcu.read_timestamp(WorkKind::Overhead)?;
        if now.saturating_sub(ts) > window_us {
            mcu.stats.bump("easeio_fallback_refused_stale");
            return Ok(None);
        }
        let value = self.io.restore_out(mcu, slot)?;
        Ok(Some(value))
    }

    fn io_block_begin(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        block: u16,
        sem: ReexecSemantics,
    ) -> Result<(), PowerFailure> {
        self.blocks.begin(mcu, task, block, sem)
    }

    fn io_block_end(&mut self, mcu: &mut Mcu, task: TaskId) -> Result<(), PowerFailure> {
        self.blocks.end(mcu, task)
    }

    fn dma_copy(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        src: Addr,
        dst: Addr,
        bytes: u32,
        annotation: DmaAnnotation,
        related: &[u16],
    ) -> Result<DmaOutcome, Fault> {
        // RelatedConstFlag: did a producing I/O re-execute this attempt?
        let forced = if related.is_empty() {
            false
        } else {
            let c = mcu.cost.flag_check.times(related.len() as u64);
            mcu.with_cause(EnergyCause::DmaPriv, |m| m.spend(WorkKind::Overhead, c))?;
            related.iter().any(|s| self.deps.executed(*s))
        };
        // After a diverged re-execution, a completed transfer must repeat
        // only if its *source* holds data derived from the diverged values
        // (CPU-rewritten ranges or destinations of other forced transfers).
        // Forcing unconditionally would re-run WAR chains — e.g. a staging
        // fetch whose own write-back already clobbered the source — on
        // corrupted data; the phase-1 privatization snapshot of an
        // untainted source stays valid instead.
        let src_tainted = self.diverged && self.range_tainted(src, bytes);
        let executed = self.dma.copy(
            mcu,
            task,
            site,
            src,
            dst,
            bytes,
            annotation,
            forced || src_tainted,
        )?;
        if executed {
            self.dma_written.push((dst, bytes));
            if forced || src_tainted {
                self.tainted_dma.push((dst, bytes));
            }
        }
        // The DMA site is a region boundary: enter the next region. Its
        // snapshot reflects the previous attempt's values; after a diverged
        // re-execution, reconcile per variable instead of blindly restoring.
        self.current_region += 1;
        if self.diverged {
            let written = &self.written_this_attempt;
            let dma_written = &self.dma_written;
            let fresh = move |var: RawVar| -> bool {
                written.contains(&var)
                    || dma_written.iter().any(|(base, len)| {
                        var.addr.region == base.region
                            && var.addr.offset < base.offset + len
                            && base.offset < var.addr.offset + var.width
                    })
            };
            self.regional
                .reconcile_region(mcu, task, self.current_region, &fresh)?;
        } else {
            self.regional.enter_region(mcu, task, self.current_region)?;
        }
        Ok(DmaOutcome { executed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{run_app, App, ExecConfig, Inventory, Outcome, TaskCtx, TaskDef, Transition};
    use mcu_emu::{NvVar, Region, Supply, TimerResetConfig};
    use periph::Sensor;
    use std::rc::Rc;

    fn continuous() -> (Mcu, Peripherals) {
        (Mcu::new(Supply::continuous()), Peripherals::new(5))
    }

    #[test]
    fn single_io_executes_once_across_attempts() {
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        let op = IoOp::Sense(Sensor::Temp);
        let r1 = rt
            .io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Single, &[])
            .unwrap();
        assert!(r1.executed);
        // Simulated failure: re-enter.
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let r2 = rt
            .io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Single, &[])
            .unwrap();
        assert!(!r2.executed, "Single op must be skipped after completion");
        assert_eq!(r2.value, r1.value, "restored value matches the original");
        assert_eq!(mcu.stats.io_executed, 1);
    }

    #[test]
    fn timely_io_reexecutes_only_after_expiry() {
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let sem = ReexecSemantics::Timely { window_us: 50_000 };
        let op = IoOp::Sense(Sensor::Temp);
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        let r1 = rt.io_call(&mut mcu, &mut p, t, 0, &op, sem, &[]).unwrap();
        assert!(r1.executed);
        // Fresh: restored.
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let r2 = rt.io_call(&mut mcu, &mut p, t, 0, &op, sem, &[]).unwrap();
        assert!(!r2.executed);
        assert_eq!(r2.value, r1.value);
        // Expired: re-executed.
        mcu.spend(WorkKind::App, Cost::new(60_000, 0)).unwrap();
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let r3 = rt.io_call(&mut mcu, &mut p, t, 0, &op, sem, &[]).unwrap();
        assert!(r3.executed);
        assert_eq!(mcu.stats.counter("easeio_timely_expired"), 1);
    }

    #[test]
    fn always_io_reexecutes_every_attempt_without_flag_cost() {
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let op = IoOp::Sense(Sensor::Pres);
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        rt.io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Always, &[])
            .unwrap();
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let r = rt
            .io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Always, &[])
            .unwrap();
        assert!(r.executed);
        assert_eq!(mcu.stats.io_executed, 2);
        // Always ops carry no lock, but they do record their output for
        // divergence detection.
        assert_eq!(rt.io_slot_count(), 1);
    }

    #[test]
    fn dependence_forces_single_to_reexecute() {
        // Fig. 4's data-dependence rule: Send(Single) consuming a Timely
        // temp must re-send when the temp re-executed.
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let temp = IoOp::Sense(Sensor::Temp);
        let timely = ReexecSemantics::Timely { window_us: 10_000 };
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        let v1 = rt
            .io_call(&mut mcu, &mut p, t, 0, &temp, timely, &[])
            .unwrap();
        let send = IoOp::Send {
            payload: vec![v1.value],
        };
        rt.io_call(&mut mcu, &mut p, t, 1, &send, ReexecSemantics::Single, &[0])
            .unwrap();
        assert_eq!(p.radio.count(), 1);
        // Long outage: the temp expires and re-executes; the send must too.
        mcu.spend(WorkKind::App, Cost::new(50_000, 0)).unwrap();
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let v2 = rt
            .io_call(&mut mcu, &mut p, t, 0, &temp, timely, &[])
            .unwrap();
        assert!(v2.executed);
        let send2 = IoOp::Send {
            payload: vec![v2.value],
        };
        let r = rt
            .io_call(
                &mut mcu,
                &mut p,
                t,
                1,
                &send2,
                ReexecSemantics::Single,
                &[0],
            )
            .unwrap();
        assert!(r.executed, "dependent Single must re-execute");
        assert_eq!(p.radio.count(), 2);
        assert_eq!(p.radio.packets()[1].payload, vec![v2.value]);
    }

    #[test]
    fn satisfied_block_skips_inner_ops_and_restores_outputs() {
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let temp = IoOp::Sense(Sensor::Temp);
        let humd = IoOp::Sense(Sensor::Humd);
        // First pass: the Fig. 3 block — Timely temp + Always humd inside a
        // Single block.
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        rt.io_block_begin(&mut mcu, t, 0, ReexecSemantics::Single)
            .unwrap();
        let t1 = rt
            .io_call(
                &mut mcu,
                &mut p,
                t,
                0,
                &temp,
                ReexecSemantics::timely_ms(10),
                &[],
            )
            .unwrap();
        let h1 = rt
            .io_call(&mut mcu, &mut p, t, 1, &humd, ReexecSemantics::Always, &[])
            .unwrap();
        rt.io_block_end(&mut mcu, t).unwrap();
        // Re-execution after failure: block satisfied, nothing re-executes —
        // even the Always op.
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        rt.io_block_begin(&mut mcu, t, 0, ReexecSemantics::Single)
            .unwrap();
        let t2 = rt
            .io_call(
                &mut mcu,
                &mut p,
                t,
                0,
                &temp,
                ReexecSemantics::timely_ms(10),
                &[],
            )
            .unwrap();
        let h2 = rt
            .io_call(&mut mcu, &mut p, t, 1, &humd, ReexecSemantics::Always, &[])
            .unwrap();
        rt.io_block_end(&mut mcu, t).unwrap();
        assert!(!t2.executed && !h2.executed);
        assert_eq!((t2.value, h2.value), (t1.value, h1.value));
        assert_eq!(mcu.stats.io_executed, 2);
    }

    #[test]
    fn violated_timely_block_forces_single_inner_op() {
        // §4.2.1: a Timely block expiring overrides an inner Single lock.
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let pres = IoOp::Sense(Sensor::Pres);
        let block_sem = ReexecSemantics::Timely { window_us: 1_000 };
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        rt.io_block_begin(&mut mcu, t, 0, block_sem).unwrap();
        rt.io_call(&mut mcu, &mut p, t, 0, &pres, ReexecSemantics::Single, &[])
            .unwrap();
        rt.io_block_end(&mut mcu, t).unwrap();
        // Outage far beyond the block window.
        mcu.spend(WorkKind::App, Cost::new(10_000, 0)).unwrap();
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        rt.io_block_begin(&mut mcu, t, 0, block_sem).unwrap();
        let r = rt
            .io_call(&mut mcu, &mut p, t, 0, &pres, ReexecSemantics::Single, &[])
            .unwrap();
        assert!(r.executed, "violated block re-executes Single inner ops");
        rt.io_block_end(&mut mcu, t).unwrap();
    }

    #[test]
    fn without_persistent_timer_timely_degrades_to_always() {
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::new(EaseIoConfig {
            persistent_timekeeper: false,
            ..EaseIoConfig::default()
        });
        let t = TaskId(0);
        let sem = ReexecSemantics::Timely {
            window_us: 1_000_000,
        };
        let op = IoOp::Sense(Sensor::Temp);
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        rt.io_call(&mut mcu, &mut p, t, 0, &op, sem, &[]).unwrap();
        // Immediately after (well within any window) the sample would be
        // fresh — but without a persistent timer the runtime cannot know,
        // so it must re-sense.
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let r = rt.io_call(&mut mcu, &mut p, t, 0, &op, sem, &[]).unwrap();
        assert!(r.executed, "no timekeeper → conservative re-execution");
        assert_eq!(mcu.stats.io_executed, 2);
    }

    #[test]
    fn commit_resets_semantics_for_next_activation() {
        let (mut mcu, mut p) = continuous();
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let op = IoOp::Sense(Sensor::Temp);
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        rt.io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Single, &[])
            .unwrap();
        rt.on_task_commit(&mut mcu, t).unwrap();
        // A *new* activation of the same task senses again.
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        let r = rt
            .io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Single, &[])
            .unwrap();
        assert!(r.executed);
    }

    #[test]
    fn end_to_end_unsafe_branch_is_safe_under_easeio() {
        // The Fig. 2c app: branch on a sensed temperature; blind
        // re-execution can set both flags, EaseIO cannot.
        let mk_app = |mcu: &mut Mcu| {
            let stdy: NvVar<u8> = NvVar::alloc(&mut mcu.mem, Region::Fram);
            let alarm: NvVar<u8> = NvVar::alloc(&mut mcu.mem, Region::Fram);
            let body = move |ctx: &mut TaskCtx<'_>| {
                let temp = ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::Single)?;
                ctx.compute(2_000)?;
                if temp < 1000 {
                    ctx.write(stdy, 1u8)?;
                } else {
                    ctx.write(alarm, 1u8)?;
                }
                ctx.compute(2_000)?;
                Ok(Transition::Done)
            };
            let app = App {
                name: "branch",
                tasks: vec![TaskDef {
                    name: "sense",
                    body: Rc::new(body),
                }],
                entry: TaskId(0),
                inventory: Inventory::default(),
                verify: None,
            };
            (app, stdy, alarm)
        };
        // Try many seeds; EaseIO must never set both flags.
        for seed in 0..40 {
            let cfg = TimerResetConfig {
                on_min_us: 2_000,
                on_max_us: 7_000,
                off_min_us: 2_000,
                off_max_us: 20_000,
            };
            let mut mcu = Mcu::new(Supply::timer(cfg, seed));
            let mut p = Peripherals::new(seed.wrapping_mul(7));
            let (app, stdy, alarm) = mk_app(&mut mcu);
            let mut rt = EaseIoRuntime::default();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            let both = stdy.get(&mcu.mem) == 1 && alarm.get(&mcu.mem) == 1;
            assert!(!both, "seed {seed}: EaseIO set both stdy and alarm");
        }
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;
    use kernel::{run_app, App, ExecConfig, Inventory, Outcome, TaskCtx, TaskDef, Transition};
    use mcu_emu::{NvBuf, NvVar, Region, Supply, TimerResetConfig};
    use periph::Sensor;
    use std::rc::Rc;

    /// The distilled stale-snapshot scenario the model checker found
    /// (DESIGN.md §8): a Timely block whose refresh changes a value that
    /// crosses a DMA region boundary. Regional snapshots must reconcile,
    /// not blindly restore.
    #[test]
    fn refreshed_timely_value_survives_region_boundaries() {
        let mk = |mcu: &mut Mcu| -> (App, NvVar<i32>, NvVar<i32>) {
            let reading: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
            let used: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
            let a: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, 8);
            let b: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, 8);
            let body = move |ctx: &mut TaskCtx<'_>| -> kernel::TaskResult {
                // Region 0: a short-window Timely sense feeding a variable.
                let t = ctx.io_block(ReexecSemantics::Timely { window_us: 2_000 }, |ctx| {
                    ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::Always)
                })?;
                ctx.write(reading, t)?;
                // Region boundary: an unrelated Single DMA.
                ctx.dma_copy(a.addr(), b.addr(), 8)?;
                // Region 1: consume the value written in region 0.
                let r = ctx.read(reading)?;
                ctx.write(used, r)?;
                ctx.compute(2_500)?;
                Ok(Transition::Done)
            };
            let app = App {
                name: "divergence",
                tasks: vec![TaskDef {
                    name: "t",
                    body: Rc::new(body),
                }],
                entry: kernel::TaskId(0),
                inventory: Inventory::default(),
                verify: None,
            };
            (app, reading, used)
        };
        // Long outages guarantee every re-entry expires the 2 ms block.
        for seed in 0..60u64 {
            let cfg = TimerResetConfig {
                on_min_us: 4_000,
                on_max_us: 8_000,
                off_min_us: 20_000,
                off_max_us: 80_000,
            };
            let mut mcu = Mcu::new(Supply::timer(cfg, seed));
            let mut p = Peripherals::new(seed);
            let (app, reading, used) = mk(&mut mcu);
            let mut rt = EaseIoRuntime::default();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            // Memory consistency: the consumed value is exactly the final
            // reading — never a stale snapshot of an earlier attempt.
            assert_eq!(
                used.get(&mcu.mem),
                reading.get(&mcu.mem),
                "seed {seed}: region 1 used a stale region-0 value"
            );
        }
    }

    /// Deterministic Always ops (same output on re-execution) must NOT
    /// trigger divergence — otherwise every re-attempt would needlessly
    /// re-run downstream DMAs.
    #[test]
    fn deterministic_reexecution_does_not_diverge() {
        let (mut mcu, mut p) = (Mcu::new(Supply::continuous()), Peripherals::new(1));
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        // A Delay op always returns 0: re-executing it cannot diverge.
        let op = IoOp::Delay {
            cost: mcu_emu::Cost::new(100, 100),
        };
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        rt.io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Always, &[])
            .unwrap();
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        rt.io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Always, &[])
            .unwrap();
        assert_eq!(mcu.stats.counter("easeio_divergences"), 0);
    }

    /// A sensor whose reading changes across attempts does diverge.
    #[test]
    fn changed_sensor_reading_registers_divergence() {
        let (mut mcu, mut p) = (Mcu::new(Supply::continuous()), Peripherals::new(1));
        let mut rt = EaseIoRuntime::default();
        let t = TaskId(0);
        let op = IoOp::Sense(Sensor::Temp);
        rt.on_task_entry(&mut mcu, t, false).unwrap();
        let a = rt
            .io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Always, &[])
            .unwrap();
        // Let the environment drift well past a noise bucket.
        mcu.spend(WorkKind::App, Cost::new(500_000, 0)).unwrap();
        rt.on_task_entry(&mut mcu, t, true).unwrap();
        let b = rt
            .io_call(&mut mcu, &mut p, t, 0, &op, ReexecSemantics::Always, &[])
            .unwrap();
        assert_ne!(a.value, b.value, "environment must have drifted");
        assert_eq!(mcu.stats.counter("easeio_divergences"), 1);
    }
}
