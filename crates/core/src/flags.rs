//! Per-call-site control blocks: lock flag, timestamp, private output.
//!
//! The compiler front-end emits, for every `_call_IO` site, a non-volatile
//! lock flag named `lock_##fn##task##num`, a private copy of the returned
//! value, and — for `Timely` — a timestamp of the last execution (paper
//! §4.2, Fig. 5). This module is that generated state: one [`IoSlot`] per
//! (task, call-site) pair, allocated in FRAM and reused across activations.
//!
//! Every access is charged to the MCU at the point it would happen in the
//! generated code, so the overhead bars of the paper's figures emerge from
//! the same flag traffic the real system pays.

use kernel::TaskId;
use mcu_emu::{AllocTag, Cost, EnergyCause, Mcu, PowerFailure, RawVar, Region, WorkKind};
use std::collections::{HashMap, HashSet};

/// The FRAM control block of one `_call_IO` site.
#[derive(Debug, Clone, Copy)]
pub struct IoSlot {
    /// Completion lock flag (`lock_##fn##task##num`).
    pub lock: RawVar,
    /// Private copy of the operation's returned value.
    pub out: RawVar,
    /// Timestamp of the last successful execution. Allocated lazily, the
    /// first time a `Timely` completion stores one: per paper §4.2 the
    /// compiler emits the timestamp word only for `Timely` sites, so
    /// `Single`/`Always` sites must not pay the 8 bytes of FRAM.
    pub ts: Option<RawVar>,
}

/// Table of control blocks, lazily allocated like the compiler's statics.
#[derive(Debug, Default)]
pub struct IoSlotTable {
    slots: HashMap<(TaskId, u16), IoSlot>,
    /// Sites whose lock was set during the current activation of each task.
    dirty: Vec<(TaskId, u16)>,
    /// Sites whose private output holds a value from the current activation
    /// (host mirror of an out-valid bit; used for divergence detection).
    recorded: HashSet<(TaskId, u16)>,
}

impl IoSlotTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (allocating on first use) the slot for a call site. Only the
    /// lock and output words are allocated here; the timestamp word is
    /// allocated lazily when a `Timely` completion first needs it.
    pub fn ensure(&mut self, mcu: &mut Mcu, task: TaskId, site: u16) -> IoSlot {
        *self.slots.entry((task, site)).or_insert_with(|| {
            let alloc = |mcu: &mut Mcu, width: u32| RawVar {
                addr: mcu.mem.alloc(Region::Fram, width, AllocTag::Runtime),
                width,
            };
            IoSlot {
                lock: alloc(mcu, 1),
                out: alloc(mcu, 4),
                ts: None,
            }
        })
    }

    /// Returns (allocating on first use) the timestamp word of a site.
    fn ensure_ts(&mut self, mcu: &mut Mcu, task: TaskId, site: u16) -> RawVar {
        let slot = self
            .slots
            .get_mut(&(task, site))
            .expect("ensure_ts on a site without a slot");
        *slot.ts.get_or_insert_with(|| RawVar {
            addr: mcu.mem.alloc(Region::Fram, 8, AllocTag::Runtime),
            width: 8,
        })
    }

    /// Reads the lock flag, charging one flag check.
    pub fn lock_is_set(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<bool, PowerFailure> {
        let c = mcu.cost.flag_check;
        mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
        let set = slot.lock.load(&mcu.mem) != 0;
        let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
        mcu.trace.emit_with(|| {
            easeio_trace::Event::instant(
                ts,
                e,
                easeio_trace::InstantKind::FlagCheck,
                if set { "set" } else { "clear" },
            )
        });
        Ok(set)
    }

    /// Restores the private output copy, charging the FRAM read.
    pub fn restore_out(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<i32, PowerFailure> {
        let raw = mcu.with_cause(EnergyCause::Commit, |m| {
            m.load_var(WorkKind::Overhead, slot.out)
        })?;
        mcu.stats.bump("easeio_outputs_restored");
        Ok(raw as u32 as i32)
    }

    /// Price of recording a completion: the private-output store, the
    /// optional timestamp store, and the lock-flag write. The runtime
    /// charges this *before* performing an externally visible operation so
    /// that no energy boundary can fall between the operation's effect and
    /// the lock store — the atomic I/O section the power-failure sweep
    /// demands (a failure in that window would re-perform a `Single` op).
    pub fn completion_cost(&self, mcu: &Mcu, slot: IoSlot, store_out: bool, with_ts: bool) -> Cost {
        let mut c = mcu.cost.flag_write;
        if store_out {
            c = c.plus(mcu.cost.fram_write_word.times(slot.out.words()));
        }
        if with_ts {
            // The timestamp word is 8 bytes whether or not it is allocated
            // yet (allocation itself is free address arithmetic).
            c = c.plus(mcu.cost.fram_write_word.times(4));
        }
        c
    }

    /// Records a completion whose cost was already charged via
    /// [`Self::completion_cost`]: raw stores only, so no power failure can
    /// interleave. The lock is still stored last — a caller that (wrongly)
    /// skipped the pre-charge degrades to the lock-last guarantee instead
    /// of atomicity.
    #[allow(clippy::too_many_arguments)]
    pub fn record_completion_prepaid(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        slot: IoSlot,
        value: i32,
        store_out: bool,
        timestamp: Option<u64>,
    ) {
        if store_out {
            slot.out.store(&mut mcu.mem, value as u32 as u64);
        }
        if let Some(ts) = timestamp {
            let ts_var = self.ensure_ts(mcu, task, site);
            ts_var.store(&mut mcu.mem, ts);
        }
        slot.lock.store(&mut mcu.mem, 1);
        // A re-executed site (dep-forced, Timely expiry, Violated block) may
        // complete more than once per activation; its lock still clears in
        // one flag write at commit, so the dirty list must not double-count.
        if !self.dirty.contains(&(task, site)) {
            self.dirty.push((task, site));
        }
        if store_out {
            self.recorded.insert((task, site));
        }
    }

    /// Records a successful execution, charging as it goes: stores the
    /// private output, optionally the timestamp, and sets the lock *last*
    /// (completion flag strictly after the operation and its bookkeeping,
    /// paper §6). The runtime's I/O path instead pre-charges
    /// [`Self::completion_cost`] before the operation and calls
    /// [`Self::record_completion_prepaid`], closing the window entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn record_completion(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        slot: IoSlot,
        value: i32,
        store_out: bool,
        timestamp: Option<u64>,
    ) -> Result<(), PowerFailure> {
        if store_out {
            mcu.with_cause(EnergyCause::Commit, |m| {
                m.store_var(WorkKind::Overhead, slot.out, value as u32 as u64)
            })?;
        }
        if let Some(ts) = timestamp {
            let ts_var = self.ensure_ts(mcu, task, site);
            mcu.with_cause(EnergyCause::Commit, |m| {
                m.store_var(WorkKind::Overhead, ts_var, ts)
            })?;
        }
        let c = mcu.cost.flag_write;
        mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, c))?;
        self.record_completion_prepaid(mcu, task, site, slot, value, store_out, timestamp);
        Ok(())
    }

    /// Reads the recorded timestamp (charging the FRAM read). A site whose
    /// timestamp word was never written reads as 0 — maximally stale, so a
    /// `Timely` check conservatively re-executes.
    pub fn last_timestamp(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<u64, PowerFailure> {
        match slot.ts {
            Some(ts) => mcu.with_cause(EnergyCause::Commit, |m| m.load_var(WorkKind::Overhead, ts)),
            None => Ok(0),
        }
    }

    /// Whether the site's private output holds a value from this activation.
    pub fn out_recorded(&self, task: TaskId, site: u16) -> bool {
        self.recorded.contains(&(task, site))
    }

    /// Loads the previously stored output for divergence comparison
    /// (charging the FRAM read).
    pub fn load_out(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<i32, PowerFailure> {
        let raw = mcu.with_cause(EnergyCause::Commit, |m| {
            m.load_var(WorkKind::Overhead, slot.out)
        })?;
        Ok(raw as u32 as i32)
    }

    /// Stores the private output without lock semantics (for `Always` ops,
    /// whose re-execution is governed by the task model, not a lock) and
    /// marks it recorded.
    pub fn store_out(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        slot: IoSlot,
        value: i32,
    ) -> Result<(), PowerFailure> {
        mcu.with_cause(EnergyCause::Commit, |m| {
            m.store_var(WorkKind::Overhead, slot.out, value as u32 as u64)
        })?;
        self.recorded.insert((task, site));
        Ok(())
    }

    /// Number of locks set in the current activations (commit pricing).
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Clears every lock set for `task`, without charging (the caller prices
    /// the whole commit atomically first).
    pub fn clear_task(&mut self, mcu: &mut Mcu, task: TaskId) -> u64 {
        self.recorded.retain(|(t, _)| *t != task);
        let mut cleared = 0;
        self.dirty.retain(|(t, s)| {
            if *t == task {
                if let Some(slot) = self.slots.get(&(*t, *s)) {
                    slot.lock.store(&mut mcu.mem, 0);
                }
                cleared += 1;
                false
            } else {
                true
            }
        });
        cleared
    }

    /// Dirty sites belonging to `task` (commit pricing).
    pub fn dirty_for(&self, task: TaskId) -> u64 {
        self.dirty.iter().filter(|(t, _)| *t == task).count() as u64
    }

    /// Distinct dirty sites belonging to `task`. Commit pricing must equal
    /// this (each lock clears in exactly one flag write); the crash sweep's
    /// pricing probe compares the two.
    pub fn distinct_dirty_for(&self, task: TaskId) -> u64 {
        self.dirty
            .iter()
            .filter(|(t, _)| *t == task)
            .collect::<HashSet<_>>()
            .len() as u64
    }

    /// Total slots allocated (footprint reporting).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::Supply;

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn slot_allocated_once_per_site() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let a = t.ensure(&mut m, TaskId(0), 0);
        let b = t.ensure(&mut m, TaskId(0), 0);
        let c = t.ensure(&mut m, TaskId(0), 1);
        assert_eq!(a.lock.addr, b.lock.addr);
        assert_ne!(a.lock.addr, c.lock.addr);
        assert_eq!(t.slot_count(), 2);
    }

    #[test]
    fn lock_lifecycle() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let task = TaskId(3);
        let slot = t.ensure(&mut m, task, 0);
        assert!(!t.lock_is_set(&mut m, slot).unwrap());
        t.record_completion(&mut m, task, 0, slot, -7, true, Some(123))
            .unwrap();
        // Re-fetch: recording the timestamp lazily allocated the ts word.
        let slot = t.ensure(&mut m, task, 0);
        assert!(t.lock_is_set(&mut m, slot).unwrap());
        assert_eq!(t.restore_out(&mut m, slot).unwrap(), -7);
        assert_eq!(t.last_timestamp(&mut m, slot).unwrap(), 123);
        // Commit clears the lock but keeps the slot for reuse.
        assert_eq!(t.clear_task(&mut m, task), 1);
        assert!(!t.lock_is_set(&mut m, slot).unwrap());
        assert_eq!(t.dirty_for(task), 0);
    }

    #[test]
    fn clear_task_leaves_other_tasks_alone() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let s0 = t.ensure(&mut m, TaskId(0), 0);
        let s1 = t.ensure(&mut m, TaskId(1), 0);
        t.record_completion(&mut m, TaskId(0), 0, s0, 1, true, None)
            .unwrap();
        t.record_completion(&mut m, TaskId(1), 0, s1, 2, true, None)
            .unwrap();
        t.clear_task(&mut m, TaskId(0));
        assert!(!t.lock_is_set(&mut m, s0).unwrap());
        assert!(t.lock_is_set(&mut m, s1).unwrap());
    }

    #[test]
    fn reexecuted_site_is_not_double_counted_in_dirty_list() {
        // A dep-forced or Timely-expired site completes twice in one
        // activation; commit pricing must still count one flag clear.
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let task = TaskId(0);
        let slot = t.ensure(&mut m, task, 0);
        t.record_completion(&mut m, task, 0, slot, 1, true, None)
            .unwrap();
        t.record_completion(&mut m, task, 0, slot, 2, true, None)
            .unwrap();
        assert_eq!(t.dirty_for(task), 1, "one site, one commit flag write");
        assert_eq!(t.dirty_count(), 1);
        assert_eq!(t.clear_task(&mut m, task), 1);
    }

    #[test]
    fn non_timely_sites_allocate_no_timestamp_word() {
        // Paper §4.2: only Timely sites carry the 8-byte timestamp. A
        // Single site's control block is lock (1 B) + out (4 B) only.
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let task = TaskId(0);
        let slot = t.ensure(&mut m, task, 0);
        t.record_completion(&mut m, task, 0, slot, 5, true, None)
            .unwrap();
        let single_only = m.mem.allocated_tagged(Region::Fram, AllocTag::Runtime);
        assert_eq!(single_only, 5, "Single site: 1 B lock + 4 B out");
        assert_eq!(t.last_timestamp(&mut m, slot).unwrap(), 0, "no ts → stale");
        // A Timely completion on another site allocates its ts lazily.
        let s2 = t.ensure(&mut m, task, 1);
        t.record_completion(&mut m, task, 1, s2, 5, true, Some(9))
            .unwrap();
        let with_timely = m.mem.allocated_tagged(Region::Fram, AllocTag::Runtime);
        assert_eq!(with_timely, single_only + 5 + 8);
        let s2 = t.ensure(&mut m, task, 1);
        assert_eq!(t.last_timestamp(&mut m, s2).unwrap(), 9);
    }

    #[test]
    fn negative_outputs_roundtrip() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let slot = t.ensure(&mut m, TaskId(0), 0);
        t.record_completion(&mut m, TaskId(0), 0, slot, i32::MIN, true, None)
            .unwrap();
        assert_eq!(t.restore_out(&mut m, slot).unwrap(), i32::MIN);
    }

    #[test]
    fn flag_traffic_is_charged_as_overhead() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let slot = t.ensure(&mut m, TaskId(0), 0);
        let before = m.stats.overhead_energy_nj;
        t.lock_is_set(&mut m, slot).unwrap();
        t.record_completion(&mut m, TaskId(0), 0, slot, 0, true, Some(1))
            .unwrap();
        assert!(m.stats.overhead_energy_nj > before);
        assert_eq!(m.stats.app_energy_nj, 0);
    }
}
