//! Per-call-site control blocks: lock flag, timestamp, private output.
//!
//! The compiler front-end emits, for every `_call_IO` site, a non-volatile
//! lock flag named `lock_##fn##task##num`, a private copy of the returned
//! value, and — for `Timely` — a timestamp of the last execution (paper
//! §4.2, Fig. 5). This module is that generated state: one [`IoSlot`] per
//! (task, call-site) pair, allocated in FRAM and reused across activations.
//!
//! Every access is charged to the MCU at the point it would happen in the
//! generated code, so the overhead bars of the paper's figures emerge from
//! the same flag traffic the real system pays.

use kernel::TaskId;
use mcu_emu::{AllocTag, Mcu, PowerFailure, RawVar, Region, WorkKind};
use std::collections::{HashMap, HashSet};

/// The FRAM control block of one `_call_IO` site.
#[derive(Debug, Clone, Copy)]
pub struct IoSlot {
    /// Completion lock flag (`lock_##fn##task##num`).
    pub lock: RawVar,
    /// Private copy of the operation's returned value.
    pub out: RawVar,
    /// Timestamp of the last successful execution (allocated for every slot;
    /// only `Timely` sites read it).
    pub ts: RawVar,
}

/// Table of control blocks, lazily allocated like the compiler's statics.
#[derive(Debug, Default)]
pub struct IoSlotTable {
    slots: HashMap<(TaskId, u16), IoSlot>,
    /// Sites whose lock was set during the current activation of each task.
    dirty: Vec<(TaskId, u16)>,
    /// Sites whose private output holds a value from the current activation
    /// (host mirror of an out-valid bit; used for divergence detection).
    recorded: HashSet<(TaskId, u16)>,
}

impl IoSlotTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (allocating on first use) the slot for a call site.
    pub fn ensure(&mut self, mcu: &mut Mcu, task: TaskId, site: u16) -> IoSlot {
        *self.slots.entry((task, site)).or_insert_with(|| {
            let alloc = |mcu: &mut Mcu, width: u32| RawVar {
                addr: mcu.mem.alloc(Region::Fram, width, AllocTag::Runtime),
                width,
            };
            IoSlot {
                lock: alloc(mcu, 1),
                out: alloc(mcu, 4),
                ts: alloc(mcu, 8),
            }
        })
    }

    /// Reads the lock flag, charging one flag check.
    pub fn lock_is_set(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<bool, PowerFailure> {
        let c = mcu.cost.flag_check;
        mcu.spend(WorkKind::Overhead, c)?;
        let set = slot.lock.load(&mcu.mem) != 0;
        let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
        mcu.trace.emit_with(|| {
            easeio_trace::Event::instant(
                ts,
                e,
                easeio_trace::InstantKind::FlagCheck,
                if set { "set" } else { "clear" },
            )
        });
        Ok(set)
    }

    /// Restores the private output copy, charging the FRAM read.
    pub fn restore_out(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<i32, PowerFailure> {
        let raw = mcu.load_var(WorkKind::Overhead, slot.out)?;
        mcu.stats.bump("easeio_outputs_restored");
        Ok(raw as u32 as i32)
    }

    /// Records a successful execution: stores the private output, optionally
    /// the timestamp, and sets the lock *last* (completion flag strictly
    /// after the operation and its bookkeeping, paper §6).
    #[allow(clippy::too_many_arguments)]
    pub fn record_completion(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        slot: IoSlot,
        value: i32,
        store_out: bool,
        timestamp: Option<u64>,
    ) -> Result<(), PowerFailure> {
        if store_out {
            mcu.store_var(WorkKind::Overhead, slot.out, value as u32 as u64)?;
        }
        if let Some(ts) = timestamp {
            mcu.store_var(WorkKind::Overhead, slot.ts, ts)?;
        }
        let c = mcu.cost.flag_write;
        mcu.spend(WorkKind::Overhead, c)?;
        slot.lock.store(&mut mcu.mem, 1);
        self.dirty.push((task, site));
        if store_out {
            self.recorded.insert((task, site));
        }
        Ok(())
    }

    /// Reads the recorded timestamp (charging the FRAM read).
    pub fn last_timestamp(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<u64, PowerFailure> {
        mcu.load_var(WorkKind::Overhead, slot.ts)
    }

    /// Whether the site's private output holds a value from this activation.
    pub fn out_recorded(&self, task: TaskId, site: u16) -> bool {
        self.recorded.contains(&(task, site))
    }

    /// Loads the previously stored output for divergence comparison
    /// (charging the FRAM read).
    pub fn load_out(&self, mcu: &mut Mcu, slot: IoSlot) -> Result<i32, PowerFailure> {
        let raw = mcu.load_var(WorkKind::Overhead, slot.out)?;
        Ok(raw as u32 as i32)
    }

    /// Stores the private output without lock semantics (for `Always` ops,
    /// whose re-execution is governed by the task model, not a lock) and
    /// marks it recorded.
    pub fn store_out(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        slot: IoSlot,
        value: i32,
    ) -> Result<(), PowerFailure> {
        mcu.store_var(WorkKind::Overhead, slot.out, value as u32 as u64)?;
        self.recorded.insert((task, site));
        Ok(())
    }

    /// Number of locks set in the current activations (commit pricing).
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Clears every lock set for `task`, without charging (the caller prices
    /// the whole commit atomically first).
    pub fn clear_task(&mut self, mcu: &mut Mcu, task: TaskId) -> u64 {
        self.recorded.retain(|(t, _)| *t != task);
        let mut cleared = 0;
        self.dirty.retain(|(t, s)| {
            if *t == task {
                if let Some(slot) = self.slots.get(&(*t, *s)) {
                    slot.lock.store(&mut mcu.mem, 0);
                }
                cleared += 1;
                false
            } else {
                true
            }
        });
        cleared
    }

    /// Dirty sites belonging to `task` (commit pricing).
    pub fn dirty_for(&self, task: TaskId) -> u64 {
        self.dirty.iter().filter(|(t, _)| *t == task).count() as u64
    }

    /// Total slots allocated (footprint reporting).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::Supply;

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn slot_allocated_once_per_site() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let a = t.ensure(&mut m, TaskId(0), 0);
        let b = t.ensure(&mut m, TaskId(0), 0);
        let c = t.ensure(&mut m, TaskId(0), 1);
        assert_eq!(a.lock.addr, b.lock.addr);
        assert_ne!(a.lock.addr, c.lock.addr);
        assert_eq!(t.slot_count(), 2);
    }

    #[test]
    fn lock_lifecycle() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let task = TaskId(3);
        let slot = t.ensure(&mut m, task, 0);
        assert!(!t.lock_is_set(&mut m, slot).unwrap());
        t.record_completion(&mut m, task, 0, slot, -7, true, Some(123))
            .unwrap();
        assert!(t.lock_is_set(&mut m, slot).unwrap());
        assert_eq!(t.restore_out(&mut m, slot).unwrap(), -7);
        assert_eq!(t.last_timestamp(&mut m, slot).unwrap(), 123);
        // Commit clears the lock but keeps the slot for reuse.
        assert_eq!(t.clear_task(&mut m, task), 1);
        assert!(!t.lock_is_set(&mut m, slot).unwrap());
        assert_eq!(t.dirty_for(task), 0);
    }

    #[test]
    fn clear_task_leaves_other_tasks_alone() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let s0 = t.ensure(&mut m, TaskId(0), 0);
        let s1 = t.ensure(&mut m, TaskId(1), 0);
        t.record_completion(&mut m, TaskId(0), 0, s0, 1, true, None)
            .unwrap();
        t.record_completion(&mut m, TaskId(1), 0, s1, 2, true, None)
            .unwrap();
        t.clear_task(&mut m, TaskId(0));
        assert!(!t.lock_is_set(&mut m, s0).unwrap());
        assert!(t.lock_is_set(&mut m, s1).unwrap());
    }

    #[test]
    fn negative_outputs_roundtrip() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let slot = t.ensure(&mut m, TaskId(0), 0);
        t.record_completion(&mut m, TaskId(0), 0, slot, i32::MIN, true, None)
            .unwrap();
        assert_eq!(t.restore_out(&mut m, slot).unwrap(), i32::MIN);
    }

    #[test]
    fn flag_traffic_is_charged_as_overhead() {
        let mut m = mcu();
        let mut t = IoSlotTable::new();
        let slot = t.ensure(&mut m, TaskId(0), 0);
        let before = m.stats.overhead_energy_nj;
        t.lock_is_set(&mut m, slot).unwrap();
        t.record_completion(&mut m, TaskId(0), 0, slot, 0, true, Some(1))
            .unwrap();
        assert!(m.stats.overhead_energy_nj > before);
        assert_eq!(m.stats.app_energy_nj, 0);
    }
}
