//! Multi-task FIR filter with DMA WAR dependencies (paper §5.4, Figs 10–12).
//!
//! The input signal lives in one FRAM buffer that is **also the output
//! buffer** (paper §5.4.1): the filter processes the signal in four chunks,
//! and each chunk task
//!
//! 1. DMA-fetches the filter coefficients into LEA-RAM (constant data — the
//!    "EaseIO/Op" variant annotates this copy `Exclude`),
//! 2. DMA-fetches the chunk's samples into LEA-RAM (EaseIO: `Private`,
//!    two-phase through the privatization buffer),
//! 3. runs one LEA FIR call (`Always`),
//! 4. DMA-writes the filtered chunk back **over the same FRAM region**
//!    (EaseIO: `Single`).
//!
//! The write-back creates a WAR dependency through DMA: if a power failure
//! lands between the write-back and the task commit, a blind re-execution
//! re-fetches the *already-filtered* samples and filters them twice. Alpaca
//! and InK cannot see DMA, so they corrupt the output (Fig 12); EaseIO's
//! `Private` fetch replays from the pristine snapshot and its `Single`
//! write-back never repeats, so the result is always correct.

use kernel::{
    App, DmaAnnotation, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult,
    Transition, Verdict,
};
use mcu_emu::{Mcu, NvBuf, NvVar, Region};
use periph::lea::ACC_SHIFT;
use std::rc::Rc;

/// Number of chunks the signal is split into (one task each, per the paper).
pub const CHUNKS: u32 = 4;

/// Configuration of the FIR benchmark.
#[derive(Debug, Clone)]
pub struct FirCfg {
    /// Samples per chunk.
    pub chunk: u32,
    /// Tap count.
    pub taps: u32,
    /// Annotate the constant-coefficient DMA `Exclude` (the "EaseIO/Op"
    /// optimization, §4.3). Ignored by the baselines.
    pub exclude_const_dma: bool,
    /// Number of end-to-end filter rounds (the real-world evaluation of
    /// §5.5 runs the workload repeatedly; each round restores the signal
    /// from a pristine copy first).
    pub rounds: u32,
}

impl Default for FirCfg {
    fn default() -> Self {
        Self {
            chunk: 128,
            taps: 16,
            exclude_const_dma: false,
            rounds: 1,
        }
    }
}

/// The deterministic input sample at index `i`.
pub fn sample(i: u32) -> i16 {
    (((i * 17 + 5) % 157) as i16) - 78
}

/// The deterministic coefficient at index `k`.
pub fn coeff(k: u32, taps: u32) -> i16 {
    (((k * 7 + 1) % 19) as i16) - 9 + (128 / taps as i16)
}

fn fir_chunk(input: &[i16], h: &[i16], n_out: u32) -> Vec<i16> {
    (0..n_out as usize)
        .map(|i| {
            let mut acc: i32 = 0;
            for (k, c) in h.iter().enumerate() {
                acc += *c as i32 * input[i + k] as i32;
            }
            (acc >> ACC_SHIFT).clamp(i16::MIN as i32, i16::MAX as i32) as i16
        })
        .collect()
}

/// Software reference of the whole in-place chunked filter: chunk `c` reads
/// `chunk + taps - 1` samples starting at `c·chunk` (the tail reads into the
/// not-yet-filtered next chunk, the last chunk into the padding) and writes
/// `chunk` filtered samples back in place.
pub fn reference(cfg: &FirCfg) -> Vec<i16> {
    let total = CHUNKS * cfg.chunk + cfg.taps - 1;
    let mut s: Vec<i16> = (0..total).map(sample).collect();
    let h: Vec<i16> = (0..cfg.taps).map(|k| coeff(k, cfg.taps)).collect();
    for c in 0..CHUNKS {
        let base = (c * cfg.chunk) as usize;
        let end = base + (cfg.chunk + cfg.taps - 1) as usize;
        let out = fir_chunk(&s[base..end], &h, cfg.chunk);
        s[base..base + cfg.chunk as usize].copy_from_slice(&out);
    }
    s
}

/// Builds the FIR application on `mcu`.
pub fn build(mcu: &mut Mcu, cfg: &FirCfg) -> App {
    let total = CHUNKS * cfg.chunk + cfg.taps - 1;
    // Shared in/out signal buffer in FRAM.
    let signal: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, total);
    // Constant coefficients in FRAM.
    let coeffs: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, cfg.taps);
    // LEA staging buffers.
    let lx: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.chunk + cfg.taps - 1);
    let lh: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.taps);
    let ly: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.chunk);
    let progress: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let round: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    // Pristine copy of the input for multi-round runs.
    let pristine: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, total);

    let init_signal: Vec<i16> = (0..total).map(sample).collect();
    signal.fill_from(&mut mcu.mem, &init_signal);
    pristine.fill_from(&mut mcu.mem, &init_signal);
    let h: Vec<i16> = (0..cfg.taps).map(|k| coeff(k, cfg.taps)).collect();
    coeffs.fill_from(&mut mcu.mem, &h);

    let multi_round = cfg.rounds > 1;
    let init = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(250)?;
        if multi_round {
            // Restore the signal from the pristine copy (NVM→NVM: Single).
            ctx.dma_copy(pristine.addr(), signal.addr(), total * 2)?;
        }
        ctx.write(progress, 0u32)?;
        Ok(Transition::To(TaskId(1)))
    };

    let mk_chunk_task = |c: u32| {
        let cfg = cfg.clone();
        move |ctx: &mut TaskCtx<'_>| -> TaskResult {
            let in_words = cfg.chunk + cfg.taps - 1;
            // 1. Coefficients into LEA-RAM (constant; Exclude under /Op).
            let ann = if cfg.exclude_const_dma {
                DmaAnnotation::Exclude
            } else {
                DmaAnnotation::Auto
            };
            ctx.dma_copy_annotated(coeffs.addr(), lh.addr(), cfg.taps * 2, ann, &[])?;
            // 2. Chunk samples into LEA-RAM (EaseIO: Private).
            let base_bytes = c * cfg.chunk * 2;
            ctx.dma_copy(signal.addr().add(base_bytes), lx.addr(), in_words * 2)?;
            // 3. Filter on the accelerator.
            ctx.call_io(
                IoOp::LeaFir {
                    x: lx.addr(),
                    h: lh.addr(),
                    y: ly.addr(),
                    n_out: cfg.chunk,
                    taps: cfg.taps,
                },
                ReexecSemantics::Always,
            )?;
            // 4. Write the filtered chunk back over its own input
            //    (EaseIO: Single — never repeated once complete).
            ctx.dma_copy(ly.addr(), signal.addr().add(base_bytes), cfg.chunk * 2)?;
            // Post-filter bookkeeping (energy accounting, progress stats):
            // the window in which a failure triggers the Fig 2b WAR bug.
            ctx.compute(800)?;
            let p = ctx.read(progress)?;
            ctx.write(progress, p + 1)?;
            if c + 1 < CHUNKS {
                Ok(Transition::To(TaskId(2 + c as u16)))
            } else {
                Ok(Transition::To(TaskId(1 + CHUNKS as u16)))
            }
        }
    };
    let rounds = cfg.rounds;
    let wrap = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(150)?;
        let r = ctx.read(round)?;
        ctx.write(round, r + 1)?;
        if r + 1 < rounds {
            Ok(Transition::To(TaskId(0)))
        } else {
            Ok(Transition::Done)
        }
    };

    let expected = reference(cfg);
    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        let got = signal.to_vec(&mcu.mem);
        if got == expected {
            Verdict::Correct
        } else {
            let bad = got
                .iter()
                .zip(&expected)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            Verdict::Incorrect(format!("signal diverges at sample {bad}"))
        }
    };

    let mut tasks = vec![TaskDef {
        name: "init",
        body: Rc::new(init) as _,
    }];
    for c in 0..CHUNKS {
        tasks.push(TaskDef {
            name: match c {
                0 => "chunk0",
                1 => "chunk1",
                2 => "chunk2",
                _ => "chunk3",
            },
            body: Rc::new(mk_chunk_task(c)),
        });
    }
    tasks.push(TaskDef {
        name: "wrap",
        body: Rc::new(wrap),
    });

    App {
        name: if cfg.exclude_const_dma {
            "fir/op"
        } else {
            "fir"
        },
        tasks,
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 1 + CHUNKS,
            io_funcs: 2,
            io_sites: 1,
            timely_sites: 0,
            dma_sites: 3,
            io_blocks: 0,
            nv_vars: 3,
        },
        verify: Some(Rc::new(verify)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_core::EaseIoRuntime;
    use kernel::{
        alpaca::AlpacaRuntime, ink::InkRuntime, naive::NaiveRuntime, run_app, ExecConfig, Outcome,
        Runtime,
    };
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    fn run_with(rt: &mut dyn Runtime, seed: u64, exclude: bool) -> (Outcome, Option<Verdict>) {
        let cfg = TimerResetConfig::default();
        let mut mcu = Mcu::new(Supply::timer(cfg, seed));
        let mut p = Peripherals::new(1);
        let app = build(
            &mut mcu,
            &FirCfg {
                exclude_const_dma: exclude,
                ..FirCfg::default()
            },
        );
        let r = run_app(&app, rt, &mut mcu, &mut p, &ExecConfig::default());
        (r.outcome, r.verdict)
    }

    #[test]
    fn all_runtimes_correct_on_continuous_power() {
        for mk in [
            || Box::new(AlpacaRuntime::new()) as Box<dyn Runtime>,
            || Box::new(InkRuntime::new()) as Box<dyn Runtime>,
            || Box::new(NaiveRuntime::new()) as Box<dyn Runtime>,
        ] {
            let mut mcu = Mcu::new(Supply::continuous());
            let mut p = Peripherals::new(1);
            let app = build(&mut mcu, &FirCfg::default());
            let mut rt = mk();
            let r = run_app(&app, rt.as_mut(), &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            assert_eq!(r.verdict, Some(Verdict::Correct), "{}", rt.name());
        }
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(1);
        let app = build(&mut mcu, &FirCfg::default());
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.verdict, Some(Verdict::Correct), "EaseIO continuous");
    }

    #[test]
    fn easeio_is_always_correct_under_failures() {
        for seed in 0..30 {
            let mut rt = EaseIoRuntime::default();
            let (outcome, verdict) = run_with(&mut rt, seed, false);
            assert_eq!(outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(verdict, Some(Verdict::Correct), "seed {seed}");
        }
    }

    #[test]
    fn easeio_op_variant_is_also_correct() {
        for seed in 0..15 {
            let mut rt = EaseIoRuntime::default();
            let (outcome, verdict) = run_with(&mut rt, seed, true);
            assert_eq!(outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(verdict, Some(Verdict::Correct), "seed {seed}");
        }
    }

    #[test]
    fn baselines_eventually_corrupt_the_signal() {
        // The paper measures 16–21 % incorrect runs over 1000 executions;
        // across 60 seeds at least one corruption must show up for each
        // baseline.
        let mut alpaca_bad = 0;
        let mut ink_bad = 0;
        for seed in 0..60 {
            let mut a = AlpacaRuntime::new();
            if let (Outcome::Completed, Some(Verdict::Incorrect(_))) = run_with(&mut a, seed, false)
            {
                alpaca_bad += 1;
            }
            let mut i = InkRuntime::new();
            if let (Outcome::Completed, Some(Verdict::Incorrect(_))) = run_with(&mut i, seed, false)
            {
                ink_bad += 1;
            }
        }
        assert!(alpaca_bad > 0, "Alpaca never corrupted the FIR output");
        assert!(ink_bad > 0, "InK never corrupted the FIR output");
    }

    #[test]
    fn reference_is_self_consistent() {
        let cfg = FirCfg::default();
        let r1 = reference(&cfg);
        let r2 = reference(&cfg);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), (CHUNKS * cfg.chunk + cfg.taps - 1) as usize);
        // Filtering changes the signal.
        let orig: Vec<i16> = (0..r1.len() as u32).map(sample).collect();
        assert_ne!(r1, orig);
    }
}
