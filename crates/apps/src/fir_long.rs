//! Long-burst FIR filter: the sweep-engine stress workload.
//!
//! Same in-place chunked filter as [`crate::fir`] (paper §5.4.1), scaled
//! until single operations span many energy-spend slices: 512 taps over
//! 512-sample chunks fills the LEA staging RAM to its last word (1023 +
//! 512 + 512 of 2048 words) and makes every accelerator call and every
//! chunk fetch a multi-millisecond burst. One round still fits the 4 KB
//! privatization pool because a *single* task walks the chunks through a
//! progress variable instead of one task per chunk — one `(task, site)`
//! pair means one private fetch buffer (2046 B) plus one coefficient
//! buffer (1024 B), not four of each.
//!
//! A crash sweep of this app is dominated by boundaries in the middle of
//! those long bursts, where nothing host-visible changes between slices —
//! exactly the redundancy injection-point pruning exists to collapse. The
//! WAR-through-DMA hazard of the small FIR is preserved: the chunk task
//! writes its filtered output back over its own input region.

use crate::fir::{coeff, sample};
use kernel::{
    App, DmaAnnotation, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult,
    Transition, Verdict,
};
use mcu_emu::{Mcu, NvBuf, NvVar, Region};
use periph::lea::ACC_SHIFT;
use std::rc::Rc;

/// Chunks per round (walked by one task via the progress variable).
pub const CHUNKS: u32 = 4;

/// Configuration of the long-FIR benchmark.
#[derive(Debug, Clone)]
pub struct FirLongCfg {
    /// Samples per chunk.
    pub chunk: u32,
    /// Tap count.
    pub taps: u32,
    /// Annotate the constant-coefficient DMA `Exclude` (the "EaseIO/Op"
    /// optimization, §4.3). Ignored by the baselines.
    pub exclude_const_dma: bool,
    /// End-to-end filter rounds; each round restores the signal from a
    /// pristine copy first.
    pub rounds: u32,
    /// Post-filter bookkeeping cycles per chunk (feature extraction over
    /// the filtered block) — a long pure-compute burst between the DMA
    /// write-back and the progress commit.
    pub post_cycles: u64,
}

impl Default for FirLongCfg {
    fn default() -> Self {
        Self {
            chunk: 512,
            taps: 512,
            exclude_const_dma: false,
            rounds: 2,
            post_cycles: 60_000,
        }
    }
}

fn fir_chunk(input: &[i16], h: &[i16], n_out: u32) -> Vec<i16> {
    (0..n_out as usize)
        .map(|i| {
            let mut acc: i32 = 0;
            for (k, c) in h.iter().enumerate() {
                acc += *c as i32 * input[i + k] as i32;
            }
            (acc >> ACC_SHIFT).clamp(i16::MIN as i32, i16::MAX as i32) as i16
        })
        .collect()
}

/// Software reference of one full round (identical for every round, since a
/// round starts from the pristine signal).
pub fn reference(cfg: &FirLongCfg) -> Vec<i16> {
    let total = CHUNKS * cfg.chunk + cfg.taps - 1;
    let mut s: Vec<i16> = (0..total).map(sample).collect();
    let h: Vec<i16> = (0..cfg.taps).map(|k| coeff(k, cfg.taps)).collect();
    for c in 0..CHUNKS {
        let base = (c * cfg.chunk) as usize;
        let end = base + (cfg.chunk + cfg.taps - 1) as usize;
        let out = fir_chunk(&s[base..end], &h, cfg.chunk);
        s[base..base + cfg.chunk as usize].copy_from_slice(&out);
    }
    s
}

/// Builds the long-FIR application on `mcu`.
pub fn build(mcu: &mut Mcu, cfg: &FirLongCfg) -> App {
    let total = CHUNKS * cfg.chunk + cfg.taps - 1;
    let in_words = cfg.chunk + cfg.taps - 1;
    assert!(
        in_words + cfg.taps + cfg.chunk <= 2048,
        "LEA staging buffers exceed LEA-RAM"
    );
    // Shared in/out signal buffer in FRAM, plus a pristine copy per round.
    let signal: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, total);
    let coeffs: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, cfg.taps);
    let lx: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, in_words);
    let lh: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.taps);
    let ly: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.chunk);
    let progress: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let round: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let pristine: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, total);

    let init_signal: Vec<i16> = (0..total).map(sample).collect();
    signal.fill_from(&mut mcu.mem, &init_signal);
    pristine.fill_from(&mut mcu.mem, &init_signal);
    let h: Vec<i16> = (0..cfg.taps).map(|k| coeff(k, cfg.taps)).collect();
    coeffs.fill_from(&mut mcu.mem, &h);

    let init = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(250)?;
        // Restore the signal from the pristine copy (NVM→NVM: Single).
        ctx.dma_copy(pristine.addr(), signal.addr(), total * 2)?;
        ctx.write(progress, 0u32)?;
        Ok(Transition::To(TaskId(1)))
    };

    let chunk_cfg = cfg.clone();
    let chunk_task = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let cfg = &chunk_cfg;
        let c = ctx.read(progress)?;
        let in_words = cfg.chunk + cfg.taps - 1;
        // 1. Coefficients into LEA-RAM (constant; Exclude under /Op).
        let ann = if cfg.exclude_const_dma {
            DmaAnnotation::Exclude
        } else {
            DmaAnnotation::Auto
        };
        ctx.dma_copy_annotated(coeffs.addr(), lh.addr(), cfg.taps * 2, ann, &[])?;
        // 2. Chunk samples into LEA-RAM (EaseIO: Private).
        let base_bytes = c * cfg.chunk * 2;
        ctx.dma_copy(signal.addr().add(base_bytes), lx.addr(), in_words * 2)?;
        // 3. One long accelerator burst (chunk × taps multiply-adds).
        ctx.call_io(
            IoOp::LeaFir {
                x: lx.addr(),
                h: lh.addr(),
                y: ly.addr(),
                n_out: cfg.chunk,
                taps: cfg.taps,
            },
            ReexecSemantics::Always,
        )?;
        // 4. Write the filtered chunk back over its own input
        //    (EaseIO: Single — never repeated once complete).
        ctx.dma_copy(ly.addr(), signal.addr().add(base_bytes), cfg.chunk * 2)?;
        // 5. Feature extraction over the filtered block: a long pure-compute
        //    burst inside the Fig 2b hazard window.
        ctx.compute(cfg.post_cycles)?;
        ctx.write(progress, c + 1)?;
        if c + 1 < CHUNKS {
            Ok(Transition::To(TaskId(1)))
        } else {
            Ok(Transition::To(TaskId(2)))
        }
    };

    let rounds = cfg.rounds;
    let wrap = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(150)?;
        let r = ctx.read(round)?;
        ctx.write(round, r + 1)?;
        if r + 1 < rounds {
            Ok(Transition::To(TaskId(0)))
        } else {
            Ok(Transition::Done)
        }
    };

    let expected = reference(cfg);
    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        let got = signal.to_vec(&mcu.mem);
        if got == expected {
            Verdict::Correct
        } else {
            let bad = got
                .iter()
                .zip(&expected)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            Verdict::Incorrect(format!("signal diverges at sample {bad}"))
        }
    };

    App {
        name: if cfg.exclude_const_dma {
            "fir-long/op"
        } else {
            "fir-long"
        },
        tasks: vec![
            TaskDef {
                name: "init",
                body: Rc::new(init) as _,
            },
            TaskDef {
                name: "chunk",
                body: Rc::new(chunk_task) as _,
            },
            TaskDef {
                name: "wrap",
                body: Rc::new(wrap) as _,
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 3,
            io_funcs: 2,
            io_sites: 1,
            timely_sites: 0,
            dma_sites: 4,
            io_blocks: 0,
            nv_vars: 3,
        },
        verify: Some(Rc::new(verify)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_core::EaseIoRuntime;
    use kernel::{run_app, ExecConfig, Outcome};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    /// A fast test configuration: same shape, far fewer cycles.
    fn small() -> FirLongCfg {
        FirLongCfg {
            chunk: 64,
            taps: 32,
            exclude_const_dma: false,
            rounds: 2,
            post_cycles: 2_000,
        }
    }

    #[test]
    fn easeio_is_correct_on_continuous_power_at_full_size() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(1);
        let app = build(&mut mcu, &FirLongCfg::default());
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
    }

    #[test]
    fn full_size_buffers_fill_but_fit_lea_ram() {
        let cfg = FirLongCfg::default();
        assert_eq!(cfg.chunk + cfg.taps - 1 + cfg.taps + cfg.chunk, 2047);
    }

    #[test]
    fn easeio_is_always_correct_under_failures() {
        for seed in 0..20 {
            let cfg = TimerResetConfig::default();
            let mut mcu = Mcu::new(Supply::timer(cfg, seed));
            let mut p = Peripherals::new(1);
            let app = build(&mut mcu, &small());
            let mut rt = EaseIoRuntime::default();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
        }
    }

    #[test]
    fn reference_matches_the_small_fir_shape() {
        let cfg = small();
        let r = reference(&cfg);
        assert_eq!(r.len(), (CHUNKS * cfg.chunk + cfg.taps - 1) as usize);
        let orig: Vec<i16> = (0..r.len() as u32).map(sample).collect();
        assert_ne!(r, orig, "filtering must change the signal");
    }
}
