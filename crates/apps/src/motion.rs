//! Motion sentinel: accelerometer-based activity detection (extension app).
//!
//! Not a paper benchmark, but a workload the paper's intro motivates
//! (batteryless wearables/implants sensing motion) that composes EaseIO
//! features the paper benchmarks exercise separately:
//!
//! * a **loop of `call_IO`s** collecting a sample window — one lock slot per
//!   iteration, the paper's §6 loop extension, so a failure mid-window
//!   resumes after the last collected sample instead of re-reading the IMU
//!   sixteen times;
//! * an **I/O-dependent branch** (activity threshold) followed by a
//!   **`Single` alert transmission** — the exactly-once send whose violation
//!   is observable on the radio log.
//!
//! The app's invariant is end-to-end: the number of alert packets on the
//! air must equal the alert counter in FRAM. Blind re-execution breaks it
//! (duplicate alerts); EaseIO cannot.

use kernel::{
    App, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult, Transition,
    Verdict,
};
use mcu_emu::{Mcu, NvBuf, NvVar, Region};
use periph::Sensor;
use std::rc::Rc;

/// Configuration of the motion sentinel.
#[derive(Debug, Clone)]
pub struct MotionCfg {
    /// Samples per analysis window.
    pub window: u32,
    /// Number of windows processed.
    pub windows: u32,
    /// Mean-absolute-deviation threshold (milli-g) above which a window
    /// counts as activity.
    pub threshold_mg: i32,
}

impl Default for MotionCfg {
    fn default() -> Self {
        Self {
            window: 16,
            windows: 6,
            threshold_mg: 60,
        }
    }
}

/// Builds the motion app; returns it plus the alert-counter handle.
pub fn build(mcu: &mut Mcu, cfg: &MotionCfg) -> (App, NvVar<u32>) {
    let samples: NvBuf<i32> = NvBuf::alloc(&mut mcu.mem, Region::Fram, cfg.window * cfg.windows);
    let alerts: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let window_idx: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);

    let cfg2 = cfg.clone();
    let init = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(200)?;
        ctx.write(alerts, 0u32)?;
        ctx.write(window_idx, 0u32)?;
        Ok(Transition::To(TaskId(1)))
    };

    let collect = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let w = ctx.read(window_idx)?;
        // A loop of Single senses: one lock per iteration (§6). A power
        // failure mid-window restores the already-collected samples.
        for i in 0..cfg2.window {
            let v = ctx.call_io(IoOp::Sense(Sensor::Accel), ReexecSemantics::Single)?;
            ctx.buf_write(samples, w * cfg2.window + i, v)?;
            ctx.compute(150)?; // inter-sample pacing
        }
        Ok(Transition::To(TaskId(2)))
    };

    let cfg3 = cfg.clone();
    let analyze = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let w = ctx.read(window_idx)?;
        let base = w * cfg3.window;
        let mut sum: i64 = 0;
        for i in 0..cfg3.window {
            sum += ctx.buf_read(samples, base + i)? as i64;
        }
        let mean = (sum / cfg3.window as i64) as i32;
        let mut dev: i64 = 0;
        for i in 0..cfg3.window {
            dev += (ctx.buf_read(samples, base + i)? - mean).abs() as i64;
        }
        let mad = (dev / cfg3.window as i64) as i32;
        ctx.compute(900)?;
        if mad > cfg3.threshold_mg {
            let n = ctx.read(alerts)?;
            ctx.write(alerts, n + 1)?;
            // Exactly-once alert: window id + magnitude on the air.
            ctx.call_io(
                IoOp::Send {
                    payload: vec![w as i32, mad],
                },
                ReexecSemantics::Single,
            )?;
        }
        ctx.compute(400)?;
        Ok(Transition::To(TaskId(3)))
    };

    let cfg4 = cfg.clone();
    let advance = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let w = ctx.read(window_idx)?;
        ctx.write(window_idx, w + 1)?;
        if w + 1 < cfg4.windows {
            Ok(Transition::To(TaskId(1)))
        } else {
            Ok(Transition::Done)
        }
    };

    let windows = cfg.windows;
    let window = cfg.window;
    let verify = move |mcu: &Mcu, p: &periph::Peripherals| -> Verdict {
        if window_idx.get(&mcu.mem) != windows {
            return Verdict::Incorrect("window counter mismatch".into());
        }
        // Every sample must be a plausible magnitude.
        for i in 0..windows * window {
            let v = samples.get(&mcu.mem, i);
            if !(500..=1500).contains(&v) {
                return Verdict::Incorrect(format!("sample {i} = {v} mg implausible"));
            }
        }
        // Exactly-once alerts: packets on the air == counter in FRAM.
        let n = alerts.get(&mcu.mem) as usize;
        if p.radio.count() != n {
            return Verdict::Incorrect(format!(
                "{} packets transmitted but {n} alerts counted",
                p.radio.count()
            ));
        }
        Verdict::Correct
    };

    let app = App {
        name: "motion",
        tasks: vec![
            TaskDef {
                name: "init",
                body: Rc::new(init),
            },
            TaskDef {
                name: "collect",
                body: Rc::new(collect),
            },
            TaskDef {
                name: "analyze",
                body: Rc::new(analyze),
            },
            TaskDef {
                name: "advance",
                body: Rc::new(advance),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 4,
            io_funcs: 2,
            io_sites: 17, // 16 loop samples + the alert
            timely_sites: 0,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars: 3,
        },
        verify: Some(Rc::new(verify)),
    };
    (app, alerts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{MakeRuntime, RuntimeKind};
    use kernel::{run_app, ExecConfig, Outcome};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    fn run(kind: RuntimeKind, seed: u64) -> (kernel::RunResult, u32, usize) {
        let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
        let mut p = Peripherals::new(seed);
        let (app, alerts) = build(&mut mcu, &MotionCfg::default());
        let mut rt = kind.make();
        let r = run_app(&app, rt.as_mut(), &mut mcu, &mut p, &ExecConfig::default());
        let n = alerts.get(&mcu.mem);
        (r, n, p.radio.count())
    }

    #[test]
    fn detects_activity_on_continuous_power() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(3);
        let (app, alerts) = build(&mut mcu, &MotionCfg::default());
        let mut rt = RuntimeKind::Alpaca.make();
        let r = run_app(&app, rt.as_mut(), &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
        // The app starts inside a burst window (bursts occupy t ∈ [0, 0.5 s)),
        // so at least the first window must alert.
        assert!(alerts.get(&mcu.mem) >= 1, "no activity detected");
    }

    #[test]
    fn easeio_keeps_the_exactly_once_alert_invariant() {
        for seed in 0..40u64 {
            let (r, alerts, packets) = run(RuntimeKind::EaseIo, seed);
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
            assert_eq!(alerts as usize, packets, "seed {seed}");
        }
    }

    #[test]
    fn naive_runtime_breaks_the_alert_invariant_somewhere() {
        let mut violated = 0;
        for seed in 150..230u64 {
            let (r, alerts, packets) = run(RuntimeKind::Naive, seed);
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            if packets != alerts as usize {
                violated += 1;
            }
        }
        // The violation shows as an inflated counter (failure between the
        // increment and the send) or a duplicate packet (failure after the
        // send): either way FRAM and the airwaves disagree.
        assert!(
            violated > 0,
            "blind re-execution never broke the invariant in 80 seeds"
        );
    }

    #[test]
    fn loop_samples_resume_after_failures_under_easeio() {
        let mut skipped_total = 0;
        for seed in 0..20u64 {
            let (r, _, _) = run(RuntimeKind::EaseIo, seed);
            skipped_total += r.stats.io_skipped;
        }
        assert!(
            skipped_total > 0,
            "mid-window failures must restore collected samples"
        );
    }
}
