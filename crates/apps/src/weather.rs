//! The 11-task DNN weather classifier (paper §5.4.1, Fig 9).
//!
//! Pipeline: (1) sense temperature and humidity in a `Single` I/O block
//! (temperature `Timely` 10 ms, humidity `Always`, per Fig 3); (2) capture
//! an image (`Single`, emulated per the paper); (3–7) five DNN layers, each
//! staging data FRAM→LEA-RAM by DMA, computing on the LEA, and writing the
//! activation back to FRAM by DMA; (8) inference readout; (9) packaging;
//! (10) a `Single` radio send of temperature, humidity, and class;
//! (11) done.
//!
//! The `single_buffer` flag selects the Table 5 variants: with one shared
//! activation buffer the layer write-backs overwrite the layer inputs,
//! which only EaseIO's run-time DMA typing + regional privatization can
//! re-execute safely; with double buffering everyone is correct but memory
//! doubles.

use crate::dnn::{self, fc_weight, kernel1, kernel2, C1, C2, CLASSES, FC_IN, IMG, K};
use kernel::{
    App, DmaAnnotation, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult,
    Transition, Verdict,
};
use mcu_emu::{Addr, Mcu, NvBuf, NvVar, Region};
use periph::Sensor;
use std::rc::Rc;

/// Configuration of the weather-classifier benchmark.
#[derive(Debug, Clone)]
pub struct WeatherCfg {
    /// One shared activation buffer (the risky layout) instead of two.
    pub single_buffer: bool,
    /// `Exclude` the constant weight DMAs from privatization ("/Op").
    pub exclude_const_dma: bool,
    /// Camera scene seed (determines the golden inference).
    pub scene_seed: u64,
    /// Freshness window for the temperature sample (ms).
    pub temp_window_ms: u64,
    /// Number of sense→classify→send rounds (the real-world evaluation runs
    /// the workload repeatedly, §5.5).
    pub rounds: u32,
}

impl Default for WeatherCfg {
    fn default() -> Self {
        Self {
            single_buffer: false,
            exclude_const_dma: false,
            scene_seed: 7,
            temp_window_ms: 10,
            rounds: 1,
        }
    }
}

/// Builds the weather application on `mcu`.
pub fn build(mcu: &mut Mcu, cfg: &WeatherCfg) -> App {
    // Non-volatile data.
    let image: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, IMG * IMG);
    let buf_a: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, C1 * C1);
    let buf_b: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, C1 * C1);
    let k1: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, K * K);
    let k2: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, K * K);
    let fcw: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, FC_IN * CLASSES);
    let temp: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let humd: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let class: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let round: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    // LEA staging.
    let lin: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, IMG * IMG);
    let lw: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, FC_IN * CLASSES);
    let lout: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, C1 * C1);

    k1.fill_from(&mut mcu.mem, &(0..K * K).map(kernel1).collect::<Vec<_>>());
    k2.fill_from(&mut mcu.mem, &(0..K * K).map(kernel2).collect::<Vec<_>>());
    fcw.fill_from(
        &mut mcu.mem,
        &(0..FC_IN * CLASSES).map(fc_weight).collect::<Vec<_>>(),
    );

    // Activation chain addresses per buffering strategy.
    // With a single buffer every layer reads and writes `image`; with double
    // buffering the chain is image → A → B → A → B.
    let (l1_in, l1_out, l2_buf, l3_in, l3_out, fc_in_buf, fc_out) = if cfg.single_buffer {
        let i = image.addr();
        (i, i, i, i, i, i, i)
    } else {
        (
            image.addr(),
            buf_a.addr(),
            buf_b.addr(),
            buf_b.addr(),
            buf_a.addr(),
            buf_a.addr(),
            buf_b.addr(),
        )
    };

    let w_ann = if cfg.exclude_const_dma {
        DmaAnnotation::Exclude
    } else {
        DmaAnnotation::Auto
    };

    let next = |id: u16| -> TaskResult { Ok(Transition::To(TaskId(id))) };

    // Task 0: init.
    let init = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(200)?;
        ctx.write(class, u32::MAX)?;
        next(1)
    };

    // Task 1: sense block (Fig 3).
    let window = cfg.temp_window_ms;
    let sense = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let (t, h) = ctx.io_block(ReexecSemantics::Single, |ctx| {
            let t = ctx.call_io(
                IoOp::Sense(Sensor::Temp),
                ReexecSemantics::timely_ms(window),
            )?;
            let h = ctx.call_io(IoOp::Sense(Sensor::Humd), ReexecSemantics::Always)?;
            Ok((t, h))
        })?;
        ctx.write(temp, t)?;
        ctx.write(humd, h)?;
        // Calibrate and range-check the readings (post-I/O processing in
        // the same task: the window where blind re-execution re-senses).
        ctx.compute(1_800)?;
        next(2)
    };

    // Task 2: capture (Single; destination is non-volatile).
    let seed = cfg.scene_seed;
    let capture = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.call_io(
            IoOp::Capture {
                dst: image.addr(),
                width: IMG,
                height: IMG,
                seed,
            },
            ReexecSemantics::Single,
        )?;
        // Exposure/quality check over the captured frame.
        ctx.compute(2_600)?;
        next(3)
    };

    // A DNN layer task: stage in, stage weights, compute, stage out.
    #[derive(Clone, Copy)]
    struct LayerIo {
        input: Addr,
        in_words: u32,
        weights: Option<(Addr, u32)>,
        out: Addr,
        out_words: u32,
    }
    let mk_layer = move |io: LayerIo, op_of: fn(Addr, Addr, Addr) -> IoOp, nxt: u16| {
        move |ctx: &mut TaskCtx<'_>| -> TaskResult {
            ctx.dma_copy(io.input, lin.addr(), io.in_words * 2)?;
            if let Some((w, wn)) = io.weights {
                ctx.dma_copy_annotated(w, lw.addr(), wn * 2, w_ann, &[])?;
            }
            ctx.call_io(
                op_of(lin.addr(), lw.addr(), lout.addr()),
                ReexecSemantics::Always,
            )?;
            ctx.dma_copy(lout.addr(), io.out, io.out_words * 2)?;
            ctx.compute(450)?;
            Ok(Transition::To(TaskId(nxt)))
        }
    };

    // Task 3: conv1 (image → l1_out).
    let conv1 = mk_layer(
        LayerIo {
            input: l1_in,
            in_words: IMG * IMG,
            weights: Some((k1.addr(), K * K)),
            out: l1_out,
            out_words: C1 * C1,
        },
        |lin, lw, lout| IoOp::LeaConv2d {
            input: lin,
            w: IMG,
            h: IMG,
            kernel: lw,
            kw: K,
            kh: K,
            out: lout,
        },
        4,
    );

    // Task 4: ReLU (l1_out → l2_buf). The LEA computes in place on `lin`,
    // so the out-DMA streams from `lin`.
    let relu_in = l1_out;
    let relu_out = l2_buf;
    let relu = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.dma_copy(relu_in, lin.addr(), C1 * C1 * 2)?;
        ctx.call_io(
            IoOp::LeaRelu {
                buf: lin.addr(),
                n: C1 * C1,
            },
            ReexecSemantics::Always,
        )?;
        ctx.dma_copy(lin.addr(), relu_out, C1 * C1 * 2)?;
        ctx.compute(150)?;
        next(5)
    };

    // Task 5: conv2 (l3_in → l3_out).
    let conv2 = mk_layer(
        LayerIo {
            input: l3_in,
            in_words: C1 * C1,
            weights: Some((k2.addr(), K * K)),
            out: l3_out,
            out_words: C2 * C2,
        },
        |lin, lw, lout| IoOp::LeaConv2d {
            input: lin,
            w: C1,
            h: C1,
            kernel: lw,
            kw: K,
            kh: K,
            out: lout,
        },
        6,
    );

    // Task 6: fully connected (fc_in_buf → fc_out).
    let fc = mk_layer(
        LayerIo {
            input: fc_in_buf,
            in_words: FC_IN,
            weights: Some((fcw.addr(), FC_IN * CLASSES)),
            out: fc_out,
            out_words: CLASSES,
        },
        |lin, lw, lout| IoOp::LeaFc {
            x: lin,
            n_in: FC_IN,
            weights: lw,
            out: lout,
            n_out: CLASSES,
        },
        7,
    );

    // Task 7: inference (argmax readout).
    let infer = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.dma_copy(fc_out, lin.addr(), CLASSES * 2)?;
        let c = ctx.call_io(
            IoOp::LeaArgmax {
                buf: lin.addr(),
                n: CLASSES,
            },
            ReexecSemantics::Always,
        )?;
        ctx.write(class, c as u32)?;
        next(8)
    };

    // Task 8: package the result.
    let pack = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(600)?;
        next(9)
    };

    // Task 9: send (Single: never re-sent once delivered).
    let send = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let t = ctx.read(temp)?;
        let h = ctx.read(humd)?;
        let c = ctx.read(class)?;
        // Frame and checksum the packet, transmit, then log bookkeeping —
        // all one task, like the paper's Fig 2a send example.
        ctx.compute(700)?;
        ctx.call_io(
            IoOp::Send {
                payload: vec![t, h, c as i32],
            },
            ReexecSemantics::Single,
        )?;
        ctx.compute(900)?;
        next(10)
    };

    // Task 10: done (or loop for the next round).
    let rounds = cfg.rounds;
    let done = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(100)?;
        let r = ctx.read(round)?;
        ctx.write(round, r + 1)?;
        if r + 1 < rounds {
            Ok(Transition::To(TaskId(1)))
        } else {
            Ok(Transition::Done)
        }
    };

    // Golden result.
    let (fc_ref, class_ref) = dnn::reference_inference(&dnn::scene(cfg.scene_seed));
    let fc_loc = fc_out;
    let verify = move |mcu: &Mcu, p: &periph::Peripherals| -> Verdict {
        if class.get(&mcu.mem) != class_ref {
            return Verdict::Incorrect(format!(
                "class {} != golden {class_ref}",
                class.get(&mcu.mem)
            ));
        }
        let got: Vec<i16> = (0..CLASSES)
            .map(|i| {
                let b = mcu.mem.read_bytes(fc_loc.add(i * 2), 2);
                i16::from_le_bytes([b[0], b[1]])
            })
            .collect();
        if got != fc_ref {
            return Verdict::Incorrect("fully-connected activations corrupted".into());
        }
        if p.radio.count() == 0 {
            return Verdict::Incorrect("nothing was transmitted".into());
        }
        let last = p.radio.packets().last().expect("nonempty");
        if last.payload.len() != 3 || last.payload[2] != class_ref as i32 {
            return Verdict::Incorrect("transmitted class mismatch".into());
        }
        Verdict::Correct
    };

    App {
        name: if cfg.single_buffer {
            "weather/single"
        } else {
            "weather"
        },
        tasks: vec![
            TaskDef {
                name: "init",
                body: Rc::new(init),
            },
            TaskDef {
                name: "sense",
                body: Rc::new(sense),
            },
            TaskDef {
                name: "capture",
                body: Rc::new(capture),
            },
            TaskDef {
                name: "conv1",
                body: Rc::new(conv1),
            },
            TaskDef {
                name: "relu",
                body: Rc::new(relu),
            },
            TaskDef {
                name: "conv2",
                body: Rc::new(conv2),
            },
            TaskDef {
                name: "fc",
                body: Rc::new(fc),
            },
            TaskDef {
                name: "infer",
                body: Rc::new(infer),
            },
            TaskDef {
                name: "pack",
                body: Rc::new(pack),
            },
            TaskDef {
                name: "send",
                body: Rc::new(send),
            },
            TaskDef {
                name: "done",
                body: Rc::new(done),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 11,
            io_funcs: 5,
            io_sites: 8,
            timely_sites: 1,
            dma_sites: 9,
            io_blocks: 1,
            nv_vars: 9,
        },
        verify: Some(Rc::new(verify)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_core::EaseIoRuntime;
    use kernel::{alpaca::AlpacaRuntime, ink::InkRuntime, run_app, ExecConfig, Outcome, Runtime};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    fn run(rt: &mut dyn Runtime, cfg: &WeatherCfg, supply: Supply, seed: u64) -> kernel::RunResult {
        let mut mcu = Mcu::new(supply);
        let mut p = Peripherals::new(seed);
        let app = build(&mut mcu, cfg);
        run_app(&app, rt, &mut mcu, &mut p, &ExecConfig::default())
    }

    #[test]
    fn all_runtimes_correct_on_continuous_power_both_layouts() {
        for single in [false, true] {
            let cfg = WeatherCfg {
                single_buffer: single,
                ..WeatherCfg::default()
            };
            for name in ["alpaca", "ink", "easeio"] {
                let mut rt: Box<dyn Runtime> = match name {
                    "alpaca" => Box::new(AlpacaRuntime::new()),
                    "ink" => Box::new(InkRuntime::new()),
                    _ => Box::new(EaseIoRuntime::default()),
                };
                let r = run(rt.as_mut(), &cfg, Supply::continuous(), 5);
                assert_eq!(r.outcome, Outcome::Completed);
                assert_eq!(
                    r.verdict,
                    Some(Verdict::Correct),
                    "{name} single_buffer={single}"
                );
            }
        }
    }

    #[test]
    fn easeio_single_buffer_correct_under_failures() {
        for seed in 0..15 {
            let cfg = WeatherCfg {
                single_buffer: true,
                ..WeatherCfg::default()
            };
            let mut rt = EaseIoRuntime::default();
            let r = run(
                &mut rt,
                &cfg,
                Supply::timer(TimerResetConfig::default(), seed),
                seed,
            );
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
        }
    }

    #[test]
    fn baselines_single_buffer_corrupt_under_failures() {
        let mut bad = 0;
        for seed in 0..40 {
            let cfg = WeatherCfg {
                single_buffer: true,
                ..WeatherCfg::default()
            };
            let mut rt = AlpacaRuntime::new();
            let r = run(
                &mut rt,
                &cfg,
                Supply::timer(TimerResetConfig::default(), seed),
                seed,
            );
            if matches!(r.verdict, Some(Verdict::Incorrect(_))) {
                bad += 1;
            }
        }
        assert!(bad > 0, "single-buffer Alpaca never corrupted the DNN");
    }

    #[test]
    fn double_buffer_correct_for_everyone_under_failures() {
        for seed in 0..10 {
            for name in ["alpaca", "ink"] {
                let mut rt: Box<dyn Runtime> = match name {
                    "alpaca" => Box::new(AlpacaRuntime::new()),
                    _ => Box::new(InkRuntime::new()),
                };
                let r = run(
                    rt.as_mut(),
                    &WeatherCfg::default(),
                    Supply::timer(TimerResetConfig::default(), seed),
                    seed,
                );
                assert_eq!(r.outcome, Outcome::Completed);
                assert_eq!(r.verdict, Some(Verdict::Correct), "{name} seed {seed}");
            }
        }
    }

    #[test]
    fn easeio_wastes_less_work_than_alpaca() {
        // The paper's headline multi-task claim (Fig 10): EaseIO reduces the
        // wasted work of the weather classifier. Wasted work = app-tagged
        // time beyond what a continuous-power run needs.
        let seeds = 100..200u64;
        let measure = |mk: &dyn Fn() -> Box<dyn Runtime>| -> (u64, u64) {
            let mut rt = mk();
            let golden = run(rt.as_mut(), &WeatherCfg::default(), Supply::continuous(), 0);
            assert_eq!(golden.outcome, Outcome::Completed);
            let golden_app = golden.stats.app_time_us;
            let mut wasted = 0;
            let mut skipped = 0;
            for seed in seeds.clone() {
                let mut rt = mk();
                let r = run(
                    rt.as_mut(),
                    &WeatherCfg::default(),
                    Supply::timer(TimerResetConfig::default(), seed),
                    seed,
                );
                assert_eq!(r.outcome, Outcome::Completed);
                wasted += r.stats.app_time_us.saturating_sub(golden_app);
                skipped += r.stats.io_skipped + r.stats.dma_skipped;
            }
            (wasted, skipped)
        };
        let (alp_wasted, _) = measure(&|| Box::new(AlpacaRuntime::new()));
        let (eio_wasted, eio_skipped) = measure(&|| Box::new(EaseIoRuntime::default()));
        assert!(eio_skipped > 0, "EaseIO must skip some completed I/O");
        assert!(
            eio_wasted < alp_wasted,
            "EaseIO wasted {eio_wasted} µs vs Alpaca {alp_wasted} µs"
        );
    }
}
