//! Uni-task `Timely` benchmark: temperature sensing (paper §5.3, Fig 7b).
//!
//! The application senses temperature and must finish processing within a
//! freshness window of the sample. After a power failure, Alpaca/InK always
//! re-sense; EaseIO re-senses only if the outage pushed the sample past its
//! `Timely` window, restoring the previous reading otherwise.

use kernel::{
    App, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult, Transition,
    Verdict,
};
use mcu_emu::{Mcu, NvVar, Region};
use periph::Sensor;
use std::rc::Rc;

/// Configuration of the temperature benchmark.
#[derive(Debug, Clone)]
pub struct TempAppCfg {
    /// Freshness window of a sample, in milliseconds (the paper's example
    /// uses 10 ms).
    pub window_ms: u64,
    /// CPU cycles of processing between sense and store.
    pub process_compute: u64,
    /// Number of sense→process→store rounds.
    pub rounds: u32,
}

impl Default for TempAppCfg {
    fn default() -> Self {
        Self {
            window_ms: 10,
            process_compute: 1800,
            rounds: 4,
        }
    }
}

/// Builds the temperature application on `mcu`.
pub fn build(mcu: &mut Mcu, cfg: &TempAppCfg) -> App {
    let temp: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let smoothed: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let round: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);

    let cfg2 = cfg.clone();
    // The paper's task bundles the sample with its processing: the time
    // between the sense and the task commit is exactly the window in which
    // a power failure forces the baselines to re-sense.
    let sense_process = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let t = ctx.call_io(
            IoOp::Sense(Sensor::Temp),
            ReexecSemantics::timely_ms(cfg2.window_ms),
        )?;
        ctx.write(temp, t)?;
        ctx.compute(cfg2.process_compute)?;
        // Exponential smoothing in integer arithmetic.
        let s = ctx.read(smoothed)?;
        ctx.write(smoothed, (3 * s + t) / 4)?;
        Ok(Transition::To(TaskId(1)))
    };
    let cfg4 = cfg.clone();
    let store = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(400)?;
        let r = ctx.read(round)?;
        ctx.write(round, r + 1)?;
        if r + 1 < cfg4.rounds {
            Ok(Transition::To(TaskId(0)))
        } else {
            Ok(Transition::To(TaskId(2)))
        }
    };
    let report = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(300)?;
        Ok(Transition::Done)
    };

    let rounds = cfg.rounds;
    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        if round.get(&mcu.mem) != rounds {
            return Verdict::Incorrect("round counter mismatch".into());
        }
        // Sanity: the stored temperature must be a physically plausible
        // reading (the environment never leaves this band).
        let t = temp.get(&mcu.mem);
        if !(100..=2500).contains(&t) {
            return Verdict::Incorrect(format!("implausible temperature {t}"));
        }
        Verdict::Correct
    };

    App {
        name: "temp",
        tasks: vec![
            TaskDef {
                name: "sense_process",
                body: Rc::new(sense_process),
            },
            TaskDef {
                name: "store",
                body: Rc::new(store),
            },
            TaskDef {
                name: "report",
                body: Rc::new(report),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 3,
            io_funcs: 1,
            io_sites: 1,
            timely_sites: 1,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars: 3,
        },
        verify: Some(Rc::new(verify)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_core::EaseIoRuntime;
    use kernel::{ink::InkRuntime, run_app, ExecConfig, Outcome};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    #[test]
    fn completes_on_continuous_power() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(3);
        let app = build(&mut mcu, &TempAppCfg::default());
        let mut rt = InkRuntime::new();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
        // One sense per round on continuous power.
        assert_eq!(r.stats.io_executed, 4);
    }

    #[test]
    fn easeio_restores_fresh_samples_across_short_outages() {
        // Short outages (well within the 10 ms window): the sense must not
        // repeat even though the task re-executes.
        let cfg = TimerResetConfig {
            on_min_us: 1_200,
            on_max_us: 2_200,
            off_min_us: 100,
            off_max_us: 500,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 23));
        let mut p = Peripherals::new(3);
        let app = build(&mut mcu, &TempAppCfg::default());
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        // Most re-entries find the sample still fresh and restore it; only
        // long chains of failed attempts can push a sample past its window.
        assert!(
            r.stats.io_skipped > r.stats.io_reexecutions,
            "restores ({}) must dominate re-senses ({})",
            r.stats.io_skipped,
            r.stats.io_reexecutions
        );
    }

    #[test]
    fn expired_samples_under_short_periods_livelock() {
        // Paper §2.1.1: "redundant re-executions might even lead to a
        // non-termination bug". With outages far beyond the Timely window,
        // every re-entry must re-sense — and if the on-period is shorter
        // than sense+process, the task can never commit.
        let cfg = TimerResetConfig {
            on_min_us: 1_200,
            on_max_us: 2_200,
            off_min_us: 40_000,
            off_max_us: 60_000,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 29));
        let mut p = Peripherals::new(3);
        let app = build(&mut mcu, &TempAppCfg::default());
        let mut rt = EaseIoRuntime::default();
        let r = run_app(
            &app,
            &mut rt,
            &mut mcu,
            &mut p,
            &ExecConfig {
                max_attempts_per_task: 300,
                ..ExecConfig::default()
            },
        );
        assert_eq!(r.outcome, Outcome::NonTermination);
    }

    #[test]
    fn easeio_resenses_after_long_outages() {
        // Outages far beyond the window: the sample expires and EaseIO must
        // sense again (no staleness).
        let cfg = TimerResetConfig {
            on_min_us: 3_500,
            on_max_us: 6_000,
            off_min_us: 40_000,
            off_max_us: 60_000,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 29));
        let mut p = Peripherals::new(3);
        let app = build(&mut mcu, &TempAppCfg::default());
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        if r.stats.power_failures > 0 && r.stats.counter("easeio_timely_expired") > 0 {
            assert!(r.stats.io_executed > 1);
        }
    }
}
