//! Over-the-air update stressor: stage a new task-graph image, flip it
//! live, keep working (extension app).
//!
//! Not a paper benchmark, but the workload the crash-safe update subsystem
//! is built to exercise. The device boots on a factory image (sequence 1),
//! receives a new image, applies it, and then runs its ordinary work loop
//! on whatever version survived. The invariant is Surbatovich-style
//! old-or-new atomicity: after **any** power failure, recovery must find
//! the active image coherent — header hash matching payload — and the
//! completed run must be on the target version with the activation noted
//! exactly once.
//!
//! Two protocols, selected by [`OtaUpdateCfg::two_phase`] (the CLI derives
//! it from the kernel via `KernelKind::two_phase_update`):
//!
//! * **two-phase** — [`kernel::UpdateStore`]'s stage→seal→flip: the shadow
//!   slot absorbs every partial write and one commit-word store activates
//!   the image atomically; re-execution of the activation task is a
//!   guarded no-op.
//! * **in-place** — the naive baseline rewrites the live image header
//!   first. A failure mid-payload strands a torn image, which the recovery
//!   check at the next task entry reports via `probe_version_torn`; and
//!   because nothing remembers the notification, re-execution after the
//!   completed write re-notifies the activation (`probe_update_duplicate_
//!   activation`).
//!
//! The app brackets its stage→flip→activate window with the
//! `update_window_enter`/`update_window_exit` marker counters, which the
//! crash sweep's update-aware mode reads off the reference boundary trace
//! to inject failures at exactly the boundaries inside the window.

use kernel::update::{UPDATE_WINDOW_ENTER, UPDATE_WINDOW_EXIT};
use kernel::{
    App, Inventory, TaskCtx, TaskDef, TaskId, TaskResult, Transition, UpdateStore, Verdict,
};
use mcu_emu::{Mcu, NvVar, Region};
use std::rc::Rc;

/// Configuration of the OTA-update app.
#[derive(Debug, Clone)]
pub struct OtaUpdateCfg {
    /// Words in the task-graph image (also each slot's capacity).
    pub payload_words: u32,
    /// Downlink chunk granularity the staging task writes at.
    pub chunk_words: u32,
    /// Sequence number of the update being applied (factory image is 1).
    /// A target of 1 means no new image reached the device — the fleet
    /// rollout's straggler/stale variant — and the app skips the update
    /// window entirely, running the work loop on the factory image.
    pub target_seq: u32,
    /// Work-loop iterations after the update window closes.
    pub work_rounds: u32,
    /// Apply the update through the two-phase shadow-slot protocol rather
    /// than the unsafe in-place rewrite.
    pub two_phase: bool,
}

impl Default for OtaUpdateCfg {
    fn default() -> Self {
        Self {
            payload_words: 6,
            chunk_words: 2,
            target_seq: 2,
            work_rounds: 3,
            two_phase: true,
        }
    }
}

/// The deterministic image for `seq`: what the gateway would downlink.
/// Shared with the fleet rollout so device-side staging and gateway-side
/// payload accounting agree word-for-word.
pub fn image(seq: u32, words: u32) -> Vec<u32> {
    (0..words)
        .map(|i| seq.wrapping_mul(0x9E37_79B9) ^ i.wrapping_mul(31).wrapping_add(7))
        .collect()
}

/// Builds the OTA-update app; returns it plus the work-counter handle.
pub fn build(mcu: &mut Mcu, cfg: &OtaUpdateCfg) -> (App, NvVar<u32>) {
    let store = UpdateStore::alloc(&mut mcu.mem, cfg.payload_words);
    store.install_initial(&mut mcu.mem, 1, &image(1, cfg.payload_words));
    let work: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);

    let boot = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        store.recover_check(ctx.mcu)?;
        ctx.compute(150)?;
        ctx.write(work, 0u32)?;
        Ok(Transition::To(TaskId(1)))
    };

    let (payload_words, chunk_words) = (cfg.payload_words, cfg.chunk_words.max(1));
    let (target_seq, two_phase) = (cfg.target_seq, cfg.two_phase);
    let stage = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        if target_seq <= 1 {
            // Nothing to apply (no or incomplete downlink): straight to the
            // work loop, never opening the update window.
            store.recover_check(ctx.mcu)?;
            return Ok(Transition::To(TaskId(3)));
        }
        ctx.mcu.stats.bump(UPDATE_WINDOW_ENTER);
        store.recover_check(ctx.mcu)?;
        let img = image(target_seq, payload_words);
        if two_phase {
            store.begin_stage(ctx.mcu, payload_words)?;
            for (i, chunk) in img.chunks(chunk_words as usize).enumerate() {
                store.stage_chunk(ctx.mcu, i as u32 * chunk_words, chunk)?;
            }
            store.seal_stage(ctx.mcu, target_seq)?;
        } else {
            store.write_in_place(ctx.mcu, target_seq, &img)?;
        }
        Ok(Transition::To(TaskId(2)))
    };

    let activate = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        store.recover_check(ctx.mcu)?;
        if two_phase {
            if store.activate(ctx.mcu)? {
                store.note_activation(ctx.mcu, target_seq)?;
            }
        } else {
            store.note_activation(ctx.mcu, target_seq)?;
        }
        // Post-activation bookkeeping inside the same task: a failure here
        // re-enters the task with the notification already recorded, which
        // is exactly the re-notification hazard the duplicate probe pins.
        ctx.compute(200)?;
        ctx.mcu.stats.bump(UPDATE_WINDOW_EXIT);
        Ok(Transition::To(TaskId(3)))
    };

    let work_rounds = cfg.work_rounds;
    let run = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let w = ctx.read(work)?;
        if w >= work_rounds {
            return Ok(Transition::Done);
        }
        ctx.compute(400)?;
        ctx.write(work, w + 1)?;
        Ok(Transition::To(TaskId(3)))
    };

    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        let expect_seq = target_seq.max(1);
        let v = store.version_unchecked(&mcu.mem);
        if v.seq != expect_seq {
            return Verdict::Incorrect(format!(
                "device finished on version {} instead of {expect_seq}",
                v.seq
            ));
        }
        if !store.coherent_unchecked(&mcu.mem) {
            return Verdict::Incorrect("active image hash does not match its payload".into());
        }
        let w = work.get(&mcu.mem);
        if w != work_rounds {
            return Verdict::Incorrect(format!("{w} work rounds ran, expected {work_rounds}"));
        }
        Verdict::Correct
    };

    let nv_vars = 1 + store.nv_vars();
    let app = App {
        name: "ota-update",
        tasks: vec![
            TaskDef {
                name: "boot",
                body: Rc::new(boot),
            },
            TaskDef {
                name: "stage",
                body: Rc::new(stage),
            },
            TaskDef {
                name: "activate",
                body: Rc::new(activate),
            },
            TaskDef {
                name: "work",
                body: Rc::new(run),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 4,
            io_funcs: 0,
            io_sites: 0,
            timely_sites: 0,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars,
        },
        verify: Some(Rc::new(verify)),
    };
    (app, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{MakeRuntime, RuntimeKind};
    use kernel::update::{PROBE_DUPLICATE_ACTIVATION, PROBE_VERSION_TORN};
    use kernel::{run_app, ExecConfig, Outcome};
    use mcu_emu::Supply;
    use periph::Peripherals;

    fn cfg_for(kind: RuntimeKind) -> OtaUpdateCfg {
        OtaUpdateCfg {
            two_phase: kind.two_phase_update(),
            ..OtaUpdateCfg::default()
        }
    }

    fn run_injected(kind: RuntimeKind, supply: Supply) -> kernel::RunResult {
        let mut mcu = Mcu::new(supply);
        let mut p = Peripherals::new(5);
        let (app, _) = build(&mut mcu, &cfg_for(kind));
        let mut rt = kind.make();
        run_app(&app, rt.as_mut(), &mut mcu, &mut p, &ExecConfig::default())
    }

    #[test]
    fn all_runtimes_reach_the_target_version_on_continuous_power() {
        for kind in RuntimeKind::ALL {
            let r = run_injected(kind, Supply::continuous());
            assert_eq!(r.outcome, Outcome::Completed, "{}", kind.name());
            assert_eq!(r.verdict, Some(Verdict::Correct), "{}", kind.name());
            assert_eq!(r.stats.counter(PROBE_VERSION_TORN), 0, "{}", kind.name());
            assert_eq!(
                r.stats.counter(PROBE_DUPLICATE_ACTIVATION),
                0,
                "{}",
                kind.name()
            );
        }
    }

    /// Failure injection at every energy-spend boundary: the two-phase
    /// protocol must resume a coherent version everywhere, while the
    /// in-place baseline must strand a torn image (and re-notify its
    /// activation) at some boundary. This is the app-level core of the
    /// crashcheck `version_torn` sweep.
    #[test]
    fn exhaustive_injection_separates_two_phase_from_in_place() {
        let boundaries =
            |kind: RuntimeKind| run_injected(kind, Supply::continuous()).stats.boundaries;

        for kind in [RuntimeKind::EaseIo, RuntimeKind::Alpaca, RuntimeKind::Ink] {
            for b in 0..boundaries(kind) {
                let r = run_injected(kind, Supply::injected(b, 100_000));
                assert_eq!(r.outcome, Outcome::Completed, "{} b={b}", kind.name());
                assert_eq!(r.verdict, Some(Verdict::Correct), "{} b={b}", kind.name());
                assert_eq!(
                    r.stats.counter(PROBE_VERSION_TORN),
                    0,
                    "{} resumed a torn image at boundary {b}",
                    kind.name()
                );
                assert_eq!(
                    r.stats.counter(PROBE_DUPLICATE_ACTIVATION),
                    0,
                    "{} duplicated an activation at boundary {b}",
                    kind.name()
                );
            }
        }

        let (mut torn, mut dup) = (0u64, 0u64);
        for b in 0..boundaries(RuntimeKind::Naive) {
            let r = run_injected(RuntimeKind::Naive, Supply::injected(b, 100_000));
            torn += r.stats.counter(PROBE_VERSION_TORN);
            dup += r.stats.counter(PROBE_DUPLICATE_ACTIVATION);
        }
        assert!(torn > 0, "in-place rewrite never tore the image");
        assert!(dup > 0, "in-place rewrite never duplicated an activation");
    }

    #[test]
    fn window_markers_bracket_the_update() {
        let r = run_injected(RuntimeKind::EaseIo, Supply::continuous());
        assert_eq!(r.stats.counter(UPDATE_WINDOW_ENTER), 1);
        assert_eq!(r.stats.counter(UPDATE_WINDOW_EXIT), 1);
    }

    #[test]
    fn a_device_that_received_no_image_stays_on_the_factory_version() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(5);
        let cfg = OtaUpdateCfg {
            target_seq: 1,
            ..OtaUpdateCfg::default()
        };
        let (app, _) = build(&mut mcu, &cfg);
        let mut rt = RuntimeKind::EaseIo.make();
        let r = run_app(&app, rt.as_mut(), &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
        // The window never opens and nothing is staged.
        assert_eq!(r.stats.counter(UPDATE_WINDOW_ENTER), 0);
        assert_eq!(r.stats.counter(UPDATE_WINDOW_EXIT), 0);
    }
}
