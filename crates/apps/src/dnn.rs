//! The weather classifier's 5-layer DNN (paper §5.4.1).
//!
//! Layers: 4×4 convolution → ReLU → 4×4 convolution → fully-connected →
//! inference (argmax), on a 12×12 fixed-point image, with LEA/DMA staging
//! like TAILS. This module holds the deterministic weights and a software
//! reference implementation that matches the LEA arithmetic bit-for-bit, so
//! Table 5's correctness column is an exact memory comparison.

use periph::lea::ACC_SHIFT;

/// Input image side length.
pub const IMG: u32 = 12;
/// Convolution kernel side length.
pub const K: u32 = 4;
/// Side length after the first convolution (valid padding).
pub const C1: u32 = IMG - K + 1; // 9
/// Side length after the second convolution.
pub const C2: u32 = C1 - K + 1; // 6
/// Flattened input size of the fully-connected layer.
pub const FC_IN: u32 = C2 * C2; // 36
/// Number of output classes.
pub const CLASSES: u32 = 4;

/// First convolution kernel, element `i` (row-major 4×4), Q8-ish magnitude.
pub fn kernel1(i: u32) -> i16 {
    (((i * 11 + 3) % 37) as i16) - 18
}

/// Second convolution kernel, element `i`.
pub fn kernel2(i: u32) -> i16 {
    (((i * 23 + 7) % 31) as i16) - 15
}

/// Fully-connected weight for output `j`, input `i` (row-major `j·FC_IN+i`).
pub fn fc_weight(idx: u32) -> i16 {
    (((idx * 13 + 5) % 41) as i16) - 20
}

fn sat(acc: i32) -> i16 {
    (acc >> ACC_SHIFT).clamp(i16::MIN as i32, i16::MAX as i32) as i16
}

fn conv2d_ref(input: &[i16], w: u32, kernel: &dyn Fn(u32) -> i16) -> Vec<i16> {
    let ow = w - K + 1;
    let mut out = Vec::with_capacity((ow * ow) as usize);
    for oy in 0..ow {
        for ox in 0..ow {
            let mut acc: i32 = 0;
            for ky in 0..K {
                for kx in 0..K {
                    let px = input[((oy + ky) * w + (ox + kx)) as usize] as i32;
                    acc += px * kernel(ky * K + kx) as i32;
                }
            }
            out.push(sat(acc));
        }
    }
    out
}

/// Reference forward pass: returns the fully-connected output vector and
/// the inferred class.
pub fn reference_inference(image: &[i16]) -> (Vec<i16>, u32) {
    assert_eq!(image.len() as u32, IMG * IMG);
    // Layer 1: conv 12×12 → 9×9.
    let l1 = conv2d_ref(image, IMG, &kernel1);
    // Layer 2: ReLU in place.
    let l2: Vec<i16> = l1.iter().map(|v| (*v).max(0)).collect();
    // Layer 3: conv 9×9 → 6×6.
    let l3 = conv2d_ref(&l2, C1, &kernel2);
    // Layer 4: fully connected 36 → 4.
    let mut fc = Vec::with_capacity(CLASSES as usize);
    for j in 0..CLASSES {
        let mut acc: i32 = 0;
        for i in 0..FC_IN {
            acc += fc_weight(j * FC_IN + i) as i32 * l3[i as usize] as i32;
        }
        fc.push(sat(acc));
    }
    // Layer 5: inference (argmax, ties to the lowest index).
    let mut class = 0u32;
    let mut best = fc[0];
    for (i, v) in fc.iter().enumerate().skip(1) {
        if *v > best {
            best = *v;
            class = i as u32;
        }
    }
    (fc, class)
}

/// The deterministic scene the camera produces (shared with the weather
/// app's golden computation).
pub fn scene(seed: u64) -> Vec<i16> {
    (0..IMG * IMG)
        .map(|i| periph::camera::scene_pixel(seed, IMG, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        assert_eq!(C1, 9);
        assert_eq!(C2, 6);
        assert_eq!(FC_IN, 36);
        let (fc, class) = reference_inference(&scene(7));
        assert_eq!(fc.len(), CLASSES as usize);
        assert!(class < CLASSES);
    }

    #[test]
    fn inference_is_deterministic_per_scene() {
        assert_eq!(
            reference_inference(&scene(1)),
            reference_inference(&scene(1))
        );
    }

    #[test]
    fn different_scenes_give_different_activations() {
        let (fc_a, _) = reference_inference(&scene(1));
        let (fc_b, _) = reference_inference(&scene(2));
        assert_ne!(fc_a, fc_b);
    }

    #[test]
    fn relu_matters_for_this_network() {
        // The first conv must produce at least one negative activation,
        // otherwise the ReLU layer would be dead code in the benchmark.
        let l1 = conv2d_ref(&scene(7), IMG, &kernel1);
        assert!(l1.iter().any(|v| *v < 0), "no negative activations");
        assert!(l1.iter().any(|v| *v > 0), "no positive activations");
    }

    #[test]
    fn reference_matches_lea_hardware_path() {
        // Run the same layers through the simulated LEA and compare.
        use mcu_emu::{AllocTag, Memory, Region};
        let img = scene(7);
        let mut mem = Memory::new();
        let lin = mem.alloc(Region::LeaRam, IMG * IMG * 2, AllocTag::App);
        let lw = mem.alloc(Region::LeaRam, FC_IN * CLASSES * 2, AllocTag::App);
        let lout = mem.alloc(Region::LeaRam, C1 * C1 * 2, AllocTag::App);
        let w = |mem: &mut Memory, base: mcu_emu::Addr, data: &[i16]| {
            for (i, v) in data.iter().enumerate() {
                mem.write_bytes(base.add(i as u32 * 2), &v.to_le_bytes());
            }
        };
        let r = |mem: &Memory, base: mcu_emu::Addr, n: u32| -> Vec<i16> {
            (0..n)
                .map(|i| {
                    let b = mem.read_bytes(base.add(i * 2), 2);
                    i16::from_le_bytes([b[0], b[1]])
                })
                .collect()
        };
        // conv1
        w(&mut mem, lin, &img);
        let k1: Vec<i16> = (0..K * K).map(kernel1).collect();
        w(&mut mem, lw, &k1);
        periph::lea::conv2d(&mut mem, lin, IMG, IMG, lw, K, K, lout);
        let mut act = r(&mem, lout, C1 * C1);
        // relu
        w(&mut mem, lin, &act);
        periph::lea::relu(&mut mem, lin, C1 * C1);
        act = r(&mem, lin, C1 * C1);
        // conv2
        w(&mut mem, lin, &act);
        let k2: Vec<i16> = (0..K * K).map(kernel2).collect();
        w(&mut mem, lw, &k2);
        periph::lea::conv2d(&mut mem, lin, C1, C1, lw, K, K, lout);
        act = r(&mem, lout, C2 * C2);
        // fc
        w(&mut mem, lin, &act);
        let fcw: Vec<i16> = (0..FC_IN * CLASSES).map(fc_weight).collect();
        w(&mut mem, lw, &fcw);
        periph::lea::fully_connected(&mut mem, lin, FC_IN, lw, lout, CLASSES);
        let fc_hw = r(&mem, lout, CLASSES);
        let (class_hw, _) = periph::lea::argmax(&mem, lout, CLASSES);

        let (fc_ref, class_ref) = reference_inference(&img);
        assert_eq!(fc_hw, fc_ref);
        assert_eq!(class_hw, class_ref);
    }
}
