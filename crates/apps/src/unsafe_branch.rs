//! The Figure 2c unsafe-execution scenario: I/O-dependent control flow.
//!
//! A task senses temperature and sets `stdy` when it is below 10 °C,
//! `alarm` otherwise. Under blind re-execution the sensor may return a
//! different value after the reboot and the task takes the *other* branch —
//! leaving both actuation flags set, a state continuous execution can never
//! produce. EaseIO restores the first successful reading (`Single`) so the
//! branch is stable across failures.

use kernel::{
    App, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult, Transition,
    Verdict,
};
use mcu_emu::{Mcu, NvVar, Region};
use periph::Sensor;
use std::rc::Rc;

/// Configuration of the branch-divergence app.
#[derive(Debug, Clone)]
pub struct BranchCfg {
    /// Threshold in centi-degrees (the paper's example uses 10 °C).
    pub threshold_centi_c: i32,
    /// Semantics of the sense (EaseIO uses `Single`; `Always` reproduces the
    /// bug even under EaseIO, for didactic tests).
    pub sense_sem: ReexecSemantics,
    /// CPU cycles between the branch and task commit (the vulnerability
    /// window).
    pub tail_compute: u64,
}

impl Default for BranchCfg {
    fn default() -> Self {
        Self {
            threshold_centi_c: 1000,
            sense_sem: ReexecSemantics::Single,
            tail_compute: 2_500,
        }
    }
}

/// Builds the branch app; returns it with the two actuation flags.
pub fn build(mcu: &mut Mcu, cfg: &BranchCfg) -> (App, NvVar<u8>, NvVar<u8>) {
    let stdy: NvVar<u8> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let alarm: NvVar<u8> = NvVar::alloc(&mut mcu.mem, Region::Fram);

    let cfg2 = cfg.clone();
    let sense = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let temp = ctx.call_io(IoOp::Sense(Sensor::Temp), cfg2.sense_sem)?;
        ctx.compute(500)?;
        if temp < cfg2.threshold_centi_c {
            ctx.write(stdy, 1u8)?;
        } else {
            ctx.write(alarm, 1u8)?;
        }
        ctx.compute(cfg2.tail_compute)?;
        Ok(Transition::To(TaskId(1)))
    };
    let actuate = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(300)?;
        Ok(Transition::Done)
    };

    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        let s = stdy.get(&mcu.mem);
        let a = alarm.get(&mcu.mem);
        match (s, a) {
            (1, 0) | (0, 1) => Verdict::Correct,
            (1, 1) => Verdict::Incorrect("both stdy and alarm set".into()),
            _ => Verdict::Incorrect(format!("no actuation decided (stdy={s}, alarm={a})")),
        }
    };

    let app = App {
        name: "unsafe-branch",
        tasks: vec![
            TaskDef {
                name: "sense",
                body: Rc::new(sense),
            },
            TaskDef {
                name: "actuate",
                body: Rc::new(actuate),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 2,
            io_funcs: 1,
            io_sites: 1,
            timely_sites: 0,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars: 2,
        },
        verify: Some(Rc::new(verify)),
    };
    (app, stdy, alarm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_core::EaseIoRuntime;
    use kernel::{naive::NaiveRuntime, run_app, ExecConfig, Outcome};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    fn failure_supply(seed: u64) -> Supply {
        Supply::timer(
            TimerResetConfig {
                on_min_us: 2_000,
                on_max_us: 6_000,
                // Long outages: the environment drifts across the reboot.
                off_min_us: 200_000,
                off_max_us: 2_000_000,
            },
            seed,
        )
    }

    #[test]
    fn naive_runtime_eventually_sets_both_flags() {
        let mut both = 0;
        for seed in 0..200 {
            let mut mcu = Mcu::new(failure_supply(seed));
            let mut p = Peripherals::new(seed);
            let (app, stdy, alarm) = build(&mut mcu, &BranchCfg::default());
            let mut rt = NaiveRuntime::new();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            if stdy.get(&mcu.mem) == 1 && alarm.get(&mcu.mem) == 1 {
                both += 1;
            }
        }
        assert!(
            both > 0,
            "blind re-execution never diverged across 200 seeds — the \
             environment drift or failure window is miscalibrated"
        );
    }

    #[test]
    fn easeio_never_sets_both_flags() {
        for seed in 0..200 {
            let mut mcu = Mcu::new(failure_supply(seed));
            let mut p = Peripherals::new(seed);
            let (app, _, _) = build(&mut mcu, &BranchCfg::default());
            let mut rt = EaseIoRuntime::default();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
        }
    }

    #[test]
    fn easeio_with_always_semantics_stays_memory_safe_via_regional_privatization() {
        // Even when the programmer annotates the sense `Always` (so the
        // reading legitimately changes across reboots and the branch may
        // flip), regional privatization rolls back the previous attempt's
        // flag write on re-entry — so memory can never hold both flags
        // (paper §4.4: regional privatization "overcomes unsafe program
        // execution problems").
        let cfg = BranchCfg {
            sense_sem: ReexecSemantics::Always,
            ..BranchCfg::default()
        };
        let mut reexecuted = 0;
        for seed in 0..200 {
            let mut mcu = Mcu::new(failure_supply(seed));
            let mut p = Peripherals::new(seed);
            let (app, stdy, alarm) = build(&mut mcu, &cfg);
            let mut rt = EaseIoRuntime::default();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            reexecuted += r.stats.io_reexecutions;
            let both = stdy.get(&mcu.mem) == 1 && alarm.get(&mcu.mem) == 1;
            assert!(!both, "seed {seed}: both flags set despite privatization");
        }
        assert!(
            reexecuted > 0,
            "the Always sense must actually have re-executed somewhere"
        );
    }
}
