//! Flaky-radio telemetry relay: the peripheral-fault stressor (extension
//! app).
//!
//! Not a paper benchmark, but the workload the fault-injection subsystem is
//! built to exercise: a tight sense→frame→transmit loop where the *radio*
//! is the unreliable part, not the power supply. Each round reads the
//! temperature under a `Timely` freshness window, frames a packet, and
//! transmits it with `Single` semantics, counting the send in FRAM inside
//! the same task.
//!
//! The invariant is end-to-end and observable on the air: packets
//! transmitted == sends counted in FRAM == rounds. Two distinct failure
//! modes attack it:
//!
//! * a **lost acknowledgement** (`RadioNack`): the packet *is* on the air
//!   but the MCU cannot know it. A blind retry duplicates the external
//!   effect; EaseIO absorbs the NACK against its completion record and
//!   moves on.
//! * a **dropped packet** (`RadioPacketDrop`): nothing reached the air, so
//!   retrying is exactly what the `Single` contract wants.
//!
//! Distinguishing the two is the whole game — a runtime that treats every
//! radio error the same either duplicates telemetry or silently loses it.

use kernel::{
    App, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult, Transition,
    Verdict,
};
use mcu_emu::{Mcu, NvVar, Region};
use periph::Sensor;
use std::rc::Rc;

/// Configuration of the flaky-radio relay.
#[derive(Debug, Clone)]
pub struct FlakyRadioCfg {
    /// Sense→transmit rounds per run.
    pub rounds: u32,
    /// Freshness window for the temperature reading (ms).
    pub temp_window_ms: u64,
}

impl Default for FlakyRadioCfg {
    fn default() -> Self {
        Self {
            rounds: 8,
            temp_window_ms: 10,
        }
    }
}

/// Builds the flaky-radio app; returns it plus the send-counter handle.
pub fn build(mcu: &mut Mcu, cfg: &FlakyRadioCfg) -> (App, NvVar<u32>) {
    let reading: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let sent: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let round: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);

    let init = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(150)?;
        ctx.write(sent, 0u32)?;
        ctx.write(round, 0u32)?;
        Ok(Transition::To(TaskId(1)))
    };

    let window = cfg.temp_window_ms;
    let sense = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let t = ctx.call_io(
            IoOp::Sense(Sensor::Temp),
            ReexecSemantics::timely_ms(window),
        )?;
        ctx.write(reading, t)?;
        // Range-check and convert the raw reading.
        ctx.compute(600)?;
        Ok(Transition::To(TaskId(2)))
    };

    let send = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let r = ctx.read(round)?;
        let t = ctx.read(reading)?;
        // Frame and checksum, transmit exactly once, then account for the
        // send — all one task, so a failure after the transmit re-enters
        // the task with the packet already on the air.
        ctx.compute(300)?;
        ctx.call_io(
            IoOp::Send {
                payload: vec![r as i32, t],
            },
            ReexecSemantics::Single,
        )?;
        let n = ctx.read(sent)?;
        ctx.write(sent, n + 1)?;
        Ok(Transition::To(TaskId(3)))
    };

    let rounds = cfg.rounds;
    let advance = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        let r = ctx.read(round)?;
        ctx.write(round, r + 1)?;
        ctx.compute(100)?;
        if r + 1 < rounds {
            Ok(Transition::To(TaskId(1)))
        } else {
            Ok(Transition::Done)
        }
    };

    let verify = move |mcu: &Mcu, p: &periph::Peripherals| -> Verdict {
        if round.get(&mcu.mem) != rounds {
            return Verdict::Incorrect("round counter mismatch".into());
        }
        let n = sent.get(&mcu.mem);
        if n != rounds {
            return Verdict::Incorrect(format!("{n} sends counted for {rounds} rounds"));
        }
        // Exactly-once telemetry: one packet on the air per counted send,
        // in round order.
        if p.radio.count() != n as usize {
            return Verdict::Incorrect(format!(
                "{} packets transmitted but {n} sends counted",
                p.radio.count()
            ));
        }
        for (i, pkt) in p.radio.packets().iter().enumerate() {
            if pkt.payload.len() != 2 || pkt.payload[0] != i as i32 {
                return Verdict::Incorrect(format!("packet {i} out of order or malformed"));
            }
        }
        Verdict::Correct
    };

    let app = App {
        name: "flaky-radio",
        tasks: vec![
            TaskDef {
                name: "init",
                body: Rc::new(init),
            },
            TaskDef {
                name: "sense",
                body: Rc::new(sense),
            },
            TaskDef {
                name: "send",
                body: Rc::new(send),
            },
            TaskDef {
                name: "advance",
                body: Rc::new(advance),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 4,
            io_funcs: 2,
            io_sites: 2,
            timely_sites: 1,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars: 3,
        },
        verify: Some(Rc::new(verify)),
    };
    (app, sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{MakeRuntime, RuntimeKind};
    use kernel::{run_app, ExecConfig, FaultSpec, Outcome};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    fn run_with_faults(
        kind: RuntimeKind,
        supply: Supply,
        env_seed: u64,
        fault: &FaultSpec,
    ) -> (kernel::RunResult, u32, usize) {
        let mut mcu = Mcu::new(supply);
        let mut p = Peripherals::new(env_seed);
        fault.apply(&mut p);
        let (app, sent) = build(&mut mcu, &FlakyRadioCfg::default());
        let mut rt = kind.make();
        let cfg = ExecConfig {
            retry: fault.retry,
            ..ExecConfig::default()
        };
        let r = run_app(&app, rt.as_mut(), &mut mcu, &mut p, &cfg);
        let n = sent.get(&mcu.mem);
        (r, n, p.radio.count())
    }

    #[test]
    fn all_runtimes_correct_without_faults() {
        for kind in RuntimeKind::ALL {
            let (r, sent, packets) =
                run_with_faults(kind, Supply::continuous(), 3, &FaultSpec::none());
            assert_eq!(r.outcome, Outcome::Completed, "{}", kind.name());
            assert_eq!(r.verdict, Some(Verdict::Correct), "{}", kind.name());
            assert_eq!(sent as usize, packets, "{}", kind.name());
        }
    }

    #[test]
    fn easeio_exactly_once_under_power_failures() {
        for seed in 0..30u64 {
            let (r, sent, packets) = run_with_faults(
                RuntimeKind::EaseIo,
                Supply::timer(TimerResetConfig::default(), seed),
                seed,
                &FaultSpec::none(),
            );
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
            assert_eq!(sent as usize, packets, "seed {seed}");
        }
    }

    #[test]
    fn easeio_exactly_once_under_radio_faults() {
        // Moderate fault rate: NACKs and drops both fire, retries absorb
        // them, and the on-air log still matches the FRAM counter.
        for seed in 0..20u64 {
            let fault = FaultSpec::with_rate(seed.wrapping_mul(3) + 1, 120);
            let (r, sent, packets) =
                run_with_faults(RuntimeKind::EaseIo, Supply::continuous(), seed, &fault);
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            assert_eq!(r.verdict, Some(Verdict::Correct), "seed {seed}");
            assert_eq!(sent as usize, packets, "seed {seed}");
        }
    }

    #[test]
    fn blind_retry_duplicates_packets_under_nacks() {
        // A lost acknowledgement means the packet is on the air; a runtime
        // that retries without a completion record transmits it again.
        let mut violated = 0;
        for seed in 0..30u64 {
            let fault = FaultSpec::with_rate(seed.wrapping_mul(7) + 2, 200);
            let (r, sent, packets) =
                run_with_faults(RuntimeKind::Naive, Supply::continuous(), seed, &fault);
            if r.outcome == Outcome::Completed && packets != sent as usize {
                violated += 1;
            }
        }
        assert!(
            violated > 0,
            "blind retries never duplicated a packet in 30 seeds"
        );
    }
}
