//! The EaseIO paper's evaluation applications.
//!
//! Every application is built once against a fresh simulated MCU and runs
//! unmodified on every runtime (Alpaca, InK, EaseIO, and the naive runtime):
//! the EaseIO annotations (`Single`/`Timely`/`Always`, I/O blocks,
//! `Exclude`) are carried by the task bodies and simply ignored by runtimes
//! that predate them — exactly how the paper implements each benchmark for
//! each system (Table 3).
//!
//! | module | paper workload | experiments |
//! |--------|----------------|-------------|
//! | [`dma_app`] | uni-task `Single`: NVM→NVM DMA | Fig 7a, Table 4, Fig 8 |
//! | [`temp_app`] | uni-task `Timely`: temperature sensing | Fig 7b, Table 4, Fig 8 |
//! | [`lea_app`] | uni-task `Always`: LEA FIR | Fig 7c, Table 4, Fig 8 |
//! | [`fir`] | FIR filter, 3 DMA + LEA, shared in/out buffer | Fig 10, 11, 12 |
//! | [`weather`] | 11-task DNN weather classifier | Fig 9, 10, 11, Table 5 |
//! | [`dnn`] | the classifier's 5-layer DNN (single/double buffer) | Table 5 |
//! | [`unsafe_branch`] | Fig 2c stdy/alarm branch divergence | §2.1.3 tests |
//! | [`flaky_radio`] | sense→transmit relay under radio faults (extension) | fault sweeps |
//! | [`ota_update`] | stage→flip→activate OTA update window (extension) | version-atomicity sweeps |
//! | [`harness`] | seeded experiment driver shared by benches and tests | all |

pub mod dma_app;
pub mod dnn;
pub mod fir;
pub mod fir_long;
pub mod flaky_radio;
pub mod harness;
pub mod lea_app;
pub mod motion;
pub mod ota_update;
pub mod synth;
pub mod temp_app;
pub mod unsafe_branch;
pub mod weather;

pub use harness::{
    kernel_builder, run_many, run_once, standard_factory, ExperimentCfg, KernelBuilder,
    KernelFactory, KernelKind, MakeRuntime, RuntimeKind, Summary,
};
