//! Seeded experiment driver shared by the benches, tests, and examples.
//!
//! One *experiment* is: build an app on a fresh MCU, run it under a runtime
//! and a seeded failure schedule, and collect the ledger. [`run_many`]
//! repeats this over `runs` seeds (the paper executes each application 1000
//! times with pseudo-random seeds, §5.3) and aggregates a [`Summary`] with
//! the paper's metrics: total time split into app/overhead/wasted, energy,
//! power failures, redundant re-executions, and correctness counts.

use easeio_core::EaseIoRuntime;
use kernel::footprint::{footprint, Footprint};
use kernel::{run_app, App, ExecConfig, FaultSpec, Outcome, RunResult, Runtime, Verdict};
use mcu_emu::{Mcu, Supply, TimerResetConfig};
use periph::Peripherals;
use std::sync::Arc;

pub use kernel::{KernelBuilder, KernelFactory, KernelKind};

/// Which runtime an experiment uses — the kernel crate's [`KernelKind`],
/// re-exported under its historical harness name.
pub type RuntimeKind = KernelKind;

/// The [`KernelFactory`] covering every kernel the repository ships: it
/// constructs EaseIO (which lives upstream of the `kernel` crate) and lets
/// the in-crate baselines fall through to [`KernelBuilder`]'s defaults.
pub fn standard_factory() -> KernelFactory {
    Arc::new(|kind| match kind {
        KernelKind::EaseIo | KernelKind::EaseIoOp => {
            Some(Box::new(EaseIoRuntime::default()) as Box<dyn Runtime>)
        }
        _ => None,
    })
}

/// A [`KernelBuilder`] for `kind` with the [`standard_factory`] installed:
/// the one constructor every experiment, sweep, and engine worker uses.
pub fn kernel_builder(kind: KernelKind) -> KernelBuilder {
    KernelBuilder::new(kind).with_factory(standard_factory())
}

/// Convenience `kind.make()` method, preserved from the pre-builder API as
/// an extension trait over [`KernelKind`].
pub trait MakeRuntime {
    /// Instantiates a fresh runtime via the standard [`KernelBuilder`].
    fn make(self) -> Box<dyn Runtime>;
}

impl MakeRuntime for KernelKind {
    fn make(self) -> Box<dyn Runtime> {
        kernel_builder(self).build()
    }
}

/// Repetition configuration for an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentCfg {
    /// Number of seeded repetitions.
    pub runs: u64,
    /// Base seed; run `i` uses seed `base_seed + i` for both the failure
    /// schedule and the environment.
    pub base_seed: u64,
    /// Failure-schedule parameters (§5.1: on-period uniform [5, 20] ms).
    pub reset: TimerResetConfig,
}

impl Default for ExperimentCfg {
    fn default() -> Self {
        Self {
            runs: 1000,
            base_seed: 0xEA5E10,
            reset: TimerResetConfig::default(),
        }
    }
}

/// Aggregated results of `runs` seeded executions.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Runtime display name.
    pub runtime: &'static str,
    /// Application name.
    pub app: &'static str,
    /// Repetitions attempted.
    pub runs: u64,
    /// Runs that completed.
    pub completed: u64,
    /// Runs that hit the non-termination guard.
    pub non_terminated: u64,
    /// Runs aborted on a runtime resource fault (e.g. DMA pool exhausted).
    pub faulted: u64,
    /// Completed runs whose final state matched the golden run.
    pub correct: u64,
    /// Completed runs with corrupted state.
    pub incorrect: u64,
    /// Total on-time over all completed runs (µs).
    pub total_on_us: u64,
    /// App-classified time (µs).
    pub app_us: u64,
    /// Overhead-classified time (µs).
    pub overhead_us: u64,
    /// Golden (continuous-power) app time per run (µs).
    pub golden_app_us: u64,
    /// Golden app energy per run (nJ).
    pub golden_app_energy_nj: u64,
    /// Total energy over completed runs (nJ).
    pub energy_nj: u64,
    /// Power failures over completed runs.
    pub power_failures: u64,
    /// I/O operations physically executed.
    pub io_executed: u64,
    /// I/O operations skipped with restored outputs.
    pub io_skipped: u64,
    /// Redundant I/O re-executions (peripheral).
    pub io_reexecutions: u64,
    /// Redundant DMA re-executions.
    pub dma_reexecutions: u64,
    /// DMA transfers skipped.
    pub dma_skipped: u64,
    /// Per-run total on-times (µs), for percentile reporting.
    pub run_totals_us: Vec<u64>,
}

impl Summary {
    /// Wasted app time over all runs (µs): measured minus golden.
    pub fn wasted_us(&self) -> u64 {
        self.app_us
            .saturating_sub(self.golden_app_us * self.completed)
    }

    /// Useful app time over all runs (µs).
    pub fn useful_us(&self) -> u64 {
        self.golden_app_us * self.completed
    }

    /// Mean total execution time per run (µs).
    pub fn mean_total_us(&self) -> u64 {
        if self.completed == 0 {
            return 0;
        }
        self.total_on_us / self.completed
    }

    /// Mean energy per run (µJ ×100 fixed point for pretty printing).
    pub fn mean_energy_uj_x100(&self) -> u64 {
        if self.completed == 0 {
            return 0;
        }
        self.energy_nj / self.completed / 10
    }

    /// Total redundant re-executions (I/O + DMA).
    pub fn reexecutions(&self) -> u64 {
        self.io_reexecutions + self.dma_reexecutions
    }

    /// The q-th percentile of per-run total time (µs); q in 0..=100.
    pub fn percentile_us(&self, q: u32) -> u64 {
        if self.run_totals_us.is_empty() {
            return 0;
        }
        let mut v = self.run_totals_us.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as u64 * q as u64 / 100) as usize;
        v[idx]
    }
}

/// Runs the app once. `builder` allocates the app on the provided MCU.
pub fn run_once(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
) -> RunResult {
    run_configured(builder, kind, supply, env_seed, false, &FaultSpec::none())
}

/// Like [`run_once`], with a peripheral fault plan installed and its retry
/// policy applied.
pub fn run_once_faulted(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
    fault: &FaultSpec,
) -> RunResult {
    run_configured(builder, kind, supply, env_seed, false, fault)
}

/// Like [`run_once`], but with the structured event recorder enabled: the
/// returned [`RunResult::events`] holds the full trace.
pub fn run_traced(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
) -> RunResult {
    run_configured(builder, kind, supply, env_seed, true, &FaultSpec::none())
}

/// Traced run with a peripheral fault plan installed.
pub fn run_traced_faulted(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
    fault: &FaultSpec,
) -> RunResult {
    run_configured(builder, kind, supply, env_seed, true, fault)
}

fn run_configured(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
    traced: bool,
    fault: &FaultSpec,
) -> RunResult {
    let mut mcu = Mcu::new(supply);
    if traced {
        mcu.trace = mcu_emu::TraceSink::enabled();
    }
    let mut periph = Peripherals::new(env_seed);
    fault.apply(&mut periph);
    let app = builder(&mut mcu);
    let mut rt = kind.make();
    let cfg = ExecConfig {
        retry: fault.retry,
        ..ExecConfig::default()
    };
    run_app(&app, rt.as_mut(), &mut mcu, &mut periph, &cfg)
}

/// Golden run on continuous power: returns (app time, app energy) per run.
/// On continuous power nothing re-executes, so the app-classified ledger is
/// pure useful work.
pub fn golden(builder: &dyn Fn(&mut Mcu) -> App, kind: RuntimeKind, env_seed: u64) -> (u64, u64) {
    let r = run_once(builder, kind, Supply::continuous(), env_seed);
    assert_eq!(
        r.outcome,
        Outcome::Completed,
        "golden run must complete on continuous power"
    );
    (r.stats.app_time_us, r.stats.app_energy_nj)
}

/// Runs the experiment `cfg.runs` times and aggregates.
pub fn run_many(
    app_name: &'static str,
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    cfg: &ExperimentCfg,
) -> Summary {
    let (golden_app_us, golden_app_energy_nj) = golden(builder, kind, cfg.base_seed);
    let mut s = Summary {
        runtime: kind.name(),
        app: app_name,
        runs: cfg.runs,
        completed: 0,
        non_terminated: 0,
        faulted: 0,
        correct: 0,
        incorrect: 0,
        total_on_us: 0,
        app_us: 0,
        overhead_us: 0,
        golden_app_us,
        golden_app_energy_nj,
        energy_nj: 0,
        power_failures: 0,
        io_executed: 0,
        io_skipped: 0,
        io_reexecutions: 0,
        dma_reexecutions: 0,
        dma_skipped: 0,
        run_totals_us: Vec::new(),
    };
    for i in 0..cfg.runs {
        let seed = cfg.base_seed + i;
        let supply = Supply::timer(cfg.reset.clone(), seed);
        let r = run_once(builder, kind, supply, seed);
        match r.outcome {
            Outcome::NonTermination => {
                s.non_terminated += 1;
                continue;
            }
            Outcome::Fault(_) => {
                s.faulted += 1;
                continue;
            }
            Outcome::Completed => s.completed += 1,
        }
        match &r.verdict {
            Some(Verdict::Correct) => s.correct += 1,
            Some(Verdict::Incorrect(_)) => s.incorrect += 1,
            None => {}
        }
        s.total_on_us += r.stats.total_time_us();
        s.run_totals_us.push(r.stats.total_time_us());
        s.app_us += r.stats.app_time_us;
        s.overhead_us += r.stats.overhead_time_us;
        s.energy_nj += r.stats.total_energy_nj();
        s.power_failures += r.stats.power_failures;
        s.io_executed += r.stats.io_executed;
        s.io_skipped += r.stats.io_skipped;
        s.io_reexecutions += r.stats.io_reexecutions;
        s.dma_reexecutions += r.stats.dma_reexecutions;
        s.dma_skipped += r.stats.dma_skipped;
    }
    s
}

/// Measures an app's memory/code footprint under a runtime (Table 6): one
/// continuous run so every runtime structure is allocated, then read the
/// allocator and evaluate the code model.
pub fn measure_footprint(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    env_seed: u64,
) -> Footprint {
    let mut mcu = Mcu::new(Supply::continuous());
    let mut periph = Peripherals::new(env_seed);
    let app = builder(&mut mcu);
    let mut rt = kind.make();
    let r = run_app(
        &app,
        rt.as_mut(),
        &mut mcu,
        &mut periph,
        &ExecConfig::default(),
    );
    assert_eq!(r.outcome, Outcome::Completed);
    footprint(kind.name(), &app.inventory, &mcu.mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma_app::{self, DmaAppCfg};
    use crate::temp_app::{self, TempAppCfg};

    #[test]
    fn run_many_aggregates_and_is_deterministic() {
        let cfg = ExperimentCfg {
            runs: 20,
            ..Default::default()
        };
        let build = |mcu: &mut Mcu| dma_app::build(mcu, &DmaAppCfg::default());
        let a = run_many("dma", &build, RuntimeKind::Alpaca, &cfg);
        let b = run_many("dma", &build, RuntimeKind::Alpaca, &cfg);
        assert_eq!(a.total_on_us, b.total_on_us);
        assert_eq!(a.power_failures, b.power_failures);
        assert_eq!(a.completed, 20);
        assert_eq!(a.correct, 20, "the DMA app is WAR-free: always correct");
    }

    #[test]
    fn easeio_beats_alpaca_on_single_dma_workload() {
        let cfg = ExperimentCfg {
            runs: 30,
            ..Default::default()
        };
        let build = |mcu: &mut Mcu| dma_app::build(mcu, &DmaAppCfg::default());
        let alpaca = run_many("dma", &build, RuntimeKind::Alpaca, &cfg);
        let easeio = run_many("dma", &build, RuntimeKind::EaseIo, &cfg);
        assert!(
            easeio.reexecutions() < alpaca.reexecutions(),
            "EaseIO {} vs Alpaca {} re-executions",
            easeio.reexecutions(),
            alpaca.reexecutions()
        );
        assert!(
            easeio.mean_total_us() < alpaca.mean_total_us(),
            "EaseIO {} µs vs Alpaca {} µs",
            easeio.mean_total_us(),
            alpaca.mean_total_us()
        );
        assert!(easeio.wasted_us() < alpaca.wasted_us());
    }

    #[test]
    fn footprints_are_ordered_like_table6() {
        let build = |mcu: &mut Mcu| temp_app::build(mcu, &TempAppCfg::default());
        let alpaca = measure_footprint(&build, RuntimeKind::Alpaca, 1);
        let ink = measure_footprint(&build, RuntimeKind::Ink, 1);
        let easeio = measure_footprint(&build, RuntimeKind::EaseIo, 1);
        assert!(alpaca.text < ink.text);
        assert!(alpaca.text < easeio.text);
        assert!(alpaca.fram <= easeio.fram, "EaseIO adds flag slots in FRAM");
    }
}

#[cfg(test)]
mod percentile_tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut s = run_many(
            "dma",
            &|mcu: &mut Mcu| crate::dma_app::build(mcu, &crate::dma_app::DmaAppCfg::default()),
            RuntimeKind::EaseIo,
            &ExperimentCfg {
                runs: 5,
                ..Default::default()
            },
        );
        // Replace measured values with a known ladder.
        s.run_totals_us = vec![10, 20, 30, 40, 50];
        assert_eq!(s.percentile_us(0), 10);
        assert_eq!(s.percentile_us(50), 30);
        assert_eq!(s.percentile_us(100), 50);
        s.run_totals_us.clear();
        assert_eq!(s.percentile_us(95), 0);
    }
}
