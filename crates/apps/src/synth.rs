//! Randomized intermittent programs + a continuous-execution oracle.
//!
//! The strongest form of the paper's correctness claim (§3.5) is an
//! *equivalence*: under any failure schedule, EaseIO's final non-volatile
//! memory equals what a continuous-power execution would have produced with
//! the same I/O values. This module makes that claim mechanically checkable
//! on arbitrary programs:
//!
//! 1. [`generate`] builds a random (but seeded, reproducible) task graph
//!    from a small op language — computes, scalar reads/writes, sensor
//!    reads under all three semantics, I/O blocks, branches on sensed
//!    values, and DMA transfers across every memory-type class (including
//!    in-place FRAM→FRAM copies like the FIR benchmark's WAR pattern);
//! 2. running the app records, per task, the I/O values its *committed*
//!    attempt used;
//! 3. [`oracle`] replays the program as a pure interpreter over model
//!    memory, feeding the recorded values — i.e. the continuous execution
//!    the device *thinks* it performed;
//! 4. the test compares the simulator's final FRAM with the model's.
//!
//! Any hole in lock flags, block precedence, DMA privatization, or regional
//! privatization shows up as a divergence on some seed.
//!
//! To keep the oracle sound, generated programs respect the programming
//! discipline the systems under test assume:
//!
//! * I/O outputs flow only into scalar variables (never into DMA source
//!   buffers — that pattern requires the §4.3.1 `related` annotation, which
//!   is tested separately);
//! * buffer writes use compile-time constants;
//! * within one task, a buffer is either CPU-written or DMA-accessed, never
//!   both (InK's double buffering redirects CPU writes to a working copy
//!   that DMA — which addresses physical memory — cannot see; mixing the
//!   two in one task is broken on *continuous* power under real InK too).

use crate::harness::{MakeRuntime, RuntimeKind};
use kernel::{
    run_app, App, ExecConfig, Inventory, IoOp, Outcome, ReexecSemantics, TaskCtx, TaskDef, TaskId,
    TaskResult, Transition,
};
use mcu_emu::{Mcu, NvBuf, NvVar, Region, Supply};
use periph::{Peripherals, Sensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Number of scalar FRAM variables in every synthetic program.
pub const VARS: usize = 6;
/// Number of FRAM buffers.
pub const BUFS: usize = 3;
/// Elements per buffer.
pub const BUF_LEN: u32 = 24;
/// Elements in the LEA-RAM staging buffer.
pub const LEA_LEN: u32 = 24;

/// One operation of the synthetic language.
#[derive(Debug, Clone)]
pub enum Op {
    /// Plain computation.
    Compute(u16),
    /// `var[a] = var[a] + delta` — a WAR access pattern.
    Bump {
        /// Variable index.
        var: u8,
        /// Added constant.
        delta: i32,
    },
    /// `var[a] = val`.
    Set {
        /// Variable index.
        var: u8,
        /// Stored constant.
        val: i32,
    },
    /// `buf[b][i] = val` (constant data only; see module docs).
    BufSet {
        /// Buffer index.
        buf: u8,
        /// Element index.
        idx: u8,
        /// Stored constant.
        val: i16,
    },
    /// `var[dst] = sense(sensor)` under the given semantics.
    Sense {
        /// Destination variable.
        var: u8,
        /// Which sensor.
        sensor: Sensor,
        /// 0 = Single, 1 = Timely(window_ms), 2 = Always.
        sem_kind: u8,
        /// `Timely` window in ms.
        window_ms: u8,
    },
    /// Branch on a variable against a threshold; each arm bumps a variable.
    Branch {
        /// Variable examined.
        var: u8,
        /// Threshold.
        threshold: i32,
        /// Variable bumped when `var < threshold`.
        then_var: u8,
        /// Variable bumped otherwise.
        else_var: u8,
    },
    /// DMA copy `elems` elements from `buf[src]+src_off` to
    /// `buf[dst]+dst_off` (FRAM→FRAM, `Single`; src may equal dst).
    DmaFram {
        /// Source buffer.
        src: u8,
        /// Source element offset.
        src_off: u8,
        /// Destination buffer.
        dst: u8,
        /// Destination element offset.
        dst_off: u8,
        /// Elements copied.
        elems: u8,
    },
    /// Stage `elems` elements of `buf[src]` into LEA-RAM (`Private`), then
    /// copy them back over `buf[src]+1` (`Single`) — the FIR benchmark's
    /// overlapping fetch/write-back WAR pattern in miniature.
    DmaStageRoundtrip {
        /// Buffer staged and overwritten.
        src: u8,
        /// Elements moved.
        elems: u8,
    },
    /// An I/O block containing 1–3 senses.
    Block {
        /// 0 = Single, 1 = Timely(window_ms).
        sem_kind: u8,
        /// `Timely` window in ms.
        window_ms: u8,
        /// The senses inside: (dst var, sensor).
        senses: Vec<(u8, Sensor)>,
    },
}

/// A synthetic program: a linear chain of tasks.
#[derive(Debug, Clone)]
pub struct Program {
    /// Ops per task.
    pub tasks: Vec<Vec<Op>>,
}

/// Generates a reproducible random program.
pub fn generate(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let n_tasks = rng.random_range(2..=5);
    let sensors = [Sensor::Temp, Sensor::Humd, Sensor::Pres, Sensor::Light];
    let mut tasks = Vec::new();
    for _ in 0..n_tasks {
        let n_ops = rng.random_range(2..=7);
        let mut ops = Vec::new();
        // Per-task buffer usage discipline: a buffer is CPU-written or
        // DMA-accessed within one task, never both.
        let mut cpu_bufs = [false; BUFS];
        let mut dma_bufs = [false; BUFS];
        for _ in 0..n_ops {
            let op = match rng.random_range(0..9u8) {
                0 => Op::Compute(rng.random_range(50..1500)),
                1 => Op::Bump {
                    var: rng.random_range(0..VARS as u8),
                    delta: rng.random_range(-50..50),
                },
                2 => Op::Set {
                    var: rng.random_range(0..VARS as u8),
                    val: rng.random_range(-1000..1000),
                },
                3 => {
                    let buf = rng.random_range(0..BUFS as u8);
                    if dma_bufs[buf as usize] {
                        continue; // discipline: no CPU write after DMA use
                    }
                    cpu_bufs[buf as usize] = true;
                    Op::BufSet {
                        buf,
                        idx: rng.random_range(0..BUF_LEN as u8),
                        val: rng.random_range(-99..99),
                    }
                }
                4 => Op::Sense {
                    var: rng.random_range(0..VARS as u8),
                    sensor: sensors[rng.random_range(0..sensors.len())],
                    sem_kind: rng.random_range(0..3),
                    window_ms: rng.random_range(2..40),
                },
                5 => Op::Branch {
                    var: rng.random_range(0..VARS as u8),
                    threshold: rng.random_range(-500..1500),
                    then_var: rng.random_range(0..VARS as u8),
                    else_var: rng.random_range(0..VARS as u8),
                },
                6 => {
                    let elems = rng.random_range(2..10u8);
                    let src = rng.random_range(0..BUFS as u8);
                    let dst = rng.random_range(0..BUFS as u8);
                    if cpu_bufs[src as usize] || cpu_bufs[dst as usize] {
                        continue; // discipline: no DMA on CPU-written buffers
                    }
                    dma_bufs[src as usize] = true;
                    dma_bufs[dst as usize] = true;
                    Op::DmaFram {
                        src,
                        src_off: rng.random_range(0..(BUF_LEN as u8 - elems)),
                        dst,
                        dst_off: rng.random_range(0..(BUF_LEN as u8 - elems)),
                        elems,
                    }
                }
                7 => {
                    let src = rng.random_range(0..BUFS as u8);
                    if cpu_bufs[src as usize] {
                        continue;
                    }
                    dma_bufs[src as usize] = true;
                    Op::DmaStageRoundtrip {
                        src,
                        elems: rng.random_range(2..(BUF_LEN as u8 - 1).min(LEA_LEN as u8)),
                    }
                }
                _ => {
                    let n = rng.random_range(1..=3);
                    Op::Block {
                        sem_kind: rng.random_range(0..2),
                        window_ms: rng.random_range(3..40),
                        senses: (0..n)
                            .map(|_| {
                                (
                                    rng.random_range(0..VARS as u8),
                                    sensors[rng.random_range(0..sensors.len())],
                                )
                            })
                            .collect(),
                    }
                }
            };
            ops.push(op);
        }
        tasks.push(ops);
    }
    Program { tasks }
}

fn sem_of(kind: u8, window_ms: u8) -> ReexecSemantics {
    match kind {
        0 => ReexecSemantics::Single,
        1 => ReexecSemantics::timely_ms(window_ms as u64),
        _ => ReexecSemantics::Always,
    }
}

/// Per-task records of observed I/O values: `(task id, values in program
/// order)`, appended once per completed body execution.
pub type IoLog = Rc<RefCell<Vec<(u16, Vec<i32>)>>>;

/// Handles of a built synthetic app plus the committed-I/O recording.
pub struct SynthInstance {
    /// The runnable app.
    pub app: App,
    /// Scalar variable handles.
    pub vars: Vec<NvVar<i32>>,
    /// Buffer handles.
    pub bufs: Vec<NvBuf<i16>>,
    /// Per task: the I/O values each body execution observed; re-attempts
    /// of the same task append consecutively, so the last entry per
    /// contiguous task-id run is the committed attempt's record.
    pub io_log: IoLog,
}

/// Builds the program as a runnable app on `mcu`.
pub fn build(mcu: &mut Mcu, prog: &Program) -> SynthInstance {
    let vars: Vec<NvVar<i32>> = (0..VARS)
        .map(|_| NvVar::alloc(&mut mcu.mem, Region::Fram))
        .collect();
    let bufs: Vec<NvBuf<i16>> = (0..BUFS)
        .map(|_| NvBuf::alloc(&mut mcu.mem, Region::Fram, BUF_LEN))
        .collect();
    let lea: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, LEA_LEN);
    // Deterministic initial buffer contents.
    for (b, buf) in bufs.iter().enumerate() {
        let data: Vec<i16> = (0..BUF_LEN)
            .map(|i| (b as i16 + 1) * (i as i16 - 7))
            .collect();
        buf.fill_from(&mut mcu.mem, &data);
    }
    let io_log: IoLog = Rc::new(RefCell::new(Vec::new()));

    let mut tasks = Vec::new();
    let n_tasks = prog.tasks.len();
    for (t, ops) in prog.tasks.iter().enumerate() {
        let ops = ops.clone();
        let vars = vars.clone();
        let bufs = bufs.clone();
        let log = Rc::clone(&io_log);
        let body = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
            let mut observed: Vec<i32> = Vec::new();
            for op in &ops {
                match op {
                    Op::Compute(c) => ctx.compute(*c as u64)?,
                    Op::Bump { var, delta } => {
                        let v = ctx.read(vars[*var as usize])?;
                        ctx.write(vars[*var as usize], v.wrapping_add(*delta))?;
                    }
                    Op::Set { var, val } => ctx.write(vars[*var as usize], *val)?,
                    Op::BufSet { buf, idx, val } => {
                        ctx.buf_write(bufs[*buf as usize], *idx as u32, *val)?
                    }
                    Op::Sense {
                        var,
                        sensor,
                        sem_kind,
                        window_ms,
                    } => {
                        let v = ctx.call_io(IoOp::Sense(*sensor), sem_of(*sem_kind, *window_ms))?;
                        observed.push(v);
                        ctx.write(vars[*var as usize], v)?;
                    }
                    Op::Branch {
                        var,
                        threshold,
                        then_var,
                        else_var,
                    } => {
                        let v = ctx.read(vars[*var as usize])?;
                        let target = if v < *threshold { then_var } else { else_var };
                        let cur = ctx.read(vars[*target as usize])?;
                        ctx.write(vars[*target as usize], cur.wrapping_add(1))?;
                    }
                    Op::DmaFram {
                        src,
                        src_off,
                        dst,
                        dst_off,
                        elems,
                    } => {
                        ctx.dma_copy(
                            bufs[*src as usize].addr().add(*src_off as u32 * 2),
                            bufs[*dst as usize].addr().add(*dst_off as u32 * 2),
                            *elems as u32 * 2,
                        )?;
                    }
                    Op::DmaStageRoundtrip { src, elems } => {
                        let n = *elems as u32 * 2;
                        ctx.dma_copy(bufs[*src as usize].addr(), lea.addr(), n)?;
                        ctx.compute(60)?;
                        ctx.dma_copy(lea.addr(), bufs[*src as usize].addr().add(2), n)?;
                    }
                    Op::Block {
                        sem_kind,
                        window_ms,
                        senses,
                    } => {
                        let vals = ctx.io_block(sem_of(*sem_kind, *window_ms), |ctx| {
                            let mut vals = Vec::new();
                            for (_, sensor) in senses {
                                vals.push(
                                    ctx.call_io(IoOp::Sense(*sensor), ReexecSemantics::Always)?,
                                );
                            }
                            Ok(vals)
                        })?;
                        for ((var, _), v) in senses.iter().zip(&vals) {
                            observed.push(*v);
                            ctx.write(vars[*var as usize], *v)?;
                        }
                    }
                }
            }
            log.borrow_mut().push((t as u16, observed));
            if t + 1 < n_tasks {
                Ok(Transition::To(TaskId(t as u16 + 1)))
            } else {
                Ok(Transition::Done)
            }
        };
        tasks.push(TaskDef {
            name: "synth",
            body: Rc::new(body),
        });
    }

    let app = App {
        name: "synth",
        tasks,
        entry: TaskId(0),
        inventory: Inventory::default(),
        verify: None,
    };
    SynthInstance {
        app,
        vars,
        bufs,
        io_log,
    }
}

/// Final state of the pure-interpreter oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelState {
    /// Scalar variables.
    pub vars: Vec<i32>,
    /// Buffers.
    pub bufs: Vec<Vec<i16>>,
}

/// Replays the program over model memory, feeding the committed I/O values
/// (the continuous execution the device believes it performed).
pub fn oracle(prog: &Program, io_log: &[(u16, Vec<i32>)]) -> ModelState {
    // Collapse consecutive same-task entries: re-attempts of one activation
    // append consecutively and only the last (the committed one) counts.
    let mut committed: Vec<(u16, Vec<i32>)> = Vec::new();
    for entry in io_log {
        if let Some(last) = committed.last_mut() {
            if last.0 == entry.0 {
                *last = entry.clone();
                continue;
            }
        }
        committed.push(entry.clone());
    }

    let mut vars = vec![0i32; VARS];
    let mut bufs: Vec<Vec<i16>> = (0..BUFS)
        .map(|b| {
            (0..BUF_LEN)
                .map(|i| (b as i16 + 1) * (i as i16 - 7))
                .collect()
        })
        .collect();
    let mut lea = vec![0i16; LEA_LEN as usize];

    assert_eq!(
        committed.len(),
        prog.tasks.len(),
        "one committed activation per task of the linear chain"
    );
    for (i, (entry, ops)) in committed.iter().zip(prog.tasks.iter()).enumerate() {
        assert_eq!(entry.0 as usize, i, "activations commit in chain order");
        let mut vals = entry.1.iter().copied();
        for op in ops {
            match op {
                Op::Compute(_) => {}
                Op::Bump { var, delta } => {
                    vars[*var as usize] = vars[*var as usize].wrapping_add(*delta)
                }
                Op::Set { var, val } => vars[*var as usize] = *val,
                Op::BufSet { buf, idx, val } => bufs[*buf as usize][*idx as usize] = *val,
                Op::Sense { var, .. } => {
                    vars[*var as usize] = vals.next().expect("recorded sense value")
                }
                Op::Branch {
                    var,
                    threshold,
                    then_var,
                    else_var,
                } => {
                    let target = if vars[*var as usize] < *threshold {
                        then_var
                    } else {
                        else_var
                    };
                    vars[*target as usize] = vars[*target as usize].wrapping_add(1);
                }
                Op::DmaFram {
                    src,
                    src_off,
                    dst,
                    dst_off,
                    elems,
                } => {
                    let data: Vec<i16> = bufs[*src as usize]
                        [*src_off as usize..(*src_off + *elems) as usize]
                        .to_vec();
                    bufs[*dst as usize][*dst_off as usize..(*dst_off + *elems) as usize]
                        .copy_from_slice(&data);
                }
                Op::DmaStageRoundtrip { src, elems } => {
                    let n = *elems as usize;
                    lea[..n].copy_from_slice(&bufs[*src as usize][..n]);
                    let staged: Vec<i16> = lea[..n].to_vec();
                    bufs[*src as usize][1..1 + n].copy_from_slice(&staged);
                }
                Op::Block { senses, .. } => {
                    for (var, _) in senses {
                        vars[*var as usize] = vals.next().expect("recorded block value");
                    }
                }
            }
        }
        assert!(vals.next().is_none(), "oracle consumed all recorded values");
    }
    ModelState { vars, bufs }
}

/// Runs the program under `kind` on `supply` and compares the simulator's
/// final FRAM against the oracle. Returns an error description on
/// divergence.
pub fn check(
    prog: &Program,
    kind: RuntimeKind,
    supply: Supply,
    env_seed: u64,
) -> Result<(), String> {
    let mut mcu = Mcu::new(supply);
    let mut periph = Peripherals::new(env_seed);
    let inst = build(&mut mcu, prog);
    let mut rt = kind.make();
    let r = run_app(
        &inst.app,
        rt.as_mut(),
        &mut mcu,
        &mut periph,
        &ExecConfig::default(),
    );
    if r.outcome != Outcome::Completed {
        return Err(format!("did not complete: {:?}", r.outcome));
    }
    let log = inst.io_log.borrow();
    let model = oracle(prog, &log);
    for (i, v) in inst.vars.iter().enumerate() {
        let got = v.get(&mcu.mem);
        if got != model.vars[i] {
            return Err(format!("var[{i}] = {got}, oracle says {}", model.vars[i]));
        }
    }
    for (b, buf) in inst.bufs.iter().enumerate() {
        let got = buf.to_vec(&mcu.mem);
        if got != model.bufs[b] {
            let at = got
                .iter()
                .zip(&model.bufs[b])
                .position(|(a, e)| a != e)
                .unwrap_or(0);
            return Err(format!(
                "buf[{b}][{at}] = {}, oracle says {}",
                got[at], model.bufs[b][at]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::TimerResetConfig;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(9);
        let b = generate(9);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = generate(10);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn oracle_matches_continuous_execution_for_every_runtime() {
        // On continuous power there is nothing to privatize or skip: every
        // runtime must match the oracle exactly. This validates the oracle
        // itself before it is used against intermittent runs.
        for seed in 0..60u64 {
            let prog = generate(seed);
            for kind in [
                RuntimeKind::Naive,
                RuntimeKind::Alpaca,
                RuntimeKind::Ink,
                RuntimeKind::EaseIo,
            ] {
                check(&prog, kind, Supply::continuous(), seed)
                    .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", kind.name()));
            }
        }
    }

    #[test]
    fn easeio_matches_the_oracle_under_failures() {
        for seed in 0..120u64 {
            let prog = generate(seed);
            let supply = Supply::timer(TimerResetConfig::default(), seed.wrapping_mul(31));
            check(&prog, RuntimeKind::EaseIo, supply, seed)
                .unwrap_or_else(|e| panic!("seed {seed}: EaseIO diverged: {e}"));
        }
    }

    #[test]
    fn baselines_diverge_on_some_generated_program() {
        // The generator produces DMA WAR patterns; across enough seeds the
        // baselines must trip over one (otherwise the generator is toothless
        // and the EaseIO pass above proves nothing).
        let mut diverged = 0;
        for seed in 0..120u64 {
            let prog = generate(seed);
            let supply = Supply::timer(TimerResetConfig::default(), seed.wrapping_mul(31));
            if check(&prog, RuntimeKind::Alpaca, supply, seed).is_err() {
                diverged += 1;
            }
        }
        assert!(
            diverged > 0,
            "Alpaca never diverged from the oracle across 120 random programs"
        );
    }
}
