//! Uni-task `Single` benchmark: NVM→NVM DMA copy (paper §5.3, Fig 7a).
//!
//! The application moves a block of data between two FRAM buffers with DMA.
//! Because the destination is non-volatile, a completed transfer survives
//! power failures: EaseIO resolves it to `Single` at run time and never
//! repeats it, while Alpaca/InK re-execute the transfer on every attempt —
//! the canonical wasteful-I/O scenario of the paper's Figure 2a.

use kernel::{App, Inventory, TaskCtx, TaskDef, TaskId, TaskResult, Transition, Verdict};
use mcu_emu::{Mcu, NvBuf, NvVar, Region};
use std::rc::Rc;

/// Configuration of the DMA benchmark.
#[derive(Debug, Clone)]
pub struct DmaAppCfg {
    /// Bytes moved per chunk.
    pub bytes: u32,
    /// Chunks copied inside one task activation. The task is deliberately
    /// larger than many on-periods: a task-atomic runtime must land a long
    /// enough period to finish all chunks at once and re-copies everything
    /// after every failure, while `Single` semantics let EaseIO finish the
    /// remaining chunks incrementally across periods — the paper's central
    /// wasteful-I/O scenario (§2.1.1) and its non-termination argument
    /// (§3.5).
    pub chunks: u32,
    /// Number of whole-task activations.
    pub iterations: u32,
    /// CPU cycles of preprocessing before the transfers.
    pub pre_compute: u64,
    /// CPU cycles of postprocessing after the transfers.
    pub post_compute: u64,
}

impl Default for DmaAppCfg {
    fn default() -> Self {
        Self {
            bytes: 2048,
            chunks: 6,
            iterations: 2,
            pre_compute: 400,
            post_compute: 400,
        }
    }
}

/// Builds the DMA application on `mcu`.
pub fn build(mcu: &mut Mcu, cfg: &DmaAppCfg) -> App {
    let words = cfg.bytes / 2 * cfg.chunks;
    let src: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, words);
    let dst: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, words);
    let iter: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
    let checksum: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);

    // Deterministic payload.
    let data: Vec<i16> = (0..words).map(|i| ((i * 37 + 11) % 251) as i16).collect();
    src.fill_from(&mut mcu.mem, &data);

    let cfg2 = cfg.clone();
    let init = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(200)?;
        ctx.write(iter, 0u32)?;
        ctx.write(checksum, 0i32)?;
        Ok(Transition::To(TaskId(1)))
    };
    let copy = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(cfg2.pre_compute)?;
        // NVM → NVM: EaseIO resolves each chunk to Single at run time and
        // finishes the remainder incrementally across power failures.
        for c in 0..cfg2.chunks {
            let off = c * cfg2.bytes;
            ctx.dma_copy(src.addr().add(off), dst.addr().add(off), cfg2.bytes)?;
            ctx.compute(120)?;
        }
        ctx.compute(cfg2.post_compute)?;
        // Fold a little of the copied data into a running checksum so the
        // task has ordinary shared-variable traffic too.
        let sample = ctx.buf_read(dst, 0)? as i32 + ctx.buf_read(dst, words - 1)? as i32;
        let c = ctx.read(checksum)?;
        ctx.write(checksum, c.wrapping_add(sample))?;
        let i = ctx.read(iter)?;
        ctx.write(iter, i + 1)?;
        if i + 1 < cfg2.iterations {
            Ok(Transition::To(TaskId(1)))
        } else {
            Ok(Transition::To(TaskId(2)))
        }
    };
    let finish = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(200)?;
        Ok(Transition::Done)
    };

    let expected = data.clone();
    let expected_checksum = {
        let sample = data[0] as i32 + data[(words - 1) as usize] as i32;
        (0..cfg.iterations).fold(0i32, |acc, _| acc.wrapping_add(sample))
    };
    let iterations = cfg.iterations;
    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        if dst.to_vec(&mcu.mem) != expected {
            return Verdict::Incorrect("destination buffer mismatch".into());
        }
        if checksum.get(&mcu.mem) != expected_checksum {
            return Verdict::Incorrect("checksum mismatch".into());
        }
        if iter.get(&mcu.mem) != iterations {
            return Verdict::Incorrect("iteration counter mismatch".into());
        }
        Verdict::Correct
    };

    App {
        name: "dma",
        tasks: vec![
            TaskDef {
                name: "init",
                body: Rc::new(init),
            },
            TaskDef {
                name: "copy",
                body: Rc::new(copy),
            },
            TaskDef {
                name: "finish",
                body: Rc::new(finish),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 3,
            io_funcs: 1,
            io_sites: 0,
            timely_sites: 0,
            dma_sites: 6,
            io_blocks: 0,
            nv_vars: 2 + 2, // iter, checksum + the two buffers
        },
        verify: Some(Rc::new(verify)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{alpaca::AlpacaRuntime, run_app, ExecConfig, Outcome};
    use mcu_emu::Supply;
    use periph::Peripherals;

    #[test]
    fn completes_and_verifies_on_continuous_power() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(1);
        let app = build(&mut mcu, &DmaAppCfg::default());
        let mut rt = AlpacaRuntime::new();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
        assert_eq!(r.stats.dma_executed, 12); // 6 chunks × 2 iterations
    }

    #[test]
    fn easeio_skips_completed_transfers_under_failures() {
        use easeio_core::EaseIoRuntime;
        use mcu_emu::TimerResetConfig;
        let cfg = TimerResetConfig::default();
        let mut mcu = Mcu::new(Supply::timer(cfg, 17));
        let mut p = Peripherals::new(1);
        let app = build(&mut mcu, &DmaAppCfg::default());
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
        if r.stats.power_failures > 0 {
            assert!(
                r.stats.dma_skipped > 0 || r.stats.dma_reexecutions == 0,
                "EaseIO must not blindly repeat completed transfers"
            );
        }
    }
}
