//! Uni-task `Always` benchmark: LEA vector operation (paper §5.3, Fig 7c).
//!
//! The application fills LEA-RAM with samples and coefficients, runs one
//! long FIR on the LEA, and copies the result back to FRAM — all within one
//! task, because LEA-RAM is volatile. The LEA call is annotated `Always`
//! (its operands and results live in volatile memory, so a re-executed task
//! must redo it); consequently EaseIO behaves like the baselines here modulo
//! bookkeeping, which is exactly the paper's point in Figure 7c.

use kernel::{
    App, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId, TaskResult, Transition,
    Verdict,
};
use mcu_emu::{Mcu, NvBuf, Region};
use periph::lea::ACC_SHIFT;
use std::rc::Rc;

/// Configuration of the LEA benchmark.
#[derive(Debug, Clone)]
pub struct LeaAppCfg {
    /// FIR output length.
    pub n_out: u32,
    /// FIR tap count.
    pub taps: u32,
}

impl Default for LeaAppCfg {
    fn default() -> Self {
        Self {
            n_out: 512,
            taps: 24,
        }
    }
}

/// Number of output points persisted as the result digest.
pub const DIGEST_POINTS: u32 = 8;

/// The deterministic input sample at index `i`.
pub fn sample(i: u32) -> i16 {
    (((i * 29 + 7) % 199) as i16) - 99
}

/// The deterministic coefficient at index `k` (Q8, sums to less than unity
/// gain so the output cannot saturate).
pub fn coeff(k: u32, taps: u32) -> i16 {
    (((k * 13 + 3) % 23) as i16) - 11 + (256 / taps as i16) / 4
}

/// Software reference FIR matching the LEA arithmetic exactly.
pub fn reference_fir(cfg: &LeaAppCfg) -> Vec<i16> {
    (0..cfg.n_out)
        .map(|i| {
            let mut acc: i32 = 0;
            for k in 0..cfg.taps {
                acc += coeff(k, cfg.taps) as i32 * sample(i + k) as i32;
            }
            (acc >> ACC_SHIFT).clamp(i16::MIN as i32, i16::MAX as i32) as i16
        })
        .collect()
}

/// Builds the LEA application on `mcu`.
pub fn build(mcu: &mut Mcu, cfg: &LeaAppCfg) -> App {
    let n_in = cfg.n_out + cfg.taps - 1;
    let x: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, n_in);
    let h: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.taps);
    let y: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::LeaRam, cfg.n_out);
    // Uni-task benchmarks keep shared variables minimal (paper §5.3): the
    // task persists a small digest of the filter output, not the buffer.
    let digest: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, DIGEST_POINTS);

    let cfg2 = cfg.clone();
    let filter = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        // Stage inputs into (volatile) LEA-RAM: lost on failure, refilled on
        // re-execution.
        for i in 0..n_in {
            ctx.buf_write(x, i, sample(i))?;
        }
        for k in 0..cfg2.taps {
            ctx.buf_write(h, k, coeff(k, cfg2.taps))?;
        }
        // The accelerator pass: Always semantics.
        ctx.call_io(
            IoOp::LeaFir {
                x: x.addr(),
                h: h.addr(),
                y: y.addr(),
                n_out: cfg2.n_out,
                taps: cfg2.taps,
            },
            ReexecSemantics::Always,
        )?;
        // Persist a digest of evenly spaced output points.
        let stride = cfg2.n_out / DIGEST_POINTS;
        for i in 0..DIGEST_POINTS {
            let v = ctx.buf_read(y, i * stride)?;
            ctx.buf_write(digest, i, v)?;
        }
        Ok(Transition::To(TaskId(1)))
    };
    let finish = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(300)?;
        Ok(Transition::Done)
    };
    let prepare = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
        ctx.compute(300)?;
        Ok(Transition::To(TaskId(1)))
    };

    let full = reference_fir(cfg);
    let stride = cfg.n_out / DIGEST_POINTS;
    let expected: Vec<i16> = (0..DIGEST_POINTS)
        .map(|i| full[(i * stride) as usize])
        .collect();
    let verify = move |mcu: &Mcu, _p: &periph::Peripherals| -> Verdict {
        if digest.to_vec(&mcu.mem) == expected {
            Verdict::Correct
        } else {
            Verdict::Incorrect("FIR digest mismatch".into())
        }
    };

    // Task graph: prepare → filter → finish, where `filter` is TaskId(1).
    App {
        name: "lea",
        tasks: vec![
            TaskDef {
                name: "prepare",
                body: Rc::new(prepare),
            },
            TaskDef {
                name: "filter",
                body: Rc::new({
                    // `filter` transitions to finish at TaskId(2).
                    move |ctx: &mut TaskCtx<'_>| match filter(ctx)? {
                        Transition::To(_) => Ok(Transition::To(TaskId(2))),
                        done => Ok(done),
                    }
                }),
            },
            TaskDef {
                name: "finish",
                body: Rc::new(finish),
            },
        ],
        entry: TaskId(0),
        inventory: Inventory {
            tasks: 3,
            io_funcs: 1,
            io_sites: 1,
            timely_sites: 0,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars: 1,
        },
        verify: Some(Rc::new(verify)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_core::EaseIoRuntime;
    use kernel::{alpaca::AlpacaRuntime, run_app, ExecConfig, Outcome, Runtime};
    use mcu_emu::{Supply, TimerResetConfig};
    use periph::Peripherals;

    #[test]
    fn lea_result_matches_reference_on_continuous_power() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(1);
        let app = build(&mut mcu, &LeaAppCfg::default());
        let mut rt = AlpacaRuntime::new();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
    }

    #[test]
    fn all_runtimes_reexecute_always_lea_equally() {
        // Under identical failure schedules, EaseIO neither skips nor adds
        // LEA executions versus Alpaca (Table 4, Always row: 0 % reduction).
        let run = |rt: &mut dyn Runtime| {
            let cfg = TimerResetConfig::default();
            let mut mcu = Mcu::new(Supply::timer(cfg, 99));
            let mut p = Peripherals::new(1);
            let app = build(
                &mut mcu,
                &LeaAppCfg {
                    n_out: 256,
                    taps: 16,
                },
            );
            let r = run_app(&app, rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            r.stats.io_skipped
        };
        assert_eq!(run(&mut AlpacaRuntime::new()), 0);
        assert_eq!(run(&mut EaseIoRuntime::default()), 0);
    }

    #[test]
    fn smaller_config_survives_heavy_failures() {
        let cfg = TimerResetConfig {
            on_min_us: 4_000,
            on_max_us: 9_000,
            off_min_us: 1_000,
            off_max_us: 3_000,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 5));
        let mut p = Peripherals::new(1);
        let app = build(
            &mut mcu,
            &LeaAppCfg {
                n_out: 128,
                taps: 16,
            },
        );
        let mut rt = EaseIoRuntime::default();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
    }
}
