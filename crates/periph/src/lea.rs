//! LEA — the Low Energy Accelerator.
//!
//! The MSP430FR5994's LEA is a fixed-point vector coprocessor that can only
//! address its dedicated 4 KB LEA-RAM. That restriction is load-bearing for
//! the paper's workloads: operands must be staged into LEA-RAM by DMA
//! (non-volatile → volatile, the `Private` class) and results staged back
//! (→ non-volatile, the `Single` class), which is exactly the DMA pattern
//! whose WAR hazards regional privatization exists to fix.
//!
//! Arithmetic is Q-format fixed point on `i16` with `i32` accumulation, so
//! every result is bit-exact and checkable against a golden run.

use mcu_emu::{Addr, Cost, CostTable, Memory, Region};

/// Right-shift applied to MAC accumulators before narrowing to i16.
pub const ACC_SHIFT: u32 = 8;

fn assert_lea(addr: Addr, what: &str) {
    assert!(
        addr.region == Region::LeaRam,
        "LEA can only address LEA-RAM, but {what} is in {:?}",
        addr.region
    );
}

fn load_i16(mem: &Memory, base: Addr, i: u32) -> i16 {
    let b = mem.read_bytes(base.add(i * 2), 2);
    i16::from_le_bytes([b[0], b[1]])
}

fn store_i16(mem: &mut Memory, base: Addr, i: u32, v: i16) {
    mem.write_bytes(base.add(i * 2), &v.to_le_bytes());
}

fn sat16(acc: i32) -> i16 {
    (acc >> ACC_SHIFT).clamp(i16::MIN as i32, i16::MAX as i32) as i16
}

/// FIR filter: `y[i] = (Σ_k h[k]·x[i+k]) >> ACC_SHIFT` for `i in 0..n_out`.
///
/// `x` must hold `n_out + taps - 1` samples. Returns the MAC count for cost
/// accounting.
pub fn fir(mem: &mut Memory, x: Addr, h: Addr, y: Addr, n_out: u32, taps: u32) -> u64 {
    assert_lea(x, "input");
    assert_lea(h, "coefficients");
    assert_lea(y, "output");
    for i in 0..n_out {
        let mut acc: i32 = 0;
        for k in 0..taps {
            acc += load_i16(mem, h, k) as i32 * load_i16(mem, x, i + k) as i32;
        }
        store_i16(mem, y, i, sat16(acc));
    }
    (n_out as u64) * (taps as u64)
}

/// MAC count of a FIR invocation (for pricing before execution).
pub fn fir_macs(n_out: u32, taps: u32) -> u64 {
    n_out as u64 * taps as u64
}

/// Valid 2-D convolution of a `w`×`h` image with a `kw`×`kh` kernel.
///
/// Output is `(w-kw+1)`×`(h-kh+1)`. Returns the MAC count.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    mem: &mut Memory,
    input: Addr,
    w: u32,
    h: u32,
    kernel: Addr,
    kw: u32,
    kh: u32,
    out: Addr,
) -> u64 {
    assert_lea(input, "input");
    assert_lea(kernel, "kernel");
    assert_lea(out, "output");
    assert!(w >= kw && h >= kh, "kernel larger than input");
    let ow = w - kw + 1;
    let oh = h - kh + 1;
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc: i32 = 0;
            for ky in 0..kh {
                for kx in 0..kw {
                    let px = load_i16(mem, input, (oy + ky) * w + (ox + kx)) as i32;
                    let kv = load_i16(mem, kernel, ky * kw + kx) as i32;
                    acc += px * kv;
                }
            }
            store_i16(mem, out, oy * ow + ox, sat16(acc));
        }
    }
    (ow as u64) * (oh as u64) * (kw as u64) * (kh as u64)
}

/// MAC count of a conv2d invocation.
pub fn conv2d_macs(w: u32, h: u32, kw: u32, kh: u32) -> u64 {
    ((w - kw + 1) as u64) * ((h - kh + 1) as u64) * (kw as u64) * (kh as u64)
}

/// In-place ReLU over `n` elements. Returns the op count.
pub fn relu(mem: &mut Memory, buf: Addr, n: u32) -> u64 {
    assert_lea(buf, "buffer");
    for i in 0..n {
        let v = load_i16(mem, buf, i);
        if v < 0 {
            store_i16(mem, buf, i, 0);
        }
    }
    n as u64
}

/// Fully-connected layer: `out[j] = (Σ_i w[j·n_in + i]·x[i]) >> ACC_SHIFT`.
///
/// Returns the MAC count.
pub fn fully_connected(
    mem: &mut Memory,
    x: Addr,
    n_in: u32,
    weights: Addr,
    out: Addr,
    n_out: u32,
) -> u64 {
    assert_lea(x, "input");
    assert_lea(weights, "weights");
    assert_lea(out, "output");
    for j in 0..n_out {
        let mut acc: i32 = 0;
        for i in 0..n_in {
            acc += load_i16(mem, weights, j * n_in + i) as i32 * load_i16(mem, x, i) as i32;
        }
        store_i16(mem, out, j, sat16(acc));
    }
    (n_in as u64) * (n_out as u64)
}

/// Index of the maximum element (the paper's inference layer). Ties break to
/// the lowest index. Returns `(argmax, comparisons)`.
pub fn argmax(mem: &Memory, buf: Addr, n: u32) -> (u32, u64) {
    assert_lea(buf, "buffer");
    assert!(n > 0, "argmax over empty buffer");
    let mut best = 0u32;
    let mut best_v = load_i16(mem, buf, 0);
    for i in 1..n {
        let v = load_i16(mem, buf, i);
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    (best, n as u64)
}

/// Cost of a LEA invocation performing `macs` multiply-accumulates.
pub fn lea_cost(table: &CostTable, macs: u64) -> Cost {
    table.lea_setup + table.lea_mac.times(macs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::AllocTag;

    fn lea_buf(mem: &mut Memory, n: u32) -> Addr {
        mem.alloc(Region::LeaRam, n * 2, AllocTag::App)
    }

    fn fill(mem: &mut Memory, base: Addr, data: &[i16]) {
        for (i, v) in data.iter().enumerate() {
            store_i16(mem, base, i as u32, *v);
        }
    }

    fn read(mem: &Memory, base: Addr, n: u32) -> Vec<i16> {
        (0..n).map(|i| load_i16(mem, base, i)).collect()
    }

    #[test]
    fn fir_identity_kernel_shifts_scale() {
        let mut m = Memory::new();
        let x = lea_buf(&mut m, 6);
        let h = lea_buf(&mut m, 1);
        let y = lea_buf(&mut m, 6);
        fill(&mut m, x, &[256, 512, -256, 0, 1024, 2560]);
        fill(&mut m, h, &[1 << ACC_SHIFT]); // unity gain in Q8
        let macs = fir(&mut m, x, h, y, 6, 1);
        assert_eq!(macs, 6);
        assert_eq!(read(&m, y, 6), vec![256, 512, -256, 0, 1024, 2560]);
    }

    #[test]
    fn fir_moving_average() {
        let mut m = Memory::new();
        let x = lea_buf(&mut m, 5);
        let h = lea_buf(&mut m, 2);
        let y = lea_buf(&mut m, 4);
        fill(&mut m, x, &[0, 256, 512, 768, 1024]);
        // Two half-gain taps in Q8: output = mean of adjacent samples.
        fill(&mut m, h, &[128, 128]);
        fir(&mut m, x, h, y, 4, 2);
        assert_eq!(read(&m, y, 4), vec![128, 384, 640, 896]);
    }

    #[test]
    #[should_panic(expected = "LEA can only address LEA-RAM")]
    fn lea_rejects_fram_operands() {
        let mut m = Memory::new();
        let x = m.alloc(Region::Fram, 8, AllocTag::App);
        let h = lea_buf(&mut m, 1);
        let y = lea_buf(&mut m, 4);
        fir(&mut m, x, h, y, 4, 1);
    }

    #[test]
    fn conv2d_shapes_and_values() {
        let mut m = Memory::new();
        let input = lea_buf(&mut m, 9);
        let kernel = lea_buf(&mut m, 4);
        let out = lea_buf(&mut m, 4);
        // 3×3 input, 2×2 kernel of Q8 quarters → output = mean of window.
        fill(&mut m, input, &[0, 256, 512, 256, 512, 768, 512, 768, 1024]);
        fill(&mut m, kernel, &[64, 64, 64, 64]);
        let macs = conv2d(&mut m, input, 3, 3, kernel, 2, 2, out);
        assert_eq!(macs, 16);
        assert_eq!(read(&m, out, 4), vec![256, 512, 512, 768]);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let mut m = Memory::new();
        let b = lea_buf(&mut m, 4);
        fill(&mut m, b, &[-5, 3, 0, -32768]);
        relu(&mut m, b, 4);
        assert_eq!(read(&m, b, 4), vec![0, 3, 0, 0]);
    }

    #[test]
    fn fully_connected_matches_manual_matvec() {
        let mut m = Memory::new();
        let x = lea_buf(&mut m, 2);
        let w = lea_buf(&mut m, 4);
        let o = lea_buf(&mut m, 2);
        fill(&mut m, x, &[256, 512]); // [1.0, 2.0] in Q8
        fill(&mut m, w, &[256, 0, 256, 256]); // rows [1,0],[1,1]
        fully_connected(&mut m, x, 2, w, o, 2);
        // out = [1.0·1.0, 1.0·1.0+1.0·2.0] = [256, 768] in Q8... one shift:
        // acc0 = 256·256 >> 8 = 256; acc1 = (256·256 + 256·512) >> 8 = 768.
        assert_eq!(read(&m, o, 2), vec![256, 768]);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        let mut m = Memory::new();
        let b = lea_buf(&mut m, 5);
        fill(&mut m, b, &[3, 9, 9, -1, 2]);
        let (idx, cmps) = argmax(&m, b, 5);
        assert_eq!(idx, 1);
        assert_eq!(cmps, 5);
    }

    #[test]
    fn saturation_on_overflow() {
        let mut m = Memory::new();
        let x = lea_buf(&mut m, 1);
        let h = lea_buf(&mut m, 1);
        let y = lea_buf(&mut m, 1);
        fill(&mut m, x, &[i16::MAX]);
        fill(&mut m, h, &[i16::MAX]);
        fir(&mut m, x, h, y, 1, 1);
        // MAX·MAX >> 8 overflows i16 → saturates.
        assert_eq!(read(&m, y, 1), vec![i16::MAX]);
    }

    #[test]
    fn cost_linear_in_macs() {
        let t = CostTable::default();
        let a = lea_cost(&t, 100);
        let b = lea_cost(&t, 200);
        assert_eq!(b.time_us - a.time_us, t.lea_mac.time_us * 100);
    }
}
