//! Environmental sensors.
//!
//! Each sensor is synchronous and arbitrarily restartable (no internal
//! non-volatile state), matching the peripheral class EaseIO targets
//! (paper §6, "Asynchronous Peripheral Operations"). A sample is a pure
//! read of the [`Environment`] at the current
//! wall-clock time; the caller charges the sampling cost.

use crate::env::Environment;
use mcu_emu::{Cost, CostTable};

/// The sensors available on the evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensor {
    /// Temperature (centi-degrees Celsius).
    Temp,
    /// Relative humidity (per-mille).
    Humd,
    /// Barometric pressure (decapascals).
    Pres,
    /// Ambient light (12-bit ADC counts).
    Light,
    /// Acceleration magnitude (milli-g).
    Accel,
}

impl Sensor {
    /// Sampling cost of this sensor.
    pub fn cost(self, table: &CostTable) -> Cost {
        match self {
            Sensor::Temp => table.sense_temp,
            Sensor::Humd => table.sense_humd,
            Sensor::Pres => table.sense_pres,
            // Light is a fast ADC read.
            Sensor::Light => Cost::new(
                table.sense_temp.time_us / 10,
                table.sense_temp.energy_nj / 10,
            ),
            // One IMU FIFO read.
            Sensor::Accel => {
                Cost::new(table.sense_temp.time_us / 6, table.sense_temp.energy_nj / 5)
            }
        }
    }

    /// Samples the environment at wall-clock time `t_us`.
    pub fn sample(self, env: &Environment, t_us: u64) -> i32 {
        match self {
            Sensor::Temp => env.temp_centi_c(t_us),
            Sensor::Humd => env.humidity_permille(t_us),
            Sensor::Pres => env.pressure_dapa(t_us),
            Sensor::Light => env.light_adc(t_us),
            Sensor::Accel => env.accel_magnitude_mg(t_us),
        }
    }

    /// Human-readable name, used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            Sensor::Temp => "temp",
            Sensor::Humd => "humd",
            Sensor::Pres => "pres",
            Sensor::Light => "light",
            Sensor::Accel => "accel",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_matches_environment() {
        let env = Environment::new(11);
        assert_eq!(Sensor::Temp.sample(&env, 1234), env.temp_centi_c(1234));
        assert_eq!(Sensor::Humd.sample(&env, 999), env.humidity_permille(999));
        assert_eq!(Sensor::Pres.sample(&env, 5), env.pressure_dapa(5));
        assert_eq!(Sensor::Light.sample(&env, 5), env.light_adc(5));
    }

    #[test]
    fn sensing_is_expensive_relative_to_flag_checks() {
        // The entire EaseIO premise: skipping a sense and paying only a flag
        // check must be a large win.
        let t = CostTable::default();
        for s in [Sensor::Temp, Sensor::Humd, Sensor::Pres] {
            assert!(s.cost(&t).time_us > 20 * t.flag_check.time_us);
            assert!(s.cost(&t).energy_nj > 20 * t.flag_check.energy_nj);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Sensor::Temp.name(),
            Sensor::Humd.name(),
            Sensor::Pres.name(),
            Sensor::Light.name(),
            Sensor::Accel.name(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
