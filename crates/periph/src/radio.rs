//! Radio transmitter model.
//!
//! The paper emulates transmission with a priced delay loop (§5.4.1); what
//! matters to the evaluation is (a) the cost of a send and (b) whether the
//! same payload is redundantly re-sent after a power failure. We therefore
//! model the radio as a cost plus an append-only log of transmitted packets
//! so tests and experiments can count duplicates and detect stale payloads
//! (the §3.3.2 data-dependence scenario: `Single` send + re-executed
//! `Timely` sense ⇒ the value in memory differs from the value on the air).

use mcu_emu::{Cost, CostTable};

/// A transmitted packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Wall-clock time the transmission completed (µs).
    pub time_us: u64,
    /// The payload words.
    pub payload: Vec<i32>,
}

/// Append-only log of everything the radio sent.
#[derive(Debug, Clone, Default)]
pub struct RadioLog {
    sent: Vec<Packet>,
}

impl RadioLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed transmission.
    pub fn transmit(&mut self, time_us: u64, payload: &[i32]) {
        self.sent.push(Packet {
            time_us,
            payload: payload.to_vec(),
        });
    }

    /// All transmitted packets, in order.
    pub fn packets(&self) -> &[Packet] {
        &self.sent
    }

    /// Number of transmissions.
    pub fn count(&self) -> usize {
        self.sent.len()
    }

    /// Number of packets whose payload is identical to the immediately
    /// preceding packet — the signature of redundant re-transmission.
    pub fn duplicate_count(&self) -> usize {
        self.sent
            .windows(2)
            .filter(|w| w[0].payload == w[1].payload)
            .count()
    }
}

/// Cost of transmitting `payload_bytes` bytes.
pub fn send_cost(table: &CostTable, payload_bytes: u64) -> Cost {
    table.radio_setup + table.radio_byte.times(payload_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order() {
        let mut r = RadioLog::new();
        r.transmit(10, &[1, 2]);
        r.transmit(20, &[3]);
        assert_eq!(r.count(), 2);
        assert_eq!(r.packets()[0].payload, vec![1, 2]);
        assert_eq!(r.packets()[1].time_us, 20);
    }

    #[test]
    fn duplicate_detection() {
        let mut r = RadioLog::new();
        r.transmit(1, &[7, 7]);
        r.transmit(2, &[7, 7]); // redundant re-send
        r.transmit(3, &[8, 8]);
        r.transmit(4, &[8, 8]); // redundant re-send
        r.transmit(5, &[8, 8]); // and again
        assert_eq!(r.duplicate_count(), 3);
    }

    #[test]
    fn send_cost_scales_with_payload() {
        let t = CostTable::default();
        let small = send_cost(&t, 4);
        let big = send_cost(&t, 64);
        assert!(big.time_us > small.time_us);
        assert_eq!(big.energy_nj - small.energy_nj, t.radio_byte.energy_nj * 60);
    }
}
