//! Shared lossy radio medium for fleet-scale simulation.
//!
//! A fleet of devices transmits over one channel. Each device's
//! [`RadioLog`](crate::radio::RadioLog) records *completion* times of its
//! transmissions; the medium model turns each packet into an on-air window
//! `[time_us - air_us(words), time_us)` and decides, deterministically,
//! which transmissions the gateway actually receives:
//!
//! * **Collision** — two windows overlap in virtual time ⇒ both packets are
//!   destroyed (unslotted-ALOHA style). Devices never coordinate, so
//!   contention falls out of the per-device supply schedules alone.
//! * **Channel loss** — every surviving packet is dropped with probability
//!   `loss_permille / 1000`, drawn from a hash of
//!   `(medium seed, device id, per-device packet index)`. The draw depends
//!   only on those three values — never on merge order or `--jobs` width —
//!   which is what makes fleet reports byte-identical at any parallelism.
//!
//! The medium never mutates device state; it is applied *after* all device
//! runs as a pure function of their radio logs (DESIGN.md §15).

use crate::radio::Packet;

/// Deterministic description of the shared radio channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediumSpec {
    /// Seed for the per-packet loss draws.
    pub seed: u64,
    /// Probability (per mille) that a collision-free packet is lost.
    pub loss_permille: u32,
    /// Fixed per-transmission airtime (preamble + header), µs.
    pub airtime_base_us: u64,
    /// Additional airtime per payload word, µs.
    pub airtime_us_per_word: u64,
}

impl MediumSpec {
    /// A perfect channel: no loss; collisions still apply when windows
    /// overlap (they are a property of timing, not of the spec).
    pub fn ideal() -> Self {
        Self {
            seed: 0,
            loss_permille: 0,
            airtime_base_us: 32,
            airtime_us_per_word: 4,
        }
    }

    /// A seeded lossy channel with default airtimes.
    pub fn lossy(seed: u64, loss_permille: u32) -> Self {
        Self {
            seed,
            loss_permille,
            ..Self::ideal()
        }
    }

    /// On-air duration of a packet of `words` payload words (µs).
    pub fn air_us(&self, words: usize) -> u64 {
        self.airtime_base_us + self.airtime_us_per_word * words as u64
    }

    /// The half-open on-air window `[start, end)` of a packet whose
    /// transmission *completed* at `pkt.time_us`.
    pub fn window(&self, pkt: &Packet) -> (u64, u64) {
        let end = pkt.time_us;
        (end.saturating_sub(self.air_us(pkt.payload.len())), end)
    }

    /// Whether the channel drops packet number `index` of `device`
    /// (collision-free packets only). Pure in `(seed, device, index)`.
    pub fn drops(&self, device: u32, index: u32) -> bool {
        if self.loss_permille == 0 {
            return false;
        }
        let key = ((device as u64) << 32) | index as u64;
        let draw = splitmix64(self.seed ^ splitmix64(key));
        ((draw % 1000) as u32) < self.loss_permille
    }

    /// Whether the gateway's downlink of update `chunk` to `device` is
    /// lost on delivery `attempt` (0-based; retries re-draw). Pure in
    /// `(seed, device, chunk, attempt)` and drawn from a distinct stream
    /// than the uplink [`drops`](Self::drops), so rollout loss never
    /// correlates with telemetry loss at the same seed.
    pub fn downlink_drops(&self, device: u32, chunk: u32, attempt: u32) -> bool {
        if self.loss_permille == 0 {
            return false;
        }
        // Stream tag keeps downlink draws disjoint from uplink draws.
        const DOWNLINK_STREAM: u64 = 0xD04E_E75A_11C3_8F2D;
        let key = ((device as u64) << 40) | ((chunk as u64) << 8) | attempt as u64;
        let draw = splitmix64(self.seed ^ DOWNLINK_STREAM ^ splitmix64(key));
        ((draw % 1000) as u32) < self.loss_permille
    }

    /// Stable human-readable label for tables and reports.
    pub fn label(&self) -> String {
        format!(
            "loss={}permille seed={} air={}+{}/word us",
            self.loss_permille, self.seed, self.airtime_base_us, self.airtime_us_per_word
        )
    }
}

impl Default for MediumSpec {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Stateless 64-bit mixer (splitmix64 finalizer) — the same construction
/// the environment and fault models use for order-independent draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_anchored_at_completion_time() {
        let m = MediumSpec::ideal();
        let pkt = Packet {
            time_us: 1000,
            payload: vec![1, 2],
        };
        let (start, end) = m.window(&pkt);
        assert_eq!(end, 1000);
        assert_eq!(end - start, m.air_us(2));
        assert!(start < end);
    }

    #[test]
    fn early_packets_clamp_to_time_zero() {
        let m = MediumSpec::ideal();
        let pkt = Packet {
            time_us: 1,
            payload: vec![0; 100],
        };
        assert_eq!(m.window(&pkt).0, 0);
    }

    #[test]
    fn loss_draws_are_pure_and_roughly_calibrated() {
        let m = MediumSpec::lossy(7, 250);
        // Pure: same (device, index) always draws the same.
        for d in 0..8u32 {
            for i in 0..8u32 {
                assert_eq!(m.drops(d, i), m.drops(d, i));
            }
        }
        // Calibrated: over many draws the rate approaches 25%.
        let lost = (0..4000u32).filter(|&i| m.drops(i / 100, i % 100)).count();
        assert!((800..1200).contains(&lost), "lost {lost} of 4000");
    }

    #[test]
    fn zero_loss_never_drops() {
        let m = MediumSpec::ideal();
        assert!((0..1000u32).all(|i| !m.drops(i, i)));
    }

    #[test]
    fn downlink_draws_are_pure_calibrated_and_decorrelated_from_uplink() {
        let m = MediumSpec::lossy(7, 250);
        for d in 0..4u32 {
            for c in 0..4u32 {
                for a in 0..4u32 {
                    assert_eq!(m.downlink_drops(d, c, a), m.downlink_drops(d, c, a));
                }
            }
        }
        let lost = (0..4000u32)
            .filter(|&i| m.downlink_drops(i / 100, (i / 10) % 10, i % 10))
            .count();
        assert!((800..1200).contains(&lost), "lost {lost} of 4000");
        // Distinct stream: the downlink draw at (device, index, 0) must not
        // mirror the uplink draw at (device, index).
        let mirrored = (0..256u32).all(|i| m.downlink_drops(0, i, 0) == m.drops(0, i));
        assert!(!mirrored);
        assert!((0..1000u32).all(|i| !MediumSpec::ideal().downlink_drops(i, 0, 0)));
    }

    #[test]
    fn different_seeds_give_different_channels() {
        let a = MediumSpec::lossy(1, 500);
        let b = MediumSpec::lossy(2, 500);
        let differs = (0..256u32).any(|i| a.drops(0, i) != b.drops(0, i));
        assert!(differs);
    }
}
