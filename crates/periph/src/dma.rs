//! DMA engine model.
//!
//! The DMA controller copies blocks of memory without CPU involvement. Two
//! properties matter for intermittent systems and are faithfully modeled:
//!
//! 1. **CPU-invisibility** — a transfer mutates the destination bytes
//!    directly through [`Memory::copy`], bypassing any runtime privatization
//!    layered over CPU loads/stores. Task-level privatization therefore
//!    cannot protect non-volatile memory from a re-executed DMA (paper
//!    §2.1.2, Figure 2b).
//! 2. **Memory-type awareness** — EaseIO resolves a transfer's re-execution
//!    semantics at run time from the volatility of its source and
//!    destination ([`DmaClass`], paper §4.3).

use mcu_emu::{Addr, Cost, CostTable, Memory};

/// Runtime classification of a DMA transfer by operand volatility (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaClass {
    /// Destination in non-volatile memory: the copied data survives a power
    /// failure, so the transfer never needs to repeat → `Single`.
    ToNonVolatile,
    /// Non-volatile source, volatile destination: must repeat after every
    /// reboot, but a later write to the source creates a WAR hazard →
    /// `Private` (two-phase copy through a privatization buffer).
    NonVolatileToVolatile,
    /// Both operands volatile: repeating is always safe → `Always`.
    VolatileToVolatile,
}

/// Classifies a transfer from its operand addresses.
pub fn classify(src: Addr, dst: Addr) -> DmaClass {
    match (src.is_nonvolatile(), dst.is_nonvolatile()) {
        (_, true) => DmaClass::ToNonVolatile,
        (true, false) => DmaClass::NonVolatileToVolatile,
        (false, false) => DmaClass::VolatileToVolatile,
    }
}

/// Performs the raw transfer of `bytes` bytes. The caller charges
/// [`transfer_cost`] first (spend-then-mutate).
pub fn transfer(mem: &mut Memory, src: Addr, dst: Addr, bytes: u32) {
    mem.copy(src, dst, bytes);
}

/// Cost of one transfer: channel setup plus per-word streaming.
pub fn transfer_cost(table: &CostTable, bytes: u32) -> Cost {
    table.dma_setup + table.dma_word.times((bytes as u64).div_ceil(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{AllocTag, Region};

    #[test]
    fn classification_matches_paper_rules() {
        let f = Addr::new(Region::Fram, 0);
        let s = Addr::new(Region::Sram, 0);
        let l = Addr::new(Region::LeaRam, 0);
        assert_eq!(classify(f, f), DmaClass::ToNonVolatile);
        assert_eq!(classify(s, f), DmaClass::ToNonVolatile);
        assert_eq!(classify(f, s), DmaClass::NonVolatileToVolatile);
        assert_eq!(classify(f, l), DmaClass::NonVolatileToVolatile);
        assert_eq!(classify(s, l), DmaClass::VolatileToVolatile);
        assert_eq!(classify(l, s), DmaClass::VolatileToVolatile);
    }

    #[test]
    fn transfer_moves_bytes() {
        let mut m = Memory::new();
        let src = m.alloc(Region::Fram, 6, AllocTag::App);
        let dst = m.alloc(Region::LeaRam, 6, AllocTag::App);
        m.write_bytes(src, &[1, 2, 3, 4, 5, 6]);
        transfer(&mut m, src, dst, 6);
        assert_eq!(m.read_bytes(dst, 6), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn cost_scales_per_word_with_setup() {
        let t = CostTable::default();
        let c1 = transfer_cost(&t, 2);
        let c2 = transfer_cost(&t, 200);
        assert_eq!(c1.time_us, t.dma_setup.time_us + t.dma_word.time_us);
        assert_eq!(c2.time_us - c1.time_us, t.dma_word.time_us * 99);
        // Odd byte counts round up to a whole word.
        assert_eq!(transfer_cost(&t, 3), transfer_cost(&t, 4));
    }
}
