//! Deterministic transient-fault injection for peripherals.
//!
//! Real MSP430 deployments see transient peripheral failures that are not
//! power failures: sensor bus timeouts, radio NACKs and dropped packets,
//! aborted camera DMA bursts, LEA stalls. A [`FaultPlan`] schedules such
//! faults as a *pure function* of `(plan_seed, peripheral class, task,
//! site, attempt)` — no stateful RNG — so any fault a run observed can be
//! reproduced from the plan seed alone, and a crash-consistency sweep can
//! explore the product space of power-failure boundary × fault schedule
//! deterministically.
//!
//! The per-site attempt counters live in [`FaultState`], carried by
//! [`Peripherals`](crate::Peripherals): they tick once per *physical*
//! attempt on the peripheral, so a skipped/restored operation never
//! advances the schedule.

use std::collections::HashMap;

/// Peripheral class a fault plan schedules over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeriphClass {
    /// Environmental sensors (temperature, humidity, …).
    Sensor,
    /// The radio transceiver.
    Radio,
    /// The camera.
    Camera,
    /// The LEA vector accelerator.
    Lea,
    /// The DMA controller.
    Dma,
}

impl PeriphClass {
    /// Stable lowercase label for counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            PeriphClass::Sensor => "sensor",
            PeriphClass::Radio => "radio",
            PeriphClass::Camera => "camera",
            PeriphClass::Lea => "lea",
            PeriphClass::Dma => "dma",
        }
    }
}

/// A transient peripheral fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The sensor bus timed out before delivering a reading.
    SensorTimeout,
    /// The packet was transmitted but its acknowledgement was lost: the
    /// external effect *happened*, only the completion report is missing.
    RadioNack,
    /// The packet never left the radio (dropped before the air interface).
    PacketDrop,
    /// The camera aborted mid-capture.
    CameraAbort,
    /// The LEA accelerator stalled and was reset.
    LeaStall,
    /// The DMA controller aborted the programmed burst.
    DmaTransferError,
}

impl FaultKind {
    /// Stable lowercase label for counters, events, and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SensorTimeout => "sensor_timeout",
            FaultKind::RadioNack => "radio_nack",
            FaultKind::PacketDrop => "packet_drop",
            FaultKind::CameraAbort => "camera_abort",
            FaultKind::LeaStall => "lea_stall",
            FaultKind::DmaTransferError => "dma_transfer_error",
        }
    }

    /// Whether the peripheral's external effect completed despite the
    /// fault (true only for [`FaultKind::RadioNack`]: the packet is in the
    /// air, the ACK is not).
    pub fn effect_done(self) -> bool {
        matches!(self, FaultKind::RadioNack)
    }
}

/// Seeded schedule of transient peripheral faults.
///
/// Whether attempt `n` at `(class, task, site)` faults — and which kind —
/// is a hash of the plan seed and those coordinates, nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed.
    pub seed: u64,
    /// Fault probability per physical attempt, in permille (0 = never,
    /// 1000 = every attempt).
    pub rate_permille: u32,
}

/// splitmix64 finalizer: the avalanche step that turns structured
/// coordinates into uniform bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Creates a plan.
    pub fn new(seed: u64, rate_permille: u32) -> Self {
        Self {
            seed,
            rate_permille,
        }
    }

    /// Decides whether physical attempt `attempt` (0-based) at `(class,
    /// task, site)` faults, and with which kind. Pure: same inputs, same
    /// answer, on any thread of any run.
    pub fn decide(
        &self,
        class: PeriphClass,
        task: u16,
        site: u16,
        attempt: u32,
    ) -> Option<FaultKind> {
        if self.rate_permille == 0 {
            return None;
        }
        let coord =
            ((class as u64) << 56) | ((task as u64) << 40) | ((site as u64) << 24) | attempt as u64;
        let h = mix(self.seed ^ mix(coord));
        if h % 1000 >= self.rate_permille as u64 {
            return None;
        }
        Some(match class {
            PeriphClass::Sensor => FaultKind::SensorTimeout,
            // A second, independent bit splits radio faults between the
            // post-effect NACK and the pre-effect drop.
            PeriphClass::Radio => {
                if (h >> 32) & 1 == 0 {
                    FaultKind::RadioNack
                } else {
                    FaultKind::PacketDrop
                }
            }
            PeriphClass::Camera => FaultKind::CameraAbort,
            PeriphClass::Lea => FaultKind::LeaStall,
            PeriphClass::Dma => FaultKind::DmaTransferError,
        })
    }
}

/// Per-run fault state: the installed plan plus the physical attempt
/// counter of every `(class, task, site)` touched so far.
///
/// Counters survive power failures (the outside world does not reboot with
/// the MCU) but are per *run*: a fresh [`Peripherals`](crate::Peripherals)
/// starts them at zero, which is what makes a sweep's injected runs
/// mutually independent.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: Option<FaultPlan>,
    attempts: HashMap<(PeriphClass, u16, u16), u32>,
}

impl FaultState {
    /// Installs a plan (replacing any previous one, resetting no counters).
    pub fn install(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// The installed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Ticks the physical attempt counter for `(class, task, site)` and
    /// returns the scheduled fault for that attempt, if any. Without an
    /// installed plan this is free: no counter is kept.
    pub fn next_fault(&mut self, class: PeriphClass, task: u16, site: u16) -> Option<FaultKind> {
        let plan = self.plan?;
        let n = self.attempts.entry((class, task, site)).or_insert(0);
        let attempt = *n;
        *n += 1;
        plan.decide(class, task, site, attempt)
    }

    /// Physical attempts counted so far at `(class, task, site)`.
    pub fn attempts_at(&self, class: PeriphClass, task: u16, site: u16) -> u32 {
        self.attempts
            .get(&(class, task, site))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seeded() {
        let plan = FaultPlan::new(7, 200);
        for attempt in 0..64 {
            assert_eq!(
                plan.decide(PeriphClass::Radio, 3, 1, attempt),
                plan.decide(PeriphClass::Radio, 3, 1, attempt),
            );
        }
        // A different seed reshuffles the schedule somewhere in the window.
        let other = FaultPlan::new(8, 200);
        assert!((0..64).any(|a| {
            plan.decide(PeriphClass::Radio, 3, 1, a) != other.decide(PeriphClass::Radio, 3, 1, a)
        }));
    }

    #[test]
    fn rate_bounds_are_respected() {
        let never = FaultPlan::new(5, 0);
        let always = FaultPlan::new(5, 1000);
        for a in 0..32 {
            assert_eq!(never.decide(PeriphClass::Sensor, 0, 0, a), None);
            assert!(always.decide(PeriphClass::Sensor, 0, 0, a).is_some());
        }
        // Kinds follow the class.
        assert_eq!(
            always.decide(PeriphClass::Lea, 0, 0, 0),
            Some(FaultKind::LeaStall)
        );
        assert_eq!(
            always.decide(PeriphClass::Dma, 0, 0, 0),
            Some(FaultKind::DmaTransferError)
        );
    }

    #[test]
    fn radio_faults_split_between_nack_and_drop() {
        let plan = FaultPlan::new(11, 1000);
        let kinds: Vec<_> = (0..64)
            .filter_map(|a| plan.decide(PeriphClass::Radio, 0, 0, a))
            .collect();
        assert!(kinds.contains(&FaultKind::RadioNack));
        assert!(kinds.contains(&FaultKind::PacketDrop));
        assert!(FaultKind::RadioNack.effect_done());
        assert!(!FaultKind::PacketDrop.effect_done());
    }

    #[test]
    fn state_ticks_attempts_only_with_a_plan() {
        let mut s = FaultState::default();
        assert_eq!(s.next_fault(PeriphClass::Sensor, 0, 0), None);
        assert_eq!(
            s.attempts_at(PeriphClass::Sensor, 0, 0),
            0,
            "no plan, no counting"
        );
        s.install(FaultPlan::new(3, 0));
        s.next_fault(PeriphClass::Sensor, 0, 0);
        s.next_fault(PeriphClass::Sensor, 0, 0);
        s.next_fault(PeriphClass::Sensor, 0, 1);
        assert_eq!(s.attempts_at(PeriphClass::Sensor, 0, 0), 2);
        assert_eq!(s.attempts_at(PeriphClass::Sensor, 0, 1), 1);
    }

    #[test]
    fn observed_rate_tracks_the_configured_rate() {
        let plan = FaultPlan::new(42, 100);
        let n = 4000;
        let faults = (0..n)
            .filter(|&a| plan.decide(PeriphClass::Camera, 1, 0, a).is_some())
            .count();
        let permille = faults * 1000 / n as usize;
        assert!(
            (60..140).contains(&permille),
            "observed {permille}‰ for 100‰"
        );
    }
}
