//! Simulated peripherals of the MSP430FR5994 platform.
//!
//! The EaseIO paper's workloads are peripheral-bound: temperature/humidity
//! sensing, radio transmission, image capture, DMA block copies, and the LEA
//! vector accelerator. This crate provides deterministic models of each:
//!
//! * a time-varying [`env::Environment`] that sensors sample — re-executing a
//!   sensor read at a different time yields a different value, which is what
//!   makes blind I/O re-execution *unsafe* (paper §2.1.3), not just wasteful;
//! * a [`radio::RadioLog`] that records every transmitted packet, so tests
//!   can observe duplicate or stale transmissions;
//! * a [`dma`] engine whose transfers write memory directly, invisible to any
//!   CPU-level privatization (the root cause of the paper's idempotence
//!   bugs, §2.1.2);
//! * a [`lea`] fixed-point vector unit that only operates on LEA-RAM, forcing
//!   the DMA staging pattern the paper's FIR and DNN workloads use.

pub mod camera;
pub mod dma;
pub mod env;
pub mod fault;
pub mod lea;
pub mod medium;
pub mod radio;
pub mod sensors;

pub use env::Environment;
pub use fault::{FaultKind, FaultPlan, FaultState, PeriphClass};
pub use medium::MediumSpec;
pub use radio::{Packet, RadioLog};
pub use sensors::Sensor;

/// Bundle of peripheral state threaded through task execution.
#[derive(Debug, Clone)]
pub struct Peripherals {
    /// The physical environment sensors sample.
    pub env: Environment,
    /// Radio transmission log.
    pub radio: RadioLog,
    /// Transient-fault schedule and attempt counters (no faults unless a
    /// plan is installed).
    pub faults: FaultState,
}

impl Peripherals {
    /// Creates peripherals over an environment with the given seed.
    pub fn new(env_seed: u64) -> Self {
        Self {
            env: Environment::new(env_seed),
            radio: RadioLog::new(),
            faults: FaultState::default(),
        }
    }

    /// Creates peripherals with a transient-fault plan installed.
    pub fn with_fault_plan(env_seed: u64, plan: FaultPlan) -> Self {
        let mut p = Self::new(env_seed);
        p.faults.install(plan);
        p
    }
}
