//! Deterministic time-varying physical environment.
//!
//! Sensor readings are pure functions of (seed, wall-clock time): a slow
//! periodic drift plus bucketed pseudo-random noise. Two samples taken at
//! different times generally differ — exactly the property that makes the
//! paper's Figure 2c unsafe-execution bug reproducible: a re-executed
//! temperature read after a power failure can cross a branch threshold the
//! original read did not.

/// SplitMix64 — a tiny, high-quality deterministic hash for noise.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Symmetric triangle wave of the given period, returning −1000..=1000
/// (parts-per-thousand of full amplitude).
fn triangle_ppm(t_us: u64, period_us: u64) -> i64 {
    let pos = (t_us % period_us) as i64;
    let half = (period_us / 2) as i64;
    // Rises 0→1000 over the first half, falls back over the second.
    let up = pos.min(2 * half - pos);
    (up * 2000 / half) - 1000
}

/// The simulated physical environment.
#[derive(Debug, Clone)]
pub struct Environment {
    seed: u64,
}

impl Environment {
    /// Creates an environment; all quantities are deterministic in the seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Noise in −`amp`..=`amp`, constant within `bucket_us` time buckets.
    fn noise(&self, channel: u64, t_us: u64, bucket_us: u64, amp: i64) -> i64 {
        let h = splitmix64(self.seed ^ channel.wrapping_mul(0xA5A5) ^ (t_us / bucket_us));
        if amp == 0 {
            return 0;
        }
        (h % (2 * amp as u64 + 1)) as i64 - amp
    }

    /// Ambient temperature in centi-degrees Celsius.
    ///
    /// ~12 °C swing over a 8 s period around 12 °C, ±0.8 °C noise per 3 ms
    /// bucket. The range deliberately straddles the 10 °C threshold used by
    /// the paper's Figure 2c example so branch outcomes flip over time.
    pub fn temp_centi_c(&self, t_us: u64) -> i32 {
        let drift = triangle_ppm(t_us, 8_000_000) * 600 / 1000; // ±6.0 °C
        (1200 + drift + self.noise(1, t_us, 3_000, 80)) as i32
    }

    /// Relative humidity in tenths of a percent (0..=1000).
    pub fn humidity_permille(&self, t_us: u64) -> i32 {
        let drift = triangle_ppm(t_us, 11_000_000) * 250 / 1000; // ±25 %
        (550 + drift + self.noise(2, t_us, 5_000, 30)).clamp(0, 1000) as i32
    }

    /// Barometric pressure in decapascals (~10130 = 1013.0 hPa).
    pub fn pressure_dapa(&self, t_us: u64) -> i32 {
        let drift = triangle_ppm(t_us, 17_000_000) * 40 / 1000;
        (10_130 + drift + self.noise(3, t_us, 7_000, 10)) as i32
    }

    /// Ambient light level 0..=4095 (a 12-bit ADC), used by extension
    /// examples.
    pub fn light_adc(&self, t_us: u64) -> i32 {
        let drift = triangle_ppm(t_us, 5_000_000) * 1500 / 1000;
        (2048 + drift + self.noise(4, t_us, 2_000, 200)).clamp(0, 4095) as i32
    }

    /// Acceleration magnitude in milli-g: gravity plus motion bursts.
    ///
    /// The scene alternates between stillness (±20 mg of sensor noise) and
    /// half-second activity bursts every two seconds (±300 mg), so
    /// activity-detection workloads see both classes deterministically.
    pub fn accel_magnitude_mg(&self, t_us: u64) -> i32 {
        let in_burst = (t_us / 500_000).is_multiple_of(4);
        let amp = if in_burst { 300 } else { 20 };
        (1000 + self.noise(5, t_us, 1_500, amp)) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed_and_time() {
        let a = Environment::new(5);
        let b = Environment::new(5);
        let c = Environment::new(6);
        for t in [0u64, 123, 999_999, 10_000_000] {
            assert_eq!(a.temp_centi_c(t), b.temp_centi_c(t));
            assert_eq!(a.humidity_permille(t), b.humidity_permille(t));
        }
        // Different seeds disagree somewhere.
        assert!((0..50u64).any(|i| a.temp_centi_c(i * 10_000) != c.temp_centi_c(i * 10_000)));
    }

    #[test]
    fn temperature_varies_over_time() {
        let e = Environment::new(1);
        let vals: Vec<i32> = (0..100).map(|i| e.temp_centi_c(i * 100_000)).collect();
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        assert!(max - min > 400, "temperature must drift: {min}..{max}");
    }

    #[test]
    fn temperature_crosses_10c_threshold() {
        // The Fig. 2c scenario requires readings on both sides of 10 °C.
        let e = Environment::new(2);
        let below = (0..200u64).any(|i| e.temp_centi_c(i * 100_000) < 1000);
        let above = (0..200u64).any(|i| e.temp_centi_c(i * 100_000) >= 1000);
        assert!(below && above);
    }

    #[test]
    fn nearby_samples_within_noise_bucket_agree() {
        let e = Environment::new(3);
        // Two samples in the same 3 ms noise bucket and same drift µs-range
        // are close (drift moves < 1 centi-degree per ms).
        let a = e.temp_centi_c(6_000_000);
        let b = e.temp_centi_c(6_000_200);
        assert!((a - b).abs() <= 2, "{a} vs {b}");
    }

    #[test]
    fn humidity_and_pressure_in_physical_ranges() {
        let e = Environment::new(4);
        for i in 0..500u64 {
            let t = i * 50_000;
            let h = e.humidity_permille(t);
            assert!((0..=1000).contains(&h));
            let p = e.pressure_dapa(t);
            assert!((9_500..=10_800).contains(&p));
            let l = e.light_adc(t);
            assert!((0..=4095).contains(&l));
        }
    }

    #[test]
    fn triangle_wave_is_periodic_and_bounded() {
        for t in 0..3000u64 {
            let v = triangle_ppm(t, 1000);
            assert!((-1000..=1000).contains(&v));
            assert_eq!(v, triangle_ppm(t + 1000, 1000));
        }
        assert_eq!(triangle_ppm(0, 1000), -1000);
        assert_eq!(triangle_ppm(500, 1000), 1000);
    }
}
