//! Image capture model.
//!
//! The paper simulates the weather-app camera "by running the microcontroller
//! in a delay loop" (§5.4.1). We do the same for cost, but additionally
//! materialize a deterministic image into the destination buffer so that the
//! downstream DNN computes real arithmetic whose result can be checked
//! against a golden run (Table 5 correctness).

use mcu_emu::{Addr, Cost, CostTable, Memory};

/// Generates the `i`-th pixel of the deterministic test scene.
///
/// The scene is a smooth 2-D gradient with a seed-dependent phase; values are
/// signed 8-bit-ish magnitudes stored as i16 so the fixed-point DNN layers
/// have realistic dynamic range.
pub fn scene_pixel(seed: u64, width: u32, i: u32) -> i16 {
    let x = (i % width) as i64;
    let y = (i / width) as i64;
    let s = (seed % 61) as i64;
    // The seed modulates the gradient directions, not just a constant
    // offset, so different scenes produce genuinely different activations
    // downstream of a convolution.
    (((x * (13 + s % 5) + y * (7 + s % 3) + x * y * (s % 4) + s * 5) % 127) - 63) as i16
}

/// Captures a `width`×`height` image of i16 pixels into `dst`.
///
/// Writes memory directly (the camera interface uses its own bus); the
/// caller charges [`capture_cost`] *before* calling, mirroring the
/// spend-then-mutate atomicity rule.
pub fn capture(mem: &mut Memory, dst: Addr, width: u32, height: u32, seed: u64) {
    for i in 0..width * height {
        let px = scene_pixel(seed, width, i);
        mem.write_bytes(dst.add(i * 2), &px.to_le_bytes());
    }
}

/// Cost of one capture (delay-loop model, per the paper).
pub fn capture_cost(table: &CostTable, pixels: u32) -> Cost {
    table.capture + table.sram_word.times(pixels as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{AllocTag, Region};

    #[test]
    fn capture_is_deterministic() {
        let mut m1 = Memory::new();
        let d1 = m1.alloc(Region::Fram, 32, AllocTag::App);
        capture(&mut m1, d1, 4, 4, 9);
        let mut m2 = Memory::new();
        let d2 = m2.alloc(Region::Fram, 32, AllocTag::App);
        capture(&mut m2, d2, 4, 4, 9);
        assert_eq!(m1.read_bytes(d1, 32), m2.read_bytes(d2, 32));
    }

    #[test]
    fn different_seed_different_scene() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 32, AllocTag::App);
        let b = m.alloc(Region::Fram, 32, AllocTag::App);
        capture(&mut m, a, 4, 4, 1);
        capture(&mut m, b, 4, 4, 2);
        assert_ne!(m.read_bytes(a, 32), m.read_bytes(b, 32));
    }

    #[test]
    fn pixels_are_bounded() {
        for i in 0..64 {
            let p = scene_pixel(123, 8, i);
            assert!((-63..=63).contains(&p));
        }
    }

    #[test]
    fn capture_cost_dominated_by_delay_loop() {
        let t = CostTable::default();
        let c = capture_cost(&t, 16);
        assert!(c.time_us >= t.capture.time_us);
    }
}
