//! Property test for copy-on-write snapshot restore: against arbitrary
//! interleavings of writes, cross-region copies, power failures, and
//! allocations, a page-wise CoW restore must reproduce exactly the bytes a
//! deep copy of the image would — the invariant the parallel sweep engine's
//! byte-identical-reports guarantee rests on.

use mcu_emu::{Addr, AllocTag, Memory, Region};
use proptest::prelude::*;

/// One mutation step applied between snapshot and restore.
#[derive(Debug, Clone)]
enum Op {
    Write {
        region: Region,
        offset: u32,
        bytes: Vec<u8>,
    },
    Copy {
        src: u32,
        dst: u32,
        len: u32,
    },
    PowerFailure,
    Alloc {
        region: Region,
        bytes: u32,
    },
}

fn region_strategy() -> impl Strategy<Value = Region> {
    prop_oneof![Just(Region::Fram), Just(Region::Sram), Just(Region::LeaRam),]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            region_strategy(),
            0u32..4096,
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(region, offset, bytes)| Op::Write {
                region,
                offset,
                bytes,
            }),
        // FRAM-internal copies ranging across the whole 256 KB, so writes
        // land in high pages too (offsets are clamped in `apply`).
        (0u32..260_000, 0u32..260_000, 1u32..512).prop_map(|(src, dst, len)| Op::Copy {
            src,
            dst,
            len
        }),
        Just(Op::PowerFailure),
        (region_strategy(), 1u32..128).prop_map(|(region, bytes)| Op::Alloc { region, bytes }),
    ]
}

fn apply(mem: &mut Memory, op: &Op) {
    match op {
        Op::Write {
            region,
            offset,
            bytes,
        } => {
            let max = region.size() as u32 - bytes.len() as u32;
            mem.write_bytes(Addr::new(*region, (*offset).min(max)), bytes);
        }
        Op::Copy { src, dst, len } => {
            let max = Region::Fram.size() as u32 - len;
            mem.copy(
                Addr::new(Region::Fram, (*src).min(max)),
                Addr::new(Region::Fram, (*dst).min(max)),
                *len,
            );
        }
        Op::PowerFailure => mem.power_failure(),
        Op::Alloc { region, bytes } => {
            // Keep well under the volatile regions' 4 KB so a long op list
            // cannot exhaust them.
            if mem.allocated(*region) + bytes + 2 < 3 * 1024 {
                mem.alloc(*region, *bytes, AllocTag::Runtime);
            }
        }
    }
}

fn image(mem: &Memory) -> Vec<u8> {
    let mut out = Vec::new();
    for region in [Region::Fram, Region::Sram, Region::LeaRam] {
        out.extend_from_slice(mem.read_bytes(Addr::new(region, 0), region.size() as u32));
        out.push(mem.allocated(region) as u8);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CoW restore == deep-copy baseline, for random write sets.
    #[test]
    fn cow_restore_equals_deep_copy_baseline(
        pre in proptest::collection::vec(op_strategy(), 0..8),
        post in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let mut mem = Memory::new();
        for op in &pre {
            apply(&mut mem, op);
        }
        let snap = mem.snapshot();
        let baseline = image(&mem); // deep copy of the snapshotted state
        for op in &post {
            apply(&mut mem, op);
        }
        mem.restore(&snap);
        prop_assert_eq!(image(&mem), baseline);

        // A second divergence/restore cycle against the same snapshot must
        // also round-trip (the sweep restores hundreds of times).
        for op in post.iter().rev() {
            apply(&mut mem, op);
        }
        mem.restore(&snap);
        prop_assert_eq!(image(&mem), baseline);
    }

    /// A fresh Memory adopting a foreign snapshot (the parallel-worker
    /// pattern) converges to the same bytes as the originating instance.
    #[test]
    fn foreign_adoption_matches_origin(
        pre in proptest::collection::vec(op_strategy(), 0..8),
        post in proptest::collection::vec(op_strategy(), 0..16),
    ) {
        let mut origin = Memory::new();
        for op in &pre {
            apply(&mut origin, op);
        }
        let snap = origin.snapshot();
        let baseline = image(&origin);

        let mut worker = Memory::new();
        for op in &post {
            apply(&mut worker, op); // worker state diverges arbitrarily
        }
        worker.restore(&snap); // full-copy adoption
        prop_assert_eq!(image(&worker), baseline.clone());
        for op in &post {
            apply(&mut worker, op);
        }
        worker.restore(&snap); // page-wise from here on
        prop_assert_eq!(image(&worker), baseline);
    }
}
