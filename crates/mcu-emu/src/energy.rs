//! Time/energy cost model and the storage-capacitor model.
//!
//! Every observable the paper reports — execution time, wasted work, runtime
//! overhead, energy per run — is an integral of per-operation costs. We price
//! each primitive with a `Cost` (microseconds, nanojoules) from a single
//! calibration table. The absolute values are calibrated to the magnitudes
//! visible in the paper's figures (1 MHz CPU, millisecond-scale sensor and
//! DMA operations); the comparative shapes are what the reproduction checks.

/// A priced amount of work: wall time in µs and energy in nJ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Execution time in microseconds.
    pub time_us: u64,
    /// Energy in nanojoules.
    pub energy_nj: u64,
}

impl Cost {
    /// Creates a cost.
    pub const fn new(time_us: u64, energy_nj: u64) -> Self {
        Self { time_us, energy_nj }
    }

    /// Zero cost.
    pub const ZERO: Cost = Cost::new(0, 0);

    /// Scales the cost by an integer factor (e.g. per-word costs).
    pub const fn times(self, n: u64) -> Self {
        Cost::new(self.time_us * n, self.energy_nj * n)
    }

    /// Adds two costs.
    pub const fn plus(self, other: Cost) -> Self {
        Cost::new(
            self.time_us + other.time_us,
            self.energy_nj + other.energy_nj,
        )
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = self.plus(rhs);
    }
}

/// Calibrated per-operation costs for the simulated MSP430FR5994 at 1 MHz.
///
/// One CPU cycle is 1 µs. Active-mode power is on the order of 1 mW
/// (≈ 1 nJ/µs), FRAM accesses cost slightly more energy than SRAM, and
/// peripheral operations (sensing, radio, capture) are orders of magnitude
/// more expensive than compute — which is precisely why re-executing them
/// after every reboot dominates the energy budget (paper §2.1.1).
#[derive(Debug, Clone)]
pub struct CostTable {
    /// One generic CPU cycle of application compute.
    pub cpu_cycle: Cost,
    /// Read of one 16-bit word from FRAM.
    pub fram_read_word: Cost,
    /// Write of one 16-bit word to FRAM.
    pub fram_write_word: Cost,
    /// Access (read or write) of one 16-bit word in SRAM/LEA-RAM.
    pub sram_word: Cost,
    /// Reading the persistent timekeeper (external timer circuit).
    pub timestamp_read: Cost,
    /// Checking one runtime flag in FRAM (load + compare + branch).
    pub flag_check: Cost,
    /// Setting one runtime flag in FRAM.
    pub flag_write: Cost,
    /// DMA channel configuration (per transfer).
    pub dma_setup: Cost,
    /// DMA transfer of one 16-bit word.
    pub dma_word: Cost,
    /// LEA command setup (per invocation).
    pub lea_setup: Cost,
    /// One LEA multiply-accumulate.
    pub lea_mac: Cost,
    /// Temperature sensor sample.
    pub sense_temp: Cost,
    /// Humidity sensor sample.
    pub sense_humd: Cost,
    /// Pressure sensor sample.
    pub sense_pres: Cost,
    /// Radio power-up and framing (per packet).
    pub radio_setup: Cost,
    /// Radio transmission of one byte.
    pub radio_byte: Cost,
    /// Image capture (the paper emulates this with a delay loop).
    pub capture: Cost,
}

impl Default for CostTable {
    fn default() -> Self {
        Self {
            cpu_cycle: Cost::new(1, 1),
            fram_read_word: Cost::new(1, 2),
            fram_write_word: Cost::new(1, 3),
            sram_word: Cost::new(1, 1),
            timestamp_read: Cost::new(5, 8),
            flag_check: Cost::new(2, 4),
            flag_write: Cost::new(2, 5),
            dma_setup: Cost::new(30, 45),
            dma_word: Cost::new(2, 3),
            lea_setup: Cost::new(20, 25),
            lea_mac: Cost::new(1, 1),
            sense_temp: Cost::new(900, 1800),
            sense_humd: Cost::new(1100, 2300),
            sense_pres: Cost::new(700, 1400),
            radio_setup: Cost::new(400, 900),
            radio_byte: Cost::new(40, 90),
            capture: Cost::new(6000, 10_400),
        }
    }
}

/// Energy-storage capacitor between an on threshold and an off threshold.
///
/// The device boots when the capacitor charges to `v_on` and dies when it
/// drains to `v_off`; the usable energy per charge cycle is
/// ½·C·(v_on² − v_off²). We track the remaining usable energy directly in
/// nanojoules, which keeps the arithmetic exact.
#[derive(Debug, Clone)]
pub struct Capacitor {
    usable_nj: u64,
    remaining_nj: u64,
}

impl Capacitor {
    /// Builds a capacitor from electrical parameters.
    ///
    /// `capacitance_uf` in microfarads, thresholds in millivolts.
    pub fn from_electrical(capacitance_uf: u64, v_on_mv: u64, v_off_mv: u64) -> Self {
        assert!(v_on_mv > v_off_mv, "v_on must exceed v_off");
        // E [nJ] = ½ · C[F] · (Von² − Voff²)[V²] · 1e9
        //        = ½ · (C_uf · 1e-6) · ((von_mv² − voff_mv²) · 1e-6) · 1e9
        //        = C_uf · (von_mv² − voff_mv²) / 2000
        let usable = capacitance_uf * (v_on_mv * v_on_mv - v_off_mv * v_off_mv) / 2000;
        Self::with_usable_energy(usable)
    }

    /// Builds a capacitor with a given usable energy per charge cycle (nJ),
    /// starting fully charged.
    pub fn with_usable_energy(usable_nj: u64) -> Self {
        assert!(usable_nj > 0, "capacitor must store some energy");
        Self {
            usable_nj,
            remaining_nj: usable_nj,
        }
    }

    /// Usable energy per full charge cycle in nJ.
    pub fn usable_nj(&self) -> u64 {
        self.usable_nj
    }

    /// Remaining usable energy in nJ.
    pub fn remaining_nj(&self) -> u64 {
        self.remaining_nj
    }

    /// Attempts to drain `nj`; returns `false` (and empties the capacitor)
    /// if there is not enough charge, which is a power failure.
    pub fn drain(&mut self, nj: u64) -> bool {
        if nj <= self.remaining_nj {
            self.remaining_nj -= nj;
            true
        } else {
            self.remaining_nj = 0;
            false
        }
    }

    /// Adds harvested energy, saturating at the full charge.
    pub fn charge(&mut self, nj: u64) {
        self.remaining_nj = (self.remaining_nj + nj).min(self.usable_nj);
    }

    /// Recharges to full and returns the time it takes at `income_nw`
    /// nanowatts of harvested power (1 nW = 1 nJ / s).
    pub fn recharge_full(&mut self, income_nw: u64) -> u64 {
        assert!(income_nw > 0, "cannot recharge with zero income");
        let deficit = self.usable_nj - self.remaining_nj;
        // time_us = deficit[nJ] / income[nJ/s] · 1e6
        let t = deficit.saturating_mul(1_000_000) / income_nw;
        self.remaining_nj = self.usable_nj;
        t.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = Cost::new(3, 5);
        let b = Cost::new(1, 2);
        assert_eq!(a + b, Cost::new(4, 7));
        assert_eq!(a.times(4), Cost::new(12, 20));
        let mut c = Cost::ZERO;
        c += a;
        c += b;
        assert_eq!(c, Cost::new(4, 7));
    }

    #[test]
    fn capacitor_electrical_formula() {
        // 1 mF between 3.0 V and 1.8 V: ½·1e-3·(9.0−3.24) J = 2.88 mJ.
        let c = Capacitor::from_electrical(1000, 3000, 1800);
        assert_eq!(c.usable_nj(), 2_880_000);
    }

    #[test]
    fn drain_and_failure() {
        let mut c = Capacitor::with_usable_energy(100);
        assert!(c.drain(60));
        assert_eq!(c.remaining_nj(), 40);
        assert!(!c.drain(50));
        assert_eq!(c.remaining_nj(), 0);
    }

    #[test]
    fn charge_saturates() {
        let mut c = Capacitor::with_usable_energy(100);
        c.drain(30);
        c.charge(1000);
        assert_eq!(c.remaining_nj(), 100);
    }

    #[test]
    fn recharge_time_scales_with_income() {
        let mut c = Capacitor::with_usable_energy(1000);
        c.drain(1000);
        // 1000 nJ at 1000 nW = 1 s = 1e6 µs.
        let t = c.recharge_full(1000);
        assert_eq!(t, 1_000_000);
        assert_eq!(c.remaining_nj(), 1000);

        let mut c2 = Capacitor::with_usable_energy(1000);
        c2.drain(1000);
        // Double the income, half the time.
        assert_eq!(c2.recharge_full(2000), 500_000);
    }

    #[test]
    fn peripheral_costs_dominate_compute() {
        // The premise of the paper: I/O is orders of magnitude more expensive
        // than a CPU cycle, so redundant I/O dominates wasted energy.
        let t = CostTable::default();
        assert!(t.sense_temp.energy_nj > 100 * t.cpu_cycle.energy_nj);
        assert!(t.radio_setup.energy_nj > 100 * t.cpu_cycle.energy_nj);
        assert!(t.capture.energy_nj > 1000 * t.cpu_cycle.energy_nj);
    }
}
