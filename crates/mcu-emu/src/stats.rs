//! Exact time/energy ledger and event counters.
//!
//! The paper's five metrics (§5.2) all derive from this ledger:
//! wasted work, energy consumption, execution correctness (checked by the
//! apps), runtime overhead, and memory overhead (from `Memory` allocation
//! records). Work is tagged at spend time as application work or runtime
//! overhead; "wasted" application work is computed by comparing against a
//! continuous-power golden run, which by construction contains zero waste.

use std::collections::BTreeMap;

/// Classification of a unit of spent work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Application-level work: compute, I/O, DMA payload transfers.
    App,
    /// Runtime bookkeeping: privatization, flags, timestamps, commits.
    Overhead,
}

/// Counters and ledgers collected over one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// On-time spent on application work (µs), across all attempts.
    pub app_time_us: u64,
    /// On-time spent on runtime overhead (µs), across all attempts.
    pub overhead_time_us: u64,
    /// Energy spent on application work (nJ).
    pub app_energy_nj: u64,
    /// Energy spent on runtime overhead (nJ).
    pub overhead_energy_nj: u64,
    /// Number of power failures (reboots).
    pub power_failures: u64,
    /// Task executions started (first entries plus re-executions).
    pub task_attempts: u64,
    /// Tasks committed.
    pub task_commits: u64,
    /// I/O operations physically executed on a peripheral.
    pub io_executed: u64,
    /// I/O operations skipped; their previous output was restored.
    pub io_skipped: u64,
    /// Redundant I/O executions: the same call site executing again after it
    /// had already completed once within the same task activation.
    pub io_reexecutions: u64,
    /// DMA transfers physically performed.
    pub dma_executed: u64,
    /// DMA transfers skipped by semantics.
    pub dma_skipped: u64,
    /// Redundant DMA executions (same site, same activation, again).
    pub dma_reexecutions: u64,
    /// Energy-spend boundaries crossed: one per supply `spend` call (the
    /// unit at which a power failure can be injected by a crash sweep).
    pub boundaries: u64,
    /// Free-form named counters for runtime-specific events.
    pub counters: BTreeMap<&'static str, u64>,
}

impl RunStats {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records spent work.
    pub fn record(&mut self, kind: WorkKind, time_us: u64, energy_nj: u64) {
        match kind {
            WorkKind::App => {
                self.app_time_us += time_us;
                self.app_energy_nj += energy_nj;
            }
            WorkKind::Overhead => {
                self.overhead_time_us += time_us;
                self.overhead_energy_nj += energy_nj;
            }
        }
    }

    /// Increments a named counter.
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Reads a named counter.
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total on-time (µs).
    pub fn total_time_us(&self) -> u64 {
        self.app_time_us + self.overhead_time_us
    }

    /// Total energy (nJ).
    pub fn total_energy_nj(&self) -> u64 {
        self.app_energy_nj + self.overhead_energy_nj
    }

    /// Application time that was wasted (re-executed and discarded), given
    /// the application time of a continuous-power golden run.
    pub fn wasted_time_us(&self, golden_app_time_us: u64) -> u64 {
        self.app_time_us.saturating_sub(golden_app_time_us)
    }

    /// Application energy that was wasted, given the golden app energy.
    pub fn wasted_energy_nj(&self, golden_app_energy_nj: u64) -> u64 {
        self.app_energy_nj.saturating_sub(golden_app_energy_nj)
    }

    /// Total redundant I/O re-executions (peripheral plus DMA).
    pub fn total_reexecutions(&self) -> u64 {
        self.io_reexecutions + self.dma_reexecutions
    }

    /// Merges another run's ledger into this one (for aggregation across
    /// seeded repetitions).
    pub fn merge(&mut self, other: &RunStats) {
        self.app_time_us += other.app_time_us;
        self.overhead_time_us += other.overhead_time_us;
        self.app_energy_nj += other.app_energy_nj;
        self.overhead_energy_nj += other.overhead_energy_nj;
        self.power_failures += other.power_failures;
        self.task_attempts += other.task_attempts;
        self.task_commits += other.task_commits;
        self.io_executed += other.io_executed;
        self.io_skipped += other.io_skipped;
        self.io_reexecutions += other.io_reexecutions;
        self.dma_executed += other.dma_executed;
        self.dma_skipped += other.dma_skipped;
        self.dma_reexecutions += other.dma_reexecutions;
        self.boundaries += other.boundaries;
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splits_by_kind() {
        let mut s = RunStats::new();
        s.record(WorkKind::App, 10, 20);
        s.record(WorkKind::Overhead, 3, 4);
        s.record(WorkKind::App, 1, 2);
        assert_eq!(s.app_time_us, 11);
        assert_eq!(s.app_energy_nj, 22);
        assert_eq!(s.overhead_time_us, 3);
        assert_eq!(s.total_time_us(), 14);
        assert_eq!(s.total_energy_nj(), 26);
    }

    #[test]
    fn wasted_is_excess_over_golden() {
        let mut s = RunStats::new();
        s.record(WorkKind::App, 100, 200);
        assert_eq!(s.wasted_time_us(60), 40);
        assert_eq!(s.wasted_energy_nj(200), 0);
        // Never negative, even if accounting jitter makes golden larger.
        assert_eq!(s.wasted_time_us(150), 0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = RunStats::new();
        a.record(WorkKind::App, 5, 5);
        a.power_failures = 2;
        a.bump("x");
        let mut b = RunStats::new();
        b.record(WorkKind::Overhead, 7, 7);
        b.power_failures = 1;
        b.bump("x");
        b.bump("y");
        a.merge(&b);
        assert_eq!(a.total_time_us(), 12);
        assert_eq!(a.power_failures, 3);
        assert_eq!(a.counter("x"), 2);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("z"), 0);
    }
}
