//! Exact time/energy ledger and event counters.
//!
//! The paper's five metrics (§5.2) all derive from this ledger:
//! wasted work, energy consumption, execution correctness (checked by the
//! apps), runtime overhead, and memory overhead (from `Memory` allocation
//! records). Work is tagged at spend time as application work or runtime
//! overhead; "wasted" application work is computed by comparing against a
//! continuous-power golden run, which by construction contains zero waste.
//!
//! On top of the two-way app/overhead split, every spend is attributed to
//! one of the [`EnergyCause`] categories, which answer *why* the energy was
//! spent rather than merely *what layer* spent it. The categories partition
//! the ledger exactly: for any run, the per-cause totals sum to
//! `app + overhead` for both time and energy (the attribution invariant,
//! DESIGN.md §13). Causes that are only knowable after the fact — a
//! redundant I/O is only recognized once the operation's completion state
//! is inspected — are handled by [`RunStats::reattribute_since`], which
//! moves already-recorded deltas between categories without changing the
//! totals.

use std::collections::BTreeMap;

/// Classification of a unit of spent work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Application-level work: compute, I/O, DMA payload transfers.
    App,
    /// Runtime bookkeeping: privatization, flags, timestamps, commits.
    Overhead,
}

/// Number of [`EnergyCause`] categories.
pub const CAUSE_COUNT: usize = 8;

/// Task index used for spends not attributable to any application task
/// (boot, inter-task scheduling, machine construction).
pub const KERNEL_TASK: u16 = u16::MAX;

/// Offset distinguishing DMA call sites from I/O call sites in the
/// per-site redundant-energy ledger: DMA site `n` is recorded under key
/// `DMA_SITE_BASE | n`. Dynamic site sequences are small, so the two
/// spaces cannot collide.
pub const DMA_SITE_BASE: u16 = 0x8000;

/// Why a unit of energy was spent. The categories partition every spend:
/// each microjoule belongs to exactly one cause, so the per-cause ledgers
/// always sum to the app + overhead totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EnergyCause {
    /// First-attempt application work: forward progress.
    Progress,
    /// Application work replayed after a reboot, up to the crash point —
    /// the re-execution tax of task-based intermittent systems.
    ReexecCompute,
    /// I/O and DMA operations that physically re-executed even though a
    /// completed execution already existed this activation — the waste
    /// `Single`/`Timely` semantics exist to eliminate.
    RedundantIo,
    /// Commit and variable-privatization overhead: two-phase commits,
    /// WAR/working-copy buffering, completion flags and their clears.
    Commit,
    /// Peripheral-fault recovery: retry backoff delays plus the cost of
    /// attempts that ended in a transient fault.
    Retry,
    /// DMA region privatization: phase-1 staging copies, DMA control
    /// flags, and regional snapshot/restore machinery.
    DmaPriv,
    /// Residual runtime bookkeeping: boot sequences, timestamp reads, and
    /// overhead not covered by a more specific category.
    RuntimeMisc,
    /// Over-the-air update machinery: staging a new task-graph image into
    /// the shadow FRAM slot, sealing its header, and flipping the commit
    /// word. Structural cost of evolving the firmware, not waste.
    UpdateStage,
}

impl EnergyCause {
    /// Every cause, in ledger (and report) order.
    pub const ALL: [EnergyCause; CAUSE_COUNT] = [
        EnergyCause::Progress,
        EnergyCause::ReexecCompute,
        EnergyCause::RedundantIo,
        EnergyCause::Commit,
        EnergyCause::Retry,
        EnergyCause::DmaPriv,
        EnergyCause::RuntimeMisc,
        EnergyCause::UpdateStage,
    ];

    /// Index into the per-cause ledgers.
    pub fn index(self) -> usize {
        match self {
            EnergyCause::Progress => 0,
            EnergyCause::ReexecCompute => 1,
            EnergyCause::RedundantIo => 2,
            EnergyCause::Commit => 3,
            EnergyCause::Retry => 4,
            EnergyCause::DmaPriv => 5,
            EnergyCause::RuntimeMisc => 6,
            EnergyCause::UpdateStage => 7,
        }
    }

    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EnergyCause::Progress => "progress",
            EnergyCause::ReexecCompute => "reexec_compute",
            EnergyCause::RedundantIo => "redundant_io",
            EnergyCause::Commit => "commit",
            EnergyCause::Retry => "retry",
            EnergyCause::DmaPriv => "dma_priv",
            EnergyCause::RuntimeMisc => "runtime_misc",
            EnergyCause::UpdateStage => "update_stage",
        }
    }

    /// Whether the category is waste — energy a perfect runtime on the
    /// same schedule would not have spent (as opposed to forward progress
    /// or the runtime's structural overhead).
    pub fn is_waste(self) -> bool {
        matches!(
            self,
            EnergyCause::ReexecCompute | EnergyCause::RedundantIo | EnergyCause::Retry
        )
    }

    /// The cause an unscoped spend of `kind` defaults to on a first
    /// (non-replay) attempt.
    pub fn default_for(kind: WorkKind) -> Self {
        match kind {
            WorkKind::App => EnergyCause::Progress,
            WorkKind::Overhead => EnergyCause::RuntimeMisc,
        }
    }
}

/// A point-in-time copy of the per-cause ledgers, used to compute the
/// delta an operation produced and [`RunStats::reattribute_since`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CauseMarks {
    /// Per-cause on-time at the mark (µs).
    pub time_us: [u64; CAUSE_COUNT],
    /// Per-cause energy at the mark (nJ).
    pub energy_nj: [u64; CAUSE_COUNT],
}

/// One sample of the cumulative per-cause energy ledger, taken after a
/// spend completed — the data behind Chrome-trace counter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CauseSample {
    /// Virtual timestamp of the sample (µs).
    pub ts_us: u64,
    /// Cumulative per-cause energy at the sample (nJ), in
    /// [`EnergyCause::ALL`] order.
    pub energy_nj: [u64; CAUSE_COUNT],
}

/// Counters and ledgers collected over one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// On-time spent on application work (µs), across all attempts.
    pub app_time_us: u64,
    /// On-time spent on runtime overhead (µs), across all attempts.
    pub overhead_time_us: u64,
    /// Energy spent on application work (nJ).
    pub app_energy_nj: u64,
    /// Energy spent on runtime overhead (nJ).
    pub overhead_energy_nj: u64,
    /// Number of power failures (reboots).
    pub power_failures: u64,
    /// Task executions started (first entries plus re-executions).
    pub task_attempts: u64,
    /// Tasks committed.
    pub task_commits: u64,
    /// I/O operations physically executed on a peripheral.
    pub io_executed: u64,
    /// I/O operations skipped; their previous output was restored.
    pub io_skipped: u64,
    /// Redundant I/O executions: the same call site executing again after it
    /// had already completed once within the same task activation.
    pub io_reexecutions: u64,
    /// DMA transfers physically performed.
    pub dma_executed: u64,
    /// DMA transfers skipped by semantics.
    pub dma_skipped: u64,
    /// Redundant DMA executions (same site, same activation, again).
    pub dma_reexecutions: u64,
    /// Energy-spend boundaries crossed: one per supply `spend` call (the
    /// unit at which a power failure can be injected by a crash sweep).
    pub boundaries: u64,
    /// Per-cause on-time ledger (µs), indexed by [`EnergyCause::index`].
    /// Sums to `app_time_us + overhead_time_us` at all times.
    pub cause_time_us: [u64; CAUSE_COUNT],
    /// Per-cause energy ledger (nJ). Sums to
    /// `app_energy_nj + overhead_energy_nj` at all times.
    pub cause_energy_nj: [u64; CAUSE_COUNT],
    /// Per-task slice of the energy ledger; [`KERNEL_TASK`] collects spends
    /// outside any task. Each row sums across tasks to `cause_energy_nj`.
    pub cause_energy_by_task: BTreeMap<u16, [u64; CAUSE_COUNT]>,
    /// Energy reattributed to [`EnergyCause::RedundantIo`] per I/O site
    /// (nJ) — the per-site waste breakdown.
    pub redundant_energy_by_site: BTreeMap<u16, u64>,
    /// Free-form named counters for runtime-specific events.
    pub counters: BTreeMap<&'static str, u64>,
}

impl RunStats {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records spent work with the default cause for `kind`, outside any
    /// task. Attribution-aware callers use [`RunStats::record_attributed`].
    pub fn record(&mut self, kind: WorkKind, time_us: u64, energy_nj: u64) {
        self.record_attributed(
            kind,
            EnergyCause::default_for(kind),
            KERNEL_TASK,
            time_us,
            energy_nj,
        );
    }

    /// Records spent work under an explicit cause and task. This is the
    /// only write path into the cause ledgers, which keeps the attribution
    /// invariant (cause totals == app + overhead totals) structural.
    pub fn record_attributed(
        &mut self,
        kind: WorkKind,
        cause: EnergyCause,
        task: u16,
        time_us: u64,
        energy_nj: u64,
    ) {
        match kind {
            WorkKind::App => {
                self.app_time_us += time_us;
                self.app_energy_nj += energy_nj;
            }
            WorkKind::Overhead => {
                self.overhead_time_us += time_us;
                self.overhead_energy_nj += energy_nj;
            }
        }
        let i = cause.index();
        self.cause_time_us[i] += time_us;
        self.cause_energy_nj[i] += energy_nj;
        self.cause_energy_by_task.entry(task).or_default()[i] += energy_nj;
    }

    /// A point-in-time copy of the cause ledgers, for delta accounting
    /// around an operation whose true cause is only known afterwards.
    pub fn cause_marks(&self) -> CauseMarks {
        CauseMarks {
            time_us: self.cause_time_us,
            energy_nj: self.cause_energy_nj,
        }
    }

    /// Moves everything recorded since `marks` into the `to` category (the
    /// `to` slice itself stays put), preserving the totals exactly. The
    /// per-task ledger moves the same amounts within `task`'s row. Returns
    /// the (time, energy) actually moved.
    pub fn reattribute_since(
        &mut self,
        marks: &CauseMarks,
        to: EnergyCause,
        task: u16,
    ) -> (u64, u64) {
        let ti = to.index();
        let mut moved_t = 0u64;
        let mut moved_e = 0u64;
        let row = self.cause_energy_by_task.entry(task).or_default();
        for cause in EnergyCause::ALL {
            let i = cause.index();
            if i == ti {
                continue;
            }
            let dt = self.cause_time_us[i].saturating_sub(marks.time_us[i]);
            let de = self.cause_energy_nj[i].saturating_sub(marks.energy_nj[i]);
            if dt == 0 && de == 0 {
                continue;
            }
            self.cause_time_us[i] -= dt;
            self.cause_energy_nj[i] -= de;
            // The whole delta was spent inside one task-scoped operation,
            // so the task row holds it; clamp anyway so a caller misuse
            // can never underflow.
            let row_de = de.min(row[i]);
            row[i] -= row_de;
            row[ti] += row_de;
            moved_t += dt;
            moved_e += de;
        }
        self.cause_time_us[ti] += moved_t;
        self.cause_energy_nj[ti] += moved_e;
        (moved_t, moved_e)
    }

    /// Adds reattributed redundant-I/O energy to `site`'s waste ledger.
    pub fn note_redundant_site(&mut self, site: u16, energy_nj: u64) {
        if energy_nj > 0 {
            *self.redundant_energy_by_site.entry(site).or_insert(0) += energy_nj;
        }
    }

    /// Energy in a single cause category (nJ).
    pub fn cause_energy(&self, cause: EnergyCause) -> u64 {
        self.cause_energy_nj[cause.index()]
    }

    /// Total wasted energy (nJ): the sum of the waste categories
    /// (re-executed compute, redundant I/O, fault retries).
    pub fn waste_energy_nj(&self) -> u64 {
        EnergyCause::ALL
            .iter()
            .filter(|c| c.is_waste())
            .map(|c| self.cause_energy_nj[c.index()])
            .sum()
    }

    /// Increments a named counter.
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Reads a named counter.
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total on-time (µs).
    pub fn total_time_us(&self) -> u64 {
        self.app_time_us + self.overhead_time_us
    }

    /// Total energy (nJ).
    pub fn total_energy_nj(&self) -> u64 {
        self.app_energy_nj + self.overhead_energy_nj
    }

    /// Application time that was wasted (re-executed and discarded), given
    /// the application time of a continuous-power golden run.
    pub fn wasted_time_us(&self, golden_app_time_us: u64) -> u64 {
        self.app_time_us.saturating_sub(golden_app_time_us)
    }

    /// Application energy that was wasted, given the golden app energy.
    pub fn wasted_energy_nj(&self, golden_app_energy_nj: u64) -> u64 {
        self.app_energy_nj.saturating_sub(golden_app_energy_nj)
    }

    /// Total redundant I/O re-executions (peripheral plus DMA).
    pub fn total_reexecutions(&self) -> u64 {
        self.io_reexecutions + self.dma_reexecutions
    }

    /// Merges another run's ledger into this one (for aggregation across
    /// seeded repetitions).
    pub fn merge(&mut self, other: &RunStats) {
        self.app_time_us += other.app_time_us;
        self.overhead_time_us += other.overhead_time_us;
        self.app_energy_nj += other.app_energy_nj;
        self.overhead_energy_nj += other.overhead_energy_nj;
        self.power_failures += other.power_failures;
        self.task_attempts += other.task_attempts;
        self.task_commits += other.task_commits;
        self.io_executed += other.io_executed;
        self.io_skipped += other.io_skipped;
        self.io_reexecutions += other.io_reexecutions;
        self.dma_executed += other.dma_executed;
        self.dma_skipped += other.dma_skipped;
        self.dma_reexecutions += other.dma_reexecutions;
        self.boundaries += other.boundaries;
        for i in 0..CAUSE_COUNT {
            self.cause_time_us[i] += other.cause_time_us[i];
            self.cause_energy_nj[i] += other.cause_energy_nj[i];
        }
        for (task, row) in &other.cause_energy_by_task {
            let mine = self.cause_energy_by_task.entry(*task).or_default();
            for i in 0..CAUSE_COUNT {
                mine[i] += row[i];
            }
        }
        for (site, e) in &other.redundant_energy_by_site {
            *self.redundant_energy_by_site.entry(*site).or_insert(0) += e;
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
    }

    /// Asserts the attribution invariant: the per-cause ledgers sum to the
    /// app + overhead totals, for both time and energy. Returns the pair of
    /// (cause sum, kind sum) for energy on failure diagnostics.
    pub fn attribution_balanced(&self) -> bool {
        let cause_t: u64 = self.cause_time_us.iter().sum();
        let cause_e: u64 = self.cause_energy_nj.iter().sum();
        let task_e: u64 = self
            .cause_energy_by_task
            .values()
            .flat_map(|row| row.iter())
            .sum();
        cause_t == self.total_time_us() && cause_e == self.total_energy_nj() && task_e == cause_e
    }
}

// ------------------------------------------------------- host memory -----
//
// Fleet-scale runs claim a *flat* memory ceiling (ISSUE 10): the streamed
// telemetry path must not grow with the device count. These counters read
// the host process's resident-set sizes so reports (and the CI gate) can
// state peak RSS as a measured number rather than a hope. They live with
// the stats module because they ride in the same report timing block as
// the other measurement counters — but unlike everything else in RunStats
// they are HOST numbers: nondeterministic, never part of report identity.

/// Reads a `kB` field from `/proc/self/status`, in bytes.
#[cfg(target_os = "linux")]
fn proc_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Peak resident-set size of this process (bytes). `None` where the
/// platform does not expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmHWM:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Current resident-set size of this process (bytes). `None` where the
/// platform does not expose it.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmRSS:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_rss_counters_read_on_linux() {
        if cfg!(target_os = "linux") {
            let peak = peak_rss_bytes().expect("VmHWM in /proc/self/status");
            let cur = current_rss_bytes().expect("VmRSS in /proc/self/status");
            assert!(cur > 0);
            assert!(peak >= cur, "high-water {peak} below current {cur}");
        }
    }

    #[test]
    fn record_splits_by_kind() {
        let mut s = RunStats::new();
        s.record(WorkKind::App, 10, 20);
        s.record(WorkKind::Overhead, 3, 4);
        s.record(WorkKind::App, 1, 2);
        assert_eq!(s.app_time_us, 11);
        assert_eq!(s.app_energy_nj, 22);
        assert_eq!(s.overhead_time_us, 3);
        assert_eq!(s.total_time_us(), 14);
        assert_eq!(s.total_energy_nj(), 26);
        assert!(s.attribution_balanced());
    }

    #[test]
    fn wasted_is_excess_over_golden() {
        let mut s = RunStats::new();
        s.record(WorkKind::App, 100, 200);
        assert_eq!(s.wasted_time_us(60), 40);
        assert_eq!(s.wasted_energy_nj(200), 0);
        // Never negative, even if accounting jitter makes golden larger.
        assert_eq!(s.wasted_time_us(150), 0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = RunStats::new();
        a.record(WorkKind::App, 5, 5);
        a.power_failures = 2;
        a.bump("x");
        let mut b = RunStats::new();
        b.record(WorkKind::Overhead, 7, 7);
        b.power_failures = 1;
        b.bump("x");
        b.bump("y");
        b.note_redundant_site(3, 11);
        a.merge(&b);
        assert_eq!(a.total_time_us(), 12);
        assert_eq!(a.power_failures, 3);
        assert_eq!(a.counter("x"), 2);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("z"), 0);
        assert_eq!(a.redundant_energy_by_site.get(&3), Some(&11));
        assert!(a.attribution_balanced());
    }

    #[test]
    fn attributed_record_fills_every_ledger() {
        let mut s = RunStats::new();
        s.record_attributed(WorkKind::App, EnergyCause::ReexecCompute, 2, 10, 30);
        s.record_attributed(WorkKind::Overhead, EnergyCause::Commit, 2, 5, 7);
        assert_eq!(s.cause_energy(EnergyCause::ReexecCompute), 30);
        assert_eq!(s.cause_energy(EnergyCause::Commit), 7);
        assert_eq!(s.cause_energy_by_task[&2][EnergyCause::Commit.index()], 7);
        assert_eq!(s.waste_energy_nj(), 30);
        assert!(s.attribution_balanced());
    }

    #[test]
    fn reattribution_moves_deltas_and_preserves_totals() {
        let mut s = RunStats::new();
        s.record_attributed(WorkKind::App, EnergyCause::Progress, 1, 100, 1000);
        let marks = s.cause_marks();
        s.record_attributed(WorkKind::App, EnergyCause::Progress, 1, 40, 400);
        s.record_attributed(WorkKind::Overhead, EnergyCause::Commit, 1, 6, 60);
        let before_total = s.total_energy_nj();
        let (mt, me) = s.reattribute_since(&marks, EnergyCause::RedundantIo, 1);
        assert_eq!((mt, me), (46, 460));
        // Pre-mark attribution is untouched; the delta moved wholesale.
        assert_eq!(s.cause_energy(EnergyCause::Progress), 1000);
        assert_eq!(s.cause_energy(EnergyCause::Commit), 0);
        assert_eq!(s.cause_energy(EnergyCause::RedundantIo), 460);
        assert_eq!(s.total_energy_nj(), before_total);
        assert_eq!(s.waste_energy_nj(), 460);
        assert!(s.attribution_balanced());
    }

    #[test]
    fn reattribution_leaves_the_target_category_in_place() {
        let mut s = RunStats::new();
        let marks = s.cause_marks();
        s.record_attributed(WorkKind::App, EnergyCause::Retry, 0, 10, 10);
        s.reattribute_since(&marks, EnergyCause::Retry, 0);
        assert_eq!(s.cause_energy(EnergyCause::Retry), 10);
        assert!(s.attribution_balanced());
    }
}
