//! Simulated MSP430FR5994 intermittent-computing platform.
//!
//! This crate provides the hardware substrate that the EaseIO paper assumes:
//! a 16-bit microcontroller with a small volatile SRAM, a large persistent
//! FRAM, a dedicated LEA accelerator RAM, a persistent timekeeper, and a
//! power supply that fails intermittently (either on an emulated timer, as in
//! the paper's controlled experiments, or from an RF energy-harvesting
//! capacitor model, as in the paper's real-world evaluation).
//!
//! Everything is deterministic given a seed: virtual time advances only when
//! the MCU spends cycles, and power failures are produced by seeded supply
//! models. The simulator keeps an exact time/energy ledger classified into
//! application work and runtime overhead, from which the paper's metrics
//! (wasted work, runtime overhead, energy consumption, power-failure counts)
//! are computed without measurement noise.

pub mod clock;
pub mod energy;
pub mod mcu;
pub mod memory;
pub mod nvstore;
pub mod power;
pub mod stats;

pub use clock::Clock;
pub use easeio_trace::TraceSink;
pub use energy::{Capacitor, Cost, CostTable};
pub use mcu::{Mcu, McuSnapshot, PowerFailure, SpendBoundary};
pub use memory::{Addr, AllocRecord, AllocTag, MemSnapshot, Memory, Region, PAGE_BYTES};
pub use nvstore::{NvBuf, NvVar, RawVar, Scalar};
pub use power::{RfHarvestConfig, Supply, TimerResetConfig};
pub use stats::{
    current_rss_bytes, peak_rss_bytes, CauseMarks, CauseSample, EnergyCause, RunStats, WorkKind,
    CAUSE_COUNT, DMA_SITE_BASE, KERNEL_TASK,
};
