//! Power-supply models: continuous power, emulated timer resets, RF harvester.
//!
//! The paper evaluates under (a) continuous power for golden runs, (b) an
//! emulated energy environment where "power failure is simulated by random
//! soft resets triggered by an MCU timer with a uniformly distributed firing
//! period in the interval of [5 ms, 20 ms]" (§5.1), and (c) a real Powercast
//! RF transmitter charging a 1 mF capacitor at five distances (§5.5). We
//! implement all three, seeded and deterministic.

use crate::clock::Clock;
use crate::energy::Capacitor;
use crate::Cost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of pushing a unit of work through the supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spend {
    /// On-time actually consumed (equals the cost's time unless interrupted).
    pub on_us: u64,
    /// Energy actually consumed (pro-rata if interrupted mid-operation).
    pub energy_nj: u64,
    /// Whether a power failure interrupted the operation. When `true`, the
    /// clock has already been advanced across the dead/recharge period.
    pub interrupted: bool,
}

/// Configuration for the emulated timer-reset supply (§5.1).
#[derive(Debug, Clone)]
pub struct TimerResetConfig {
    /// Minimum on-period before a soft reset fires (µs).
    pub on_min_us: u64,
    /// Maximum on-period before a soft reset fires (µs).
    pub on_max_us: u64,
    /// Minimum dead time after a reset (µs).
    pub off_min_us: u64,
    /// Maximum dead time after a reset (µs).
    pub off_max_us: u64,
}

impl Default for TimerResetConfig {
    /// The paper's controlled-failure setup: firing period uniform in
    /// [5 ms, 20 ms]. The off-time models the capacitor recharge between
    /// soft resets; we use a 2–15 ms uniform window so that `Timely`
    /// constraints of ~10 ms are violated in roughly half of the failures,
    /// matching the re-execution reductions reported in Table 4.
    fn default() -> Self {
        Self {
            on_min_us: 5_000,
            on_max_us: 20_000,
            off_min_us: 2_000,
            off_max_us: 15_000,
        }
    }
}

/// Configuration for the RF energy-harvesting supply (§5.5).
#[derive(Debug, Clone)]
pub struct RfHarvestConfig {
    /// Transmitter power in milliwatts (the paper uses a 3 W Powercast).
    pub tx_power_mw: u64,
    /// Distance between transmitter and harvester, in hundredths of an inch
    /// (the paper sweeps 52–64 inches).
    pub distance_centi_inch: u64,
    /// Combined antenna gain / rectifier efficiency factor in parts per
    /// thousand applied on top of free-space path loss.
    pub efficiency_ppm: u64,
    /// Storage capacitor.
    pub capacitor: Capacitor,
    /// Fixed boot overhead added to every recharge period (µs).
    pub boot_us: u64,
    /// Amplitude of slow income fading in per-mille of the nominal income
    /// (RF multipath/motion makes harvested power fluctuate; 0 disables).
    pub fading_permille: u64,
    /// Period of the fading wave (µs).
    pub fading_period_us: u64,
    /// Phase offset of the fading wave (µs); perturbing this yields
    /// independent-looking trajectories from one deterministic model.
    pub fading_phase_us: u64,
}

impl RfHarvestConfig {
    /// Instantaneous harvested power at wall-clock time `t_us`: the Friis
    /// nominal income modulated by the fading wave.
    pub fn income_at_nw(&self, t_us: u64) -> u64 {
        let base = self.income_nw();
        if self.fading_permille == 0 || self.fading_period_us == 0 {
            return base;
        }
        // Symmetric triangle in −1000..=1000 per-mille.
        let pos = ((t_us + self.fading_phase_us) % self.fading_period_us) as i64;
        let half = (self.fading_period_us / 2) as i64;
        let up = pos.min(2 * half - pos);
        let tri = (up * 2000 / half.max(1)) - 1000;
        let delta = base as i64 * self.fading_permille as i64 * tri / 1_000_000;
        (base as i64 + delta).max(0) as u64
    }

    /// Harvested power in nanowatts via the Friis transmission equation at
    /// 915 MHz (λ ≈ 0.3277 m): `P_r = P_t · η · (λ / 4πd)²`.
    pub fn income_nw(&self) -> u64 {
        // d in meters scaled by 1e6 for integer math: 1 inch = 0.0254 m.
        let d_um = self.distance_centi_inch * 254; // centi-inch → µm
        if d_um == 0 {
            return u64::MAX / 2;
        }
        // (λ / 4πd)² with λ = 327,700 µm and 4π ≈ 12.566.
        // ratio_scaled = λ·1e6 / (4π·d_um), then square and unscale.
        let ratio = 327_700u128 * 1_000_000u128 / (12_566u128 * d_um as u128 / 1000);
        let gain = ratio * ratio / 1_000_000u128; // ×1e6 fixed point
                                                  // P_r[nW] = P_t[mW]·1e6 · gain/1e6 · η/1e6
        let p = self.tx_power_mw as u128 * gain * self.efficiency_ppm as u128 / 1_000_000u128;
        p.min(u64::MAX as u128) as u64
    }
}

/// A power supply driving the simulated MCU.
#[derive(Debug, Clone)]
pub enum Supply {
    /// Ideal continuous power; never fails. Used for golden runs.
    Continuous,
    /// Emulated soft resets on a seeded random timer (§5.1).
    Timer {
        /// Reset-period configuration.
        cfg: TimerResetConfig,
        rng: Box<StdRng>,
        /// On-time remaining until the next scheduled reset.
        remaining_us: u64,
    },
    /// Capacitor + RF harvesting income (§5.5).
    Harvester {
        /// Harvesting configuration (distance, capacitor, efficiency).
        cfg: RfHarvestConfig,
        /// Sub-nanojoule harvest accumulator (micro-nJ), so income earned
        /// during short operations is not lost to integer truncation.
        acc_unj: u64,
        /// Charge-cycle counter driving deterministic boot-threshold
        /// jitter, so consecutive cycles do not phase-lock on identical
        /// failure points (real comparators have hysteresis noise).
        cycle: u64,
    },
    /// Deterministic single-failure injection for crash-consistency sweeps:
    /// fails exactly once, at the `fail_at`-th energy-spend boundary
    /// (0-based, counting individual `spend` calls), then behaves like
    /// [`Supply::Continuous`] forever after. If `fail_at` is at or past the
    /// run's boundary count, the run is identical to a continuous one.
    Injected {
        /// Boundary index at which the single failure fires.
        fail_at: u64,
        /// Dead time inserted at the failure (µs).
        off_us: u64,
        /// Number of `spend` calls observed so far.
        seen: u64,
        /// Whether the single failure already fired.
        fired: bool,
    },
}

impl Supply {
    /// Creates the continuous supply.
    pub fn continuous() -> Self {
        Supply::Continuous
    }

    /// Creates a timer-reset supply with the given seed.
    pub fn timer(cfg: TimerResetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let first = rng.random_range(cfg.on_min_us..=cfg.on_max_us);
        Supply::Timer {
            cfg,
            rng: Box::new(rng),
            remaining_us: first,
        }
    }

    /// Creates an RF-harvester supply (capacitor starts fully charged).
    pub fn harvester(cfg: RfHarvestConfig) -> Self {
        Supply::Harvester {
            cfg,
            acc_unj: 0,
            cycle: 0,
        }
    }

    /// Creates a single-failure injection supply: power fails at exactly the
    /// `fail_at`-th spend boundary, stays off for `off_us`, then never fails
    /// again.
    pub fn injected(fail_at: u64, off_us: u64) -> Self {
        Supply::Injected {
            fail_at,
            off_us,
            seen: 0,
            fired: false,
        }
    }

    /// Pushes `cost` through the supply, advancing `clock` accordingly.
    ///
    /// On interruption the clock is advanced to the failure point, then
    /// across the dead period, and the supply is re-armed for the next
    /// on-period.
    pub fn spend(&mut self, clock: &mut Clock, cost: Cost) -> Spend {
        match self {
            Supply::Continuous => {
                clock.advance_on(cost.time_us);
                Spend {
                    on_us: cost.time_us,
                    energy_nj: cost.energy_nj,
                    interrupted: false,
                }
            }
            Supply::Timer {
                cfg,
                rng,
                remaining_us,
            } => {
                if cost.time_us < *remaining_us {
                    *remaining_us -= cost.time_us;
                    clock.advance_on(cost.time_us);
                    return Spend {
                        on_us: cost.time_us,
                        energy_nj: cost.energy_nj,
                        interrupted: false,
                    };
                }
                // The reset fires during (or exactly at the end of) this
                // operation: execute up to the reset point, then go dark.
                let ran = *remaining_us;
                clock.advance_on(ran);
                let energy = (cost.energy_nj * ran)
                    .checked_div(cost.time_us)
                    .unwrap_or(cost.energy_nj);
                let off = rng.random_range(cfg.off_min_us..=cfg.off_max_us);
                clock.advance_off(off);
                *remaining_us = rng.random_range(cfg.on_min_us..=cfg.on_max_us);
                Spend {
                    on_us: ran,
                    energy_nj: energy,
                    interrupted: true,
                }
            }
            Supply::Harvester {
                cfg,
                acc_unj,
                cycle,
            } => {
                let income = cfg.income_at_nw(clock.now_us()).max(1);
                // Harvest during the operation itself: income accrues per
                // microsecond of on-time (1 nW · 1 µs = 1e-6 nJ).
                let gained = *acc_unj + income.saturating_mul(cost.time_us);
                cfg.capacitor.charge(gained / 1_000_000);
                *acc_unj = gained % 1_000_000;
                if cfg.capacitor.drain(cost.energy_nj) {
                    clock.advance_on(cost.time_us);
                    return Spend {
                        on_us: cost.time_us,
                        energy_nj: cost.energy_nj,
                        interrupted: false,
                    };
                }
                // Brown-out mid-operation: run for the fraction of the
                // operation the remaining charge covered, then recharge.
                let had = cfg.capacitor.remaining_nj(); // zero after drain
                debug_assert_eq!(had, 0);
                let ran = if cost.energy_nj == 0 {
                    0
                } else {
                    cost.time_us / 2 // charge ran out partway through
                };
                clock.advance_on(ran);
                let off = cfg.capacitor.recharge_full(income) + cfg.boot_us;
                clock.advance_off(off);
                // Boot-threshold jitter: the comparator trips 0–12 % below
                // the nominal full charge, deterministically hashed from
                // the cycle index (keeps runs reproducible while breaking
                // charge-cycle phase lock).
                *cycle += 1;
                let h = {
                    let mut x = cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x ^= x >> 29;
                    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x ^ (x >> 32)
                };
                cfg.capacitor
                    .drain(cfg.capacitor.usable_nj() * (h % 13) / 100);
                Spend {
                    on_us: ran,
                    energy_nj: cost.energy_nj.min(cfg.capacitor.usable_nj()),
                    interrupted: true,
                }
            }
            Supply::Injected {
                fail_at,
                off_us,
                seen,
                fired,
            } => {
                let boundary = *seen;
                *seen += 1;
                if !*fired && boundary == *fail_at {
                    // The failure fires *at* the boundary: the operation
                    // never runs, no time or energy is consumed on it.
                    *fired = true;
                    clock.advance_off(*off_us);
                    return Spend {
                        on_us: 0,
                        energy_nj: 0,
                        interrupted: true,
                    };
                }
                clock.advance_on(cost.time_us);
                Spend {
                    on_us: cost.time_us,
                    energy_nj: cost.energy_nj,
                    interrupted: false,
                }
            }
        }
    }

    /// Whether this supply can ever interrupt execution.
    pub fn can_fail(&self) -> bool {
        !matches!(self, Supply::Continuous)
    }

    /// Stable lowercase name of the supply model, used in trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Supply::Continuous => "continuous",
            Supply::Timer { .. } => "timer",
            Supply::Harvester { .. } => "harvester",
            Supply::Injected { .. } => "injected",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_never_interrupts() {
        let mut s = Supply::continuous();
        let mut c = Clock::new();
        for _ in 0..1000 {
            let r = s.spend(&mut c, Cost::new(100, 100));
            assert!(!r.interrupted);
        }
        assert_eq!(c.on_us(), 100_000);
        assert_eq!(c.off_us(), 0);
    }

    #[test]
    fn timer_interrupts_within_configured_window() {
        let cfg = TimerResetConfig::default();
        let mut s = Supply::timer(cfg.clone(), 42);
        let mut c = Clock::new();
        let mut last_boot = 0u64;
        let mut failures = 0;
        for _ in 0..100_000 {
            let r = s.spend(&mut c, Cost::new(10, 10));
            if r.interrupted {
                failures += 1;
                let on_period = c.now_us() - c.off_us() - last_boot;
                // Each on-period must be within [on_min, on_max + one op].
                assert!(
                    on_period >= cfg.on_min_us && on_period <= cfg.on_max_us,
                    "on-period {on_period} outside [{},{}]",
                    cfg.on_min_us,
                    cfg.on_max_us
                );
                last_boot = c.now_us() - c.off_us();
            }
        }
        assert!(failures > 10, "expected many failures, saw {failures}");
    }

    #[test]
    fn timer_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = Supply::timer(TimerResetConfig::default(), seed);
            let mut c = Clock::new();
            let mut pattern = Vec::new();
            for _ in 0..10_000 {
                pattern.push(s.spend(&mut c, Cost::new(7, 3)).interrupted);
            }
            (pattern, c.now_us())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn timer_partial_energy_prorated() {
        // Arrange a long op that is guaranteed to be interrupted.
        let cfg = TimerResetConfig {
            on_min_us: 100,
            on_max_us: 100,
            off_min_us: 50,
            off_max_us: 50,
        };
        let mut s = Supply::timer(cfg, 1);
        let mut c = Clock::new();
        let r = s.spend(&mut c, Cost::new(1000, 1000));
        assert!(r.interrupted);
        assert_eq!(r.on_us, 100);
        assert_eq!(r.energy_nj, 100);
        assert_eq!(c.off_us(), 50);
    }

    #[test]
    fn harvester_runs_until_capacitor_drains() {
        let cfg = RfHarvestConfig {
            tx_power_mw: 3000,
            distance_centi_inch: 6000,
            efficiency_ppm: 1_000_000,
            capacitor: Capacitor::with_usable_energy(1000),
            boot_us: 0,
            fading_permille: 0,
            fading_period_us: 0,
            fading_phase_us: 0,
        };
        let mut s = Supply::harvester(cfg);
        let mut c = Clock::new();
        let mut failures = 0;
        for _ in 0..30 {
            if s.spend(&mut c, Cost::new(10, 100)).interrupted {
                failures += 1;
            }
        }
        // 1000 nJ per charge, 100 nJ per op → failure every ~10 ops.
        assert!(failures >= 2, "expected multiple brown-outs");
        assert!(c.off_us() > 0, "recharge time must appear as off-time");
    }

    #[test]
    fn injected_fails_exactly_once_at_the_requested_boundary() {
        let mut s = Supply::injected(3, 500);
        let mut c = Clock::new();
        let mut fired_at = None;
        for i in 0..10u64 {
            let r = s.spend(&mut c, Cost::new(10, 10));
            if r.interrupted {
                assert!(fired_at.is_none(), "second failure at boundary {i}");
                assert_eq!(r.on_us, 0, "injected failure consumes no on-time");
                assert_eq!(r.energy_nj, 0);
                fired_at = Some(i);
            }
        }
        assert_eq!(fired_at, Some(3));
        assert_eq!(c.off_us(), 500);
        // 9 of the 10 spends ran normally.
        assert_eq!(c.on_us(), 90);
    }

    #[test]
    fn injected_past_the_end_never_fires() {
        let mut s = Supply::injected(100, 500);
        let mut c = Clock::new();
        for _ in 0..50 {
            assert!(!s.spend(&mut c, Cost::new(10, 10)).interrupted);
        }
        assert_eq!(c.off_us(), 0);
        assert!(s.can_fail());
        assert_eq!(s.kind_name(), "injected");
    }

    #[test]
    fn friis_income_decreases_with_distance() {
        let mk = |inch: u64| RfHarvestConfig {
            tx_power_mw: 3000,
            distance_centi_inch: inch * 100,
            efficiency_ppm: 1_000_000,
            capacitor: Capacitor::with_usable_energy(1),
            boot_us: 0,
            fading_permille: 0,
            fading_period_us: 0,
            fading_phase_us: 0,
        };
        let near = mk(52).income_nw();
        let far = mk(64).income_nw();
        assert!(
            near > far,
            "income must fall with distance: {near} vs {far}"
        );
        // Inverse-square: doubling distance quarters the income (±15 %).
        let d1 = mk(30).income_nw();
        let d2 = mk(60).income_nw();
        let ratio = d1 as f64 / d2 as f64;
        assert!((3.4..=4.6).contains(&ratio), "ratio {ratio} not ~4");
    }
}

#[cfg(test)]
mod fading_tests {
    use super::*;

    fn cfg(fading: u64) -> RfHarvestConfig {
        RfHarvestConfig {
            tx_power_mw: 3_000,
            distance_centi_inch: 6_000,
            efficiency_ppm: 1_000_000,
            capacitor: Capacitor::with_usable_energy(5_000),
            boot_us: 0,
            fading_permille: fading,
            fading_period_us: 10_000,
            fading_phase_us: 0,
        }
    }

    #[test]
    fn fading_modulates_income_within_the_amplitude() {
        let c = cfg(200);
        let base = c.income_nw();
        let mut lo = u64::MAX;
        let mut hi = 0;
        for t in (0..20_000).step_by(100) {
            let v = c.income_at_nw(t);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // ±20 % around the nominal income.
        assert!(
            lo >= base * 79 / 100 && lo <= base * 81 / 100,
            "lo {lo} vs {base}"
        );
        assert!(
            hi >= base * 119 / 100 && hi <= base * 121 / 100,
            "hi {hi} vs {base}"
        );
    }

    #[test]
    fn zero_fading_is_constant() {
        let c = cfg(0);
        let base = c.income_nw();
        for t in (0..30_000).step_by(777) {
            assert_eq!(c.income_at_nw(t), base);
        }
    }

    #[test]
    fn phase_shifts_the_wave() {
        let mut a = cfg(200);
        let mut b = cfg(200);
        b.fading_phase_us = 2_500;
        a.fading_phase_us = 0;
        assert_eq!(a.income_at_nw(2_500), b.income_at_nw(0));
        assert_ne!(a.income_at_nw(0), b.income_at_nw(0));
    }

    #[test]
    fn boot_jitter_desynchronizes_charge_cycles() {
        // Consecutive brown-out cycles must not be byte-identical in length.
        let mut s = Supply::harvester(cfg(0));
        let mut clock = Clock::new();
        let mut deltas = Vec::new();
        let mut last = 0;
        while deltas.len() < 6 {
            let r = s.spend(&mut clock, Cost::new(100, 700));
            if r.interrupted {
                deltas.push(clock.on_us() - last);
                last = clock.on_us();
            }
        }
        let first = deltas[1];
        assert!(
            deltas[1..].iter().any(|d| *d != first),
            "phase-locked cycles: {deltas:?}"
        );
    }
}
