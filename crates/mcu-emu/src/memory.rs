//! Simulated memory map: FRAM, SRAM, and LEA-RAM.
//!
//! The MSP430FR5994 has 256 KB of non-volatile FRAM, 4 KB of volatile SRAM,
//! and a 4 KB volatile RAM dedicated to the Low Energy Accelerator (LEA).
//! The distinction that drives the entire paper is volatility: a power
//! failure clears SRAM and LEA-RAM but leaves FRAM intact, so any runtime
//! that wants forward progress must keep state in FRAM — and any peripheral
//! (DMA) that writes FRAM directly can corrupt that state if its operation
//! is blindly re-executed.

/// Memory regions of the simulated MCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// 256 KB non-volatile ferroelectric RAM. Survives power failures.
    Fram,
    /// 4 KB volatile SRAM. Cleared on every reboot.
    Sram,
    /// 4 KB volatile RAM private to the LEA vector accelerator.
    LeaRam,
}

impl Region {
    /// Whether the region's contents survive a power failure.
    pub fn is_nonvolatile(self) -> bool {
        matches!(self, Region::Fram)
    }

    /// Size of the region in bytes.
    pub fn size(self) -> usize {
        match self {
            Region::Fram => 256 * 1024,
            Region::Sram => 4 * 1024,
            Region::LeaRam => 4 * 1024,
        }
    }
}

/// An address in the simulated memory map: a region plus a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// Region the address points into.
    pub region: Region,
    /// Byte offset within the region.
    pub offset: u32,
}

impl Addr {
    /// Creates an address.
    pub fn new(region: Region, offset: u32) -> Self {
        Self { region, offset }
    }

    /// Returns the address advanced by `bytes`.
    #[allow(clippy::should_implement_trait)] // offset helper, not arithmetic
    pub fn add(self, bytes: u32) -> Self {
        Self {
            region: self.region,
            offset: self.offset + bytes,
        }
    }

    /// Whether the address is in non-volatile memory.
    pub fn is_nonvolatile(self) -> bool {
        self.region.is_nonvolatile()
    }
}

/// Who an allocation belongs to, for the memory-footprint report (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocTag {
    /// Application data (buffers, non-volatile variables).
    App,
    /// Runtime metadata (lock flags, timestamps, private copies, snapshots).
    Runtime,
    /// DMA privatization buffers (reported separately in the paper).
    DmaPrivBuf,
}

/// One recorded allocation, for footprint accounting.
#[derive(Debug, Clone, Copy)]
pub struct AllocRecord {
    /// Region allocated from.
    pub region: Region,
    /// Base address of the allocation.
    pub addr: Addr,
    /// Size in bytes.
    pub bytes: u32,
    /// Owner tag.
    pub tag: AllocTag,
}

/// Granularity of copy-on-write dirty tracking: one bit per 4 KB page.
/// FRAM (256 KB) is 64 pages — exactly one `u64` of dirty bits per region.
pub const PAGE_BYTES: u32 = 4 * 1024;

/// Globally unique snapshot identities, so [`Memory::restore`] can tell
/// whether its dirty map is relative to the snapshot being restored (cheap
/// page-wise copy) or to some other baseline (full copy required).
static SNAPSHOT_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// An immutable byte-level image of the memory map, shared by every run
/// restored from the same snapshot. Plain owned data: `Send + Sync`, so a
/// parallel sweep can hand one image to every worker behind an `Arc`
/// instead of deep-copying 264 KB per boundary.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    id: u64,
    fram: Vec<u8>,
    sram: Vec<u8>,
    lea_ram: Vec<u8>,
    next: [u32; 3],
    allocs: Vec<AllocRecord>,
}

/// The simulated memory: three byte arrays plus bump allocators.
///
/// Writes additionally mark 4 KB pages dirty relative to the last snapshot
/// taken from this instance, which is what makes snapshot restore
/// copy-on-write: restoring copies back only the pages written since.
#[derive(Debug, Clone)]
pub struct Memory {
    fram: Vec<u8>,
    sram: Vec<u8>,
    lea_ram: Vec<u8>,
    next: [u32; 3],
    allocs: Vec<AllocRecord>,
    /// Identity of the snapshot the dirty map is relative to, if any.
    base: Option<u64>,
    /// One dirty bit per [`PAGE_BYTES`] page, per region.
    dirty: [u64; 3],
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates zeroed memory.
    pub fn new() -> Self {
        Self {
            fram: vec![0; Region::Fram.size()],
            sram: vec![0; Region::Sram.size()],
            lea_ram: vec![0; Region::LeaRam.size()],
            next: [0; 3],
            allocs: Vec::new(),
            base: None,
            dirty: [0; 3],
        }
    }

    fn idx(region: Region) -> usize {
        match region {
            Region::Fram => 0,
            Region::Sram => 1,
            Region::LeaRam => 2,
        }
    }

    fn slab(&self, region: Region) -> &[u8] {
        match region {
            Region::Fram => &self.fram,
            Region::Sram => &self.sram,
            Region::LeaRam => &self.lea_ram,
        }
    }

    fn slab_mut(&mut self, region: Region) -> &mut [u8] {
        match region {
            Region::Fram => &mut self.fram,
            Region::Sram => &mut self.sram,
            Region::LeaRam => &mut self.lea_ram,
        }
    }

    /// Marks the pages covering `[offset, offset + len)` dirty.
    ///
    /// The dirty map is one `u64` per region — 64 pages covers exactly the
    /// largest region (256 KB FRAM). A span past the region end would shift
    /// past bit 63: in release builds `1u64 << page` wraps silently and
    /// dirties the *wrong* page, so a later copy-on-write [`Memory::restore`]
    /// could hand back stale bytes for the page that was actually written.
    /// Debug builds assert on the bad span; release builds conservatively
    /// mark every page dirty, which degrades that restore to a full copy but
    /// can never restore stale data.
    fn mark_dirty(&mut self, region: Region, offset: u32, len: u32) {
        if len == 0 {
            return;
        }
        debug_assert!(
            offset as u64 + len as u64 <= region.size() as u64,
            "mark_dirty out of range in {region:?}: offset {offset} + len {len} > {}",
            region.size()
        );
        let first = (offset / PAGE_BYTES) as u64;
        let last = (offset as u64 + len as u64 - 1) / PAGE_BYTES as u64;
        let i = Self::idx(region);
        if last >= u64::BITS as u64 {
            self.dirty[i] = !0;
            return;
        }
        for page in first..=last {
            self.dirty[i] |= 1u64 << page;
        }
    }

    /// Pages of `region` written since the last snapshot (one bit per
    /// [`PAGE_BYTES`] page). Exposed for the copy-on-write property tests.
    pub fn dirty_pages(&self, region: Region) -> u64 {
        self.dirty[Self::idx(region)]
    }

    /// Bump-allocates `bytes` bytes in `region`, 2-byte aligned (the MSP430
    /// word size), recording the allocation under `tag` for the footprint
    /// report. Panics if the region is exhausted — the simulated part has
    /// hard limits, exactly like the real one.
    pub fn alloc(&mut self, region: Region, bytes: u32, tag: AllocTag) -> Addr {
        let i = Self::idx(region);
        let aligned = (self.next[i] + 1) & !1;
        let end = aligned
            .checked_add(bytes)
            .expect("allocation size overflow");
        assert!(
            end as usize <= region.size(),
            "out of memory in {region:?}: requested {bytes} B at offset {aligned}"
        );
        self.next[i] = end;
        let addr = Addr::new(region, aligned);
        self.allocs.push(AllocRecord {
            region,
            addr,
            bytes,
            tag,
        });
        addr
    }

    /// Bytes currently allocated in `region`.
    pub fn allocated(&self, region: Region) -> u32 {
        self.next[Self::idx(region)]
    }

    /// Bytes allocated in `region` under `tag`.
    pub fn allocated_tagged(&self, region: Region, tag: AllocTag) -> u32 {
        self.allocs
            .iter()
            .filter(|a| a.region == region && a.tag == tag)
            .map(|a| a.bytes)
            .sum()
    }

    /// All allocation records (for footprint reporting).
    pub fn allocations(&self) -> &[AllocRecord] {
        &self.allocs
    }

    /// Byte ranges allocated in `region` under `tag`, as `(addr, len)`
    /// pairs. A crash sweep uses this to compare the application-visible
    /// non-volatile state of two runs without touching runtime metadata.
    pub fn tagged_ranges(&self, region: Region, tag: AllocTag) -> Vec<(Addr, u32)> {
        self.allocs
            .iter()
            .filter(|a| a.region == region && a.tag == tag)
            .map(|a| (a.addr, a.bytes))
            .collect()
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: u32) -> &[u8] {
        let s = self.slab(addr.region);
        &s[addr.offset as usize..(addr.offset + len) as usize]
    }

    /// Writes `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        self.mark_dirty(addr.region, addr.offset, data.len() as u32);
        let off = addr.offset as usize;
        let s = self.slab_mut(addr.region);
        s[off..off + data.len()].copy_from_slice(data);
    }

    /// Copies `len` bytes from `src` to `dst`, possibly across regions.
    ///
    /// This is the raw memory effect of a DMA transfer: it does *not* pass
    /// through any runtime privatization layer.
    pub fn copy(&mut self, src: Addr, dst: Addr, len: u32) {
        let data: Vec<u8> = self.read_bytes(src, len).to_vec();
        self.write_bytes(dst, &data);
    }

    /// Reads a little-endian scalar of `N` bytes.
    pub fn read_le<const N: usize>(&self, addr: Addr) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(self.read_bytes(addr, N as u32));
        out
    }

    /// Clears all volatile regions; called on reboot. FRAM persists.
    pub fn power_failure(&mut self) {
        self.mark_dirty(Region::Sram, 0, Region::Sram.size() as u32);
        self.mark_dirty(Region::LeaRam, 0, Region::LeaRam.size() as u32);
        self.sram.fill(0);
        self.lea_ram.fill(0);
    }

    /// Captures a full image of the memory map and re-bases the dirty map on
    /// it, so a later [`Memory::restore`] of this snapshot copies back only
    /// the pages written in between.
    pub fn snapshot(&mut self) -> MemSnapshot {
        let id = SNAPSHOT_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.base = Some(id);
        self.dirty = [0; 3];
        MemSnapshot {
            id,
            fram: self.fram.clone(),
            sram: self.sram.clone(),
            lea_ram: self.lea_ram.clone(),
            next: self.next,
            allocs: self.allocs.clone(),
        }
    }

    /// Restores a snapshot. When the dirty map is relative to `snap` (the
    /// common sweep pattern: snapshot once, restore per boundary) only the
    /// dirty pages are copied — the cost of a restore is proportional to the
    /// bytes the run actually wrote, not to the 264 KB memory map. Restoring
    /// a snapshot this instance is not based on falls back to a full copy
    /// and re-bases on it.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        if self.base == Some(snap.id) {
            for (region, src) in [
                (Region::Fram, &snap.fram),
                (Region::Sram, &snap.sram),
                (Region::LeaRam, &snap.lea_ram),
            ] {
                let i = Self::idx(region);
                let mut bits = self.dirty[i];
                while bits != 0 {
                    let page = bits.trailing_zeros();
                    bits &= bits - 1;
                    let lo = (page * PAGE_BYTES) as usize;
                    let hi = (lo + PAGE_BYTES as usize).min(region.size());
                    self.slab_mut(region)[lo..hi].copy_from_slice(&src[lo..hi]);
                }
            }
        } else {
            self.fram.copy_from_slice(&snap.fram);
            self.sram.copy_from_slice(&snap.sram);
            self.lea_ram.copy_from_slice(&snap.lea_ram);
            self.base = Some(snap.id);
        }
        self.dirty = [0; 3];
        self.next = snap.next;
        self.allocs.clone_from(&snap.allocs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatility_matches_hardware() {
        assert!(Region::Fram.is_nonvolatile());
        assert!(!Region::Sram.is_nonvolatile());
        assert!(!Region::LeaRam.is_nonvolatile());
    }

    #[test]
    fn alloc_is_word_aligned_and_tracked() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 3, AllocTag::App);
        let b = m.alloc(Region::Fram, 4, AllocTag::Runtime);
        assert_eq!(a.offset % 2, 0);
        assert_eq!(b.offset % 2, 0);
        assert!(b.offset >= a.offset + 3);
        assert_eq!(m.allocated_tagged(Region::Fram, AllocTag::App), 3);
        assert_eq!(m.allocated_tagged(Region::Fram, AllocTag::Runtime), 4);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn alloc_panics_when_region_exhausted() {
        let mut m = Memory::new();
        m.alloc(Region::Sram, 4 * 1024 + 2, AllocTag::App);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 8, AllocTag::App);
        m.write_bytes(a, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(a, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn copy_across_regions() {
        let mut m = Memory::new();
        let src = m.alloc(Region::Fram, 4, AllocTag::App);
        let dst = m.alloc(Region::Sram, 4, AllocTag::App);
        m.write_bytes(src, &[9, 8, 7, 6]);
        m.copy(src, dst, 4);
        assert_eq!(m.read_bytes(dst, 4), &[9, 8, 7, 6]);
    }

    #[test]
    fn power_failure_clears_only_volatile_memory() {
        let mut m = Memory::new();
        let f = m.alloc(Region::Fram, 2, AllocTag::App);
        let s = m.alloc(Region::Sram, 2, AllocTag::App);
        let l = m.alloc(Region::LeaRam, 2, AllocTag::App);
        m.write_bytes(f, &[0xAA, 0xBB]);
        m.write_bytes(s, &[0xCC, 0xDD]);
        m.write_bytes(l, &[0xEE, 0xFF]);
        m.power_failure();
        assert_eq!(m.read_bytes(f, 2), &[0xAA, 0xBB]);
        assert_eq!(m.read_bytes(s, 2), &[0, 0]);
        assert_eq!(m.read_bytes(l, 2), &[0, 0]);
    }

    #[test]
    fn restore_after_snapshot_copies_only_dirty_pages_back() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 8, AllocTag::App);
        m.write_bytes(a, &[1; 8]);
        let snap = m.snapshot();
        assert_eq!(m.dirty_pages(Region::Fram), 0, "snapshot re-bases tracking");
        // Write into two far-apart FRAM pages plus SRAM.
        let far = Addr::new(Region::Fram, 40 * PAGE_BYTES + 12);
        m.write_bytes(a, &[9; 8]);
        m.write_bytes(far, &[7; 3]);
        let s = m.alloc(Region::Sram, 2, AllocTag::App);
        m.write_bytes(s, &[5, 5]);
        assert_eq!(m.dirty_pages(Region::Fram), 1 | (1 << 40));
        assert_eq!(m.dirty_pages(Region::Sram), 1);
        m.restore(&snap);
        assert_eq!(m.read_bytes(a, 8), &[1; 8]);
        assert_eq!(m.read_bytes(far, 3), &[0; 3]);
        assert_eq!(m.dirty_pages(Region::Fram), 0);
        assert_eq!(m.allocated(Region::Sram), 0, "allocator cursor restored");
    }

    #[test]
    fn restoring_a_foreign_snapshot_falls_back_to_full_copy() {
        // Snapshot taken on one Memory, restored into another instance that
        // never saw it — the pattern of a parallel sweep worker adopting the
        // main thread's shared image.
        let mut a = Memory::new();
        let va = a.alloc(Region::Fram, 4, AllocTag::App);
        a.write_bytes(va, &[3, 1, 4, 1]);
        let snap = a.snapshot();

        let mut b = Memory::new();
        let vb = b.alloc(Region::Fram, 4, AllocTag::App);
        b.write_bytes(vb, &[9, 9, 9, 9]);
        b.restore(&snap);
        assert_eq!(b.read_bytes(va, 4), &[3, 1, 4, 1]);
        // And from then on the worker's restores are page-wise.
        b.write_bytes(va, &[8; 4]);
        b.restore(&snap);
        assert_eq!(b.read_bytes(va, 4), &[3, 1, 4, 1]);
    }

    #[test]
    fn write_spanning_a_page_boundary_dirties_both_pages() {
        let mut m = Memory::new();
        m.snapshot();
        let edge = Addr::new(Region::Fram, PAGE_BYTES - 2);
        m.write_bytes(edge, &[1, 2, 3, 4]);
        assert_eq!(m.dirty_pages(Region::Fram), 0b11);
    }

    /// Regression: the last FRAM page is bit 63 — the edge where an
    /// off-by-one in the span arithmetic would wrap the shift in release
    /// builds and dirty page 0 instead, breaking copy-on-write restore.
    #[test]
    fn dirtying_the_final_page_sets_the_top_bit_without_wrapping() {
        let mut m = Memory::new();
        let snap = m.snapshot();
        let edge = Addr::new(Region::Fram, Region::Fram.size() as u32 - 2);
        m.write_bytes(edge, &[0xA5, 0x5A]);
        assert_eq!(m.dirty_pages(Region::Fram), 1 << 63);
        m.restore(&snap);
        assert_eq!(m.read_bytes(edge, 2), &[0, 0], "edge write must roll back");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "mark_dirty out of range")]
    fn out_of_range_dirty_span_is_caught_in_debug() {
        let mut m = Memory::new();
        m.mark_dirty(Region::Fram, Region::Fram.size() as u32 - 2, 4);
    }

    #[test]
    fn power_failure_dirties_volatile_regions() {
        let mut m = Memory::new();
        let snap = m.snapshot();
        let s = m.alloc(Region::Sram, 2, AllocTag::App);
        m.write_bytes(s, &[1, 2]);
        m.power_failure();
        assert_eq!(m.dirty_pages(Region::Sram), 1);
        assert_eq!(m.dirty_pages(Region::LeaRam), 1);
        m.restore(&snap);
        assert_eq!(m.read_bytes(Addr::new(Region::Sram, 0), 2), &[0, 0]);
    }

    #[test]
    fn overlapping_copy_within_region_uses_snapshot() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 8, AllocTag::App);
        m.write_bytes(a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Copy the first four bytes over bytes 2..6; a memmove-like result.
        m.copy(a, a.add(2), 4);
        assert_eq!(m.read_bytes(a, 8), &[1, 2, 1, 2, 3, 4, 7, 8]);
    }
}
