//! Simulated memory map: FRAM, SRAM, and LEA-RAM.
//!
//! The MSP430FR5994 has 256 KB of non-volatile FRAM, 4 KB of volatile SRAM,
//! and a 4 KB volatile RAM dedicated to the Low Energy Accelerator (LEA).
//! The distinction that drives the entire paper is volatility: a power
//! failure clears SRAM and LEA-RAM but leaves FRAM intact, so any runtime
//! that wants forward progress must keep state in FRAM — and any peripheral
//! (DMA) that writes FRAM directly can corrupt that state if its operation
//! is blindly re-executed.

/// Memory regions of the simulated MCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// 256 KB non-volatile ferroelectric RAM. Survives power failures.
    Fram,
    /// 4 KB volatile SRAM. Cleared on every reboot.
    Sram,
    /// 4 KB volatile RAM private to the LEA vector accelerator.
    LeaRam,
}

impl Region {
    /// Whether the region's contents survive a power failure.
    pub fn is_nonvolatile(self) -> bool {
        matches!(self, Region::Fram)
    }

    /// Size of the region in bytes.
    pub fn size(self) -> usize {
        match self {
            Region::Fram => 256 * 1024,
            Region::Sram => 4 * 1024,
            Region::LeaRam => 4 * 1024,
        }
    }
}

/// An address in the simulated memory map: a region plus a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// Region the address points into.
    pub region: Region,
    /// Byte offset within the region.
    pub offset: u32,
}

impl Addr {
    /// Creates an address.
    pub fn new(region: Region, offset: u32) -> Self {
        Self { region, offset }
    }

    /// Returns the address advanced by `bytes`.
    #[allow(clippy::should_implement_trait)] // offset helper, not arithmetic
    pub fn add(self, bytes: u32) -> Self {
        Self {
            region: self.region,
            offset: self.offset + bytes,
        }
    }

    /// Whether the address is in non-volatile memory.
    pub fn is_nonvolatile(self) -> bool {
        self.region.is_nonvolatile()
    }
}

/// Who an allocation belongs to, for the memory-footprint report (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocTag {
    /// Application data (buffers, non-volatile variables).
    App,
    /// Runtime metadata (lock flags, timestamps, private copies, snapshots).
    Runtime,
    /// DMA privatization buffers (reported separately in the paper).
    DmaPrivBuf,
}

/// One recorded allocation, for footprint accounting.
#[derive(Debug, Clone, Copy)]
pub struct AllocRecord {
    /// Region allocated from.
    pub region: Region,
    /// Base address of the allocation.
    pub addr: Addr,
    /// Size in bytes.
    pub bytes: u32,
    /// Owner tag.
    pub tag: AllocTag,
}

/// The simulated memory: three byte arrays plus bump allocators.
#[derive(Debug, Clone)]
pub struct Memory {
    fram: Vec<u8>,
    sram: Vec<u8>,
    lea_ram: Vec<u8>,
    next: [u32; 3],
    allocs: Vec<AllocRecord>,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates zeroed memory.
    pub fn new() -> Self {
        Self {
            fram: vec![0; Region::Fram.size()],
            sram: vec![0; Region::Sram.size()],
            lea_ram: vec![0; Region::LeaRam.size()],
            next: [0; 3],
            allocs: Vec::new(),
        }
    }

    fn idx(region: Region) -> usize {
        match region {
            Region::Fram => 0,
            Region::Sram => 1,
            Region::LeaRam => 2,
        }
    }

    fn slab(&self, region: Region) -> &[u8] {
        match region {
            Region::Fram => &self.fram,
            Region::Sram => &self.sram,
            Region::LeaRam => &self.lea_ram,
        }
    }

    fn slab_mut(&mut self, region: Region) -> &mut [u8] {
        match region {
            Region::Fram => &mut self.fram,
            Region::Sram => &mut self.sram,
            Region::LeaRam => &mut self.lea_ram,
        }
    }

    /// Bump-allocates `bytes` bytes in `region`, 2-byte aligned (the MSP430
    /// word size), recording the allocation under `tag` for the footprint
    /// report. Panics if the region is exhausted — the simulated part has
    /// hard limits, exactly like the real one.
    pub fn alloc(&mut self, region: Region, bytes: u32, tag: AllocTag) -> Addr {
        let i = Self::idx(region);
        let aligned = (self.next[i] + 1) & !1;
        let end = aligned
            .checked_add(bytes)
            .expect("allocation size overflow");
        assert!(
            end as usize <= region.size(),
            "out of memory in {region:?}: requested {bytes} B at offset {aligned}"
        );
        self.next[i] = end;
        let addr = Addr::new(region, aligned);
        self.allocs.push(AllocRecord {
            region,
            addr,
            bytes,
            tag,
        });
        addr
    }

    /// Bytes currently allocated in `region`.
    pub fn allocated(&self, region: Region) -> u32 {
        self.next[Self::idx(region)]
    }

    /// Bytes allocated in `region` under `tag`.
    pub fn allocated_tagged(&self, region: Region, tag: AllocTag) -> u32 {
        self.allocs
            .iter()
            .filter(|a| a.region == region && a.tag == tag)
            .map(|a| a.bytes)
            .sum()
    }

    /// All allocation records (for footprint reporting).
    pub fn allocations(&self) -> &[AllocRecord] {
        &self.allocs
    }

    /// Byte ranges allocated in `region` under `tag`, as `(addr, len)`
    /// pairs. A crash sweep uses this to compare the application-visible
    /// non-volatile state of two runs without touching runtime metadata.
    pub fn tagged_ranges(&self, region: Region, tag: AllocTag) -> Vec<(Addr, u32)> {
        self.allocs
            .iter()
            .filter(|a| a.region == region && a.tag == tag)
            .map(|a| (a.addr, a.bytes))
            .collect()
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: u32) -> &[u8] {
        let s = self.slab(addr.region);
        &s[addr.offset as usize..(addr.offset + len) as usize]
    }

    /// Writes `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        let off = addr.offset as usize;
        let s = self.slab_mut(addr.region);
        s[off..off + data.len()].copy_from_slice(data);
    }

    /// Copies `len` bytes from `src` to `dst`, possibly across regions.
    ///
    /// This is the raw memory effect of a DMA transfer: it does *not* pass
    /// through any runtime privatization layer.
    pub fn copy(&mut self, src: Addr, dst: Addr, len: u32) {
        let data: Vec<u8> = self.read_bytes(src, len).to_vec();
        self.write_bytes(dst, &data);
    }

    /// Reads a little-endian scalar of `N` bytes.
    pub fn read_le<const N: usize>(&self, addr: Addr) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(self.read_bytes(addr, N as u32));
        out
    }

    /// Clears all volatile regions; called on reboot. FRAM persists.
    pub fn power_failure(&mut self) {
        self.sram.fill(0);
        self.lea_ram.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatility_matches_hardware() {
        assert!(Region::Fram.is_nonvolatile());
        assert!(!Region::Sram.is_nonvolatile());
        assert!(!Region::LeaRam.is_nonvolatile());
    }

    #[test]
    fn alloc_is_word_aligned_and_tracked() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 3, AllocTag::App);
        let b = m.alloc(Region::Fram, 4, AllocTag::Runtime);
        assert_eq!(a.offset % 2, 0);
        assert_eq!(b.offset % 2, 0);
        assert!(b.offset >= a.offset + 3);
        assert_eq!(m.allocated_tagged(Region::Fram, AllocTag::App), 3);
        assert_eq!(m.allocated_tagged(Region::Fram, AllocTag::Runtime), 4);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn alloc_panics_when_region_exhausted() {
        let mut m = Memory::new();
        m.alloc(Region::Sram, 4 * 1024 + 2, AllocTag::App);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 8, AllocTag::App);
        m.write_bytes(a, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(a, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn copy_across_regions() {
        let mut m = Memory::new();
        let src = m.alloc(Region::Fram, 4, AllocTag::App);
        let dst = m.alloc(Region::Sram, 4, AllocTag::App);
        m.write_bytes(src, &[9, 8, 7, 6]);
        m.copy(src, dst, 4);
        assert_eq!(m.read_bytes(dst, 4), &[9, 8, 7, 6]);
    }

    #[test]
    fn power_failure_clears_only_volatile_memory() {
        let mut m = Memory::new();
        let f = m.alloc(Region::Fram, 2, AllocTag::App);
        let s = m.alloc(Region::Sram, 2, AllocTag::App);
        let l = m.alloc(Region::LeaRam, 2, AllocTag::App);
        m.write_bytes(f, &[0xAA, 0xBB]);
        m.write_bytes(s, &[0xCC, 0xDD]);
        m.write_bytes(l, &[0xEE, 0xFF]);
        m.power_failure();
        assert_eq!(m.read_bytes(f, 2), &[0xAA, 0xBB]);
        assert_eq!(m.read_bytes(s, 2), &[0, 0]);
        assert_eq!(m.read_bytes(l, 2), &[0, 0]);
    }

    #[test]
    fn overlapping_copy_within_region_uses_snapshot() {
        let mut m = Memory::new();
        let a = m.alloc(Region::Fram, 8, AllocTag::App);
        m.write_bytes(a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Copy the first four bytes over bytes 2..6; a memmove-like result.
        m.copy(a, a.add(2), 4);
        assert_eq!(m.read_bytes(a, 8), &[1, 2, 1, 2, 3, 4, 7, 8]);
    }
}
