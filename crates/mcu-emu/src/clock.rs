//! Virtual time and the persistent timekeeper.
//!
//! The paper's target platform uses an external persistent timing circuit
//! (de Winkel et al., ASPLOS '20) so that `Timely` re-execution semantics can
//! measure elapsed wall-clock time *across* power failures. We model this by
//! keeping a single monotonically increasing wall clock that includes both
//! on-time (the MCU executing) and off-time (the device dead, recharging).

/// Monotonic virtual clock with separate on/off accounting.
///
/// All times are in microseconds. The simulated CPU runs at 1 MHz, matching
/// the paper's evaluation frequency, so one CPU cycle is one microsecond.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_us: u64,
    on_us: u64,
    off_us: u64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current wall-clock time in microseconds (persistent across failures).
    ///
    /// This is what the persistent timekeeper returns; reading it from task
    /// code has a cost which is charged by the caller.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Total time the MCU has spent powered and executing.
    pub fn on_us(&self) -> u64 {
        self.on_us
    }

    /// Total time the MCU has spent dark (power failure / recharging).
    pub fn off_us(&self) -> u64 {
        self.off_us
    }

    /// Advances the clock by `us` microseconds of powered execution.
    pub fn advance_on(&mut self, us: u64) {
        self.now_us += us;
        self.on_us += us;
    }

    /// Advances the clock by `us` microseconds of dead time.
    pub fn advance_off(&mut self, us: u64) {
        self.now_us += us;
        self.off_us += us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Clock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.on_us(), 0);
        assert_eq!(c.off_us(), 0);
    }

    #[test]
    fn on_and_off_time_sum_to_wall_time() {
        let mut c = Clock::new();
        c.advance_on(120);
        c.advance_off(30);
        c.advance_on(7);
        assert_eq!(c.now_us(), 157);
        assert_eq!(c.on_us(), 127);
        assert_eq!(c.off_us(), 30);
        assert_eq!(c.on_us() + c.off_us(), c.now_us());
    }

    #[test]
    fn wall_time_is_monotone() {
        let mut c = Clock::new();
        let mut last = 0;
        for i in 0..100 {
            if i % 3 == 0 {
                c.advance_off(i);
            } else {
                c.advance_on(i);
            }
            assert!(c.now_us() >= last);
            last = c.now_us();
        }
    }
}
