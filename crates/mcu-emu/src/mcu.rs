//! The MCU facade: clock + memory + supply + cost table + ledger.
//!
//! All simulated execution funnels through [`Mcu::spend`]: it prices the
//! work, pushes it through the power supply, and — on interruption — clears
//! volatile memory and advances the clock across the dead period. The
//! invariant every runtime relies on is *spend first, then mutate*: an
//! operation's memory effect is applied only after its cost was paid in
//! full, so each primitive operation is atomic with respect to power
//! failures (word writes to FRAM are atomic on the real part as well).

use crate::clock::Clock;
use crate::energy::{Cost, CostTable};
use crate::memory::{MemSnapshot, Memory};
use crate::nvstore::RawVar;
use crate::power::Supply;
use crate::stats::{CauseSample, EnergyCause, RunStats, WorkKind, KERNEL_TASK};
use easeio_trace::{Event, EventKind, InstantKind, SpanKind, Status, TraceSink, NO_SITE, NO_TASK};

/// Volatile energy-attribution context: which cause the machine is
/// currently spending under. This is *not* part of the persistent machine
/// state — it is derived control flow, reset by the executor at every boot
/// and attempt start, and by [`Mcu::restore`] (a crash sweep must never let
/// one injection run's attribution context bleed into the next).
#[derive(Debug, Clone)]
struct AttributionCtx {
    /// Cause for application-kind spends: `Progress` on a first attempt,
    /// `ReexecCompute` while replaying after a reboot.
    base: EnergyCause,
    /// Scope stack for overhead-kind spends; the top wins, empty means
    /// `RuntimeMisc`. Application-kind spends are never scoped — waste that
    /// is only recognizable after the fact (redundant I/O, faulted
    /// attempts) is moved by delta reattribution instead.
    scope: Vec<EnergyCause>,
    /// Task the current spends belong to ([`KERNEL_TASK`] outside tasks).
    task: u16,
}

impl Default for AttributionCtx {
    fn default() -> Self {
        Self {
            base: EnergyCause::Progress,
            scope: Vec::new(),
            task: KERNEL_TASK,
        }
    }
}

/// A power failure interrupted execution.
///
/// Propagated with `?` out of task bodies to the executor, which reboots and
/// re-executes the interrupted task — the all-or-nothing task model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailure;

/// One energy-spend boundary of a recorded reference run.
///
/// `spend_seq` identifies the [`Mcu::spend`] *call* the boundary's slice
/// belongs to; everything else is the cumulative ledger prefix captured
/// just before the boundary was counted. Two boundaries with equal
/// `spend_seq` interrupt the same primitive operation: because every layer
/// obeys spend-then-mutate, no simulator or host state changes between two
/// slices of one call, so an injection at either boundary resumes from the
/// *identical* machine state and runs the identical continuation — they
/// differ only in these additive ledger prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpendBoundary {
    /// 1-based sequence number of the enclosing `spend` call.
    pub spend_seq: u64,
    /// `stats.boundaries` before this boundary was counted.
    pub boundaries: u64,
    /// Cumulative application energy before this boundary.
    pub app_energy_nj: u64,
    /// Cumulative overhead energy before this boundary.
    pub overhead_energy_nj: u64,
    /// Cumulative per-cause energy ledger before this boundary.
    pub cause_energy_nj: [u64; crate::stats::CAUSE_COUNT],
    /// Values of the recorder's tracked counters before this boundary, in
    /// the order the names were passed to [`Mcu::record_boundaries`].
    pub counters: Vec<u64>,
}

/// Host-side instrumentation that captures a [`SpendBoundary`] per slice.
/// Not machine state: it survives [`Mcu::restore`] so a reference run can
/// be recorded through the usual restore-then-run harness.
#[derive(Debug, Default)]
struct BoundaryRecorder {
    tracked: Vec<&'static str>,
    spend_seq: u64,
    time_observed: bool,
    records: Vec<SpendBoundary>,
}

/// The simulated microcontroller.
#[derive(Debug)]
pub struct Mcu {
    /// Virtual wall clock (persistent timekeeper).
    pub clock: Clock,
    /// Memory map.
    pub mem: Memory,
    /// Power supply model.
    pub supply: Supply,
    /// Calibrated cost table.
    pub cost: CostTable,
    /// Time/energy ledger and event counters.
    pub stats: RunStats,
    /// Structured trace recorder (disabled by default; every layer above
    /// emits through this sink).
    pub trace: TraceSink,
    /// Energy-attribution context (cause scope, replay base, current task).
    attr: AttributionCtx,
    /// Per-spend samples of the cumulative per-cause energy ledger,
    /// collected only while the trace sink is enabled — the raw data for
    /// Chrome-trace counter tracks.
    samples: Vec<CauseSample>,
    /// Per-boundary recorder for crash-sweep equivalence classification
    /// (disabled by default; untracked runs pay one branch per slice).
    recorder: Option<BoundaryRecorder>,
}

impl Mcu {
    /// Creates an MCU with default costs and the given supply.
    pub fn new(supply: Supply) -> Self {
        Self {
            clock: Clock::new(),
            mem: Memory::new(),
            supply,
            cost: CostTable::default(),
            stats: RunStats::new(),
            trace: TraceSink::disabled(),
            attr: AttributionCtx::default(),
            samples: Vec::new(),
            recorder: None,
        }
    }

    /// Starts recording one [`SpendBoundary`] per energy-spend boundary,
    /// additionally tracking the named [`RunStats`] counters in each
    /// prefix. Replaces any active recording. The recorder is host-side
    /// instrumentation, not machine state: it survives [`Mcu::restore`]
    /// (so the restore-then-run harness can record a reference run) and
    /// never influences execution.
    pub fn record_boundaries(&mut self, tracked: Vec<&'static str>) {
        self.recorder = Some(BoundaryRecorder {
            tracked,
            ..BoundaryRecorder::default()
        });
    }

    /// Stops recording and returns the boundary records plus whether the
    /// recorded run observed wall-clock time (timestamp read, sensor
    /// sample, or radio transmit). `None` if no recording was active.
    pub fn take_boundary_recording(&mut self) -> Option<(Vec<SpendBoundary>, bool)> {
        self.recorder.take().map(|r| (r.records, r.time_observed))
    }

    /// Notes that the running program observed wall-clock time in a way
    /// that can reach persistent state or a verdict: a timestamp read, a
    /// sensor sample (environment values are functions of time), or a
    /// radio transmit (packets are logged with their send time). Boundary
    /// equivalence classification refuses to merge boundaries of such a
    /// run, because two slices of one spend call resume at different
    /// clock values. No-op unless a recording is active.
    pub fn note_time_observed(&mut self) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.time_observed = true;
        }
    }

    /// Sets the cause application-kind spends fall under: `Progress` on a
    /// first attempt, `ReexecCompute` during post-reboot replay. Called by
    /// the executor at every attempt start.
    pub fn set_replay_base(&mut self, reexecution: bool) {
        self.attr.base = if reexecution {
            EnergyCause::ReexecCompute
        } else {
            EnergyCause::Progress
        };
    }

    /// Sets the task subsequent spends are attributed to.
    pub fn set_attr_task(&mut self, task: u16) {
        self.attr.task = task;
    }

    /// Pushes a cause scope: overhead-kind spends are attributed to the top
    /// of the stack until the matching [`Mcu::pop_cause`]. A scope leaked by
    /// an early `?` return is cleaned up by the executor's per-attempt
    /// [`Mcu::reset_attribution`].
    pub fn push_cause(&mut self, cause: EnergyCause) {
        self.attr.scope.push(cause);
    }

    /// Pops the innermost cause scope (no-op on an empty stack, so cleanup
    /// paths may pop unconditionally).
    pub fn pop_cause(&mut self) {
        self.attr.scope.pop();
    }

    /// Runs `f` with `cause` scoped over overhead-kind spends, popping the
    /// scope on both success and error paths.
    pub fn with_cause<R>(&mut self, cause: EnergyCause, f: impl FnOnce(&mut Mcu) -> R) -> R {
        self.push_cause(cause);
        let r = f(self);
        self.pop_cause();
        r
    }

    /// Resets the attribution context to its boot state: empty scope stack,
    /// `Progress` base, no task. The executor calls this at every boot so a
    /// scope leaked across a power failure cannot misattribute the next
    /// attempt's spends.
    pub fn reset_attribution(&mut self) {
        self.attr = AttributionCtx::default();
    }

    /// The per-cause energy samples collected so far (one per traced spend).
    pub fn cause_samples(&self) -> &[CauseSample] {
        &self.samples
    }

    /// Spends `cost` classified as `kind`.
    ///
    /// Long operations are pushed through the supply in ≤1 ms slices: a
    /// delay-loop capture or a long DMA drains the capacitor gradually and
    /// harvests income while it runs, exactly like the physical operation.
    /// The *memory effect* of an operation is still applied only after the
    /// whole cost was paid (spend-then-mutate), so slicing never weakens
    /// atomicity — it only lets an operation whose average draw is
    /// sustainable run from a capacitor smaller than its total energy.
    ///
    /// On power failure: volatile memory is cleared, the failure is counted,
    /// the clock has been advanced across the recharge period, and
    /// `Err(PowerFailure)` is returned.
    pub fn spend(&mut self, kind: WorkKind, cost: Cost) -> Result<(), PowerFailure> {
        const SLICE_US: u64 = 1_000;
        // Attribution is resolved once per spend: the base cause for app
        // work, the innermost scope (or the residual category) for overhead.
        let cause = match kind {
            WorkKind::App => self.attr.base,
            WorkKind::Overhead => self
                .attr
                .scope
                .last()
                .copied()
                .unwrap_or(EnergyCause::RuntimeMisc),
        };
        let task = self.attr.task;
        if let Some(rec) = self.recorder.as_mut() {
            rec.spend_seq += 1;
        }
        let mut remaining = cost;
        loop {
            let slice = if remaining.time_us > SLICE_US {
                // Pro-rata energy for this slice; the remainder keeps the
                // total exact.
                let e = remaining.energy_nj * SLICE_US / remaining.time_us;
                Cost::new(SLICE_US, e)
            } else {
                remaining
            };
            remaining = Cost::new(
                remaining.time_us - slice.time_us,
                remaining.energy_nj - slice.energy_nj,
            );
            let off_before = self.clock.off_us();
            if let Some(rec) = self.recorder.as_mut() {
                rec.records.push(SpendBoundary {
                    spend_seq: rec.spend_seq,
                    boundaries: self.stats.boundaries,
                    app_energy_nj: self.stats.app_energy_nj,
                    overhead_energy_nj: self.stats.overhead_energy_nj,
                    cause_energy_nj: self.stats.cause_energy_nj,
                    counters: rec.tracked.iter().map(|n| self.stats.counter(n)).collect(),
                });
            }
            self.stats.boundaries += 1;
            let spend = self.supply.spend(&mut self.clock, slice);
            self.stats
                .record_attributed(kind, cause, task, spend.on_us, spend.energy_nj);
            if spend.interrupted {
                self.mem.power_failure();
                self.stats.power_failures += 1;
                // The supply already advanced the clock across the dead
                // period; reconstruct the failure instant so the trace shows
                // the off interval [t_fail, now] on the power track.
                let now = self.clock.now_us();
                let t_fail = now - (self.clock.off_us() - off_before);
                let energy = self.stats.total_energy_nj();
                let supply = self.supply.kind_name();
                self.trace.emit_with(|| {
                    Event::instant(t_fail, energy, InstantKind::PowerFailure, supply)
                });
                self.trace.emit_with(|| Event {
                    ts_us: t_fail,
                    energy_nj: energy,
                    task: NO_TASK,
                    site: NO_SITE,
                    name: "off",
                    kind: EventKind::SpanBegin(SpanKind::PowerOff),
                });
                self.trace.emit_with(|| Event {
                    ts_us: now,
                    energy_nj: energy,
                    task: NO_TASK,
                    site: NO_SITE,
                    name: "off",
                    kind: EventKind::SpanEnd(SpanKind::PowerOff, Status::None),
                });
                self.trace
                    .emit_with(|| Event::instant(now, energy, InstantKind::ChargeCycle, supply));
                self.sample_causes();
                return Err(PowerFailure);
            }
            if remaining.time_us == 0 && remaining.energy_nj == 0 {
                self.sample_causes();
                return Ok(());
            }
        }
    }

    /// Appends one per-cause energy sample (traced runs only; sweeps and
    /// untraced runs pay nothing).
    fn sample_causes(&mut self) {
        if self.trace.is_enabled() {
            self.samples.push(CauseSample {
                ts_us: self.clock.now_us(),
                energy_nj: self.stats.cause_energy_nj,
            });
        }
    }

    /// Current wall-clock time without cost (simulation-internal reads).
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Reads the persistent timekeeper from task/runtime code, charging the
    /// timestamp-read cost.
    pub fn read_timestamp(&mut self, kind: WorkKind) -> Result<u64, PowerFailure> {
        self.note_time_observed();
        let c = self.cost.timestamp_read;
        self.spend(kind, c)?;
        Ok(self.clock.now_us())
    }

    /// Cost of one memory access to `var`'s region, scaled to its width.
    fn access_cost(&self, var: RawVar, write: bool) -> Cost {
        let per_word = if var.addr.is_nonvolatile() {
            if write {
                self.cost.fram_write_word
            } else {
                self.cost.fram_read_word
            }
        } else {
            self.cost.sram_word
        };
        per_word.times(var.words())
    }

    /// Loads a variable, charging the access cost.
    pub fn load_var(&mut self, kind: WorkKind, var: RawVar) -> Result<u64, PowerFailure> {
        let c = self.access_cost(var, false);
        self.spend(kind, c)?;
        Ok(var.load(&self.mem))
    }

    /// Stores a variable, charging the access cost. The store is applied
    /// only after the cost was paid (atomic with respect to failures).
    pub fn store_var(&mut self, kind: WorkKind, var: RawVar, raw: u64) -> Result<(), PowerFailure> {
        let c = self.access_cost(var, true);
        self.spend(kind, c)?;
        var.store(&mut self.mem, raw);
        Ok(())
    }

    /// Copies one variable-sized slot to another, charging read + write.
    pub fn copy_var(
        &mut self,
        kind: WorkKind,
        src: RawVar,
        dst: RawVar,
    ) -> Result<(), PowerFailure> {
        debug_assert_eq!(src.width, dst.width, "copy between mismatched widths");
        let raw = self.load_var(kind, src)?;
        self.store_var(kind, dst, raw)
    }

    /// Captures the full machine state (clock, memory including allocator
    /// cursors, ledger, cost table) so a crash sweep can re-run the same
    /// program from an identical starting point. The supply is *not* part of
    /// the snapshot: each injection run installs its own.
    ///
    /// The image is captured once and shared behind an `Arc`: cloning the
    /// snapshot is a reference-count bump, and it is `Send + Sync`, so a
    /// parallel sweep hands one image to every worker. Taking a snapshot
    /// also re-bases this machine's dirty tracking, making subsequent
    /// [`Mcu::restore`]s of the same snapshot copy-on-write: only pages
    /// written since are copied back.
    pub fn snapshot(&mut self) -> McuSnapshot {
        McuSnapshot {
            inner: std::sync::Arc::new(SnapshotData {
                clock: self.clock.clone(),
                mem: self.mem.snapshot(),
                stats: self.stats.clone(),
                cost: self.cost.clone(),
            }),
        }
    }

    /// Restores a snapshot taken with [`Mcu::snapshot`]. Restoring the
    /// allocator cursors guarantees that runtime allocations made after this
    /// point land at the same addresses as in every other run from the same
    /// snapshot. Restoring the snapshot this machine is based on costs time
    /// proportional to the bytes written since, not to the memory-map size;
    /// restoring any other snapshot (e.g. one taken by a different machine,
    /// as each sweep worker does with the shared image) falls back to one
    /// full copy and is copy-on-write from then on.
    pub fn restore(&mut self, snap: &McuSnapshot) {
        self.clock = snap.inner.clock.clone();
        self.mem.restore(&snap.inner.mem);
        self.stats = snap.inner.stats.clone();
        self.cost = snap.inner.cost.clone();
        // The attribution context and counter samples are volatile control
        // state, not machine state: reset them so per-boundary energy
        // accounting is a pure function of the snapshot — a leftover cause
        // scope or sample tail from a previous injection run must never
        // bleed into this one.
        self.attr = AttributionCtx::default();
        self.samples.clear();
    }
}

/// Full machine state captured by [`Mcu::snapshot`]: a cheaply clonable,
/// thread-shareable handle to one immutable image.
#[derive(Debug, Clone)]
pub struct McuSnapshot {
    inner: std::sync::Arc<SnapshotData>,
}

#[derive(Debug)]
struct SnapshotData {
    clock: Clock,
    mem: MemSnapshot,
    stats: RunStats,
    cost: CostTable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{AllocTag, Region};
    use crate::power::TimerResetConfig;

    fn continuous() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn spend_classifies_work() {
        let mut m = continuous();
        m.spend(WorkKind::App, Cost::new(10, 20)).unwrap();
        m.spend(WorkKind::Overhead, Cost::new(1, 2)).unwrap();
        assert_eq!(m.stats.app_time_us, 10);
        assert_eq!(m.stats.overhead_energy_nj, 2);
        assert_eq!(m.clock.on_us(), 11);
    }

    #[test]
    fn failure_clears_volatile_and_counts() {
        let cfg = TimerResetConfig {
            on_min_us: 100,
            on_max_us: 100,
            off_min_us: 10,
            off_max_us: 10,
        };
        let mut m = Mcu::new(Supply::timer(cfg, 3));
        let a = m.mem.alloc(Region::Sram, 2, AllocTag::App);
        m.mem.write_bytes(a, &[5, 5]);
        let f = m.mem.alloc(Region::Fram, 2, AllocTag::App);
        m.mem.write_bytes(f, &[6, 6]);
        // Burn past the 100 µs on-period.
        let r = m.spend(WorkKind::App, Cost::new(200, 200));
        assert_eq!(r, Err(PowerFailure));
        assert_eq!(m.stats.power_failures, 1);
        assert_eq!(m.mem.read_bytes(a, 2), &[0, 0]);
        assert_eq!(m.mem.read_bytes(f, 2), &[6, 6]);
        assert!(m.clock.off_us() > 0);
    }

    #[test]
    fn store_is_atomic_wrt_failure() {
        // A store whose cost cannot be paid must not mutate memory.
        let cfg = TimerResetConfig {
            on_min_us: 1,
            on_max_us: 1,
            off_min_us: 1,
            off_max_us: 1,
        };
        let mut m = Mcu::new(Supply::timer(cfg, 9));
        let v = RawVar {
            addr: m.mem.alloc(Region::Fram, 8, AllocTag::App),
            width: 8,
        };
        v.store(&mut m.mem, 0xDEAD);
        // Writing 4 words costs 4 µs, but only 1 µs of on-time exists.
        let r = m.store_var(WorkKind::App, v, 0xBEEF);
        assert_eq!(r, Err(PowerFailure));
        assert_eq!(v.load(&m.mem), 0xDEAD, "failed store must not apply");
    }

    #[test]
    fn fram_access_costs_more_energy_than_sram() {
        let mut m = continuous();
        let f = RawVar {
            addr: m.mem.alloc(Region::Fram, 2, AllocTag::App),
            width: 2,
        };
        let s = RawVar {
            addr: m.mem.alloc(Region::Sram, 2, AllocTag::App),
            width: 2,
        };
        m.load_var(WorkKind::App, f).unwrap();
        let fram_e = m.stats.app_energy_nj;
        m.load_var(WorkKind::App, s).unwrap();
        let sram_e = m.stats.app_energy_nj - fram_e;
        assert!(fram_e > sram_e);
    }

    #[test]
    fn timestamp_read_has_cost() {
        let mut m = continuous();
        let t0 = m.now_us();
        let ts = m.read_timestamp(WorkKind::Overhead).unwrap();
        assert!(ts > t0, "reading the timer itself takes time");
        assert!(m.stats.overhead_time_us > 0);
    }

    #[test]
    fn snapshot_restore_roundtrips_machine_state() {
        let mut m = continuous();
        let v = RawVar {
            addr: m.mem.alloc(Region::Fram, 4, AllocTag::App),
            width: 4,
        };
        m.store_var(WorkKind::App, v, 41).unwrap();
        let snap = m.snapshot();
        let before = (
            m.clock.now_us(),
            m.stats.boundaries,
            m.mem.allocated(Region::Fram),
        );
        // Diverge: more work, a new allocation, a mutated variable.
        m.store_var(WorkKind::App, v, 99).unwrap();
        m.spend(WorkKind::Overhead, Cost::new(500, 500)).unwrap();
        m.mem.alloc(Region::Fram, 16, AllocTag::Runtime);
        m.restore(&snap);
        assert_eq!(v.load(&m.mem), 41);
        assert_eq!(
            (
                m.clock.now_us(),
                m.stats.boundaries,
                m.mem.allocated(Region::Fram)
            ),
            before
        );
        // Allocator cursors restored: the next alloc lands where it would
        // have in any other run from the same snapshot.
        let a1 = m.mem.alloc(Region::Fram, 8, AllocTag::Runtime);
        m.restore(&snap);
        let a2 = m.mem.alloc(Region::Fram, 8, AllocTag::Runtime);
        assert_eq!(a1, a2);
    }

    #[test]
    fn spend_counts_one_boundary_per_slice() {
        let mut m = continuous();
        m.spend(WorkKind::App, Cost::new(10, 10)).unwrap();
        assert_eq!(m.stats.boundaries, 1);
        // 2.5 ms → three ≤1 ms slices.
        m.spend(WorkKind::App, Cost::new(2_500, 100)).unwrap();
        assert_eq!(m.stats.boundaries, 4);
    }

    #[test]
    fn spend_attribution_follows_scope_and_base() {
        let mut m = continuous();
        m.set_attr_task(3);
        m.spend(WorkKind::App, Cost::new(10, 100)).unwrap();
        m.set_replay_base(true);
        m.spend(WorkKind::App, Cost::new(5, 50)).unwrap();
        m.with_cause(EnergyCause::Commit, |m| {
            m.spend(WorkKind::Overhead, Cost::new(2, 20))
        })
        .unwrap();
        // Unscoped overhead falls into the residual category.
        m.spend(WorkKind::Overhead, Cost::new(1, 10)).unwrap();
        assert_eq!(m.stats.cause_energy(EnergyCause::Progress), 100);
        assert_eq!(m.stats.cause_energy(EnergyCause::ReexecCompute), 50);
        assert_eq!(m.stats.cause_energy(EnergyCause::Commit), 20);
        assert_eq!(m.stats.cause_energy(EnergyCause::RuntimeMisc), 10);
        // App spends ignore the overhead scope stack.
        m.with_cause(EnergyCause::DmaPriv, |m| {
            m.spend(WorkKind::App, Cost::new(1, 5))
        })
        .unwrap();
        assert_eq!(m.stats.cause_energy(EnergyCause::DmaPriv), 0);
        let row = m.stats.cause_energy_by_task[&3];
        assert_eq!(row.iter().sum::<u64>(), m.stats.total_energy_nj());
        assert!(m.stats.attribution_balanced());
    }

    /// Regression (crash-sweep bleed): restoring a snapshot must reset the
    /// attribution context and counter samples, so an injection run's
    /// per-cause ledger is a pure function of the snapshot — identical no
    /// matter what ran on the machine before the restore.
    #[test]
    fn restore_resets_attribution_context_and_samples() {
        let mut m = continuous();
        m.trace = TraceSink::enabled();
        let snap = m.snapshot();
        let run = |m: &mut Mcu, snap: &McuSnapshot| {
            m.restore(snap);
            m.spend(WorkKind::App, Cost::new(10, 100)).unwrap();
            m.spend(WorkKind::Overhead, Cost::new(2, 20)).unwrap();
            (m.stats.cause_energy_nj, m.cause_samples().len())
        };
        let clean = run(&mut m, &snap);
        // Pollute every piece of volatile attribution state, as an
        // interrupted run with leaked scopes would.
        m.push_cause(EnergyCause::DmaPriv);
        m.push_cause(EnergyCause::Commit);
        m.set_replay_base(true);
        m.set_attr_task(9);
        m.spend(WorkKind::App, Cost::new(1, 1)).unwrap();
        let after_pollution = run(&mut m, &snap);
        assert_eq!(
            clean, after_pollution,
            "attribution bled across a snapshot restore"
        );
    }

    /// The pruning key: every slice of one spend call shares a `spend_seq`,
    /// and each record's prefix is the ledger *before* its boundary — so
    /// record `i` always carries `boundaries == i`.
    #[test]
    fn boundary_recording_groups_slices_by_spend_call() {
        let mut m = continuous();
        m.record_boundaries(vec![]);
        m.spend(WorkKind::App, Cost::new(10, 10)).unwrap(); // one slice
        m.spend(WorkKind::App, Cost::new(2_500, 100)).unwrap(); // three slices
        let (recs, time) = m.take_boundary_recording().unwrap();
        assert!(!time, "no timestamp was read");
        let seqs: Vec<u64> = recs.iter().map(|r| r.spend_seq).collect();
        assert_eq!(seqs, [1, 2, 2, 2]);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.boundaries, i as u64);
        }
        assert!(recs[3].app_energy_nj > recs[1].app_energy_nj);
    }

    #[test]
    fn timestamp_read_marks_the_recording_time_observed() {
        let mut m = continuous();
        m.record_boundaries(vec![]);
        m.spend(WorkKind::App, Cost::new(1, 1)).unwrap();
        m.read_timestamp(WorkKind::Overhead).unwrap();
        let (_, time) = m.take_boundary_recording().unwrap();
        assert!(time);
    }

    /// The recorder is host instrumentation: a snapshot restore in the
    /// middle of a recording must not clear it.
    #[test]
    fn boundary_recording_survives_restore() {
        let mut m = continuous();
        let snap = m.snapshot();
        m.record_boundaries(vec![]);
        m.restore(&snap);
        m.spend(WorkKind::App, Cost::new(5, 5)).unwrap();
        let (recs, _) = m.take_boundary_recording().unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn copy_var_moves_value_and_charges_both_sides() {
        let mut m = continuous();
        let a = RawVar {
            addr: m.mem.alloc(Region::Fram, 4, AllocTag::App),
            width: 4,
        };
        let b = RawVar {
            addr: m.mem.alloc(Region::Fram, 4, AllocTag::Runtime),
            width: 4,
        };
        a.store(&mut m.mem, 77);
        m.copy_var(WorkKind::Overhead, a, b).unwrap();
        assert_eq!(b.load(&m.mem), 77);
        assert!(m.stats.overhead_energy_nj >= 10); // 2 words read + 2 written
    }
}
