//! Typed variable handles over simulated memory.
//!
//! Task code manipulates named scalar variables and buffers. A handle is a
//! `Copy` value (region + offset + width) so application closures can capture
//! it cheaply; the actual bytes live in the simulated [`Memory`]. Runtimes
//! intercept accesses through these handles to implement privatization, so
//! the handle layer is deliberately thin and carries no policy.

use crate::memory::{Addr, AllocTag, Memory, Region};
use std::marker::PhantomData;

/// Scalar types storable in a variable slot (at most 8 bytes, little-endian).
pub trait Scalar: Copy + PartialEq + std::fmt::Debug {
    /// Width in bytes.
    const WIDTH: u32;
    /// Encodes the value into up to 8 little-endian bytes.
    fn to_raw(self) -> u64;
    /// Decodes the value from its raw little-endian representation.
    fn from_raw(raw: u64) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty => $w:expr),* $(,)?) => {$(
        impl Scalar for $t {
            const WIDTH: u32 = $w;
            fn to_raw(self) -> u64 {
                // Sign bits beyond WIDTH are masked off so the raw form is
                // exactly what the little-endian memory bytes would hold.
                (self as u64) & (u64::MAX >> (64 - 8 * $w))
            }
            fn from_raw(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

impl_scalar! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4,
}

impl Scalar for u64 {
    const WIDTH: u32 = 8;
    fn to_raw(self) -> u64 {
        self
    }
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl Scalar for i64 {
    const WIDTH: u32 = 8;
    fn to_raw(self) -> u64 {
        self as u64
    }
    fn from_raw(raw: u64) -> Self {
        raw as i64
    }
}

/// An untyped view of a variable slot: address plus width.
///
/// Runtimes operate on raw variables so a single privatization mechanism
/// covers every scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RawVar {
    /// Location of the slot.
    pub addr: Addr,
    /// Width in bytes (1, 2, 4, or 8).
    pub width: u32,
}

impl RawVar {
    /// Loads the raw value from memory (no cost accounting; callers charge).
    pub fn load(&self, mem: &Memory) -> u64 {
        let bytes = mem.read_bytes(self.addr, self.width);
        let mut raw = 0u64;
        for (i, b) in bytes.iter().enumerate() {
            raw |= (*b as u64) << (8 * i);
        }
        raw
    }

    /// Stores the raw value to memory (no cost accounting; callers charge).
    pub fn store(&self, mem: &mut Memory, raw: u64) {
        let bytes = raw.to_le_bytes();
        mem.write_bytes(self.addr, &bytes[..self.width as usize]);
    }

    /// Number of 16-bit words the slot occupies (for cost accounting).
    pub fn words(&self) -> u64 {
        (self.width as u64).div_ceil(2)
    }
}

/// A typed handle to a single scalar variable.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct NvVar<T: Scalar> {
    raw: RawVar,
    _t: PhantomData<T>,
}

// Manual impls: `derive` would bound them on `T: Clone/Copy`, which is
// unnecessary for a handle.
impl<T: Scalar> Clone for NvVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for NvVar<T> {}

impl<T: Scalar> NvVar<T> {
    /// Allocates a variable in `region` tagged as application data.
    pub fn alloc(mem: &mut Memory, region: Region) -> Self {
        Self::alloc_tagged(mem, region, AllocTag::App)
    }

    /// Allocates a variable with an explicit footprint tag.
    pub fn alloc_tagged(mem: &mut Memory, region: Region, tag: AllocTag) -> Self {
        let addr = mem.alloc(region, T::WIDTH, tag);
        Self {
            raw: RawVar {
                addr,
                width: T::WIDTH,
            },
            _t: PhantomData,
        }
    }

    /// The untyped view used by runtimes.
    pub fn raw(&self) -> RawVar {
        self.raw
    }

    /// The variable's address.
    pub fn addr(&self) -> Addr {
        self.raw.addr
    }

    /// Direct load bypassing any runtime (setup / verification only).
    pub fn get(&self, mem: &Memory) -> T {
        T::from_raw(self.raw.load(mem))
    }

    /// Direct store bypassing any runtime (setup / verification only).
    pub fn set(&self, mem: &mut Memory, v: T) {
        self.raw.store(mem, v.to_raw());
    }
}

/// A typed handle to a contiguous array of scalars.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct NvBuf<T: Scalar> {
    base: Addr,
    len: u32,
    _t: PhantomData<T>,
}

impl<T: Scalar> Clone for NvBuf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for NvBuf<T> {}

impl<T: Scalar> NvBuf<T> {
    /// Allocates a buffer of `len` elements tagged as application data.
    pub fn alloc(mem: &mut Memory, region: Region, len: u32) -> Self {
        Self::alloc_tagged(mem, region, len, AllocTag::App)
    }

    /// Allocates a buffer with an explicit footprint tag.
    pub fn alloc_tagged(mem: &mut Memory, region: Region, len: u32, tag: AllocTag) -> Self {
        let base = mem.alloc(region, len * T::WIDTH, tag);
        Self {
            base,
            len,
            _t: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the buffer.
    pub fn addr(&self) -> Addr {
        self.base
    }

    /// Size of the buffer in bytes.
    pub fn bytes(&self) -> u32 {
        self.len * T::WIDTH
    }

    /// The `i`-th element as an untyped variable slot.
    pub fn slot(&self, i: u32) -> RawVar {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        RawVar {
            addr: self.base.add(i * T::WIDTH),
            width: T::WIDTH,
        }
    }

    /// Direct element load bypassing any runtime (setup / verification only).
    pub fn get(&self, mem: &Memory, i: u32) -> T {
        T::from_raw(self.slot(i).load(mem))
    }

    /// Direct element store bypassing any runtime (setup / verification only).
    pub fn set(&self, mem: &mut Memory, i: u32, v: T) {
        self.slot(i).store(mem, v.to_raw());
    }

    /// Reads the whole buffer (verification only).
    pub fn to_vec(&self, mem: &Memory) -> Vec<T> {
        (0..self.len).map(|i| self.get(mem, i)).collect()
    }

    /// Writes the whole buffer (setup only).
    pub fn fill_from(&self, mem: &mut Memory, data: &[T]) {
        assert!(data.len() as u32 <= self.len, "data longer than buffer");
        for (i, v) in data.iter().enumerate() {
            self.set(mem, i as u32, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_all_widths() {
        assert_eq!(i16::from_raw((-5i16).to_raw()), -5i16);
        assert_eq!(u16::from_raw(65535u16.to_raw()), 65535u16);
        assert_eq!(i32::from_raw((-123456i32).to_raw()), -123456);
        assert_eq!(u64::from_raw(u64::MAX.to_raw()), u64::MAX);
        assert_eq!(i64::from_raw((-1i64).to_raw()), -1i64);
        assert_eq!(i8::from_raw((-8i8).to_raw()), -8i8);
    }

    #[test]
    fn negative_raw_is_masked_to_width() {
        // The raw form of an i16 must fit in 16 bits so it round-trips
        // through two bytes of memory.
        assert_eq!((-1i16).to_raw(), 0xFFFF);
        assert_eq!((-1i32).to_raw(), 0xFFFF_FFFF);
    }

    #[test]
    fn var_store_load_via_memory() {
        let mut mem = Memory::new();
        let v: NvVar<i32> = NvVar::alloc(&mut mem, Region::Fram);
        v.set(&mut mem, -42);
        assert_eq!(v.get(&mem), -42);
        // The raw path must agree with the typed path.
        assert_eq!(v.raw().load(&mem), (-42i32).to_raw());
    }

    #[test]
    fn buffer_elements_are_independent() {
        let mut mem = Memory::new();
        let b: NvBuf<i16> = NvBuf::alloc(&mut mem, Region::Fram, 4);
        b.fill_from(&mut mem, &[1, -2, 3, -4]);
        assert_eq!(b.to_vec(&mem), vec![1, -2, 3, -4]);
        b.set(&mut mem, 2, 99);
        assert_eq!(b.to_vec(&mem), vec![1, -2, 99, -4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn buffer_bounds_checked() {
        let mut mem = Memory::new();
        let b: NvBuf<i16> = NvBuf::alloc(&mut mem, Region::Fram, 4);
        b.slot(4);
    }

    #[test]
    fn volatile_var_lost_on_failure() {
        let mut mem = Memory::new();
        let v: NvVar<u32> = NvVar::alloc(&mut mem, Region::Sram);
        let nv: NvVar<u32> = NvVar::alloc(&mut mem, Region::Fram);
        v.set(&mut mem, 7);
        nv.set(&mut mem, 7);
        mem.power_failure();
        assert_eq!(v.get(&mem), 0);
        assert_eq!(nv.get(&mem), 7);
    }

    #[test]
    fn words_accounting() {
        let r = RawVar {
            addr: Addr::new(Region::Fram, 0),
            width: 1,
        };
        assert_eq!(r.words(), 1);
        let r = RawVar {
            addr: Addr::new(Region::Fram, 0),
            width: 8,
        };
        assert_eq!(r.words(), 4);
    }
}
