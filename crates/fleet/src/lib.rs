//! easeio-fleet — fleet-scale simulation on the deterministic engine.
//!
//! The paper validates EaseIO on one MCU; its headline workloads (sense-
//! and-transmit relays with `Single` packet semantics) only become
//! interesting at fleet scale, where N batteryless devices contend for a
//! lossy radio and a gateway must see each packet exactly once. This crate
//! instantiates a [`ScenarioSpec`] — device template × replication count ×
//! shared medium — as N independent device runs sharded across the
//! `easeio-exec` pool, then reconciles their radio logs at a simulated
//! [`gateway`].
//!
//! Determinism is the load-bearing property (DESIGN.md §15):
//!
//! * every device's result depends only on its device index — worker-local
//!   machines are restored from one shared copy-on-write
//!   [`mcu_emu::McuSnapshot`] of the template, supplies and
//!   fault plans derive from `seed + device`, and the pool merges results
//!   in device order — so the fleet report is **byte-identical at any
//!   `--jobs` width**;
//! * the gateway is a pure post-pass over the merged logs with a total
//!   event order and hash-keyed loss draws, adding no ordering freedom;
//! * a fleet of N = 1 devices reproduces a plain single-device run at the
//!   same seed exactly (the `ScenarioSpec` refactor's no-regression
//!   anchor, proptested in `tests/equivalence.rs`).
//!
//! Per-device state lives in the CoW page snapshot: restoring a device
//! only copies the pages the previous run dirtied, so a mostly-idle fleet
//! costs ~nothing per extra device and 10k+ devices are practical.
//!
//! ## Two execution paths, one report
//!
//! [`run_fleet`] holds every [`DeviceResult`] in memory — right for tests
//! and small fleets that want per-device access afterwards.
//! [`run_fleet_streamed`] instead writes each device's record to a
//! per-worker JSONL shard as it completes and folds it into a bounded
//! [`FleetAgg`]; only the radio logs (needed by the gateway's collision
//! merge) survive per device. Both paths aggregate through the same
//! [`FleetAgg`], whose fold is commutative, so the streamed report is
//! byte-identical to the in-memory one at any `--jobs` width while peak
//! memory stays O(workers + sketches) instead of O(devices).

pub mod gateway;
pub mod rollout;
pub mod telemetry;

pub use gateway::{find_air_duplicate, reconcile, reconcile_logs, AirDuplicate, GatewayStats};
pub use rollout::{
    run_rollout, run_rollout_observed, run_rollout_streamed, RolloutOutcome, RolloutPolicy,
    RolloutViolation, RolloutViolationKind, StreamedRolloutOutcome,
};
pub use telemetry::FleetAgg;

use easeio_exec::{run_indexed, run_indexed_collect, PoolStats, ScenarioSpec};
use easeio_trace::fleet::{FleetDeliveryDoc, FleetInputs, FleetMediumDoc, FleetTimingDoc};
use easeio_trace::stream::{JsonlWriter, ShardedSink, StreamStats};
use easeio_trace::sweep::FaultSpecDoc;
use easeio_trace::{Progress, Value};
use kernel::{run_app, App, ExecConfig, Outcome, Verdict};
use mcu_emu::{Mcu, McuSnapshot, RunStats, Supply};
use periph::{Packet, Peripherals};

/// Everything one device's run produced, in device-index order inside
/// [`FleetOutcome::results`].
#[derive(Debug, Clone)]
pub struct DeviceResult {
    /// Device index (0-based).
    pub device: u32,
    /// The seed this device derived its environment/supply/faults from.
    pub seed: u64,
    /// How the run ended.
    pub outcome: Outcome,
    /// Application correctness, if the app defines a check.
    pub verdict: Option<Verdict>,
    /// Total wall-clock including dead time (virtual µs).
    pub wall_us: u64,
    /// On-time (virtual µs).
    pub on_us: u64,
    /// The device's full time/energy ledger.
    pub stats: RunStats,
    /// Every packet the device put on the air, in transmission order.
    pub packets: Vec<Packet>,
}

impl DeviceResult {
    /// The device's `--stream-out` JSONL record (compact, canonical key
    /// order). Pure in the result, so the merged stream is byte-identical
    /// at any `--jobs` width.
    pub fn record_line(&self) -> String {
        let outcome = match self.outcome {
            Outcome::Completed => "completed",
            Outcome::NonTermination => "non_termination",
            Outcome::Fault(_) => "fault",
        };
        let verdict = match &self.verdict {
            Some(Verdict::Correct) => Value::str("correct"),
            Some(Verdict::Incorrect(_)) => Value::str("incorrect"),
            None => Value::Null,
        };
        Value::Obj(vec![
            ("device".into(), Value::u64(self.device as u64)),
            ("seed".into(), Value::u64(self.seed)),
            ("outcome".into(), Value::str(outcome)),
            ("verdict".into(), verdict),
            ("wall_us".into(), Value::u64(self.wall_us)),
            ("on_us".into(), Value::u64(self.on_us)),
            ("energy_nj".into(), Value::u64(self.stats.total_energy_nj())),
            (
                "power_failures".into(),
                Value::u64(self.stats.power_failures),
            ),
            ("packets".into(), Value::u64(self.packets.len() as u64)),
        ])
        .to_compact()
    }
}

/// One complete fleet run: per-device results in device order, the
/// gateway's reconciliation, and the pool's utilization record.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-device results, indexed by device.
    pub results: Vec<DeviceResult>,
    /// Gateway delivery accounting over the shared medium.
    pub gateway: GatewayStats,
    /// Worker utilization (host timing; stripped from report identity).
    pub pool: PoolStats,
}

/// A streamed fleet run: the bounded aggregate and gateway accounting,
/// with per-device records already on disk instead of in memory.
#[derive(Debug)]
pub struct StreamedFleetOutcome {
    /// Fleet-wide aggregate (merged per-worker folds).
    pub agg: FleetAgg,
    /// Gateway delivery accounting over the shared medium.
    pub gateway: GatewayStats,
    /// Worker utilization (host timing; stripped from report identity).
    pub pool: PoolStats,
    /// What the sharded sink merged.
    pub stream: StreamStats,
    /// Per-device radio logs in device order — the one per-device datum
    /// the gateway's collision merge cannot reduce incrementally.
    pub packets: Vec<(u32, Vec<Packet>)>,
}

/// Runs one device of the scenario on a worker's cached machine,
/// restoring the shared template snapshot first. The result is a function
/// of `(spec, device)` alone — the determinism contract both execution
/// paths and every `--jobs` width rely on.
fn run_device(
    spec: &ScenarioSpec,
    snap: &McuSnapshot,
    cache: &mut Option<(Mcu, App)>,
    device: u32,
) -> DeviceResult {
    let (mcu, app) = cache.get_or_insert_with(|| {
        let mut mcu = Mcu::new(Supply::continuous());
        let app = spec
            .build_app(&mut mcu)
            .expect("template validated on the coordinator");
        (mcu, app)
    });
    mcu.restore(snap);
    mcu.supply = spec.supply_for_device(device);
    let mut periph = Peripherals::new(spec.device_seed(device));
    let fault = spec.fault_for_device(device);
    fault.apply(&mut periph);
    let mut rt = spec.kernel_builder().with_faults(fault).build();
    let cfg = ExecConfig {
        retry: fault.retry,
        ..ExecConfig::default()
    };
    let r = run_app(app, rt.as_mut(), mcu, &mut periph, &cfg);
    DeviceResult {
        device,
        seed: spec.device_seed(device),
        outcome: r.outcome,
        verdict: r.verdict,
        wall_us: r.wall_us,
        on_us: r.on_us,
        stats: r.stats,
        packets: periph.radio.packets().to_vec(),
    }
}

/// Validates the template once on the coordinator so workers can't hit a
/// build error mid-pool, and returns the shared CoW snapshot.
fn template_snapshot(spec: &ScenarioSpec) -> Result<McuSnapshot, String> {
    let mut template = Mcu::new(Supply::continuous());
    spec.build_app(&mut template)?;
    Ok(template.snapshot())
}

/// Runs the scenario's fleet: `spec.count` devices, sharded across
/// `spec.jobs` workers, reconciled at the gateway.
///
/// Every worker builds its own template machine + app once (allocator
/// addresses are deterministic, so all workers' templates are identical),
/// then serves devices by restoring the shared CoW snapshot and installing
/// the device's supply and fault plan — the same restore discipline the
/// crash sweep uses, which is what makes results a function of the device
/// index alone.
pub fn run_fleet(spec: &ScenarioSpec) -> Result<FleetOutcome, String> {
    run_fleet_observed(spec, None)
}

/// [`run_fleet`] with a live progress channel: ticks one unit per device
/// completed in a `"devices"` phase.
pub fn run_fleet_observed(
    spec: &ScenarioSpec,
    progress: Option<&Progress>,
) -> Result<FleetOutcome, String> {
    if spec.count == 0 {
        return Err("a fleet needs at least 1 device".into());
    }
    let snap = template_snapshot(spec)?;
    if let Some(p) = progress {
        p.begin_phase("devices", spec.count as u64);
    }
    let devices: Vec<u32> = (0..spec.count).collect();
    let (results, pool) = run_indexed(
        spec.jobs,
        &devices,
        || None::<(Mcu, App)>,
        |state, _, &device| {
            let r = run_device(spec, &snap, state, device);
            if let Some(p) = progress {
                p.add(1);
            }
            r
        },
    );
    if let Some(p) = progress {
        p.begin_phase("reconcile", 1);
    }
    let gateway = reconcile(&results, &spec.medium);
    if let Some(p) = progress {
        p.add(1);
    }
    Ok(FleetOutcome {
        results,
        gateway,
        pool,
    })
}

/// Runs the fleet in bounded memory: each worker appends finished device
/// records to a private JSONL shard and folds them into its own
/// [`FleetAgg`]; the shards k-way-merge into `out` in device order and
/// the per-worker aggregates merge into one.
///
/// Peak memory is O(workers + sketches + radio logs) — per-device
/// `RunStats` ledgers never accumulate. The report built from the result
/// is byte-identical to [`run_fleet`]'s at any `--jobs` width.
pub fn run_fleet_streamed(
    spec: &ScenarioSpec,
    out: &mut JsonlWriter,
    progress: Option<&Progress>,
) -> Result<StreamedFleetOutcome, String> {
    if spec.count == 0 {
        return Err("a fleet needs at least 1 device".into());
    }
    let snap = template_snapshot(spec)?;
    let jobs = spec.jobs.max(1).min(spec.count as usize);
    let sink = ShardedSink::create(out.path(), jobs)
        .map_err(|e| format!("stream shards for {}: {e}", out.path()))?;
    if let Some(p) = progress {
        p.begin_phase("devices", spec.count as u64);
    }
    let devices: Vec<u32> = (0..spec.count).collect();
    let (packets, aggs, pool) = run_indexed_collect(
        spec.jobs,
        &devices,
        || (None::<(Mcu, App)>, FleetAgg::new(), sink.claim()),
        |(cache, agg, shard), _, &device| {
            let r = run_device(spec, &snap, cache, device);
            agg.observe(&r);
            sink.write(*shard, device as u64, &r.record_line());
            if let Some(p) = progress {
                p.add(1);
            }
            (device, r.packets)
        },
        |(_, agg, _)| agg,
    );
    let stream = sink
        .merge_into(out)
        .map_err(|e| format!("stream merge into {}: {e}", out.path()))?;
    let mut agg = FleetAgg::new();
    for worker in &aggs {
        agg.merge(worker);
    }
    if let Some(p) = progress {
        p.begin_phase("reconcile", 1);
    }
    let gateway = reconcile_logs(
        packets.iter().map(|(d, p)| (*d, p.as_slice())),
        &spec.medium,
    );
    if let Some(p) = progress {
        p.add(1);
    }
    Ok(StreamedFleetOutcome {
        agg,
        gateway,
        pool,
        stream,
        packets,
    })
}

/// The shared report assembly both execution paths feed: everything comes
/// from the commutative [`FleetAgg`] and the order-independent gateway
/// ledger, so the two paths (and every `--jobs` width) render identically
/// outside the stripped `timing` block.
pub(crate) fn fleet_inputs(
    spec: &ScenarioSpec,
    agg: &FleetAgg,
    g: &GatewayStats,
    timing: FleetTimingDoc,
) -> FleetInputs {
    FleetInputs {
        runtime: spec.device.kernel.name().to_string(),
        app: spec.device.app.label().to_string(),
        devices: spec.count as u64,
        seed: spec.seed,
        supply: spec.supply.label(),
        medium: FleetMediumDoc {
            seed: spec.medium.seed,
            loss_permille: spec.medium.loss_permille as u64,
            airtime_base_us: spec.medium.airtime_base_us,
            airtime_us_per_word: spec.medium.airtime_us_per_word,
        },
        fault_spec: spec.device.fault.plan.map(|p| FaultSpecDoc {
            seed: p.seed,
            rate_permille: p.rate_permille as u64,
            max_retries: spec.device.fault.retry.max_retries as u64,
            backoff_base_us: spec.device.fault.retry.backoff_base_us,
        }),
        outcomes: agg.outcomes(),
        power_failures: agg.power_failures(),
        delivery: FleetDeliveryDoc {
            transmissions: g.transmissions,
            unique_sent: g.unique_sent,
            air_duplicates: g.air_duplicates,
            delivered: g.delivered,
            delivered_unique: g.delivered_unique,
            gateway_duplicates: g.gateway_duplicates,
            lost_collision: g.lost_collision,
            lost_channel: g.lost_channel,
            delivery_rate_milli: g.delivery_rate_milli(),
        },
        energy: agg.energy(),
        stragglers: agg.stragglers(),
        rollout: None,
        timing: Some(timing),
    }
}

/// Host timing block from a pool record (measurement, stripped from
/// report identity), including the process peak RSS the memory-ceiling CI
/// gate reads.
pub(crate) fn timing_doc(pool: &PoolStats, streamed_records: Option<u64>) -> FleetTimingDoc {
    FleetTimingDoc {
        jobs: pool.jobs as u64,
        wall_us: pool.wall_us,
        devices_per_worker: pool.items_per_worker.clone(),
        busy_us_per_worker: pool.busy_us_per_worker.clone(),
        peak_rss_bytes: mcu_emu::peak_rss_bytes(),
        streamed_records,
    }
}

impl FleetOutcome {
    /// The fleet-wide aggregate, folded from the in-memory results in
    /// device order. Equal to the streamed path's merged per-worker
    /// aggregates because the fold is commutative.
    pub fn agg(&self) -> FleetAgg {
        let mut agg = FleetAgg::new();
        for r in &self.results {
            agg.observe(r);
        }
        agg
    }

    /// Power-failure reboots summed across the fleet.
    pub fn power_failures(&self) -> u64 {
        self.results.iter().map(|r| r.stats.power_failures).sum()
    }

    /// Fleet-wide energy ledger: every device's attribution summed.
    pub fn energy(&self) -> easeio_trace::fleet::FleetEnergyDoc {
        self.agg().energy()
    }

    /// Straggler percentiles over per-device wall-clock (sketch-based;
    /// see [`FleetAgg::stragglers`]).
    pub fn stragglers(&self) -> easeio_trace::fleet::FleetStragglerDoc {
        self.agg().stragglers()
    }

    /// Per-device outcome tally.
    pub fn outcomes(&self) -> easeio_trace::fleet::FleetOutcomesDoc {
        self.agg().outcomes()
    }

    /// The `kind: "fleet"` report inputs for this outcome. Host timing
    /// from the pool is included; `identity_document` strips it before
    /// any `--jobs` comparison.
    pub fn report_inputs(&self, spec: &ScenarioSpec) -> FleetInputs {
        fleet_inputs(
            spec,
            &self.agg(),
            &self.gateway,
            timing_doc(&self.pool, None),
        )
    }
}

impl StreamedFleetOutcome {
    /// The `kind: "fleet"` report inputs — byte-identical to
    /// [`FleetOutcome::report_inputs`] outside the stripped `timing`
    /// block.
    pub fn report_inputs(&self, spec: &ScenarioSpec) -> FleetInputs {
        fleet_inputs(
            spec,
            &self.agg,
            &self.gateway,
            timing_doc(&self.pool, Some(self.stream.records)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_exec::{AppSpec, DeviceSpec};
    use easeio_trace::fleet::build_fleet_report;
    use easeio_trace::validate_any_report;
    use kernel::KernelKind;

    fn radio_fleet(count: u32, kernel: KernelKind) -> ScenarioSpec {
        ScenarioSpec {
            device: DeviceSpec {
                app: AppSpec::Named("flaky-radio".into()),
                kernel,
                ..DeviceSpec::default()
            },
            count,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn small_easeio_fleet_delivers_exactly_once() {
        let spec = radio_fleet(8, KernelKind::EaseIo);
        let fleet = run_fleet(&spec).unwrap();
        assert_eq!(fleet.results.len(), 8);
        let o = fleet.outcomes();
        assert_eq!(o.completed, 8);
        assert_eq!(o.correct, 8);
        // Single semantics: no identity transmits twice, even across the
        // fleet's power failures.
        assert_eq!(fleet.gateway.air_duplicates, 0);
        assert!(fleet.power_failures() > 0, "timer supply must cycle");
        // Device seeds decorrelate the supplies: not all wall-clocks equal.
        let walls: Vec<u64> = fleet.results.iter().map(|r| r.wall_us).collect();
        assert!(walls.iter().any(|&w| w != walls[0]), "{walls:?}");
    }

    #[test]
    fn fleet_report_validates_as_kind_fleet() {
        let spec = radio_fleet(4, KernelKind::EaseIo);
        let fleet = run_fleet(&spec).unwrap();
        let doc = build_fleet_report(&fleet.report_inputs(&spec));
        let parsed = easeio_trace::parse_json(&doc.to_pretty()).unwrap();
        assert_eq!(
            validate_any_report(&parsed),
            Ok(easeio_trace::ReportKind::Fleet)
        );
    }

    #[test]
    fn empty_fleet_is_an_error_and_bad_apps_fail_early() {
        let mut spec = radio_fleet(0, KernelKind::EaseIo);
        assert!(run_fleet(&spec).is_err());
        spec.count = 1;
        spec.device.app = AppSpec::Named("no-such-app".into());
        assert!(run_fleet(&spec).unwrap_err().contains("no-such-app"));
    }

    #[test]
    fn attribution_stays_balanced_across_the_fleet() {
        let spec = radio_fleet(6, KernelKind::Alpaca);
        let fleet = run_fleet(&spec).unwrap();
        for r in &fleet.results {
            assert!(r.stats.attribution_balanced(), "device {}", r.device);
        }
        let energy = fleet.energy();
        let cause_sum: u64 = energy.cause_energy_nj.iter().sum();
        assert_eq!(cause_sum, energy.total_energy_nj);
    }

    #[test]
    fn streamed_fleet_matches_in_memory_and_writes_device_order() {
        let dir = std::env::temp_dir().join("easeio-fleet-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("stream-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let spec = radio_fleet(12, KernelKind::EaseIo);
        let mem = run_fleet(&spec).unwrap();
        let mut spec4 = spec.clone();
        spec4.jobs = 4;
        let mut out = JsonlWriter::create(&path).unwrap();
        let streamed = run_fleet_streamed(&spec4, &mut out, None).unwrap();
        drop(out);
        assert_eq!(streamed.gateway, mem.gateway);
        assert_eq!(streamed.agg.outcomes(), mem.outcomes());
        assert_eq!(streamed.agg.stragglers(), mem.stragglers());
        assert_eq!(streamed.stream.records, 12);
        let text = std::fs::read_to_string(&path).unwrap();
        let expected: String = mem.results.iter().map(|r| r.record_line() + "\n").collect();
        assert_eq!(text, expected, "stream is the device-ordered records");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_ticks_through_the_fleet_phases() {
        let spec = radio_fleet(5, KernelKind::EaseIo);
        let progress = Progress::new();
        run_fleet_observed(&spec, Some(&progress)).unwrap();
        let s = progress.snapshot();
        assert_eq!(s.phase, "reconcile");
        assert_eq!((s.done, s.total), (1, 1));
    }
}
