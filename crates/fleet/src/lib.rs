//! easeio-fleet — fleet-scale simulation on the deterministic engine.
//!
//! The paper validates EaseIO on one MCU; its headline workloads (sense-
//! and-transmit relays with `Single` packet semantics) only become
//! interesting at fleet scale, where N batteryless devices contend for a
//! lossy radio and a gateway must see each packet exactly once. This crate
//! instantiates a [`ScenarioSpec`] — device template × replication count ×
//! shared medium — as N independent device runs sharded across the
//! `easeio-exec` pool, then reconciles their radio logs at a simulated
//! [`gateway`].
//!
//! Determinism is the load-bearing property (DESIGN.md §15):
//!
//! * every device's result depends only on its device index — worker-local
//!   machines are restored from one shared copy-on-write
//!   [`McuSnapshot`](mcu_emu::McuSnapshot) of the template, supplies and
//!   fault plans derive from `seed + device`, and the pool merges results
//!   in device order — so the fleet report is **byte-identical at any
//!   `--jobs` width**;
//! * the gateway is a pure post-pass over the merged logs with a total
//!   event order and hash-keyed loss draws, adding no ordering freedom;
//! * a fleet of N = 1 devices reproduces a plain single-device run at the
//!   same seed exactly (the `ScenarioSpec` refactor's no-regression
//!   anchor, proptested in `tests/equivalence.rs`).
//!
//! Per-device state lives in the CoW page snapshot: restoring a device
//! only copies the pages the previous run dirtied, so a mostly-idle fleet
//! costs ~nothing per extra device and 10k+ devices are practical.

pub mod gateway;
pub mod rollout;

pub use gateway::{reconcile, GatewayStats};
pub use rollout::{run_rollout, RolloutOutcome, RolloutPolicy};

use easeio_exec::{run_indexed, PoolStats, ScenarioSpec};
use easeio_trace::agg::percentile;
use easeio_trace::fleet::{
    FleetDeliveryDoc, FleetEnergyDoc, FleetInputs, FleetMediumDoc, FleetOutcomesDoc,
    FleetStragglerDoc, FleetTimingDoc,
};
use easeio_trace::sweep::FaultSpecDoc;
use kernel::{run_app, App, ExecConfig, Outcome, Verdict};
use mcu_emu::{Mcu, RunStats, Supply, CAUSE_COUNT};
use periph::{Packet, Peripherals};

/// Everything one device's run produced, in device-index order inside
/// [`FleetOutcome::results`].
#[derive(Debug, Clone)]
pub struct DeviceResult {
    /// Device index (0-based).
    pub device: u32,
    /// The seed this device derived its environment/supply/faults from.
    pub seed: u64,
    /// How the run ended.
    pub outcome: Outcome,
    /// Application correctness, if the app defines a check.
    pub verdict: Option<Verdict>,
    /// Total wall-clock including dead time (virtual µs).
    pub wall_us: u64,
    /// On-time (virtual µs).
    pub on_us: u64,
    /// The device's full time/energy ledger.
    pub stats: RunStats,
    /// Every packet the device put on the air, in transmission order.
    pub packets: Vec<Packet>,
}

/// One complete fleet run: per-device results in device order, the
/// gateway's reconciliation, and the pool's utilization record.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-device results, indexed by device.
    pub results: Vec<DeviceResult>,
    /// Gateway delivery accounting over the shared medium.
    pub gateway: GatewayStats,
    /// Worker utilization (host timing; stripped from report identity).
    pub pool: PoolStats,
}

/// Runs the scenario's fleet: `spec.count` devices, sharded across
/// `spec.jobs` workers, reconciled at the gateway.
///
/// Every worker builds its own template machine + app once (allocator
/// addresses are deterministic, so all workers' templates are identical),
/// then serves devices by restoring the shared CoW snapshot and installing
/// the device's supply and fault plan — the same restore discipline the
/// crash sweep uses, which is what makes results a function of the device
/// index alone.
pub fn run_fleet(spec: &ScenarioSpec) -> Result<FleetOutcome, String> {
    if spec.count == 0 {
        return Err("a fleet needs at least 1 device".into());
    }
    // Validate the template once on the coordinator so workers can't hit a
    // build error mid-pool.
    let mut template = Mcu::new(Supply::continuous());
    spec.build_app(&mut template)?;
    let snap = template.snapshot();
    drop(template);

    let devices: Vec<u32> = (0..spec.count).collect();
    let (results, pool) = run_indexed(
        spec.jobs,
        &devices,
        || None::<(Mcu, App)>,
        |state, _, &device| {
            let (mcu, app) = state.get_or_insert_with(|| {
                let mut mcu = Mcu::new(Supply::continuous());
                let app = spec
                    .build_app(&mut mcu)
                    .expect("template validated on the coordinator");
                (mcu, app)
            });
            mcu.restore(&snap);
            mcu.supply = spec.supply_for_device(device);
            let mut periph = Peripherals::new(spec.device_seed(device));
            let fault = spec.fault_for_device(device);
            fault.apply(&mut periph);
            let mut rt = spec.kernel_builder().with_faults(fault).build();
            let cfg = ExecConfig {
                retry: fault.retry,
                ..ExecConfig::default()
            };
            let r = run_app(app, rt.as_mut(), mcu, &mut periph, &cfg);
            DeviceResult {
                device,
                seed: spec.device_seed(device),
                outcome: r.outcome,
                verdict: r.verdict,
                wall_us: r.wall_us,
                on_us: r.on_us,
                stats: r.stats,
                packets: periph.radio.packets().to_vec(),
            }
        },
    );
    let gateway = reconcile(&results, &spec.medium);
    Ok(FleetOutcome {
        results,
        gateway,
        pool,
    })
}

impl FleetOutcome {
    /// Power-failure reboots summed across the fleet.
    pub fn power_failures(&self) -> u64 {
        self.results.iter().map(|r| r.stats.power_failures).sum()
    }

    /// Fleet-wide energy ledger: every device's attribution summed.
    pub fn energy(&self) -> FleetEnergyDoc {
        let mut doc = FleetEnergyDoc::default();
        for r in &self.results {
            doc.total_time_us += r.stats.total_time_us();
            doc.total_energy_nj += r.stats.total_energy_nj();
            for i in 0..CAUSE_COUNT {
                doc.cause_energy_nj[i] += r.stats.cause_energy_nj[i];
            }
        }
        doc
    }

    /// Straggler percentiles over per-device wall-clock.
    pub fn stragglers(&self) -> FleetStragglerDoc {
        let mut walls: Vec<u64> = self.results.iter().map(|r| r.wall_us).collect();
        walls.sort_unstable();
        FleetStragglerDoc {
            p50_wall_us: percentile(&walls, 50),
            p90_wall_us: percentile(&walls, 90),
            p99_wall_us: percentile(&walls, 99),
            max_wall_us: walls.last().copied().unwrap_or(0),
        }
    }

    /// Per-device outcome tally.
    pub fn outcomes(&self) -> FleetOutcomesDoc {
        let mut doc = FleetOutcomesDoc::default();
        for r in &self.results {
            match r.outcome {
                Outcome::Completed => doc.completed += 1,
                Outcome::NonTermination => doc.non_terminated += 1,
                Outcome::Fault(_) => doc.faulted += 1,
            }
            match &r.verdict {
                Some(Verdict::Correct) => doc.correct += 1,
                Some(Verdict::Incorrect(_)) => doc.incorrect += 1,
                None => doc.unverified += 1,
            }
        }
        doc
    }

    /// The `kind: "fleet"` report inputs for this outcome. Host timing
    /// from the pool is included; `identity_document` strips it before
    /// any `--jobs` comparison.
    pub fn report_inputs(&self, spec: &ScenarioSpec) -> FleetInputs {
        let g = &self.gateway;
        FleetInputs {
            runtime: spec.device.kernel.name().to_string(),
            app: spec.device.app.label().to_string(),
            devices: spec.count as u64,
            seed: spec.seed,
            supply: spec.supply.label(),
            medium: FleetMediumDoc {
                seed: spec.medium.seed,
                loss_permille: spec.medium.loss_permille as u64,
                airtime_base_us: spec.medium.airtime_base_us,
                airtime_us_per_word: spec.medium.airtime_us_per_word,
            },
            fault_spec: spec.device.fault.plan.map(|p| FaultSpecDoc {
                seed: p.seed,
                rate_permille: p.rate_permille as u64,
                max_retries: spec.device.fault.retry.max_retries as u64,
                backoff_base_us: spec.device.fault.retry.backoff_base_us,
            }),
            outcomes: self.outcomes(),
            power_failures: self.power_failures(),
            delivery: FleetDeliveryDoc {
                transmissions: g.transmissions,
                unique_sent: g.unique_sent,
                air_duplicates: g.air_duplicates,
                delivered: g.delivered,
                delivered_unique: g.delivered_unique,
                gateway_duplicates: g.gateway_duplicates,
                lost_collision: g.lost_collision,
                lost_channel: g.lost_channel,
                delivery_rate_milli: g.delivery_rate_milli(),
            },
            energy: self.energy(),
            stragglers: self.stragglers(),
            rollout: None,
            timing: Some(FleetTimingDoc {
                jobs: self.pool.jobs as u64,
                wall_us: self.pool.wall_us,
                devices_per_worker: self.pool.items_per_worker.clone(),
                busy_us_per_worker: self.pool.busy_us_per_worker.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_exec::{AppSpec, DeviceSpec};
    use easeio_trace::fleet::build_fleet_report;
    use easeio_trace::validate_any_report;
    use kernel::KernelKind;

    fn radio_fleet(count: u32, kernel: KernelKind) -> ScenarioSpec {
        ScenarioSpec {
            device: DeviceSpec {
                app: AppSpec::Named("flaky-radio".into()),
                kernel,
                ..DeviceSpec::default()
            },
            count,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn small_easeio_fleet_delivers_exactly_once() {
        let spec = radio_fleet(8, KernelKind::EaseIo);
        let fleet = run_fleet(&spec).unwrap();
        assert_eq!(fleet.results.len(), 8);
        let o = fleet.outcomes();
        assert_eq!(o.completed, 8);
        assert_eq!(o.correct, 8);
        // Single semantics: no identity transmits twice, even across the
        // fleet's power failures.
        assert_eq!(fleet.gateway.air_duplicates, 0);
        assert!(fleet.power_failures() > 0, "timer supply must cycle");
        // Device seeds decorrelate the supplies: not all wall-clocks equal.
        let walls: Vec<u64> = fleet.results.iter().map(|r| r.wall_us).collect();
        assert!(walls.iter().any(|&w| w != walls[0]), "{walls:?}");
    }

    #[test]
    fn fleet_report_validates_as_kind_fleet() {
        let spec = radio_fleet(4, KernelKind::EaseIo);
        let fleet = run_fleet(&spec).unwrap();
        let doc = build_fleet_report(&fleet.report_inputs(&spec));
        let parsed = easeio_trace::parse_json(&doc.to_pretty()).unwrap();
        assert_eq!(
            validate_any_report(&parsed),
            Ok(easeio_trace::ReportKind::Fleet)
        );
    }

    #[test]
    fn empty_fleet_is_an_error_and_bad_apps_fail_early() {
        let mut spec = radio_fleet(0, KernelKind::EaseIo);
        assert!(run_fleet(&spec).is_err());
        spec.count = 1;
        spec.device.app = AppSpec::Named("no-such-app".into());
        assert!(run_fleet(&spec).unwrap_err().contains("no-such-app"));
    }

    #[test]
    fn attribution_stays_balanced_across_the_fleet() {
        let spec = radio_fleet(6, KernelKind::Alpaca);
        let fleet = run_fleet(&spec).unwrap();
        for r in &fleet.results {
            assert!(r.stats.attribution_balanced(), "device {}", r.device);
        }
        let energy = fleet.energy();
        let cause_sum: u64 = energy.cause_energy_nj.iter().sum();
        assert_eq!(cause_sum, energy.total_energy_nj);
    }
}
