//! Rolling over-the-air update across the fleet — the gateway side of the
//! crash-safe update subsystem.
//!
//! The gateway pushes a new task-graph image (sequence [`RolloutPolicy::
//! target_seq`]) to the fleet wave by wave. For each device in an offered
//! wave it downlinks the image in the same chunks the device stages at
//! ([`OtaUpdateCfg::chunk_words`]); every chunk is retried through the
//! scenario's existing retry budget (`1 + max_retries` attempts) against
//! the shared medium's seeded downlink loss
//! ([`MediumSpec::downlink_drops`]). A device whose downlink never
//! completes is a **straggler**: it keeps running on the factory image.
//! Devices that did receive the image run the two-phase (or, under the
//! Naive kernel, in-place) update from `apps::ota_update`.
//!
//! After each wave the gateway inspects the wave's results. A
//! **regression** — a received update that did not end completed, correct,
//! and probe-clean — aborts the rollout when
//! [`RolloutPolicy::abort_on_regression`] is set: later waves are never
//! offered the image and stay **stale** on the factory version. This is
//! what turns the crashcheck-level old-or-new guarantee into a fleet
//! policy: under EaseIO every offered-and-received device converges on the
//! target with zero duplicate activations, while the Naive baseline's torn
//! images trip the abort.
//!
//! Determinism mirrors [`run_fleet`](crate::run_fleet): downlink draws are
//! pure in `(medium seed, device, chunk, attempt)`, device results depend
//! only on the device index, waves merge in device order — so the rollout
//! report is byte-identical at any `--jobs` width, and a 1-device
//! no-loss rollout reproduces the single-device staged update exactly.

use crate::{reconcile, DeviceResult, FleetOutcome};
use apps::ota_update::{self, OtaUpdateCfg};
use easeio_exec::{run_indexed, PoolStats, ScenarioSpec};
use easeio_trace::fleet::{FleetInputs, FleetRolloutDoc};
use kernel::update::{PROBE_DUPLICATE_ACTIVATION, PROBE_VERSION_TORN};
use kernel::{run_app, App, ExecConfig, Outcome, Verdict};
use mcu_emu::{Mcu, McuSnapshot, Supply};
use periph::{MediumSpec, Peripherals};
use std::collections::HashMap;

/// How the gateway rolls the update out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutPolicy {
    /// Sequence number of the image being rolled out (the factory image is
    /// 1, so a rollout targets at least 2).
    pub target_seq: u32,
    /// Devices offered the update per wave.
    pub wave_size: u32,
    /// Stop offering the update after a wave shows a regression.
    pub abort_on_regression: bool,
}

impl Default for RolloutPolicy {
    fn default() -> Self {
        Self {
            target_seq: 2,
            wave_size: 32,
            abort_on_regression: true,
        }
    }
}

/// One complete rollout: the merged fleet outcome (device order) plus the
/// version-convergence accounting.
#[derive(Debug, Clone)]
pub struct RolloutOutcome {
    /// Per-device results and gateway reconciliation, as in a plain fleet
    /// run.
    pub fleet: FleetOutcome,
    /// The `rollout` report block.
    pub stats: FleetRolloutDoc,
}

impl RolloutOutcome {
    /// The `kind: "fleet"` report inputs with the `rollout` block filled
    /// in.
    pub fn report_inputs(&self, spec: &ScenarioSpec) -> FleetInputs {
        let mut inp = self.fleet.report_inputs(spec);
        inp.rollout = Some(self.stats.clone());
        inp
    }
}

/// Per-device downlink verdict from the deterministic pre-pass.
struct Downlink {
    received: bool,
    chunks_sent: u64,
    chunks_lost: u64,
}

/// Attempts to downlink all `chunks` image chunks to `device`, retrying
/// each chunk up to the scenario's retry budget. Aborts at the first chunk
/// that exhausts its attempts — the device keeps whatever partial image it
/// has in the shadow slot, which the two-phase protocol never activates.
fn downlink(medium: &MediumSpec, device: u32, chunks: u32, attempts: u32) -> Downlink {
    let mut d = Downlink {
        received: true,
        chunks_sent: 0,
        chunks_lost: 0,
    };
    for chunk in 0..chunks {
        let mut delivered = false;
        for attempt in 0..attempts {
            d.chunks_sent += 1;
            if medium.downlink_drops(device, chunk, attempt) {
                d.chunks_lost += 1;
            } else {
                delivered = true;
                break;
            }
        }
        if !delivered {
            d.received = false;
            break;
        }
    }
    d
}

/// Runs a rolling update of `spec`'s fleet to `policy.target_seq`.
///
/// The scenario's app is fixed to `ota-update` (two variants: received the
/// image / did not); the scenario's kernel decides the on-device protocol
/// via [`kernel::KernelKind::two_phase_update`]. Everything else — supply,
/// faults, medium, seeds, `jobs` — is the scenario's own.
pub fn run_rollout(spec: &ScenarioSpec, policy: &RolloutPolicy) -> Result<RolloutOutcome, String> {
    if spec.count == 0 {
        return Err("a rollout needs at least 1 device".into());
    }
    if policy.wave_size == 0 {
        return Err("rollout wave_size must be at least 1".into());
    }
    if policy.target_seq < 2 {
        return Err("rollout target_seq must be at least 2 (1 is the factory image)".into());
    }

    let updated_cfg = OtaUpdateCfg {
        target_seq: policy.target_seq,
        two_phase: spec.device.kernel.two_phase_update(),
        ..OtaUpdateCfg::default()
    };
    let stale_cfg = OtaUpdateCfg {
        target_seq: 1,
        ..updated_cfg.clone()
    };
    // One shared CoW snapshot per app variant, built once on the
    // coordinator; allocator addresses are deterministic, so every
    // worker's lazily built template matches its snapshot.
    let snapshot_of = |cfg: &OtaUpdateCfg| -> McuSnapshot {
        let mut template = Mcu::new(Supply::continuous());
        ota_update::build(&mut template, cfg);
        template.snapshot()
    };
    let snaps = [snapshot_of(&stale_cfg), snapshot_of(&updated_cfg)];
    let chunks = updated_cfg
        .payload_words
        .div_ceil(updated_cfg.chunk_words.max(1));
    let cfgs = [stale_cfg, updated_cfg];
    let attempts = 1 + spec.device.fault.retry.max_retries;
    let waves = spec.count.div_ceil(policy.wave_size);

    let mut stats = FleetRolloutDoc {
        target_seq: policy.target_seq as u64,
        wave_size: policy.wave_size as u64,
        waves: waves as u64,
        ..FleetRolloutDoc::default()
    };
    let mut results: Vec<DeviceResult> = Vec::with_capacity(spec.count as usize);
    let mut pool_total: Option<PoolStats> = None;
    let mut aborted = false;

    for wave in 0..waves {
        let first = wave * policy.wave_size;
        let last = (first + policy.wave_size).min(spec.count);
        let offered = !aborted;
        if offered {
            stats.waves_rolled_out += 1;
        }

        // Deterministic gateway-side pre-pass: who gets the full image.
        let items: Vec<(u32, bool)> = (first..last)
            .map(|device| {
                if !offered {
                    stats.stale += 1;
                    return (device, false);
                }
                stats.offered += 1;
                let d = downlink(&spec.medium, device, chunks, attempts);
                stats.downlink_chunks_sent += d.chunks_sent;
                stats.downlink_chunks_lost += d.chunks_lost;
                if !d.received {
                    stats.stragglers += 1;
                }
                (device, d.received)
            })
            .collect();

        // Device phase: same restore discipline as `run_fleet`, with the
        // worker cache keyed by app variant.
        let (wave_results, pool) = run_indexed(
            spec.jobs,
            &items,
            HashMap::<bool, (Mcu, App)>::new,
            |cache, _, &(device, received)| {
                let (mcu, app) = cache.entry(received).or_insert_with(|| {
                    let mut mcu = Mcu::new(Supply::continuous());
                    let (app, _) = ota_update::build(&mut mcu, &cfgs[received as usize]);
                    (mcu, app)
                });
                mcu.restore(&snaps[received as usize]);
                mcu.supply = spec.supply_for_device(device);
                let mut periph = Peripherals::new(spec.device_seed(device));
                let fault = spec.fault_for_device(device);
                fault.apply(&mut periph);
                let mut rt = spec.kernel_builder().with_faults(fault).build();
                let cfg = ExecConfig {
                    retry: fault.retry,
                    ..ExecConfig::default()
                };
                let r = run_app(app, rt.as_mut(), mcu, &mut periph, &cfg);
                DeviceResult {
                    device,
                    seed: spec.device_seed(device),
                    outcome: r.outcome,
                    verdict: r.verdict,
                    wall_us: r.wall_us,
                    on_us: r.on_us,
                    stats: r.stats,
                    packets: periph.radio.packets().to_vec(),
                }
            },
        );
        merge_pool(&mut pool_total, pool, first as usize);

        // Gateway-side wave review: any received update that did not land
        // completed, correct, and probe-clean is a regression.
        let regressed = wave_results.iter().zip(&items).any(|(r, &(_, received))| {
            received
                && (r.outcome != Outcome::Completed
                    || r.verdict != Some(Verdict::Correct)
                    || r.stats.counter(PROBE_VERSION_TORN) > 0
                    || r.stats.counter(PROBE_DUPLICATE_ACTIVATION) > 0)
        });
        for (r, &(_, received)) in wave_results.iter().zip(&items) {
            stats.duplicate_activations += r.stats.counter(PROBE_DUPLICATE_ACTIVATION);
            stats.version_torn += r.stats.counter(PROBE_VERSION_TORN);
            if received {
                let ok = r.outcome == Outcome::Completed && r.verdict == Some(Verdict::Correct);
                if ok {
                    stats.updated += 1;
                } else {
                    stats.update_failed += 1;
                }
            }
        }
        results.extend(wave_results);
        if offered && policy.abort_on_regression && regressed {
            aborted = true;
        }
    }
    stats.aborted = aborted;

    let gateway = reconcile(&results, &spec.medium);
    Ok(RolloutOutcome {
        fleet: FleetOutcome {
            results,
            gateway,
            pool: pool_total.expect("at least one wave ran"),
        },
        stats,
    })
}

/// Folds one wave's pool record into the running total: wall-clock sums,
/// per-worker tallies sum elementwise, and item indices shift by the
/// wave's first device so they index the whole fleet.
fn merge_pool(total: &mut Option<PoolStats>, wave: PoolStats, base: usize) {
    let Some(t) = total else {
        let mut wave = wave;
        for indices in &mut wave.indices_per_worker {
            for i in indices {
                *i += base;
            }
        }
        *total = Some(wave);
        return;
    };
    t.jobs = t.jobs.max(wave.jobs);
    t.wall_us += wave.wall_us;
    let widen = |v: &mut Vec<u64>, n: usize| v.resize(v.len().max(n), 0);
    widen(&mut t.items_per_worker, wave.items_per_worker.len());
    widen(&mut t.busy_us_per_worker, wave.busy_us_per_worker.len());
    t.indices_per_worker.resize(
        t.indices_per_worker
            .len()
            .max(wave.indices_per_worker.len()),
        Vec::new(),
    );
    for (w, n) in wave.items_per_worker.iter().enumerate() {
        t.items_per_worker[w] += n;
    }
    for (w, n) in wave.busy_us_per_worker.iter().enumerate() {
        t.busy_us_per_worker[w] += n;
    }
    for (w, indices) in wave.indices_per_worker.iter().enumerate() {
        t.indices_per_worker[w].extend(indices.iter().map(|i| i + base));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_exec::{AppSpec, DeviceSpec};
    use kernel::KernelKind;

    fn rollout_spec(count: u32, kernel: KernelKind) -> ScenarioSpec {
        ScenarioSpec {
            device: DeviceSpec {
                app: AppSpec::Named("ota-update".into()),
                kernel,
                ..DeviceSpec::default()
            },
            count,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn easeio_rollout_converges_with_zero_duplicates() {
        let spec = rollout_spec(24, KernelKind::EaseIo);
        let policy = RolloutPolicy {
            wave_size: 7,
            ..RolloutPolicy::default()
        };
        let r = run_rollout(&spec, &policy).unwrap();
        let s = &r.stats;
        assert_eq!(s.waves, 4);
        assert_eq!(s.waves_rolled_out, 4);
        assert!(!s.aborted);
        assert_eq!(s.updated, 24);
        assert_eq!(s.update_failed + s.stragglers + s.stale, 0);
        assert_eq!(s.duplicate_activations, 0);
        assert_eq!(s.version_torn, 0);
        assert_eq!(r.fleet.results.len(), 24);
        // Device order is the merge order regardless of wave boundaries.
        for (i, d) in r.fleet.results.iter().enumerate() {
            assert_eq!(d.device, i as u32);
        }
    }

    #[test]
    fn lossy_downlinks_leave_stragglers_on_the_factory_image() {
        let mut spec = rollout_spec(32, KernelKind::EaseIo);
        spec.medium = MediumSpec::lossy(9, 400);
        let r = run_rollout(&spec, &RolloutPolicy::default()).unwrap();
        let s = &r.stats;
        assert!(s.stragglers > 0, "40% chunk loss must strand someone");
        assert!(s.updated > 0, "retries must get someone through");
        assert_eq!(s.updated + s.update_failed + s.stragglers + s.stale, 32);
        assert!(s.downlink_chunks_lost > 0);
        assert!(s.downlink_chunks_sent > s.downlink_chunks_lost);
        // Stragglers still finish their work loop, just on version 1.
        assert!(!s.aborted, "channel loss is not a regression");
        assert_eq!(s.updated + s.stragglers, 32);
    }

    #[test]
    fn degenerate_policies_are_rejected() {
        let spec = rollout_spec(4, KernelKind::EaseIo);
        for policy in [
            RolloutPolicy {
                wave_size: 0,
                ..RolloutPolicy::default()
            },
            RolloutPolicy {
                target_seq: 1,
                ..RolloutPolicy::default()
            },
        ] {
            assert!(run_rollout(&spec, &policy).is_err());
        }
        assert!(run_rollout(
            &rollout_spec(0, KernelKind::EaseIo),
            &RolloutPolicy::default()
        )
        .is_err());
    }
}
