//! Rolling over-the-air update across the fleet — the gateway side of the
//! crash-safe update subsystem.
//!
//! The gateway pushes a new task-graph image (sequence [`RolloutPolicy::
//! target_seq`]) to the fleet wave by wave. For each device in an offered
//! wave it downlinks the image in the same chunks the device stages at
//! ([`OtaUpdateCfg::chunk_words`]); every chunk is retried through the
//! scenario's existing retry budget (`1 + max_retries` attempts) against
//! the shared medium's seeded downlink loss
//! ([`MediumSpec::downlink_drops`]). A device whose downlink never
//! completes is a **straggler**: it keeps running on the factory image.
//! Devices that did receive the image run the two-phase (or, under the
//! Naive kernel, in-place) update from `apps::ota_update`.
//!
//! After each wave the gateway inspects the wave's results. A
//! **regression** — a received update that did not end completed, correct,
//! and probe-clean — aborts the rollout when
//! [`RolloutPolicy::abort_on_regression`] is set: later waves are never
//! offered the image and stay **stale** on the factory version. This is
//! what turns the crashcheck-level old-or-new guarantee into a fleet
//! policy: under EaseIO every offered-and-received device converges on the
//! target with zero duplicate activations, while the Naive baseline's torn
//! images trip the abort.
//!
//! Determinism mirrors [`run_fleet`](crate::run_fleet): downlink draws are
//! pure in `(medium seed, device, chunk, attempt)`, device results depend
//! only on the device index, waves merge in device order — so the rollout
//! report is byte-identical at any `--jobs` width, and a 1-device
//! no-loss rollout reproduces the single-device staged update exactly.
//!
//! Like the plain fleet, the rollout has a streamed twin
//! ([`run_rollout_streamed`]): each wave's device records go through a
//! per-wave sharded sink merged into one shared JSONL stream (waves are
//! device-ordered, so concatenating the merged waves preserves global
//! device order), and per-device results fold into a [`FleetAgg`] instead
//! of accumulating.

use crate::telemetry::FleetAgg;
use crate::{reconcile, reconcile_logs, DeviceResult, FleetOutcome, GatewayStats};
use apps::ota_update::{self, OtaUpdateCfg};
use easeio_exec::{run_indexed, run_indexed_collect, PoolStats, ScenarioSpec};
use easeio_trace::fleet::{FleetInputs, FleetRolloutDoc};
use easeio_trace::stream::{JsonlWriter, ShardedSink, StreamStats};
use easeio_trace::Progress;
use kernel::update::{PROBE_DUPLICATE_ACTIVATION, PROBE_VERSION_TORN};
use kernel::{run_app, App, ExecConfig, Outcome, Verdict};
use mcu_emu::{Mcu, McuSnapshot, Supply};
use periph::{MediumSpec, Packet, Peripherals};
use std::collections::HashMap;

/// How the gateway rolls the update out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutPolicy {
    /// Sequence number of the image being rolled out (the factory image is
    /// 1, so a rollout targets at least 2).
    pub target_seq: u32,
    /// Devices offered the update per wave.
    pub wave_size: u32,
    /// Stop offering the update after a wave shows a regression.
    pub abort_on_regression: bool,
}

impl Default for RolloutPolicy {
    fn default() -> Self {
        Self {
            target_seq: 2,
            wave_size: 32,
            abort_on_regression: true,
        }
    }
}

/// Which update-safety probe a device tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutViolationKind {
    /// The device recovered a torn image (`PROBE_VERSION_TORN`).
    VersionTorn,
    /// The device activated the image more than once
    /// (`PROBE_DUPLICATE_ACTIVATION`).
    DuplicateActivation,
}

impl RolloutViolationKind {
    /// The violation's report label.
    pub fn label(&self) -> &'static str {
        match self {
            RolloutViolationKind::VersionTorn => "version_torn",
            RolloutViolationKind::DuplicateActivation => "duplicate_activation",
        }
    }
}

/// The first update-safety violation of a rollout, in device order — the
/// anchor the forensics bundle is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutViolation {
    /// The offending device.
    pub device: u32,
    /// The 0-based wave the device was updated in.
    pub wave: u32,
    /// Which probe fired.
    pub kind: RolloutViolationKind,
}

/// One complete rollout: the merged fleet outcome (device order) plus the
/// version-convergence accounting.
#[derive(Debug, Clone)]
pub struct RolloutOutcome {
    /// Per-device results and gateway reconciliation, as in a plain fleet
    /// run.
    pub fleet: FleetOutcome,
    /// The `rollout` report block.
    pub stats: FleetRolloutDoc,
    /// First device that tripped an update-safety probe, if any.
    pub first_violation: Option<RolloutViolation>,
}

impl RolloutOutcome {
    /// The `kind: "fleet"` report inputs with the `rollout` block filled
    /// in.
    pub fn report_inputs(&self, spec: &ScenarioSpec) -> FleetInputs {
        let mut inp = self.fleet.report_inputs(spec);
        inp.rollout = Some(self.stats.clone());
        inp
    }
}

/// A streamed rollout: bounded aggregate, gateway accounting, and the
/// version-convergence stats, with per-device records on disk.
#[derive(Debug)]
pub struct StreamedRolloutOutcome {
    /// Fleet-wide aggregate (merged per-worker folds across all waves).
    pub agg: FleetAgg,
    /// Gateway delivery accounting over the shared medium.
    pub gateway: GatewayStats,
    /// Worker utilization, summed over waves.
    pub pool: PoolStats,
    /// What the per-wave sinks merged, summed over waves.
    pub stream: StreamStats,
    /// The `rollout` report block.
    pub stats: FleetRolloutDoc,
    /// First device that tripped an update-safety probe, if any.
    pub first_violation: Option<RolloutViolation>,
}

impl StreamedRolloutOutcome {
    /// The `kind: "fleet"` report inputs — byte-identical to
    /// [`RolloutOutcome::report_inputs`] outside the stripped `timing`
    /// block.
    pub fn report_inputs(&self, spec: &ScenarioSpec) -> FleetInputs {
        let mut inp = crate::fleet_inputs(
            spec,
            &self.agg,
            &self.gateway,
            crate::timing_doc(&self.pool, Some(self.stream.records)),
        );
        inp.rollout = Some(self.stats.clone());
        inp
    }
}

/// Per-device downlink verdict from the deterministic pre-pass.
struct Downlink {
    received: bool,
    chunks_sent: u64,
    chunks_lost: u64,
}

/// Attempts to downlink all `chunks` image chunks to `device`, retrying
/// each chunk up to the scenario's retry budget. Aborts at the first chunk
/// that exhausts its attempts — the device keeps whatever partial image it
/// has in the shadow slot, which the two-phase protocol never activates.
fn downlink(medium: &MediumSpec, device: u32, chunks: u32, attempts: u32) -> Downlink {
    let mut d = Downlink {
        received: true,
        chunks_sent: 0,
        chunks_lost: 0,
    };
    for chunk in 0..chunks {
        let mut delivered = false;
        for attempt in 0..attempts {
            d.chunks_sent += 1;
            if medium.downlink_drops(device, chunk, attempt) {
                d.chunks_lost += 1;
            } else {
                delivered = true;
                break;
            }
        }
        if !delivered {
            d.received = false;
            break;
        }
    }
    d
}

/// The validated, precomputed rollout plan shared by both execution paths.
struct RolloutPlan {
    snaps: [McuSnapshot; 2],
    cfgs: [OtaUpdateCfg; 2],
    chunks: u32,
    attempts: u32,
    waves: u32,
}

fn plan_rollout(spec: &ScenarioSpec, policy: &RolloutPolicy) -> Result<RolloutPlan, String> {
    if spec.count == 0 {
        return Err("a rollout needs at least 1 device".into());
    }
    if policy.wave_size == 0 {
        return Err("rollout wave_size must be at least 1".into());
    }
    if policy.target_seq < 2 {
        return Err("rollout target_seq must be at least 2 (1 is the factory image)".into());
    }
    let updated_cfg = OtaUpdateCfg {
        target_seq: policy.target_seq,
        two_phase: spec.device.kernel.two_phase_update(),
        ..OtaUpdateCfg::default()
    };
    let stale_cfg = OtaUpdateCfg {
        target_seq: 1,
        ..updated_cfg.clone()
    };
    // One shared CoW snapshot per app variant, built once on the
    // coordinator; allocator addresses are deterministic, so every
    // worker's lazily built template matches its snapshot.
    let snapshot_of = |cfg: &OtaUpdateCfg| -> McuSnapshot {
        let mut template = Mcu::new(Supply::continuous());
        ota_update::build(&mut template, cfg);
        template.snapshot()
    };
    let chunks = updated_cfg
        .payload_words
        .div_ceil(updated_cfg.chunk_words.max(1));
    Ok(RolloutPlan {
        snaps: [snapshot_of(&stale_cfg), snapshot_of(&updated_cfg)],
        cfgs: [stale_cfg, updated_cfg],
        chunks,
        attempts: 1 + spec.device.fault.retry.max_retries,
        waves: spec.count.div_ceil(policy.wave_size),
    })
}

/// Runs one OTA device on a worker's cached machine (cache keyed by app
/// variant). Pure in `(spec, plan, device, received)`.
fn run_ota_device(
    spec: &ScenarioSpec,
    plan: &RolloutPlan,
    cache: &mut HashMap<bool, (Mcu, App)>,
    device: u32,
    received: bool,
) -> DeviceResult {
    let (mcu, app) = cache.entry(received).or_insert_with(|| {
        let mut mcu = Mcu::new(Supply::continuous());
        let (app, _) = ota_update::build(&mut mcu, &plan.cfgs[received as usize]);
        (mcu, app)
    });
    mcu.restore(&plan.snaps[received as usize]);
    mcu.supply = spec.supply_for_device(device);
    let mut periph = Peripherals::new(spec.device_seed(device));
    let fault = spec.fault_for_device(device);
    fault.apply(&mut periph);
    let mut rt = spec.kernel_builder().with_faults(fault).build();
    let cfg = ExecConfig {
        retry: fault.retry,
        ..ExecConfig::default()
    };
    let r = run_app(app, rt.as_mut(), mcu, &mut periph, &cfg);
    DeviceResult {
        device,
        seed: spec.device_seed(device),
        outcome: r.outcome,
        verdict: r.verdict,
        wall_us: r.wall_us,
        on_us: r.on_us,
        stats: r.stats,
        packets: periph.radio.packets().to_vec(),
    }
}

/// Deterministic gateway-side pre-pass for one wave: which devices get
/// the full image, with the downlink accounting folded into `stats`.
fn plan_wave(
    spec: &ScenarioSpec,
    plan: &RolloutPlan,
    first: u32,
    last: u32,
    offered: bool,
    stats: &mut FleetRolloutDoc,
) -> Vec<(u32, bool)> {
    (first..last)
        .map(|device| {
            if !offered {
                stats.stale += 1;
                return (device, false);
            }
            stats.offered += 1;
            let d = downlink(&spec.medium, device, plan.chunks, plan.attempts);
            stats.downlink_chunks_sent += d.chunks_sent;
            stats.downlink_chunks_lost += d.chunks_lost;
            if !d.received {
                stats.stragglers += 1;
            }
            (device, d.received)
        })
        .collect()
}

/// Gateway-side wave review: folds version accounting and the first
/// update-safety violation into the running state and returns whether any
/// received update regressed (did not land completed, correct, and
/// probe-clean).
fn review_wave(
    wave: u32,
    items: &[(u32, bool)],
    wave_results: &[DeviceResult],
    stats: &mut FleetRolloutDoc,
    first_violation: &mut Option<RolloutViolation>,
) -> bool {
    let mut regressed = false;
    for (r, &(device, received)) in wave_results.iter().zip(items) {
        let torn = r.stats.counter(PROBE_VERSION_TORN);
        let dups = r.stats.counter(PROBE_DUPLICATE_ACTIVATION);
        stats.duplicate_activations += dups;
        stats.version_torn += torn;
        if first_violation.is_none() {
            let kind = if torn > 0 {
                Some(RolloutViolationKind::VersionTorn)
            } else if dups > 0 {
                Some(RolloutViolationKind::DuplicateActivation)
            } else {
                None
            };
            if let Some(kind) = kind {
                *first_violation = Some(RolloutViolation { device, wave, kind });
            }
        }
        if received {
            let ok = r.outcome == Outcome::Completed && r.verdict == Some(Verdict::Correct);
            if ok {
                stats.updated += 1;
            } else {
                stats.update_failed += 1;
            }
            if !ok || torn > 0 || dups > 0 {
                regressed = true;
            }
        }
    }
    regressed
}

/// Runs a rolling update of `spec`'s fleet to `policy.target_seq`.
///
/// The scenario's app is fixed to `ota-update` (two variants: received the
/// image / did not); the scenario's kernel decides the on-device protocol
/// via [`kernel::KernelKind::two_phase_update`]. Everything else — supply,
/// faults, medium, seeds, `jobs` — is the scenario's own.
pub fn run_rollout(spec: &ScenarioSpec, policy: &RolloutPolicy) -> Result<RolloutOutcome, String> {
    run_rollout_observed(spec, policy, None)
}

/// [`run_rollout`] with a live progress channel: ticks one unit per
/// device in a `"devices"` phase, with the wave index alongside.
pub fn run_rollout_observed(
    spec: &ScenarioSpec,
    policy: &RolloutPolicy,
    progress: Option<&Progress>,
) -> Result<RolloutOutcome, String> {
    let plan = plan_rollout(spec, policy)?;
    if let Some(p) = progress {
        p.begin_phase("devices", spec.count as u64);
        p.set_wave(0, plan.waves as u64);
    }

    let mut stats = FleetRolloutDoc {
        target_seq: policy.target_seq as u64,
        wave_size: policy.wave_size as u64,
        waves: plan.waves as u64,
        ..FleetRolloutDoc::default()
    };
    let mut first_violation = None;
    let mut results: Vec<DeviceResult> = Vec::with_capacity(spec.count as usize);
    let mut pool_total: Option<PoolStats> = None;
    let mut aborted = false;

    for wave in 0..plan.waves {
        let first = wave * policy.wave_size;
        let last = (first + policy.wave_size).min(spec.count);
        let offered = !aborted;
        if offered {
            stats.waves_rolled_out += 1;
        }
        if let Some(p) = progress {
            p.set_wave(wave as u64 + 1, plan.waves as u64);
        }
        let items = plan_wave(spec, &plan, first, last, offered, &mut stats);

        // Device phase: same restore discipline as `run_fleet`, with the
        // worker cache keyed by app variant.
        let (wave_results, pool) = run_indexed(
            spec.jobs,
            &items,
            HashMap::<bool, (Mcu, App)>::new,
            |cache, _, &(device, received)| {
                let r = run_ota_device(spec, &plan, cache, device, received);
                if let Some(p) = progress {
                    p.add(1);
                }
                r
            },
        );
        merge_pool(&mut pool_total, pool, first as usize);

        let regressed = review_wave(
            wave,
            &items,
            &wave_results,
            &mut stats,
            &mut first_violation,
        );
        results.extend(wave_results);
        if offered && policy.abort_on_regression && regressed {
            aborted = true;
        }
    }
    stats.aborted = aborted;

    if let Some(p) = progress {
        p.begin_phase("reconcile", 1);
    }
    let gateway = reconcile(&results, &spec.medium);
    if let Some(p) = progress {
        p.add(1);
    }
    Ok(RolloutOutcome {
        fleet: FleetOutcome {
            results,
            gateway,
            pool: pool_total.expect("at least one wave ran"),
        },
        stats,
        first_violation,
    })
}

/// Runs the rollout in bounded memory: each wave streams its device
/// records through a per-wave sharded sink merged into `out` (waves are
/// device-ordered, so the concatenated stream is globally device-ordered
/// and byte-identical at any `--jobs` width), and per-device results fold
/// into one [`FleetAgg`].
pub fn run_rollout_streamed(
    spec: &ScenarioSpec,
    policy: &RolloutPolicy,
    out: &mut JsonlWriter,
    progress: Option<&Progress>,
) -> Result<StreamedRolloutOutcome, String> {
    let plan = plan_rollout(spec, policy)?;
    if let Some(p) = progress {
        p.begin_phase("devices", spec.count as u64);
        p.set_wave(0, plan.waves as u64);
    }

    let mut stats = FleetRolloutDoc {
        target_seq: policy.target_seq as u64,
        wave_size: policy.wave_size as u64,
        waves: plan.waves as u64,
        ..FleetRolloutDoc::default()
    };
    let mut first_violation = None;
    let mut agg = FleetAgg::new();
    let mut packets: Vec<(u32, Vec<Packet>)> = Vec::with_capacity(spec.count as usize);
    let mut stream = StreamStats::default();
    let mut pool_total: Option<PoolStats> = None;
    let mut aborted = false;

    for wave in 0..plan.waves {
        let first = wave * policy.wave_size;
        let last = (first + policy.wave_size).min(spec.count);
        let offered = !aborted;
        if offered {
            stats.waves_rolled_out += 1;
        }
        if let Some(p) = progress {
            p.set_wave(wave as u64 + 1, plan.waves as u64);
        }
        let items = plan_wave(spec, &plan, first, last, offered, &mut stats);

        let jobs = spec.jobs.max(1).min(items.len().max(1));
        let sink = ShardedSink::create(&format!("{}.wave{wave}", out.path()), jobs)
            .map_err(|e| format!("stream shards for {}: {e}", out.path()))?;
        // The wave is small (`wave_size` devices), so holding its
        // `DeviceResult`s for the review pass keeps memory bounded by the
        // wave, not the fleet.
        let (wave_results, aggs, pool) = run_indexed_collect(
            spec.jobs,
            &items,
            || {
                (
                    HashMap::<bool, (Mcu, App)>::new(),
                    FleetAgg::new(),
                    sink.claim(),
                )
            },
            |(cache, agg, shard), _, &(device, received)| {
                let r = run_ota_device(spec, &plan, cache, device, received);
                agg.observe(&r);
                sink.write(*shard, device as u64, &r.record_line());
                if let Some(p) = progress {
                    p.add(1);
                }
                r
            },
            |(_, agg, _)| agg,
        );
        let wave_stream = sink
            .merge_into(out)
            .map_err(|e| format!("stream merge into {}: {e}", out.path()))?;
        stream.records += wave_stream.records;
        stream.shards = stream.shards.max(wave_stream.shards);
        for worker in &aggs {
            agg.merge(worker);
        }
        merge_pool(&mut pool_total, pool, first as usize);

        let regressed = review_wave(
            wave,
            &items,
            &wave_results,
            &mut stats,
            &mut first_violation,
        );
        packets.extend(wave_results.into_iter().map(|r| (r.device, r.packets)));
        if offered && policy.abort_on_regression && regressed {
            aborted = true;
        }
    }
    stats.aborted = aborted;

    if let Some(p) = progress {
        p.begin_phase("reconcile", 1);
    }
    let gateway = reconcile_logs(
        packets.iter().map(|(d, p)| (*d, p.as_slice())),
        &spec.medium,
    );
    if let Some(p) = progress {
        p.add(1);
    }
    Ok(StreamedRolloutOutcome {
        agg,
        gateway,
        pool: pool_total.expect("at least one wave ran"),
        stream,
        stats,
        first_violation,
    })
}

/// Folds one wave's pool record into the running total: wall-clock sums,
/// per-worker tallies sum elementwise, and item indices shift by the
/// wave's first device so they index the whole fleet.
fn merge_pool(total: &mut Option<PoolStats>, wave: PoolStats, base: usize) {
    let Some(t) = total else {
        let mut wave = wave;
        for indices in &mut wave.indices_per_worker {
            for i in indices {
                *i += base;
            }
        }
        *total = Some(wave);
        return;
    };
    t.jobs = t.jobs.max(wave.jobs);
    t.wall_us += wave.wall_us;
    let widen = |v: &mut Vec<u64>, n: usize| v.resize(v.len().max(n), 0);
    widen(&mut t.items_per_worker, wave.items_per_worker.len());
    widen(&mut t.busy_us_per_worker, wave.busy_us_per_worker.len());
    t.indices_per_worker.resize(
        t.indices_per_worker
            .len()
            .max(wave.indices_per_worker.len()),
        Vec::new(),
    );
    for (w, n) in wave.items_per_worker.iter().enumerate() {
        t.items_per_worker[w] += n;
    }
    for (w, n) in wave.busy_us_per_worker.iter().enumerate() {
        t.busy_us_per_worker[w] += n;
    }
    for (w, indices) in wave.indices_per_worker.iter().enumerate() {
        t.indices_per_worker[w].extend(indices.iter().map(|i| i + base));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeio_exec::{AppSpec, DeviceSpec};
    use kernel::KernelKind;

    fn rollout_spec(count: u32, kernel: KernelKind) -> ScenarioSpec {
        ScenarioSpec {
            device: DeviceSpec {
                app: AppSpec::Named("ota-update".into()),
                kernel,
                ..DeviceSpec::default()
            },
            count,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn easeio_rollout_converges_with_zero_duplicates() {
        let spec = rollout_spec(24, KernelKind::EaseIo);
        let policy = RolloutPolicy {
            wave_size: 7,
            ..RolloutPolicy::default()
        };
        let r = run_rollout(&spec, &policy).unwrap();
        let s = &r.stats;
        assert_eq!(s.waves, 4);
        assert_eq!(s.waves_rolled_out, 4);
        assert!(!s.aborted);
        assert_eq!(s.updated, 24);
        assert_eq!(s.update_failed + s.stragglers + s.stale, 0);
        assert_eq!(s.duplicate_activations, 0);
        assert_eq!(s.version_torn, 0);
        assert!(r.first_violation.is_none());
        assert_eq!(r.fleet.results.len(), 24);
        // Device order is the merge order regardless of wave boundaries.
        for (i, d) in r.fleet.results.iter().enumerate() {
            assert_eq!(d.device, i as u32);
        }
    }

    #[test]
    fn lossy_downlinks_leave_stragglers_on_the_factory_image() {
        let mut spec = rollout_spec(32, KernelKind::EaseIo);
        spec.medium = MediumSpec::lossy(9, 400);
        let r = run_rollout(&spec, &RolloutPolicy::default()).unwrap();
        let s = &r.stats;
        assert!(s.stragglers > 0, "40% chunk loss must strand someone");
        assert!(s.updated > 0, "retries must get someone through");
        assert_eq!(s.updated + s.update_failed + s.stragglers + s.stale, 32);
        assert!(s.downlink_chunks_lost > 0);
        assert!(s.downlink_chunks_sent > s.downlink_chunks_lost);
        // Stragglers still finish their work loop, just on version 1.
        assert!(!s.aborted, "channel loss is not a regression");
        assert_eq!(s.updated + s.stragglers, 32);
    }

    #[test]
    fn degenerate_policies_are_rejected() {
        let spec = rollout_spec(4, KernelKind::EaseIo);
        for policy in [
            RolloutPolicy {
                wave_size: 0,
                ..RolloutPolicy::default()
            },
            RolloutPolicy {
                target_seq: 1,
                ..RolloutPolicy::default()
            },
        ] {
            assert!(run_rollout(&spec, &policy).is_err());
        }
        assert!(run_rollout(
            &rollout_spec(0, KernelKind::EaseIo),
            &RolloutPolicy::default()
        )
        .is_err());
    }

    #[test]
    fn streamed_rollout_matches_in_memory_across_waves() {
        let dir = std::env::temp_dir().join("easeio-fleet-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("rollout-stream-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let spec = rollout_spec(20, KernelKind::EaseIo);
        let policy = RolloutPolicy {
            wave_size: 6,
            ..RolloutPolicy::default()
        };
        let mem = run_rollout(&spec, &policy).unwrap();
        let mut spec3 = spec.clone();
        spec3.jobs = 3;
        let mut out = JsonlWriter::create(&path).unwrap();
        let streamed = run_rollout_streamed(&spec3, &policy, &mut out, None).unwrap();
        drop(out);
        assert_eq!(streamed.gateway, mem.fleet.gateway);
        assert_eq!(streamed.stats.updated, mem.stats.updated);
        assert_eq!(streamed.stats.waves_rolled_out, mem.stats.waves_rolled_out);
        assert_eq!(streamed.first_violation, mem.first_violation);
        assert_eq!(streamed.stream.records, 20);
        let text = std::fs::read_to_string(&path).unwrap();
        let expected: String = mem
            .fleet
            .results
            .iter()
            .map(|r| r.record_line() + "\n")
            .collect();
        assert_eq!(text, expected, "waves concatenate in device order");
        let _ = std::fs::remove_file(&path);
    }
}
