//! The simulated gateway: deterministic merge of every device's radio log
//! over the shared medium, with exactly-once delivery accounting.
//!
//! The gateway is a *pure post-pass*: device runs never observe it, so it
//! can be computed after the fleet finishes, from the per-device radio
//! logs alone. That is what keeps the fleet deterministic at any `--jobs`
//! width — the merge sorts transmissions by `(air-window start, device,
//! per-device index)`, a total order independent of which worker ran which
//! device, and the channel-loss draw hashes `(medium seed, device, index)`
//! rather than anything positional.
//!
//! Collisions are unslotted-ALOHA: transmissions whose air windows overlap
//! in virtual time destroy each other, transitively along an overlap chain.
//! Surviving packets then face the seeded per-link loss. Every packet ends
//! in exactly one bucket — delivered, lost to collision, or lost to the
//! channel — and the report validator rejects any ledger where that does
//! not hold.

use periph::{MediumSpec, Packet};
use std::collections::BTreeMap;

use crate::DeviceResult;

/// The gateway's accounting over one fleet run.
///
/// A packet's *identity* is its (device, sequence) pair, where the
/// sequence is the packet's first payload word (the round counter in the
/// `flaky-radio` relay; the per-device send index for apps that do not
/// number their packets). `air_duplicates` — transmissions beyond the
/// first of an identity — are `Single`-semantics violations on the air:
/// zero under EaseIO, pinned positive by the Naive baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Packets put on the air by all devices.
    pub transmissions: u64,
    /// Distinct (device, sequence) identities among them.
    pub unique_sent: u64,
    /// Transmissions beyond the first of their identity.
    pub air_duplicates: u64,
    /// Packets received (survived collisions and channel loss).
    pub delivered: u64,
    /// Distinct identities among the received packets.
    pub delivered_unique: u64,
    /// Received packets whose identity had already been received.
    pub gateway_duplicates: u64,
    /// Packets destroyed by overlapping air windows.
    pub lost_collision: u64,
    /// Collision-free packets dropped by the seeded channel loss.
    pub lost_channel: u64,
}

impl GatewayStats {
    /// `delivered_unique * 1000 / unique_sent` (0 when nothing was sent).
    pub fn delivery_rate_milli(&self) -> u64 {
        (self.delivered_unique * 1000)
            .checked_div(self.unique_sent)
            .unwrap_or(0)
    }
}

/// One transmission after the merge, in canonical order.
struct AirEvent {
    /// Air-window start (µs).
    start: u64,
    /// Air-window end, exclusive (µs).
    end: u64,
    /// Transmitting device.
    device: u32,
    /// Per-device packet index (the loss-draw key).
    index: u32,
    /// Packet identity: (device, first payload word).
    identity: (u32, i64),
}

/// Merges every device's radio log over the medium and accounts for each
/// packet. Pure in `(results, medium)`: device order inside `results` is
/// canonical (index order from the pool merge), and nothing here depends
/// on host timing.
pub fn reconcile(results: &[DeviceResult], medium: &MediumSpec) -> GatewayStats {
    reconcile_logs(
        results.iter().map(|r| (r.device, r.packets.as_slice())),
        medium,
    )
}

/// [`reconcile`] over bare `(device, radio log)` pairs — what the streamed
/// fleet path retains once per-device results stop accumulating. The
/// radio logs are the one per-device datum the gateway cannot reduce
/// incrementally: collisions couple packets *across* devices through the
/// global air-window order.
pub fn reconcile_logs<'a>(
    logs: impl IntoIterator<Item = (u32, &'a [Packet])>,
    medium: &MediumSpec,
) -> GatewayStats {
    let mut events: Vec<AirEvent> = Vec::new();
    for (device, packets) in logs {
        for (k, pkt) in packets.iter().enumerate() {
            let (start, end) = medium.window(pkt);
            let seq = pkt.payload.first().copied().unwrap_or(k as i32) as i64;
            events.push(AirEvent {
                start,
                end,
                device,
                index: k as u32,
                identity: (device, seq),
            });
        }
    }
    // The canonical merge order: window start, then device, then index.
    // Total and input-order-independent, so any shard layout sorts the
    // same way.
    events.sort_by_key(|e| (e.start, e.device, e.index));

    // Overlap chains destroy every member (unslotted ALOHA). Windows are
    // half-open, so a transmission starting exactly when another ends is
    // clean.
    let mut collided = vec![false; events.len()];
    let mut i = 0;
    while i < events.len() {
        let mut j = i + 1;
        let mut chain_end = events[i].end;
        while j < events.len() && events[j].start < chain_end {
            chain_end = chain_end.max(events[j].end);
            j += 1;
        }
        if j - i > 1 {
            for c in collided.iter_mut().take(j).skip(i) {
                *c = true;
            }
        }
        i = j;
    }

    let mut sent_by_identity: BTreeMap<(u32, i64), u64> = BTreeMap::new();
    let mut received_by_identity: BTreeMap<(u32, i64), u64> = BTreeMap::new();
    let mut stats = GatewayStats::default();
    for (e, &lost) in events.iter().zip(&collided) {
        stats.transmissions += 1;
        *sent_by_identity.entry(e.identity).or_insert(0) += 1;
        if lost {
            stats.lost_collision += 1;
        } else if medium.drops(e.device, e.index) {
            stats.lost_channel += 1;
        } else {
            stats.delivered += 1;
            *received_by_identity.entry(e.identity).or_insert(0) += 1;
        }
    }
    stats.unique_sent = sent_by_identity.len() as u64;
    stats.air_duplicates = stats.transmissions - stats.unique_sent;
    stats.delivered_unique = received_by_identity.len() as u64;
    stats.gateway_duplicates = stats.delivered - stats.delivered_unique;
    stats
}

/// The first `Single`-semantics violation on the air, for the forensics
/// bundle: which device retransmitted which sequence, and at which
/// per-device packet indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AirDuplicate {
    /// The retransmitting device.
    pub device: u32,
    /// The duplicated packet sequence (first payload word).
    pub seq: i64,
    /// Per-device index of the identity's first transmission.
    pub first_index: u32,
    /// Per-device index of the duplicate.
    pub dup_index: u32,
}

/// Scans the radio logs in device order for the first air duplicate.
/// A duplicate's identity is per-device, so the scan needs only one
/// device's log at a time — usable from either execution path.
pub fn find_air_duplicate<'a>(
    logs: impl IntoIterator<Item = (u32, &'a [Packet])>,
) -> Option<AirDuplicate> {
    for (device, packets) in logs {
        let mut first_of: BTreeMap<i64, u32> = BTreeMap::new();
        for (k, pkt) in packets.iter().enumerate() {
            let seq = pkt.payload.first().copied().unwrap_or(k as i32) as i64;
            if let Some(&first) = first_of.get(&seq) {
                return Some(AirDuplicate {
                    device,
                    seq,
                    first_index: first,
                    dup_index: k as u32,
                });
            }
            first_of.insert(seq, k as u32);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::Outcome;
    use mcu_emu::RunStats;
    use periph::Packet;

    fn device(id: u32, packets: Vec<Packet>) -> DeviceResult {
        DeviceResult {
            device: id,
            seed: id as u64,
            outcome: Outcome::Completed,
            verdict: None,
            wall_us: 0,
            on_us: 0,
            stats: RunStats::new(),
            packets,
        }
    }

    fn pkt(time_us: u64, seq: i32) -> Packet {
        Packet {
            time_us,
            payload: vec![seq, 99],
        }
    }

    /// Medium with 40 µs windows for the 2-word test packets and no loss.
    fn medium() -> MediumSpec {
        MediumSpec::ideal()
    }

    #[test]
    fn disjoint_windows_all_deliver() {
        let devices = [
            device(0, vec![pkt(100, 0), pkt(300, 1)]),
            device(1, vec![pkt(200, 0)]),
        ];
        let g = reconcile(&devices, &medium());
        assert_eq!(g.transmissions, 3);
        assert_eq!(g.delivered, 3);
        assert_eq!(g.delivered_unique, 3);
        assert_eq!(g.air_duplicates, 0);
        assert_eq!(g.lost_collision, 0);
        assert_eq!(g.delivery_rate_milli(), 1000);
    }

    #[test]
    fn overlapping_windows_destroy_both() {
        // Completion times 20 µs apart; the 40 µs windows overlap.
        let devices = [device(0, vec![pkt(100, 0)]), device(1, vec![pkt(120, 0)])];
        let g = reconcile(&devices, &medium());
        assert_eq!(g.lost_collision, 2);
        assert_eq!(g.delivered, 0);
        // Both identities were sent exactly once; nothing arrived.
        assert_eq!(g.unique_sent, 2);
        assert_eq!(g.delivery_rate_milli(), 0);
    }

    #[test]
    fn collision_chains_are_transitive_and_half_open() {
        // a: [60, 100), b: [90, 130), c: [125, 165) — a-b overlap, b-c
        // overlap, a-c don't: one chain, all three destroyed. d starts
        // exactly at the chain's end (165) and is clean.
        let devices = [
            device(0, vec![pkt(100, 0)]),
            device(1, vec![pkt(130, 0)]),
            device(2, vec![pkt(165, 0)]),
            device(3, vec![pkt(205, 0)]),
        ];
        let g = reconcile(&devices, &medium());
        assert_eq!(g.lost_collision, 3);
        assert_eq!(g.delivered, 1);
    }

    #[test]
    fn retransmissions_of_one_identity_are_air_duplicates() {
        // Device re-sends round 0 (a Single violation), well separated.
        let devices = [device(0, vec![pkt(100, 0), pkt(300, 0), pkt(500, 1)])];
        let g = reconcile(&devices, &medium());
        assert_eq!(g.transmissions, 3);
        assert_eq!(g.unique_sent, 2);
        assert_eq!(g.air_duplicates, 1);
        assert_eq!(g.delivered, 3);
        assert_eq!(g.delivered_unique, 2);
        assert_eq!(g.gateway_duplicates, 1);
    }

    #[test]
    fn same_sequence_on_different_devices_is_not_a_duplicate() {
        let devices = [device(0, vec![pkt(100, 0)]), device(1, vec![pkt(300, 0)])];
        let g = reconcile(&devices, &medium());
        assert_eq!(g.unique_sent, 2);
        assert_eq!(g.air_duplicates, 0);
    }

    #[test]
    fn channel_loss_applies_only_to_collision_free_packets() {
        let lossy = MediumSpec::lossy(3, 1000); // every survivor is dropped
        let devices = [device(0, vec![pkt(100, 0)]), device(1, vec![pkt(120, 0)])];
        let g = reconcile(&devices, &lossy);
        // The two collide first; channel loss never sees them.
        assert_eq!(g.lost_collision, 2);
        assert_eq!(g.lost_channel, 0);
        let clean = [device(0, vec![pkt(100, 0)])];
        let g = reconcile(&clean, &lossy);
        assert_eq!(g.lost_channel, 1);
        assert_eq!(g.delivered, 0);
    }

    #[test]
    fn accounting_always_balances() {
        let lossy = MediumSpec::lossy(9, 300);
        let devices: Vec<DeviceResult> = (0..16)
            .map(|d| {
                device(
                    d,
                    (0..8)
                        .map(|k| pkt(80 * d as u64 + 61 * k, k as i32))
                        .collect(),
                )
            })
            .collect();
        let g = reconcile(&devices, &lossy);
        assert_eq!(g.transmissions, 128);
        assert_eq!(
            g.delivered + g.lost_collision + g.lost_channel,
            g.transmissions
        );
        assert_eq!(g.unique_sent + g.air_duplicates, g.transmissions);
        assert_eq!(g.delivered_unique + g.gateway_duplicates, g.delivered);
    }

    #[test]
    fn first_air_duplicate_is_found_with_its_indices() {
        let devices = [
            device(0, vec![pkt(100, 0), pkt(300, 1)]),
            device(1, vec![pkt(100, 0), pkt(300, 1), pkt(500, 0)]),
        ];
        let logs = devices.iter().map(|d| (d.device, d.packets.as_slice()));
        let dup = find_air_duplicate(logs).unwrap();
        assert_eq!(
            dup,
            AirDuplicate {
                device: 1,
                seq: 0,
                first_index: 0,
                dup_index: 2
            }
        );
        let clean = [device(0, vec![pkt(100, 0), pkt(300, 1)])];
        assert!(
            find_air_duplicate(clean.iter().map(|d| (d.device, d.packets.as_slice()))).is_none()
        );
    }

    #[test]
    fn reconcile_is_independent_of_result_order() {
        let lossy = MediumSpec::lossy(5, 200);
        let mut devices: Vec<DeviceResult> = (0..8)
            .map(|d| {
                device(
                    d,
                    (0..4)
                        .map(|k| pkt(97 * d as u64 + 53 * k, k as i32))
                        .collect(),
                )
            })
            .collect();
        let forward = reconcile(&devices, &lossy);
        devices.reverse();
        assert_eq!(reconcile(&devices, &lossy), forward);
    }
}
