//! Bounded-memory fleet aggregation.
//!
//! [`FleetAgg`] is the single definition of "what a fleet report counts":
//! outcome tallies, the fleet-wide energy ledger, power-failure totals, and
//! distribution sketches over per-device wall-clock, on-time, and energy.
//! Both execution paths build their report through it —
//!
//! * the in-memory path folds the device-ordered `Vec<DeviceResult>`
//!   through [`FleetAgg::observe`];
//! * the streamed path gives every pool worker its own `FleetAgg`, folds
//!   each device in as it completes, and [`FleetAgg::merge`]s the
//!   per-worker aggregates afterwards.
//!
//! Every fold operation here is commutative and associative — u64 sums,
//! counter increments, sketch bucket adds, max — so the merged aggregate
//! is independent of which worker ran which device. That is the property
//! that makes the streamed report byte-identical to the in-memory one at
//! any `--jobs` width, while holding O(workers) memory instead of
//! O(devices).

use crate::DeviceResult;
use easeio_trace::fleet::{FleetEnergyDoc, FleetOutcomesDoc, FleetStragglerDoc};
use easeio_trace::Sketch;
use kernel::{Outcome, Verdict};
use mcu_emu::CAUSE_COUNT;

/// Running fleet-wide aggregate; ~45 KB flat regardless of fleet size.
#[derive(Debug, Default)]
pub struct FleetAgg {
    outcomes: FleetOutcomesDoc,
    energy: FleetEnergyDoc,
    power_failures: u64,
    /// Per-device total wall-clock (µs) — the straggler distribution.
    wall: Sketch,
    /// Per-device on-time (µs).
    on: Sketch,
    /// Per-device total energy (nJ).
    device_energy: Sketch,
}

impl FleetAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one device's result in.
    pub fn observe(&mut self, r: &DeviceResult) {
        match r.outcome {
            Outcome::Completed => self.outcomes.completed += 1,
            Outcome::NonTermination => self.outcomes.non_terminated += 1,
            Outcome::Fault(_) => self.outcomes.faulted += 1,
        }
        match &r.verdict {
            Some(Verdict::Correct) => self.outcomes.correct += 1,
            Some(Verdict::Incorrect(_)) => self.outcomes.incorrect += 1,
            None => self.outcomes.unverified += 1,
        }
        self.energy.total_time_us += r.stats.total_time_us();
        let device_energy = r.stats.total_energy_nj();
        self.energy.total_energy_nj += device_energy;
        for i in 0..CAUSE_COUNT {
            self.energy.cause_energy_nj[i] += r.stats.cause_energy_nj[i];
        }
        self.power_failures += r.stats.power_failures;
        self.wall.record(r.wall_us);
        self.on.record(r.on_us);
        self.device_energy.record(device_energy);
    }

    /// Folds another aggregate in (the streamed path's per-worker merge).
    pub fn merge(&mut self, other: &FleetAgg) {
        let o = &other.outcomes;
        self.outcomes.completed += o.completed;
        self.outcomes.non_terminated += o.non_terminated;
        self.outcomes.faulted += o.faulted;
        self.outcomes.correct += o.correct;
        self.outcomes.incorrect += o.incorrect;
        self.outcomes.unverified += o.unverified;
        self.energy.total_time_us += other.energy.total_time_us;
        self.energy.total_energy_nj += other.energy.total_energy_nj;
        for i in 0..CAUSE_COUNT {
            self.energy.cause_energy_nj[i] += other.energy.cause_energy_nj[i];
        }
        self.power_failures += other.power_failures;
        self.wall.merge(&other.wall);
        self.on.merge(&other.on);
        self.device_energy.merge(&other.device_energy);
    }

    /// Devices folded in so far.
    pub fn devices(&self) -> u64 {
        self.wall.count()
    }

    /// Per-device outcome tally.
    pub fn outcomes(&self) -> FleetOutcomesDoc {
        self.outcomes.clone()
    }

    /// Fleet-wide energy ledger.
    pub fn energy(&self) -> FleetEnergyDoc {
        self.energy.clone()
    }

    /// Power-failure reboots summed across the fleet.
    pub fn power_failures(&self) -> u64 {
        self.power_failures
    }

    /// Straggler percentiles over per-device wall-clock, read from the
    /// sketch: p50/p90/p99 are bucket-floor estimates (within 1/32 of the
    /// exact rank value), the max is exact.
    pub fn stragglers(&self) -> FleetStragglerDoc {
        FleetStragglerDoc {
            p50_wall_us: self.wall.quantile(50),
            p90_wall_us: self.wall.quantile(90),
            p99_wall_us: self.wall.quantile(99),
            max_wall_us: self.wall.max(),
        }
    }

    /// The wall-clock sketch (straggler depth).
    pub fn wall(&self) -> &Sketch {
        &self.wall
    }

    /// The on-time sketch.
    pub fn on(&self) -> &Sketch {
        &self.on
    }

    /// The per-device energy sketch.
    pub fn device_energy(&self) -> &Sketch {
        &self.device_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::RunStats;

    fn result(device: u32, wall_us: u64, outcome: Outcome) -> DeviceResult {
        DeviceResult {
            device,
            seed: device as u64,
            outcome,
            verdict: Some(Verdict::Correct),
            wall_us,
            on_us: wall_us / 2,
            stats: RunStats::new(),
            packets: Vec::new(),
        }
    }

    #[test]
    fn merged_worker_aggregates_equal_the_serial_fold() {
        let results: Vec<DeviceResult> = (0..97u32)
            .map(|d| {
                result(
                    d,
                    (d as u64).wrapping_mul(7919) % 100_000,
                    if d % 5 == 0 {
                        Outcome::NonTermination
                    } else {
                        Outcome::Completed
                    },
                )
            })
            .collect();
        let mut serial = FleetAgg::new();
        for r in &results {
            serial.observe(r);
        }
        // Three "workers" take interleaved devices; merge in a non-worker
        // order.
        let mut workers: Vec<FleetAgg> = (0..3).map(|_| FleetAgg::new()).collect();
        for (i, r) in results.iter().enumerate() {
            workers[i % 3].observe(r);
        }
        let mut merged = FleetAgg::new();
        for k in [1usize, 2, 0] {
            merged.merge(&workers[k]);
        }
        assert_eq!(merged.devices(), serial.devices());
        assert_eq!(merged.outcomes(), serial.outcomes());
        assert_eq!(merged.power_failures(), serial.power_failures());
        assert_eq!(merged.energy().total_time_us, serial.energy().total_time_us);
        assert_eq!(merged.stragglers(), serial.stragglers());
    }

    #[test]
    fn straggler_percentiles_stay_monotone() {
        let mut agg = FleetAgg::new();
        for d in 0..500u32 {
            agg.observe(&result(d, (d as u64) * 997 + 13, Outcome::Completed));
        }
        let s = agg.stragglers();
        assert!(s.p50_wall_us <= s.p90_wall_us);
        assert!(s.p90_wall_us <= s.p99_wall_us);
        assert!(s.p99_wall_us <= s.max_wall_us);
        assert_eq!(s.max_wall_us, 499 * 997 + 13, "max is exact");
    }
}
