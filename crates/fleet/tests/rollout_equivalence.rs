//! The rolling-update engine's two identity anchors (ISSUE satellites):
//!
//! 1. **N = 1 ≡ single staged update** — a 1-device no-loss rollout must
//!    reproduce the plain single-device OTA-update run at the same seed
//!    exactly, for any kernel × supply × fault-rate draw. The rollout is
//!    *defined* as waves of the single-device protocol, and this pins it.
//! 2. **Jobs-width identity** — the downlink pre-pass and the device phase
//!    are pure in the device index, so the rollout report (downlink chunk
//!    accounting included) is byte-identical at any `--jobs` width.

use apps::ota_update::{self, OtaUpdateCfg};
use easeio_exec::{AppSpec, DeviceSpec, ScenarioSpec, SupplySpec};
use easeio_fleet::{run_rollout, RolloutPolicy};
use easeio_trace::envelope::identity_document;
use easeio_trace::fleet::build_fleet_report;
use kernel::{FaultSpec, KernelKind};
use periph::MediumSpec;
use proptest::prelude::*;

const PROPTEST_KERNELS: [KernelKind; 3] =
    [KernelKind::Naive, KernelKind::Alpaca, KernelKind::EaseIo];

fn rollout_spec(count: u32, kernel: KernelKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        device: DeviceSpec {
            app: AppSpec::Named("ota-update".into()),
            kernel,
            ..DeviceSpec::default()
        },
        count,
        seed,
        ..ScenarioSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Anchor 1: a 1-device rollout over a lossless medium is the single
    /// staged update — same outcome, verdict, clocks, energy attribution,
    /// and reboot count as running the OTA app directly at the same seed.
    #[test]
    fn one_device_rollout_reproduces_the_single_staged_update(
        kernel_i in 0usize..PROPTEST_KERNELS.len(),
        seed in 0u64..1000,
        supply_i in 0usize..2,
        rate_i in 0usize..3,
    ) {
        let kernel = PROPTEST_KERNELS[kernel_i];
        let rate = [0u32, 20, 50][rate_i];
        let fault = if rate == 0 {
            FaultSpec::none()
        } else {
            FaultSpec::with_rate(seed ^ 0x5eed, rate)
        };
        let mut spec = rollout_spec(1, kernel, seed);
        spec.device.fault = fault;
        spec.supply = [SupplySpec::Timer, SupplySpec::Continuous][supply_i];
        let policy = RolloutPolicy::default();

        let r = run_rollout(&spec, &policy).unwrap();
        prop_assert_eq!(r.fleet.results.len(), 1);
        prop_assert_eq!(r.stats.offered, 1);
        prop_assert_eq!(r.stats.stragglers + r.stats.stale, 0);
        let d = &r.fleet.results[0];

        let cfg = OtaUpdateCfg {
            target_seq: policy.target_seq,
            two_phase: kernel.two_phase_update(),
            ..OtaUpdateCfg::default()
        };
        let builder = |mcu: &mut mcu_emu::Mcu| ota_update::build(mcu, &cfg).0;
        let single = apps::harness::run_once_faulted(
            &builder,
            kernel,
            spec.supply_for_device(0),
            spec.device_seed(0),
            &fault,
        );

        prop_assert_eq!(d.outcome, single.outcome);
        prop_assert_eq!(&d.verdict, &single.verdict);
        prop_assert_eq!(d.wall_us, single.wall_us);
        prop_assert_eq!(d.on_us, single.on_us);
        prop_assert_eq!(d.stats.total_time_us(), single.stats.total_time_us());
        prop_assert_eq!(d.stats.total_energy_nj(), single.stats.total_energy_nj());
        prop_assert_eq!(d.stats.cause_energy_nj, single.stats.cause_energy_nj);
        prop_assert_eq!(d.stats.power_failures, single.stats.power_failures);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Anchor 2: the whole rollout report — downlink chunk deliveries,
    /// stragglers, version buckets, energy — is byte-identical across
    /// worker counts, for lossless and lossy downlinks alike.
    #[test]
    fn rollout_report_is_byte_identical_across_jobs_widths(
        seed in 0u64..500,
        loss_i in 0usize..3,
    ) {
        let loss = [0u32, 200, 450][loss_i];
        let policy = RolloutPolicy {
            wave_size: 7,
            ..RolloutPolicy::default()
        };
        let doc_at = |jobs: usize| {
            let mut spec = rollout_spec(40, KernelKind::EaseIo, seed);
            spec.medium = MediumSpec::lossy(seed ^ 0x77, loss);
            spec.jobs = jobs;
            let r = run_rollout(&spec, &policy).unwrap();
            (
                identity_document(&build_fleet_report(&r.report_inputs(&spec))).to_pretty(),
                r.stats,
            )
        };
        let (reference, stats) = doc_at(1);
        if loss > 0 {
            prop_assert!(stats.downlink_chunks_lost > 0);
        }
        for jobs in [4usize, 8] {
            let (doc, _) = doc_at(jobs);
            prop_assert_eq!(&doc, &reference, "jobs={} diverged from serial", jobs);
        }
    }
}
