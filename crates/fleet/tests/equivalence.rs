//! The fleet engine's two identity anchors (ISSUE satellites):
//!
//! 1. **N = 1 ≡ single run** — a 1-device fleet must reproduce the plain
//!    single-device harness run at the same seed exactly, for any app ×
//!    kernel × fault-rate draw. This is what licenses `SimConfig` (and its
//!    deprecated shim) to be *defined* as the `count == 1` special case of
//!    [`ScenarioSpec`].
//! 2. **Jobs-width identity** — a seeded 256-device fleet's report is
//!    byte-identical at `--jobs` 1, 4 and 8 once host timing is stripped
//!    (`identity_document`), the property the CI fleet smoke gate enforces.

use easeio_exec::{AppSpec, DeviceSpec, ScenarioSpec, SupplySpec};
use easeio_fleet::run_fleet;
use easeio_trace::envelope::identity_document;
use easeio_trace::fleet::build_fleet_report;
use kernel::{FaultSpec, KernelKind};
use proptest::prelude::*;

/// Apps whose build is cheap enough for a proptest inner loop and that
/// exercise distinct I/O shapes (DMA, sensing, radio).
const PROPTEST_APPS: [&str; 3] = ["dma", "temp", "flaky-radio"];
const PROPTEST_KERNELS: [KernelKind; 3] =
    [KernelKind::Naive, KernelKind::Alpaca, KernelKind::EaseIo];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Anchor 1: device 0 of any fleet is *the* single-device run — same
    /// outcome, verdict, clocks, energy attribution, and reboot count as
    /// `apps::harness::run_once_faulted` with the same seed.
    #[test]
    fn one_device_fleet_reproduces_the_single_run(
        app_i in 0usize..PROPTEST_APPS.len(),
        kernel_i in 0usize..PROPTEST_KERNELS.len(),
        seed in 0u64..1000,
        rate_i in 0usize..3,
    ) {
        let rate = [0u32, 20, 50][rate_i];
        let fault = if rate == 0 {
            FaultSpec::none()
        } else {
            FaultSpec::with_rate(seed ^ 0x5eed, rate)
        };
        let spec = ScenarioSpec {
            device: DeviceSpec {
                app: AppSpec::Named(PROPTEST_APPS[app_i].into()),
                kernel: PROPTEST_KERNELS[kernel_i],
                fault,
            },
            count: 1,
            seed,
            ..ScenarioSpec::default()
        };

        let fleet = run_fleet(&spec).unwrap();
        prop_assert_eq!(fleet.results.len(), 1);
        let d = &fleet.results[0];

        let builder = |mcu: &mut mcu_emu::Mcu| spec.build_app(mcu).unwrap();
        let single = apps::harness::run_once_faulted(
            &builder,
            spec.device.kernel,
            spec.supply_for_device(0),
            spec.device_seed(0),
            &fault,
        );

        prop_assert_eq!(d.outcome, single.outcome);
        prop_assert_eq!(&d.verdict, &single.verdict);
        prop_assert_eq!(d.wall_us, single.wall_us);
        prop_assert_eq!(d.on_us, single.on_us);
        prop_assert_eq!(d.stats.total_time_us(), single.stats.total_time_us());
        prop_assert_eq!(d.stats.total_energy_nj(), single.stats.total_energy_nj());
        prop_assert_eq!(d.stats.cause_energy_nj, single.stats.cause_energy_nj);
        prop_assert_eq!(d.stats.power_failures, single.stats.power_failures);
    }
}

fn fleet_256(jobs: usize) -> ScenarioSpec {
    ScenarioSpec {
        device: DeviceSpec {
            app: AppSpec::Named("flaky-radio".into()),
            kernel: KernelKind::EaseIo,
            fault: FaultSpec::with_rate(11, 30),
        },
        count: 256,
        supply: SupplySpec::Timer,
        medium: periph::MediumSpec::lossy(77, 100),
        seed: 1000,
        jobs,
        ..ScenarioSpec::default()
    }
}

/// Anchor 2: the 256-device fleet report is byte-identical across worker
/// counts once host timing is stripped.
#[test]
fn report_is_byte_identical_across_jobs_widths() {
    let reference = {
        let spec = fleet_256(1);
        let fleet = run_fleet(&spec).unwrap();
        identity_document(&build_fleet_report(&fleet.report_inputs(&spec))).to_pretty()
    };
    for jobs in [4, 8] {
        let spec = fleet_256(jobs);
        let fleet = run_fleet(&spec).unwrap();
        let doc = identity_document(&build_fleet_report(&fleet.report_inputs(&spec))).to_pretty();
        assert_eq!(doc, reference, "jobs={jobs} diverged from the serial run");
    }
}

/// The exactly-once headline: under device power failures and peripheral
/// faults, EaseIO's `Single` semantics put zero duplicate identities on the
/// air, while the Naive baseline — which re-executes I/O after every
/// reboot — is pinned to a positive duplicate count.
#[test]
fn easeio_fleet_has_no_air_duplicates_and_naive_pins_them() {
    let spec = fleet_256(4);
    let fleet = run_fleet(&spec).unwrap();
    assert_eq!(
        fleet.gateway.air_duplicates, 0,
        "EaseIO leaked duplicate transmissions: {:?}",
        fleet.gateway
    );
    assert!(fleet.gateway.transmissions > 0);

    let naive = ScenarioSpec {
        device: DeviceSpec {
            kernel: KernelKind::Naive,
            ..fleet_256(4).device
        },
        ..fleet_256(4)
    };
    let fleet = run_fleet(&naive).unwrap();
    assert!(
        fleet.gateway.air_duplicates > 0,
        "the Naive baseline should retransmit across reboots: {:?}",
        fleet.gateway
    );
}
