//! The streamed execution path's identity anchors (ISSUE 10 tentpole):
//!
//! 1. **Streamed ≡ in-memory** — `run_fleet_streamed` /
//!    `run_rollout_streamed` must reproduce the in-memory engines' report
//!    byte-for-byte once host timing is stripped (`identity_document`),
//!    at every `--jobs` width. The streamed path holds only per-worker
//!    aggregates and radio logs, so this is the proof that bounding
//!    memory changed nothing observable.
//! 2. **Stream bytes are canonical** — the merged per-device JSONL is
//!    byte-identical across `--jobs` widths, in device order, one record
//!    per device, regardless of which worker wrote which shard.
//!
//! The CI streamed-identity gate enforces the same properties end-to-end
//! through the `easeio-sim fleet --stream-out` CLI.

use easeio_exec::{AppSpec, DeviceSpec, ScenarioSpec, SupplySpec};
use easeio_fleet::{
    run_fleet, run_fleet_streamed, run_rollout, run_rollout_streamed, RolloutPolicy,
};
use easeio_trace::envelope::identity_document;
use easeio_trace::fleet::build_fleet_report;
use easeio_trace::stream::JsonlWriter;
use kernel::{FaultSpec, KernelKind};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("easeio-streaming-identity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// A fleet whose devices exercise the radio (gateway reconciliation),
/// peripheral faults (retry ledgers), and power failures (timer supply) —
/// every aggregate the streamed path folds.
fn fleet_spec(jobs: usize) -> ScenarioSpec {
    ScenarioSpec {
        device: DeviceSpec {
            app: AppSpec::Named("flaky-radio".into()),
            kernel: KernelKind::EaseIo,
            fault: FaultSpec::with_rate(11, 30),
        },
        count: 96,
        supply: SupplySpec::Timer,
        medium: periph::MediumSpec::lossy(77, 100),
        seed: 1000,
        jobs,
        ..ScenarioSpec::default()
    }
}

fn rollout_spec(jobs: usize) -> ScenarioSpec {
    ScenarioSpec {
        device: DeviceSpec {
            app: AppSpec::Named("ota-update".into()),
            kernel: KernelKind::EaseIo,
            fault: FaultSpec::with_rate(5, 20),
        },
        count: 96,
        supply: SupplySpec::Timer,
        medium: periph::MediumSpec::lossy(3, 50),
        seed: 42,
        jobs,
        ..ScenarioSpec::default()
    }
}

#[test]
fn streamed_fleet_report_matches_in_memory_at_every_width() {
    let reference = {
        let spec = fleet_spec(1);
        let fleet = run_fleet(&spec).unwrap();
        identity_document(&build_fleet_report(&fleet.report_inputs(&spec))).to_pretty()
    };
    let mut stream_reference: Option<String> = None;
    for jobs in [1, 4, 8] {
        let spec = fleet_spec(jobs);
        let path = tmp(&format!("fleet-j{jobs}.jsonl"));
        let mut out = JsonlWriter::create(&path).unwrap();
        let streamed = run_fleet_streamed(&spec, &mut out, None).unwrap();
        let doc =
            identity_document(&build_fleet_report(&streamed.report_inputs(&spec))).to_pretty();
        assert_eq!(doc, reference, "streamed report diverged at jobs={jobs}");

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count() as u64,
            streamed.stream.records,
            "stream stats disagree with the file"
        );
        assert_eq!(
            streamed.stream.records, spec.count as u64,
            "one record per device"
        );
        // Device order: record i is device i.
        for (i, line) in text.lines().enumerate() {
            let rec = easeio_trace::parse_json(line).unwrap();
            assert_eq!(
                rec.get("device").and_then(easeio_trace::Value::as_u64),
                Some(i as u64),
                "jobs={jobs} line {i}"
            );
        }
        match &stream_reference {
            None => stream_reference = Some(text),
            Some(reference) => {
                assert_eq!(&text, reference, "stream bytes diverged at jobs={jobs}")
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn streamed_rollout_report_matches_in_memory_at_every_width() {
    let policy = RolloutPolicy::default();
    let (reference, reference_violation) = {
        let spec = rollout_spec(1);
        let rollout = run_rollout(&spec, &policy).unwrap();
        (
            identity_document(&build_fleet_report(&rollout.report_inputs(&spec))).to_pretty(),
            rollout.first_violation,
        )
    };
    let mut stream_reference: Option<String> = None;
    for jobs in [1, 4, 8] {
        let spec = rollout_spec(jobs);
        let path = tmp(&format!("rollout-j{jobs}.jsonl"));
        let mut out = JsonlWriter::create(&path).unwrap();
        let streamed = run_rollout_streamed(&spec, &policy, &mut out, None).unwrap();
        let doc =
            identity_document(&build_fleet_report(&streamed.report_inputs(&spec))).to_pretty();
        assert_eq!(doc, reference, "streamed rollout diverged at jobs={jobs}");
        assert_eq!(
            streamed.first_violation, reference_violation,
            "forensics anchor diverged at jobs={jobs}"
        );

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count() as u64, streamed.stream.records);
        match &stream_reference {
            None => stream_reference = Some(text),
            Some(reference) => {
                assert_eq!(
                    &text, reference,
                    "rollout stream bytes diverged at jobs={jobs}"
                )
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
