//! easeio-exec — the deterministic parallel execution engine.
//!
//! The crash sweep and the experiment grid are embarrassingly parallel:
//! every injected run starts from the same machine snapshot and every grid
//! cell is independently seeded. This crate fans that work across OS
//! threads while keeping one hard guarantee: **output at `--jobs N` is
//! byte-identical to `--jobs 1`**, so parallelism is purely a wall-clock
//! lever and never a correctness variable. Three pieces:
//!
//! * [`pool`] — a scoped-thread worker pool whose results merge in item
//!   order ([`run_indexed`]), with per-worker utilization for the bench
//!   report and a [`easeio_trace::SpanKind::Worker`] span per worker;
//! * [`sweep::run_sweep`] / [`sweep::sweep_matrix`] — the crash-consistency
//!   sweep on the pool: boundaries batched per worker, each run restored
//!   from a shared copy-on-write [`mcu_emu::McuSnapshot`], a whole
//!   app×runtime matrix served by one pool spawn, and equivalent injection
//!   points pruned and materialized from a class representative
//!   ([`sweep::SweepOptions`]);
//! * [`grid`] — kernel × supply-point matrices (RF distance and timer
//!   on-time axes, Fig. 12/13) on the same pool.
//!
//! [`ScenarioSpec`] is the construction surface tying it together: one
//! parsed value holding a device template (app, kernel, faults), a
//! replication count, the shared supply/medium, seeds, and sinks, consumed
//! by every entry point instead of ad-hoc flag plumbing. The historical
//! [`SimConfig`] remains as a deprecated shim for the 1-device case.

pub mod config;
pub mod grid;
pub mod pool;
pub mod supply;
pub mod sweep;

#[allow(deprecated)]
pub use config::SimConfig;
pub use config::{AppSpec, DeviceSpec, ScenarioSpec, SupplySpec, APP_NAMES};
pub use grid::{grid_points, run_grid, GridCell, GridSpec};
pub use pool::{run_indexed, run_indexed_collect, PoolStats};
pub use supply::{rf_supply, rf_supply_phased, timer_supply_with_mean_on};
pub use sweep::{
    parallel_sweep, run_sweep, sweep_matrix, sweep_matrix_observed, PruneStats, SweepEntry,
    SweepOptions, SweepTiming,
};
