//! The parallel crash-consistency sweep.
//!
//! [`parallel_sweep`] produces a [`SweepOutcome`] byte-identical to
//! `crashcheck::sweep` at any `--jobs` width. The argument:
//!
//! * **Same boundary set.** The coordinator runs `prepare_oracle` once and
//!   selects boundaries with the same `select_boundaries(total, mode,
//!   seed)` call the serial sweep makes — worker count never enters the
//!   selection.
//! * **Same per-boundary run.** Every injected run starts from the shared
//!   post-construction snapshot via `crashcheck::run_from`: restored
//!   machine, fresh peripherals seeded from `env_seed`, fresh kernel. A
//!   run's record is a function of (snapshot, boundary, plan) alone.
//!   Workers build their own `App` on their own machine — task bodies are
//!   `Rc` closures and cannot cross threads — but the allocator cursors in
//!   the snapshot are deterministic, so every worker's app binds identical
//!   addresses.
//! * **Same judgement.** Violations come from the shared
//!   `crashcheck::check_record`, boundary by boundary.
//! * **Canonical merge.** Batches are contiguous chunks of the (sorted)
//!   boundary list and the pool returns batch results in batch order, so
//!   concatenating them reproduces the serial loop's violation order
//!   exactly.
//!
//! Fan-out is cheap because the snapshot is an `Arc` around a
//! copy-on-write image: a worker's first restore adopts it with one full
//! copy, and every restore after that copies only the pages the previous
//! run dirtied (see `mcu_emu::memory`).

use apps::harness::RuntimeKind;
use crashcheck::{
    check_record, prepare_oracle, run_from, select_boundaries, SweepOutcome, SweepPlan, Violation,
};
use kernel::App;
use mcu_emu::{Mcu, Supply, CAUSE_COUNT};

use crate::pool::{run_indexed, PoolStats};

/// How the sweep spent its host time — reported next to the outcome but
/// never part of outcome identity (timing varies run to run; results may
/// not).
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Worker threads used.
    pub jobs: usize,
    /// Host wall-clock µs for the injection phase (oracle excluded).
    pub wall_us: u64,
    /// Injected runs per second of host time, ×1000 (integer so reports
    /// stay float-free).
    pub injections_per_sec_milli: u64,
    /// Injected runs completed by each worker.
    pub injections_per_worker: Vec<u64>,
    /// Busy µs of each worker.
    pub busy_us_per_worker: Vec<u64>,
}

impl SweepTiming {
    fn from_pool(stats: &PoolStats, batches: &[Vec<u64>], injections: u64) -> Self {
        // The pool works in batches; expand each worker's batch indices
        // back to exact boundary counts.
        let injections_per_worker = stats
            .indices_per_worker
            .iter()
            .map(|idxs| idxs.iter().map(|&i| batches[i].len() as u64).sum())
            .collect();
        Self {
            jobs: stats.jobs,
            wall_us: stats.wall_us,
            injections_per_sec_milli: (injections * 1_000_000_000)
                .checked_div(stats.wall_us)
                .unwrap_or(0),
            injections_per_worker,
            busy_us_per_worker: stats.busy_us_per_worker.clone(),
        }
    }
}

/// Contiguous batches of roughly `per_batch` boundaries, preserving order.
/// Batching amortizes the pool's atomic cursor and keeps each worker on a
/// warm machine image for a stretch of nearby boundaries.
fn batch(boundaries: Vec<u64>, per_batch: usize) -> Vec<Vec<u64>> {
    let per_batch = per_batch.max(1);
    boundaries.chunks(per_batch).map(|c| c.to_vec()).collect()
}

/// Runs the crash sweep across `jobs` workers. Returns the outcome —
/// byte-identical to `crashcheck::sweep(builder, kind, plan)` — plus the
/// host-side timing.
pub fn parallel_sweep(
    builder: &(dyn Fn(&mut Mcu) -> App + Sync),
    kind: RuntimeKind,
    plan: &SweepPlan,
    jobs: usize,
) -> (SweepOutcome, SweepTiming) {
    let oracle = prepare_oracle(builder, kind, plan.env_seed);
    let chosen = select_boundaries(oracle.boundaries, plan.mode, plan.seed);
    let injections = chosen.len() as u64;

    // ~8 batches per worker balances cursor traffic against tail latency.
    let per_batch = (chosen.len() / (jobs.max(1) * 8)).max(1);
    let batches = batch(chosen, per_batch);

    let (results, stats) = run_indexed(
        jobs,
        &batches,
        || {
            // Worker-local machine + app: built once, reused for every
            // batch this worker takes. The first restore inside `run_from`
            // adopts the shared snapshot; later restores are page-wise.
            let mut mcu = Mcu::new(Supply::continuous());
            let app = builder(&mut mcu);
            (mcu, app)
        },
        |(mcu, app), _, boundaries: &Vec<u64>| {
            let mut violations: Vec<Violation> = Vec::new();
            let mut waste: Vec<u64> = Vec::with_capacity(boundaries.len());
            let mut causes = [0u64; CAUSE_COUNT];
            for &b in boundaries {
                let r = run_from(
                    app,
                    kind,
                    mcu,
                    &oracle.snapshot,
                    Supply::injected(b, plan.off_us),
                    plan.env_seed,
                    &plan.fault,
                );
                violations.extend(check_record(&r, &oracle.fram, b, plan.strict_memory));
                waste.push(r.waste_nj);
                for (total, c) in causes.iter_mut().zip(r.cause_energy_nj) {
                    *total += c;
                }
            }
            (violations, waste, causes)
        },
    );

    let timing = SweepTiming::from_pool(&stats, &batches, injections);
    // Batch results arrive in batch order, so concatenating the waste
    // series and summing the cause ledgers reproduces the serial loop
    // exactly at any worker count (addition over batch sums is the same
    // integer total in any grouping).
    let mut violations = Vec::new();
    let mut boundary_waste_nj = Vec::new();
    let mut cause_energy_nj = [0u64; CAUSE_COUNT];
    for (v, waste, causes) in results {
        violations.extend(v);
        boundary_waste_nj.extend(waste);
        for (total, c) in cause_energy_nj.iter_mut().zip(causes) {
            *total += c;
        }
    }
    let outcome = SweepOutcome {
        runtime: kind.name(),
        app: oracle.app,
        env_seed: plan.env_seed,
        config: plan.clone(),
        oracle_boundaries: oracle.boundaries,
        injections,
        violations,
        boundary_waste_nj,
        cause_energy_nj,
    };
    (outcome, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::dma_app;
    use crashcheck::{sweep, SweepMode};

    fn small_dma(m: &mut Mcu) -> App {
        dma_app::build(
            m,
            &dma_app::DmaAppCfg {
                bytes: 256,
                chunks: 3,
                iterations: 1,
                pre_compute: 200,
                post_compute: 200,
            },
        )
    }

    fn outcomes_equal(a: &SweepOutcome, b: &SweepOutcome) {
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.app, b.app);
        assert_eq!(a.oracle_boundaries, b.oracle_boundaries);
        assert_eq!(a.injections, b.injections);
        assert_eq!(a.violations.len(), b.violations.len());
        for (x, y) in a.violations.iter().zip(&b.violations) {
            assert_eq!(x.boundary, y.boundary);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.detail, y.detail);
        }
        assert_eq!(a.boundary_waste_nj, b.boundary_waste_nj);
        assert_eq!(a.cause_energy_nj, b.cause_energy_nj);
    }

    #[test]
    fn parallel_matches_serial_with_violations_present() {
        // Naive on the DMA app violates at many boundaries — the violation
        // *order* is the sensitive part of the merge.
        let plan = SweepPlan {
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        let serial = sweep(&small_dma, RuntimeKind::Naive, &plan);
        for jobs in [1, 3, 4] {
            let (parallel, timing) = parallel_sweep(&small_dma, RuntimeKind::Naive, &plan, jobs);
            outcomes_equal(&serial, &parallel);
            assert_eq!(timing.jobs, jobs.min(timing.jobs.max(1)));
        }
    }

    #[test]
    fn parallel_matches_serial_on_a_clean_sweep() {
        let plan = SweepPlan {
            mode: SweepMode::Sample(60),
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        let serial = sweep(&small_dma, RuntimeKind::EaseIo, &plan);
        let (parallel, _) = parallel_sweep(&small_dma, RuntimeKind::EaseIo, &plan, 4);
        outcomes_equal(&serial, &parallel);
        assert!(parallel.is_clean());
    }
}
