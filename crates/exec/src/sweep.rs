//! The parallel, pruning crash-consistency sweep engine.
//!
//! [`run_sweep`] (one app×runtime) and [`sweep_matrix`] (many, over one
//! shared worker pool) produce [`SweepOutcome`]s byte-identical to
//! `crashcheck::sweep` at any `--jobs` width, pruned or not. The identity
//! argument:
//!
//! * **Same boundary set.** The coordinator runs `prepare_oracle` once per
//!   entry and selects boundaries with the same `select_boundaries(total,
//!   mode, seed)` call the serial sweep makes — worker count and pruning
//!   never enter the selection.
//! * **Same per-boundary run.** Every *executed* injected run starts from
//!   the shared post-construction snapshot via `crashcheck::run_from`:
//!   restored machine, fresh peripherals seeded from `env_seed`, fresh
//!   kernel. A run's record is a function of (snapshot, boundary, plan)
//!   alone. Workers build their own `App` on their own machine — task
//!   bodies are `Rc` closures and cannot cross threads — but the allocator
//!   cursors in the snapshot are deterministic, so every worker's app binds
//!   identical addresses.
//! * **Pruning preserves records.** With pruning on, only one boundary per
//!   equivalence class (`crashcheck::classify_boundaries`) is executed; the
//!   rest are materialized by `crashcheck::materialize_record`, which is
//!   exact — same-class boundaries interrupt the same spend call over the
//!   same machine state and differ only in additive ledger prefixes the
//!   reference trace recorded (see DESIGN.md §14).
//! * **Same judgement.** Violations come from the shared
//!   `crashcheck::check_record`, applied on the coordinator in boundary
//!   order over real and materialized records alike.
//! * **Canonical merge.** Batches are contiguous chunks of each entry's
//!   (sorted) executed-boundary list and the pool returns batch results in
//!   item order, so the per-entry record sequence — and with it the
//!   violation order — reproduces the serial loop exactly.
//!
//! Fan-out is cheap because each snapshot is an `Arc` around a
//! copy-on-write image: a worker's first restore adopts it with one full
//! copy, and every restore after that copies only the pages the previous
//! run dirtied (see `mcu_emu::memory`). [`sweep_matrix`] additionally
//! spawns its workers *once* for the whole app×runtime matrix — workers
//! keep per-entry machines in a local cache — so short sweeps no longer
//! pay a pool spawn/join plus N full snapshot adoptions each.

use apps::harness::RuntimeKind;
use crashcheck::{
    check_record, classify_boundaries, filter_update_window, materialize_record, prepare_oracle,
    reference_trace, run_from, select_boundaries, BoundaryTrace, PruneClasses, RunRecord,
    SweepOracle, SweepOutcome, SweepPlan, Violation,
};
use easeio_trace::Progress;
use kernel::App;
use mcu_emu::{Mcu, Supply, CAUSE_COUNT};
use std::collections::HashMap;
use std::time::Instant;

use crate::pool::run_indexed;

/// Knobs of the sweep engine that do not affect outcome identity.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads.
    pub jobs: usize,
    /// Injection-point equivalence pruning: execute one boundary per
    /// equivalence class and materialize the rest from its record.
    pub prune: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            prune: true,
        }
    }
}

/// What pruning did to one sweep.
#[derive(Debug, Clone, Default)]
pub struct PruneStats {
    /// Whether pruning was enabled for this sweep.
    pub enabled: bool,
    /// Injected runs actually executed (class representatives).
    pub injections_executed: u64,
    /// Injected runs skipped and materialized from a representative.
    pub injections_pruned: u64,
    /// Equivalence classes over the chosen boundaries.
    pub classes: u64,
    /// The reference run observed wall-clock time, so classification
    /// refused to merge anything (every class a singleton).
    pub time_observed: bool,
}

/// How the sweep spent its host time — reported next to the outcome but
/// never part of outcome identity (timing varies run to run; results may
/// not).
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Worker threads the pool actually ran (clamped to the batch count).
    pub jobs: usize,
    /// Work batches this sweep contributed to the pool.
    pub batches: u64,
    /// Host wall-clock µs for everything after the oracle: classification,
    /// injections, materialization, checking, merge. For a matrix sweep
    /// the pool is shared, so a single entry's injection span cannot be
    /// separated from its neighbours'; this field then charges the entry
    /// its workers' *busy* time on its batches, the closest
    /// serializable-time equivalent.
    pub wall_us: u64,
    /// Oracle preparation µs (outside `wall_us`, identical work at any
    /// width — kept separate so speedups compare the parallelizable part).
    pub oracle_us: u64,
    /// Reference-trace run + classification µs (0 with pruning off).
    pub classify_us: u64,
    /// Injection-phase µs: busy time of this sweep's batches.
    pub inject_us: u64,
    /// Materialize + check + merge µs on the coordinator.
    pub merge_us: u64,
    /// Logical injections per second of `wall_us`, ×1000 (integer so
    /// reports stay float-free). `None` when the sweep was too small to
    /// measure (`wall_us` rounded to 0) — a 0 here would read as "no
    /// throughput" when the truth is "too fast to time".
    pub injections_per_sec_milli: Option<u64>,
    /// Injected runs executed by each worker.
    pub injections_per_worker: Vec<u64>,
    /// Busy µs of each worker on this sweep's batches.
    pub busy_us_per_worker: Vec<u64>,
    /// What pruning did.
    pub prune: PruneStats,
}

/// One sweep of an app×runtime matrix.
pub struct SweepEntry<'a> {
    /// App constructor (runs once per worker machine).
    pub builder: &'a (dyn Fn(&mut Mcu) -> App + Sync),
    /// Runtime under test.
    pub kind: RuntimeKind,
    /// The sweep plan.
    pub plan: SweepPlan,
}

/// Contiguous batches of roughly `per_batch` boundaries, preserving order.
/// Batching amortizes the pool's atomic cursor and keeps each worker on a
/// warm machine image for a stretch of nearby boundaries.
fn batch(boundaries: &[u64], per_batch: usize) -> Vec<Vec<u64>> {
    let per_batch = per_batch.max(1);
    boundaries.chunks(per_batch).map(|c| c.to_vec()).collect()
}

/// Coordinator-side preparation of one entry: oracle, boundary selection,
/// and (with pruning) the reference trace and equivalence classes.
struct EntryPrep {
    oracle: SweepOracle,
    chosen: Vec<u64>,
    trace: Option<BoundaryTrace>,
    classes: Option<PruneClasses>,
    /// Boundaries to actually execute: class representatives when pruning,
    /// every chosen boundary otherwise.
    exec: Vec<u64>,
    /// This entry's item range `[start, end)` in the global batch list.
    items: (usize, usize),
    oracle_us: u64,
    classify_us: u64,
}

/// One unit of pool work: a batch of boundaries of one entry.
struct WorkItem {
    entry: usize,
    boundaries: Vec<u64>,
}

/// Runs every sweep of `entries` over **one** shared worker pool and
/// returns `(outcome, timing)` per entry, in entry order. Each outcome is
/// byte-identical to `crashcheck::sweep(entry.builder, entry.kind,
/// &entry.plan)`.
pub fn sweep_matrix(
    entries: &[SweepEntry],
    opts: &SweepOptions,
) -> Vec<(SweepOutcome, SweepTiming)> {
    sweep_matrix_observed(entries, opts, None)
}

/// [`sweep_matrix`] with a live [`Progress`] channel. The observer ticks
/// through three phases — `oracle` (one per entry), `inject` (one per
/// executed boundary, ticked batch-wise from inside the workers), and
/// `judge` (one per entry) — and never enters outcome identity: the
/// returned vector is byte-identical to the unobserved call.
pub fn sweep_matrix_observed(
    entries: &[SweepEntry],
    opts: &SweepOptions,
    progress: Option<&Progress>,
) -> Vec<(SweepOutcome, SweepTiming)> {
    // Stage A (serial): per-entry oracle, selection, classification.
    if let Some(p) = progress {
        p.begin_phase("oracle", entries.len() as u64);
    }
    let mut preps: Vec<EntryPrep> = Vec::with_capacity(entries.len());
    let mut items: Vec<WorkItem> = Vec::new();
    for (e, entry) in entries.iter().enumerate() {
        let t0 = Instant::now();
        let oracle = prepare_oracle(entry.builder, entry.kind, entry.plan.env_seed);
        let oracle_us = t0.elapsed().as_micros() as u64;
        let t1 = Instant::now();
        let mut chosen = select_boundaries(oracle.boundaries, entry.plan.mode, entry.plan.seed);
        let (trace, classes, exec) = if opts.prune || entry.plan.update_window {
            // The reference run replays the injected runs' shared prefix on
            // continuous power with the recorder on: same fault plan, same
            // env seed — one extra run per entry, amortized over every
            // boundary it prunes (and reused for the update-window filter).
            let mut mcu = Mcu::new(Supply::continuous());
            let app = (entry.builder)(&mut mcu);
            let trace = reference_trace(
                &app,
                entry.kind,
                &mut mcu,
                &oracle.snapshot,
                entry.plan.env_seed,
                &entry.plan.fault,
            );
            // Same order as the serial sweep: window filter first, then
            // classification over the surviving boundaries.
            if entry.plan.update_window {
                chosen = filter_update_window(&chosen, &trace);
            }
            if opts.prune {
                let classes = classify_boundaries(&chosen, &trace);
                let exec = classes.reps.clone();
                (Some(trace), Some(classes), exec)
            } else {
                (Some(trace), None, chosen.clone())
            }
        } else {
            (None, None, chosen.clone())
        };
        let classify_us = t1.elapsed().as_micros() as u64;
        // ~4 batches per worker per entry balances cursor traffic against
        // tail latency while keeping matrix-wide work stealing effective.
        let per_batch = (exec.len() / (opts.jobs.max(1) * 4)).max(1);
        let start = items.len();
        for b in batch(&exec, per_batch) {
            items.push(WorkItem {
                entry: e,
                boundaries: b,
            });
        }
        preps.push(EntryPrep {
            oracle,
            chosen,
            trace,
            classes,
            exec,
            items: (start, items.len()),
            oracle_us,
            classify_us,
        });
        if let Some(p) = progress {
            p.add(1);
        }
    }

    if let Some(p) = progress {
        let total: u64 = items.iter().map(|i| i.boundaries.len() as u64).sum();
        p.begin_phase("inject", total);
    }

    // Stage B: one pool over every entry's batches. Workers hold one
    // machine+app per entry they touch, built on first contact and reused
    // across batches — and across *entries*: the pool is spawned once for
    // the whole matrix.
    let (results, stats) = run_indexed(
        opts.jobs,
        &items,
        HashMap::<usize, (Mcu, App)>::new,
        |cache, _, item: &WorkItem| {
            let t0 = Instant::now();
            let entry = &entries[item.entry];
            let prep = &preps[item.entry];
            let (mcu, app) = cache.entry(item.entry).or_insert_with(|| {
                let mut mcu = Mcu::new(Supply::continuous());
                let app = (entry.builder)(&mut mcu);
                (mcu, app)
            });
            let records: Vec<RunRecord> = item
                .boundaries
                .iter()
                .map(|&b| {
                    run_from(
                        app,
                        entry.kind,
                        mcu,
                        &prep.oracle.snapshot,
                        Supply::injected(b, entry.plan.off_us),
                        entry.plan.env_seed,
                        &entry.plan.fault,
                    )
                })
                .collect();
            if let Some(p) = progress {
                p.add(records.len() as u64);
            }
            (records, t0.elapsed().as_micros() as u64)
        },
    );

    if let Some(p) = progress {
        p.begin_phase("judge", entries.len() as u64);
    }

    // Stage C (serial, entry order): flatten each entry's records back into
    // exec order, materialize the pruned boundaries, judge everything in
    // boundary order, and fold the outcome.
    let mut out = Vec::with_capacity(entries.len());
    for (e, entry) in entries.iter().enumerate() {
        let prep = &preps[e];
        let t0 = Instant::now();
        let (start, end) = prep.items;
        let recs: Vec<&RunRecord> = (start..end).flat_map(|i| results[i].0.iter()).collect();
        debug_assert_eq!(recs.len(), prep.exec.len());
        let mut violations: Vec<Violation> = Vec::new();
        let mut boundary_waste_nj = Vec::with_capacity(prep.chosen.len());
        let mut cause_energy_nj = [0u64; CAUSE_COUNT];
        let mut fold = |r: &RunRecord, b: u64| {
            violations.extend(check_record(
                r,
                &prep.oracle.fram,
                b,
                entry.plan.strict_memory,
            ));
            boundary_waste_nj.push(r.waste_nj);
            for (total, c) in cause_energy_nj.iter_mut().zip(r.cause_energy_nj) {
                *total += c;
            }
        };
        match (&prep.classes, &prep.trace) {
            (Some(classes), Some(trace)) => {
                for (j, &b) in prep.chosen.iter().enumerate() {
                    let c = classes.class_of[j];
                    let rep_b = classes.reps[c];
                    if b == rep_b {
                        fold(recs[c], b);
                    } else {
                        let materialized = materialize_record(trace, recs[c], rep_b, b);
                        fold(&materialized, b);
                    }
                }
            }
            _ => {
                for (j, &b) in prep.chosen.iter().enumerate() {
                    fold(recs[j], b);
                }
            }
        }
        let merge_us = t0.elapsed().as_micros() as u64;

        // Per-worker attribution of this entry's batches.
        let mut injections_per_worker = vec![0u64; stats.jobs];
        let mut busy_us_per_worker = vec![0u64; stats.jobs];
        for (w, idxs) in stats.indices_per_worker.iter().enumerate() {
            for &i in idxs {
                if i >= start && i < end {
                    injections_per_worker[w] += items[i].boundaries.len() as u64;
                    busy_us_per_worker[w] += results[i].1;
                }
            }
        }
        let inject_us: u64 = busy_us_per_worker.iter().sum();
        let wall_us = prep.classify_us + inject_us + merge_us;
        let injections = prep.chosen.len() as u64;
        let prune = PruneStats {
            enabled: opts.prune,
            injections_executed: prep.exec.len() as u64,
            injections_pruned: injections - prep.exec.len() as u64,
            classes: prep
                .classes
                .as_ref()
                .map(|c| c.reps.len() as u64)
                .unwrap_or(0),
            time_observed: prep
                .trace
                .as_ref()
                .map(|t| t.time_observed)
                .unwrap_or(false),
        };
        let timing = SweepTiming {
            jobs: stats.jobs,
            batches: (end - start) as u64,
            wall_us,
            oracle_us: prep.oracle_us,
            classify_us: prep.classify_us,
            inject_us,
            merge_us,
            injections_per_sec_milli: (injections * 1_000_000_000).checked_div(wall_us),
            injections_per_worker,
            busy_us_per_worker,
            prune,
        };
        let outcome = SweepOutcome {
            runtime: entry.kind.name(),
            app: prep.oracle.app,
            env_seed: entry.plan.env_seed,
            config: entry.plan.clone(),
            oracle_boundaries: prep.oracle.boundaries,
            injections,
            violations,
            boundary_waste_nj,
            cause_energy_nj,
        };
        out.push((outcome, timing));
        if let Some(p) = progress {
            p.add(1);
        }
    }
    out
}

/// Runs one crash sweep under `opts`. Outcome byte-identical to
/// `crashcheck::sweep(builder, kind, plan)` at any `jobs`, pruned or not.
pub fn run_sweep(
    builder: &(dyn Fn(&mut Mcu) -> App + Sync),
    kind: RuntimeKind,
    plan: &SweepPlan,
    opts: &SweepOptions,
) -> (SweepOutcome, SweepTiming) {
    sweep_matrix(
        &[SweepEntry {
            builder,
            kind,
            plan: plan.clone(),
        }],
        opts,
    )
    .pop()
    .expect("one entry in, one outcome out")
}

/// Pre-pruning spelling of [`run_sweep`]: parallel, unpruned.
pub fn parallel_sweep(
    builder: &(dyn Fn(&mut Mcu) -> App + Sync),
    kind: RuntimeKind,
    plan: &SweepPlan,
    jobs: usize,
) -> (SweepOutcome, SweepTiming) {
    run_sweep(builder, kind, plan, &SweepOptions { jobs, prune: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::dma_app;
    use crashcheck::{sweep, SweepMode};
    use kernel::FaultSpec;

    fn small_dma(m: &mut Mcu) -> App {
        dma_app::build(
            m,
            &dma_app::DmaAppCfg {
                bytes: 256,
                chunks: 3,
                iterations: 1,
                pre_compute: 200,
                post_compute: 200,
            },
        )
    }

    /// Long DMA bursts: spend calls spanning several slices, so pruning has
    /// classes to merge.
    fn chunky_dma(m: &mut Mcu) -> App {
        dma_app::build(
            m,
            &dma_app::DmaAppCfg {
                bytes: 4096,
                chunks: 2,
                iterations: 1,
                pre_compute: 2500,
                post_compute: 500,
            },
        )
    }

    fn outcomes_equal(a: &SweepOutcome, b: &SweepOutcome) {
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.app, b.app);
        assert_eq!(a.oracle_boundaries, b.oracle_boundaries);
        assert_eq!(a.injections, b.injections);
        assert_eq!(a.violations.len(), b.violations.len());
        for (x, y) in a.violations.iter().zip(&b.violations) {
            assert_eq!(x.boundary, y.boundary);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.detail, y.detail);
        }
        assert_eq!(a.boundary_waste_nj, b.boundary_waste_nj);
        assert_eq!(a.cause_energy_nj, b.cause_energy_nj);
    }

    #[test]
    fn parallel_matches_serial_with_violations_present() {
        // Naive on the DMA app violates at many boundaries — the violation
        // *order* is the sensitive part of the merge.
        let plan = SweepPlan {
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        let serial = sweep(&small_dma, RuntimeKind::Naive, &plan);
        for jobs in [1, 3, 4] {
            let (parallel, timing) = parallel_sweep(&small_dma, RuntimeKind::Naive, &plan, jobs);
            outcomes_equal(&serial, &parallel);
            // The pool clamps the worker count to the available batches.
            assert_eq!(timing.jobs, jobs.min(timing.batches.max(1) as usize));
            assert!(timing.jobs <= jobs);
            assert_eq!(
                timing.injections_per_worker.iter().sum::<u64>(),
                serial.injections,
                "every injection must be attributed to exactly one worker"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_on_a_clean_sweep() {
        let plan = SweepPlan {
            mode: SweepMode::Sample(60),
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        let serial = sweep(&small_dma, RuntimeKind::EaseIo, &plan);
        let (parallel, _) = parallel_sweep(&small_dma, RuntimeKind::EaseIo, &plan, 4);
        outcomes_equal(&serial, &parallel);
        assert!(parallel.is_clean());
    }

    /// The tentpole identity: pruned outcomes are byte-identical to the
    /// unpruned serial sweep at every width, and pruning actually prunes.
    #[test]
    fn pruned_sweep_is_byte_identical_to_unpruned_serial() {
        for (kind, fault) in [
            (RuntimeKind::EaseIo, FaultSpec::none()),
            (RuntimeKind::Naive, FaultSpec::none()),
            (RuntimeKind::EaseIo, FaultSpec::with_rate(3, 120)),
        ] {
            let plan = SweepPlan {
                strict_memory: true,
                fault,
                ..SweepPlan::with_env_seed(5)
            };
            let serial = sweep(&chunky_dma, kind, &plan);
            for jobs in [1, 4, 8] {
                let (pruned, timing) = run_sweep(
                    &chunky_dma,
                    kind,
                    &plan,
                    &SweepOptions { jobs, prune: true },
                );
                outcomes_equal(&serial, &pruned);
                assert!(timing.prune.enabled);
                assert!(!timing.prune.time_observed, "the DMA app is time-blind");
                assert!(
                    timing.prune.injections_pruned > 0,
                    "multi-slice bursts must prune ({kind:?}, jobs {jobs})"
                );
                assert_eq!(
                    timing.prune.injections_executed + timing.prune.injections_pruned,
                    serial.injections
                );
            }
        }
    }

    /// Update-window sweeps must filter the same boundaries in the parallel
    /// engine as in the serial sweep — pruned or not, at every width.
    #[test]
    fn update_window_sweep_matches_serial_at_every_width() {
        use apps::ota_update;
        for (kind, fault) in [
            (RuntimeKind::EaseIo, FaultSpec::none()),
            (RuntimeKind::Naive, FaultSpec::none()),
            (RuntimeKind::EaseIo, FaultSpec::with_rate(3, 80)),
        ] {
            let build = move |m: &mut Mcu| {
                ota_update::build(
                    m,
                    &ota_update::OtaUpdateCfg {
                        two_phase: kind.two_phase_update(),
                        ..Default::default()
                    },
                )
                .0
            };
            let plan = SweepPlan {
                strict_memory: true,
                update_window: true,
                fault,
                ..SweepPlan::with_env_seed(5)
            };
            let serial = sweep(&build, kind, &plan);
            assert!(
                serial.injections > 0 && serial.injections < serial.oracle_boundaries,
                "the window filter must keep some boundaries and drop others"
            );
            for (jobs, prune) in [(1, false), (4, false), (4, true), (8, true)] {
                let (parallel, _) = run_sweep(&build, kind, &plan, &SweepOptions { jobs, prune });
                outcomes_equal(&serial, &parallel);
            }
        }
    }

    /// A time-observing app (the temp app senses) must disable merging —
    /// and still produce the identical outcome, now with singleton classes.
    #[test]
    fn time_observing_apps_prune_nothing_but_stay_identical() {
        use apps::temp_app;
        let build = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
        let plan = SweepPlan {
            mode: SweepMode::Sample(40),
            ..SweepPlan::with_env_seed(5)
        };
        let serial = sweep(&build, RuntimeKind::EaseIo, &plan);
        let (pruned, timing) = run_sweep(
            &build,
            RuntimeKind::EaseIo,
            &plan,
            &SweepOptions {
                jobs: 4,
                prune: true,
            },
        );
        outcomes_equal(&serial, &pruned);
        assert!(timing.prune.time_observed);
        assert_eq!(timing.prune.injections_pruned, 0);
    }

    /// One pool across a heterogeneous matrix must reproduce each entry's
    /// serial outcome.
    #[test]
    fn matrix_sweep_matches_per_entry_serial_sweeps() {
        let plan = SweepPlan {
            mode: SweepMode::Sample(30),
            ..SweepPlan::with_env_seed(5)
        };
        let entries = [
            SweepEntry {
                builder: &small_dma,
                kind: RuntimeKind::EaseIo,
                plan: plan.clone(),
            },
            SweepEntry {
                builder: &chunky_dma,
                kind: RuntimeKind::Naive,
                plan: plan.clone(),
            },
        ];
        let results = sweep_matrix(
            &entries,
            &SweepOptions {
                jobs: 4,
                prune: true,
            },
        );
        assert_eq!(results.len(), 2);
        let serial_a = sweep(&small_dma, RuntimeKind::EaseIo, &plan);
        let serial_b = sweep(&chunky_dma, RuntimeKind::Naive, &plan);
        outcomes_equal(&serial_a, &results[0].0);
        outcomes_equal(&serial_b, &results[1].0);
    }

    /// Observation must never enter outcome identity, and the inject phase
    /// must tick exactly once per executed boundary.
    #[test]
    fn observed_sweep_is_identical_and_ticks_every_injection() {
        let plan = SweepPlan {
            mode: SweepMode::Sample(30),
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        let entries = [SweepEntry {
            builder: &small_dma,
            kind: RuntimeKind::Naive,
            plan: plan.clone(),
        }];
        let opts = SweepOptions {
            jobs: 3,
            prune: true,
        };
        let unobserved = sweep_matrix(&entries, &opts);
        let progress = Progress::new();
        let observed = sweep_matrix_observed(&entries, &opts, Some(&progress));
        outcomes_equal(&unobserved[0].0, &observed[0].0);
        let snap = progress.snapshot();
        assert_eq!(snap.phase, "judge");
        assert_eq!(snap.done, entries.len() as u64);
        assert_eq!(snap.total, entries.len() as u64);
        // The last inject tick count equals the executed (post-prune)
        // boundary count, which the timing also reports.
        let executed: u64 = observed[0].1.prune.injections_executed;
        assert!(executed > 0);
    }
}
