//! The experiment grid: kernel × supply-point matrices (Fig. 12/13).
//!
//! A [`GridSpec`] names one app, a set of kernels, and two supply axes —
//! RF-transmitter distances and timer mean on-periods. Its cells are
//! enumerated in canonical order (kernel-major, then distances, then
//! on-times) and fanned across the worker pool; because each cell is
//! seeded independently of every other, the merged table is identical at
//! any `--jobs` width.

use apps::harness::{run_once_faulted, RuntimeKind};
use kernel::{App, FaultSpec, Outcome, Verdict};
use mcu_emu::Mcu;

use crate::config::SupplySpec;
use crate::pool::{run_indexed, PoolStats};
use crate::supply::rf_supply_phased;

/// Phase step between RF repetitions: one deterministic fading model,
/// independent-looking trajectories per run (matches the Fig. 13 bench).
const RF_PHASE_STEP_US: u64 = 3_171;

/// What to grid over.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Kernels to compare (columns).
    pub kernels: Vec<RuntimeKind>,
    /// RF distances in inches (rows on the harvesting axis).
    pub distances_inch: Vec<u64>,
    /// Timer mean on-periods in milliseconds (rows on the failure-intensity
    /// axis).
    pub on_times_ms: Vec<u64>,
    /// Repetitions per cell (phase-perturbed for RF, seed-advanced for
    /// timer).
    pub runs: u64,
    /// Base seed.
    pub seed: u64,
    /// Peripheral fault configuration applied to every cell's runs.
    pub fault: FaultSpec,
}

impl Default for GridSpec {
    fn default() -> Self {
        Self {
            kernels: RuntimeKind::PAPER_SET.to_vec(),
            distances_inch: vec![52, 55, 58, 61, 64],
            on_times_ms: vec![],
            runs: 4,
            seed: 77,
            fault: FaultSpec::none(),
        }
    }
}

/// One grid cell's aggregate result.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Kernel display name.
    pub kernel: &'static str,
    /// Supply-point label ("rf:58" or "timer:15ms").
    pub supply: String,
    /// Runs that completed.
    pub completed: u64,
    /// Completed runs whose verdict was correct (or that carry no verdict).
    pub correct: u64,
    /// Mean wall time over completed runs (µs, includes recharge).
    pub mean_wall_us: u64,
    /// Mean on-time over completed runs (µs).
    pub mean_on_us: u64,
    /// Mean power failures per completed run.
    pub mean_failures: u64,
}

/// The cell list in canonical order: kernel-major, distances before
/// on-times. Exposed so callers (and the determinism test) can label rows
/// without re-deriving the order.
pub fn grid_points(spec: &GridSpec) -> Vec<(RuntimeKind, SupplySpec)> {
    let mut points = Vec::new();
    for &kind in &spec.kernels {
        for &d in &spec.distances_inch {
            points.push((kind, SupplySpec::Rf(d)));
        }
        for &on_ms in &spec.on_times_ms {
            points.push((kind, SupplySpec::TimerOnMs(on_ms)));
        }
    }
    points
}

/// Runs the grid across `jobs` workers. `builder` receives the kernel kind
/// so apps can pair `Exclude` variants with EaseIO/Op. Returns cells in
/// [`grid_points`] order plus the pool's utilization record.
pub fn run_grid(
    builder: &(dyn Fn(RuntimeKind, &mut Mcu) -> App + Sync),
    spec: &GridSpec,
    jobs: usize,
) -> (Vec<GridCell>, PoolStats) {
    let points = grid_points(spec);
    let (cells, stats) = run_indexed(
        jobs,
        &points,
        || (),
        |_, _, &(kind, supply)| {
            let build = |m: &mut Mcu| builder(kind, m);
            let mut completed = 0u64;
            let mut correct = 0u64;
            let mut wall = 0u64;
            let mut on = 0u64;
            let mut failures = 0u64;
            for k in 0..spec.runs {
                let (run_supply, seed) = match supply {
                    SupplySpec::Rf(d) => (rf_supply_phased(d, k * RF_PHASE_STEP_US), spec.seed),
                    other => (other.make(spec.seed + k), spec.seed + k),
                };
                let r = run_once_faulted(&build, kind, run_supply, seed, &spec.fault);
                if r.outcome == Outcome::Completed {
                    completed += 1;
                    wall += r.wall_us;
                    on += r.on_us;
                    failures += r.stats.power_failures;
                    if matches!(r.verdict, Some(Verdict::Correct) | None) {
                        correct += 1;
                    }
                }
            }
            let n = completed.max(1);
            GridCell {
                kernel: kind.name(),
                supply: supply.label(),
                completed,
                correct,
                mean_wall_us: wall / n,
                mean_on_us: on / n,
                mean_failures: failures / n,
            }
        },
    );
    (cells, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::dma_app;

    fn builder(_: RuntimeKind, m: &mut Mcu) -> App {
        dma_app::build(
            m,
            &dma_app::DmaAppCfg {
                bytes: 256,
                chunks: 3,
                iterations: 1,
                pre_compute: 200,
                post_compute: 200,
            },
        )
    }

    fn small_spec() -> GridSpec {
        GridSpec {
            kernels: vec![RuntimeKind::Alpaca, RuntimeKind::EaseIo],
            distances_inch: vec![52, 61],
            on_times_ms: vec![12],
            runs: 2,
            seed: 77,
            fault: FaultSpec::none(),
        }
    }

    #[test]
    fn grid_is_identical_at_any_job_width() {
        let spec = small_spec();
        let (serial, _) = run_grid(&builder, &spec, 1);
        let (parallel, _) = run_grid(&builder, &spec, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.supply, b.supply);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.correct, b.correct);
            assert_eq!(a.mean_wall_us, b.mean_wall_us);
            assert_eq!(a.mean_failures, b.mean_failures);
        }
    }

    #[test]
    fn grid_points_enumerate_kernel_major() {
        let points = grid_points(&small_spec());
        assert_eq!(points.len(), 2 * 3);
        assert_eq!(points[0], (RuntimeKind::Alpaca, SupplySpec::Rf(52)));
        assert_eq!(points[2], (RuntimeKind::Alpaca, SupplySpec::TimerOnMs(12)));
        assert_eq!(points[3], (RuntimeKind::EaseIo, SupplySpec::Rf(52)));
    }
}
