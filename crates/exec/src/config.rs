//! The single construction surface for a simulation: what device template
//! (app, kernel, faults), how many replicas, what power and radio medium,
//! which seeds, where outputs go.
//!
//! Before this layer, every entry point re-derived these from its own flag
//! set: the run path, the sweep path, and the aggregate path of
//! `easeio-sim` each parsed app/runtime/supply/seed separately and plumbed
//! them as loose scalars. A [`ScenarioSpec`] is parsed once, travels as one
//! value, and every consumer — serial runs, the crash sweep, the parallel
//! engine's workers, the experiment grid, the fleet engine — builds apps
//! and kernels from it the same way.
//!
//! A scenario is a *device template × replication count*: [`DeviceSpec`]
//! says what one device runs, `count` says how many identical devices run
//! it, and the per-device seeds (`device_seed`) decorrelate their supply
//! schedules, environments, and fault draws deterministically. The
//! historical [`SimConfig`] survives as a deprecated shim for exactly the
//! `count == 1` special case.

use apps::harness::{kernel_builder, KernelBuilder, KernelKind};
use apps::{
    dma_app, fir, fir_long, flaky_radio, lea_app, motion, ota_update, temp_app, unsafe_branch,
    weather,
};
use kernel::{App, FaultSpec};
use mcu_emu::{Mcu, Supply, TimerResetConfig};
use periph::{FaultPlan, MediumSpec};

use crate::supply::{rf_supply, timer_supply_with_mean_on};

/// Which application to build. `Named` covers the paper's eight benchmark
/// apps; `Source` compiles an `easec` program from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppSpec {
    /// One of the built-in benchmark apps, by CLI name.
    Named(String),
    /// An `easec` source file.
    Source(String),
}

/// CLI names of the built-in benchmark apps, in canonical report order —
/// the full EaseIO evaluation matrix plus the packet-loss and OTA-update
/// stressors.
pub const APP_NAMES: [&str; 11] = [
    "dma",
    "temp",
    "lea",
    "fir",
    "fir-long",
    "weather",
    "weather-single",
    "branch",
    "motion",
    "flaky-radio",
    "ota-update",
];

impl AppSpec {
    /// Builds the app on `mcu` for `kernel`. The kernel decides the
    /// app-variant pairings: `KernelKind::excludes_const_dma` selects the
    /// `Exclude`-annotated constant-DMA variant where the app has one (the
    /// EaseIO/Op pairing), and `KernelKind::two_phase_update` selects the
    /// OTA app's update protocol (shadow-slot two-phase everywhere except
    /// the naive in-place baseline).
    pub fn build(&self, kernel: KernelKind, mcu: &mut Mcu) -> Result<App, String> {
        let exclude = kernel.excludes_const_dma();
        let name = match self {
            AppSpec::Source(path) => {
                let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let compiled = easec::compile(&src, mcu).map_err(|e| format!("{path}: {e}"))?;
                return Ok(compiled.app);
            }
            AppSpec::Named(name) => name.as_str(),
        };
        Ok(match name {
            "dma" => dma_app::build(mcu, &dma_app::DmaAppCfg::default()),
            "temp" => temp_app::build(mcu, &temp_app::TempAppCfg::default()),
            "lea" => lea_app::build(mcu, &lea_app::LeaAppCfg::default()),
            "fir" => fir::build(
                mcu,
                &fir::FirCfg {
                    exclude_const_dma: exclude,
                    ..fir::FirCfg::default()
                },
            ),
            "fir-long" => fir_long::build(
                mcu,
                &fir_long::FirLongCfg {
                    exclude_const_dma: exclude,
                    ..fir_long::FirLongCfg::default()
                },
            ),
            "weather" => weather::build(
                mcu,
                &weather::WeatherCfg {
                    exclude_const_dma: exclude,
                    ..weather::WeatherCfg::default()
                },
            ),
            "weather-single" => weather::build(
                mcu,
                &weather::WeatherCfg {
                    single_buffer: true,
                    exclude_const_dma: exclude,
                    ..weather::WeatherCfg::default()
                },
            ),
            "branch" => unsafe_branch::build(mcu, &unsafe_branch::BranchCfg::default()).0,
            "motion" => motion::build(mcu, &motion::MotionCfg::default()).0,
            "flaky-radio" => flaky_radio::build(mcu, &flaky_radio::FlakyRadioCfg::default()).0,
            "ota-update" => {
                ota_update::build(
                    mcu,
                    &ota_update::OtaUpdateCfg {
                        two_phase: kernel.two_phase_update(),
                        ..ota_update::OtaUpdateCfg::default()
                    },
                )
                .0
            }
            other => return Err(format!("unknown app {other}")),
        })
    }

    /// Whether the app's final memory is a pure function of the seed: no
    /// sensed environment values reach application state, so byte-exact
    /// comparison against the continuous-power oracle is sound.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            AppSpec::Named(n)
                if matches!(n.as_str(), "dma" | "fir" | "fir-long" | "lea" | "ota-update")
        )
    }

    /// Display label: the app name, or the source path.
    pub fn label(&self) -> &str {
        match self {
            AppSpec::Named(n) => n,
            AppSpec::Source(p) => p,
        }
    }

    /// Why the metrics harness cannot run this app under its default timer
    /// supply, or `None` if it can. `fir-long`'s chunk task needs more
    /// on-time than the timer supply's 20 ms maximum on-period, so every
    /// task-atomic runtime non-terminates; the metrics table reports the
    /// app as an explicit "skipped" row instead of silently omitting it.
    pub fn metrics_skip_reason(&self) -> Option<&'static str> {
        match self {
            AppSpec::Named(n) if n == "fir-long" => Some(
                "chunk task exceeds the timer supply's 20 ms max on-period; \
                 every task-atomic runtime would non-terminate",
            ),
            _ => None,
        }
    }
}

/// Which power supply drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplySpec {
    /// Continuous wall power.
    Continuous,
    /// The default randomized on/off timer schedule.
    Timer,
    /// A timer schedule with mean on-period `on_ms` milliseconds (the
    /// grid's failure-intensity axis).
    TimerOnMs(u64),
    /// The RF harvester at `distance_inch` inches from the transmitter.
    Rf(u64),
}

impl SupplySpec {
    /// Parses a CLI `--supply` value (`continuous|timer|rf`; `rf` takes its
    /// distance separately).
    pub fn parse(name: &str, distance_inch: u64) -> Result<Self, String> {
        Ok(match name {
            "continuous" => SupplySpec::Continuous,
            "timer" => SupplySpec::Timer,
            "rf" => SupplySpec::Rf(distance_inch),
            other => return Err(format!("unknown supply {other}")),
        })
    }

    /// Instantiates the supply for one run.
    pub fn make(self, seed: u64) -> Supply {
        match self {
            SupplySpec::Continuous => Supply::continuous(),
            SupplySpec::Timer => Supply::timer(TimerResetConfig::default(), seed),
            SupplySpec::TimerOnMs(on_ms) => timer_supply_with_mean_on(on_ms, seed),
            SupplySpec::Rf(distance) => rf_supply(distance),
        }
    }

    /// Compact label for reports ("timer", "rf:58", "timer:15ms", …).
    pub fn label(self) -> String {
        match self {
            SupplySpec::Continuous => "continuous".into(),
            SupplySpec::Timer => "timer".into(),
            SupplySpec::TimerOnMs(on_ms) => format!("timer:{on_ms}ms"),
            SupplySpec::Rf(d) => format!("rf:{d}"),
        }
    }
}

/// What one device runs: the template replicated `count` times by a
/// [`ScenarioSpec`]. Every replica builds the same app under the same
/// kernel and fault *rate*; the per-device seeds decorrelate the draws.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// What application runs.
    pub app: AppSpec,
    /// Which kernel runs it.
    pub kernel: KernelKind,
    /// Transient peripheral-fault configuration (plan + retry policy).
    pub fault: FaultSpec,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self {
            app: AppSpec::Named("dma".into()),
            kernel: KernelKind::EaseIo,
            fault: FaultSpec::none(),
        }
    }
}

impl DeviceSpec {
    /// The kernel builder for this device, standard factory installed and
    /// the fault configuration attached.
    pub fn kernel_builder(&self) -> KernelBuilder {
        kernel_builder(self.kernel).with_faults(self.fault)
    }

    /// Builds the device's app on `mcu`, applying the kernel's app-variant
    /// pairings (constant-DMA exclusion, update protocol) automatically.
    pub fn build_app(&self, mcu: &mut Mcu) -> Result<App, String> {
        self.app.build(self.kernel, mcu)
    }
}

/// One scenario, fully specified: a device template, how many replicas run
/// it, the power and radio environment they share, the seeds, and where
/// outputs go. Parsed once at the CLI (or constructed directly in
/// tests/benches) and consumed everywhere — run, sweep, grid, metrics, and
/// fleet all build apps and kernels through this one surface.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The device template every replica instantiates.
    pub device: DeviceSpec,
    /// Number of identical devices (1 = the classic single-device run).
    pub count: u32,
    /// What power drives each device (instantiated per device seed).
    pub supply: SupplySpec,
    /// The shared radio medium fleet replicas transmit over.
    pub medium: MediumSpec,
    /// Base seed: environment, supply schedule, fault draws, and boundary
    /// sampling all derive from it.
    pub seed: u64,
    /// Repetitions for aggregate modes (seed advances per run).
    pub runs: u64,
    /// Worker threads for the parallel engine (1 = serial).
    pub jobs: usize,
    /// Where to write the event trace, if anywhere.
    pub trace_out: Option<String>,
    /// Where to write the machine-readable report, if anywhere.
    pub report_out: Option<String>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self {
            device: DeviceSpec::default(),
            count: 1,
            supply: SupplySpec::Timer,
            medium: MediumSpec::ideal(),
            seed: 42,
            runs: 1,
            jobs: 1,
            trace_out: None,
            report_out: None,
        }
    }
}

impl ScenarioSpec {
    /// A 1-device scenario over the given template — the direct
    /// replacement for constructing a `SimConfig`.
    pub fn single(device: DeviceSpec) -> Self {
        Self {
            device,
            ..Self::default()
        }
    }

    /// The kernel builder for this scenario's device template.
    pub fn kernel_builder(&self) -> KernelBuilder {
        self.device.kernel_builder()
    }

    /// Builds the template app on `mcu`.
    pub fn build_app(&self, mcu: &mut Mcu) -> Result<App, String> {
        self.device.build_app(mcu)
    }

    /// The supply for run `i` of an aggregate (seed advances per run).
    pub fn supply_for_run(&self, i: u64) -> Supply {
        self.supply.make(self.seed + i)
    }

    /// The seed replica `device` derives its environment, supply schedule,
    /// and fault draws from. Device 0 uses the scenario seed itself, so a
    /// 1-device fleet reproduces a plain `run` at the same seed exactly
    /// (the N=1 equivalence anchor; see `crates/fleet`).
    pub fn device_seed(&self, device: u32) -> u64 {
        self.seed + device as u64
    }

    /// The supply instance for one replica.
    pub fn supply_for_device(&self, device: u32) -> Supply {
        self.supply.make(self.device_seed(device))
    }

    /// The fault spec for one replica: the template's rate and retry
    /// policy, with the plan seed advanced per device so replicas fault
    /// independently. Device 0 keeps the template's plan unchanged.
    pub fn fault_for_device(&self, device: u32) -> FaultSpec {
        let mut fault = self.device.fault;
        if let Some(plan) = fault.plan {
            fault.plan = Some(FaultPlan::new(
                plan.seed.wrapping_add(device as u64),
                plan.rate_permille,
            ));
        }
        fault
    }
}

/// One single-device simulation — the historical construction surface.
///
/// Superseded by [`ScenarioSpec`], of which this is exactly the `count ==
/// 1` special case; convert with [`SimConfig::into_scenario`] or `From`.
/// Kept for one release so downstream tests and benches keep compiling
/// (with a warning), and covered by the N=1 equivalence proptest in
/// `crates/fleet`.
#[deprecated(note = "use ScenarioSpec (SimConfig is its count == 1 special case); \
            convert with into_scenario()")]
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// What application runs.
    pub app: AppSpec,
    /// Which kernel runs it.
    pub kernel: KernelKind,
    /// What power drives it.
    pub supply: SupplySpec,
    /// Base seed: environment, supply schedule, and boundary sampling all
    /// derive from it.
    pub seed: u64,
    /// Repetitions for aggregate modes (seed advances per run).
    pub runs: u64,
    /// Worker threads for the parallel engine (1 = serial).
    pub jobs: usize,
    /// Where to write the event trace, if anywhere.
    pub trace_out: Option<String>,
    /// Where to write the machine-readable report, if anywhere.
    pub report_out: Option<String>,
    /// Transient peripheral-fault configuration (plan + retry policy).
    pub fault: FaultSpec,
}

#[allow(deprecated)]
impl Default for SimConfig {
    fn default() -> Self {
        Self {
            app: AppSpec::Named("dma".into()),
            kernel: KernelKind::EaseIo,
            supply: SupplySpec::Timer,
            seed: 42,
            runs: 1,
            jobs: 1,
            trace_out: None,
            report_out: None,
            fault: FaultSpec::none(),
        }
    }
}

#[allow(deprecated)]
impl SimConfig {
    /// The kernel builder for this config, standard factory installed and
    /// the fault configuration attached. Delegates through the equivalent
    /// [`ScenarioSpec`] — the shim carries no construction logic of its
    /// own, so the two surfaces cannot drift apart.
    pub fn kernel_builder(&self) -> KernelBuilder {
        self.clone().into_scenario().kernel_builder()
    }

    /// Builds the configured app on `mcu`, applying the kernel's
    /// app-variant pairings automatically (via [`ScenarioSpec`]).
    pub fn build_app(&self, mcu: &mut Mcu) -> Result<App, String> {
        self.clone().into_scenario().build_app(mcu)
    }

    /// The supply for run `i` of an aggregate (via [`ScenarioSpec`]).
    pub fn supply_for_run(&self, i: u64) -> Supply {
        self.clone().into_scenario().supply_for_run(i)
    }

    /// The equivalent 1-device [`ScenarioSpec`] — the migration path.
    pub fn into_scenario(self) -> ScenarioSpec {
        ScenarioSpec::from(self)
    }
}

#[allow(deprecated)]
impl From<SimConfig> for ScenarioSpec {
    fn from(sim: SimConfig) -> Self {
        ScenarioSpec {
            device: DeviceSpec {
                app: sim.app,
                kernel: sim.kernel,
                fault: sim.fault,
            },
            count: 1,
            supply: sim.supply,
            medium: MediumSpec::ideal(),
            seed: sim.seed,
            runs: sim.runs,
            jobs: sim.jobs,
            trace_out: sim.trace_out,
            report_out: sim.report_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_app_builds() {
        for name in APP_NAMES {
            let spec = AppSpec::Named(name.into());
            let mut mcu = Mcu::new(Supply::continuous());
            let app = spec.build(KernelKind::EaseIo, &mut mcu).expect(name);
            assert!(!app.tasks.is_empty(), "{name}");
        }
    }

    #[test]
    fn deterministic_set_matches_the_strict_memory_contract() {
        let det: Vec<&str> = APP_NAMES
            .iter()
            .copied()
            .filter(|n| AppSpec::Named((*n).into()).is_deterministic())
            .collect();
        assert_eq!(det, ["dma", "lea", "fir", "fir-long", "ota-update"]);
    }

    #[test]
    fn scenario_builds_kernel_and_app_consistently() {
        let spec = ScenarioSpec::single(DeviceSpec {
            kernel: KernelKind::EaseIoOp,
            app: AppSpec::Named("fir".into()),
            ..DeviceSpec::default()
        });
        let rt = spec.kernel_builder().build();
        assert_eq!(rt.name(), "EaseIO");
        let mut mcu = Mcu::new(Supply::continuous());
        spec.build_app(&mut mcu).unwrap();
    }

    #[test]
    fn device_zero_reproduces_the_scenario_seed_exactly() {
        let spec = ScenarioSpec {
            device: DeviceSpec {
                fault: FaultSpec::with_rate(9, 50),
                ..DeviceSpec::default()
            },
            seed: 42,
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.device_seed(0), 42);
        assert_eq!(spec.device_seed(3), 45);
        // Device 0 keeps the template's fault plan untouched.
        assert_eq!(spec.fault_for_device(0), spec.device.fault);
        // Later devices fault independently but at the same rate.
        let f3 = spec.fault_for_device(3).plan.unwrap();
        assert_eq!(f3.seed, 12);
        assert_eq!(f3.rate_permille, 50);
        // A no-fault template stays fault-free on every device.
        let quiet = ScenarioSpec::default();
        assert_eq!(quiet.fault_for_device(7), FaultSpec::none());
    }

    #[test]
    #[allow(deprecated)]
    fn sim_config_shim_converts_to_the_single_device_scenario() {
        let sim = SimConfig {
            kernel: KernelKind::Naive,
            app: AppSpec::Named("temp".into()),
            supply: SupplySpec::Rf(58),
            seed: 7,
            runs: 3,
            jobs: 2,
            fault: FaultSpec::with_rate(1, 25),
            ..SimConfig::default()
        };
        let spec = sim.clone().into_scenario();
        assert_eq!(spec.count, 1);
        assert_eq!(spec.device.kernel, KernelKind::Naive);
        assert_eq!(spec.device.app, sim.app);
        assert_eq!(spec.device.fault, sim.fault);
        assert_eq!(spec.supply, sim.supply);
        assert_eq!(spec.medium, periph::MediumSpec::ideal());
        assert_eq!((spec.seed, spec.runs, spec.jobs), (7, 3, 2));
    }

    #[test]
    fn metrics_skip_reasons_cover_exactly_fir_long() {
        let skipped: Vec<&str> = APP_NAMES
            .iter()
            .copied()
            .filter(|n| AppSpec::Named((*n).into()).metrics_skip_reason().is_some())
            .collect();
        assert_eq!(skipped, ["fir-long"]);
        let reason = AppSpec::Named("fir-long".into())
            .metrics_skip_reason()
            .unwrap();
        assert!(reason.contains("20 ms"));
    }

    #[test]
    fn supply_labels_are_stable() {
        assert_eq!(SupplySpec::Rf(58).label(), "rf:58");
        assert_eq!(SupplySpec::TimerOnMs(15).label(), "timer:15ms");
        assert_eq!(SupplySpec::parse("timer", 61), Ok(SupplySpec::Timer));
        assert!(SupplySpec::parse("solar", 61).is_err());
    }
}
