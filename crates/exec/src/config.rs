//! The single construction surface for a simulation: what app, which
//! kernel, what power, which seeds, where outputs go.
//!
//! Before `SimConfig`, every entry point re-derived these from its own flag
//! set: the run path, the sweep path, and the aggregate path of
//! `easeio-sim` each parsed app/runtime/supply/seed separately and plumbed
//! them as loose scalars. A `SimConfig` is parsed once, travels as one
//! value, and every consumer — serial runs, the crash sweep, the parallel
//! engine's workers, the experiment grid — builds apps and kernels from it
//! the same way.

use apps::harness::{kernel_builder, KernelBuilder, KernelKind};
use apps::{
    dma_app, fir, fir_long, flaky_radio, lea_app, motion, temp_app, unsafe_branch, weather,
};
use kernel::{App, FaultSpec};
use mcu_emu::{Mcu, Supply, TimerResetConfig};

use crate::supply::{rf_supply, timer_supply_with_mean_on};

/// Which application to build. `Named` covers the paper's eight benchmark
/// apps; `Source` compiles an `easec` program from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppSpec {
    /// One of the built-in benchmark apps, by CLI name.
    Named(String),
    /// An `easec` source file.
    Source(String),
}

/// CLI names of the built-in benchmark apps, in canonical report order —
/// the full EaseIO evaluation matrix plus the packet-loss stressor.
pub const APP_NAMES: [&str; 10] = [
    "dma",
    "temp",
    "lea",
    "fir",
    "fir-long",
    "weather",
    "weather-single",
    "branch",
    "motion",
    "flaky-radio",
];

impl AppSpec {
    /// Builds the app on `mcu`. `exclude` selects the `Exclude`-annotated
    /// constant-DMA variant where the app has one (the EaseIO/Op pairing).
    pub fn build(&self, exclude: bool, mcu: &mut Mcu) -> Result<App, String> {
        let name = match self {
            AppSpec::Source(path) => {
                let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let compiled = easec::compile(&src, mcu).map_err(|e| format!("{path}: {e}"))?;
                return Ok(compiled.app);
            }
            AppSpec::Named(name) => name.as_str(),
        };
        Ok(match name {
            "dma" => dma_app::build(mcu, &dma_app::DmaAppCfg::default()),
            "temp" => temp_app::build(mcu, &temp_app::TempAppCfg::default()),
            "lea" => lea_app::build(mcu, &lea_app::LeaAppCfg::default()),
            "fir" => fir::build(
                mcu,
                &fir::FirCfg {
                    exclude_const_dma: exclude,
                    ..fir::FirCfg::default()
                },
            ),
            "fir-long" => fir_long::build(
                mcu,
                &fir_long::FirLongCfg {
                    exclude_const_dma: exclude,
                    ..fir_long::FirLongCfg::default()
                },
            ),
            "weather" => weather::build(
                mcu,
                &weather::WeatherCfg {
                    exclude_const_dma: exclude,
                    ..weather::WeatherCfg::default()
                },
            ),
            "weather-single" => weather::build(
                mcu,
                &weather::WeatherCfg {
                    single_buffer: true,
                    exclude_const_dma: exclude,
                    ..weather::WeatherCfg::default()
                },
            ),
            "branch" => unsafe_branch::build(mcu, &unsafe_branch::BranchCfg::default()).0,
            "motion" => motion::build(mcu, &motion::MotionCfg::default()).0,
            "flaky-radio" => flaky_radio::build(mcu, &flaky_radio::FlakyRadioCfg::default()).0,
            other => return Err(format!("unknown app {other}")),
        })
    }

    /// Whether the app's final memory is a pure function of the seed: no
    /// sensed environment values reach application state, so byte-exact
    /// comparison against the continuous-power oracle is sound.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, AppSpec::Named(n) if matches!(n.as_str(), "dma" | "fir" | "fir-long" | "lea"))
    }

    /// Display label: the app name, or the source path.
    pub fn label(&self) -> &str {
        match self {
            AppSpec::Named(n) => n,
            AppSpec::Source(p) => p,
        }
    }
}

/// Which power supply drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplySpec {
    /// Continuous wall power.
    Continuous,
    /// The default randomized on/off timer schedule.
    Timer,
    /// A timer schedule with mean on-period `on_ms` milliseconds (the
    /// grid's failure-intensity axis).
    TimerOnMs(u64),
    /// The RF harvester at `distance_inch` inches from the transmitter.
    Rf(u64),
}

impl SupplySpec {
    /// Parses a CLI `--supply` value (`continuous|timer|rf`; `rf` takes its
    /// distance separately).
    pub fn parse(name: &str, distance_inch: u64) -> Result<Self, String> {
        Ok(match name {
            "continuous" => SupplySpec::Continuous,
            "timer" => SupplySpec::Timer,
            "rf" => SupplySpec::Rf(distance_inch),
            other => return Err(format!("unknown supply {other}")),
        })
    }

    /// Instantiates the supply for one run.
    pub fn make(self, seed: u64) -> Supply {
        match self {
            SupplySpec::Continuous => Supply::continuous(),
            SupplySpec::Timer => Supply::timer(TimerResetConfig::default(), seed),
            SupplySpec::TimerOnMs(on_ms) => timer_supply_with_mean_on(on_ms, seed),
            SupplySpec::Rf(distance) => rf_supply(distance),
        }
    }

    /// Compact label for reports ("timer", "rf:58", "timer:15ms", …).
    pub fn label(self) -> String {
        match self {
            SupplySpec::Continuous => "continuous".into(),
            SupplySpec::Timer => "timer".into(),
            SupplySpec::TimerOnMs(on_ms) => format!("timer:{on_ms}ms"),
            SupplySpec::Rf(d) => format!("rf:{d}"),
        }
    }
}

/// One simulation, fully specified: parsed once at the CLI (or constructed
/// directly in tests/benches) and consumed everywhere.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// What application runs.
    pub app: AppSpec,
    /// Which kernel runs it.
    pub kernel: KernelKind,
    /// What power drives it.
    pub supply: SupplySpec,
    /// Base seed: environment, supply schedule, and boundary sampling all
    /// derive from it.
    pub seed: u64,
    /// Repetitions for aggregate modes (seed advances per run).
    pub runs: u64,
    /// Worker threads for the parallel engine (1 = serial).
    pub jobs: usize,
    /// Where to write the event trace, if anywhere.
    pub trace_out: Option<String>,
    /// Where to write the machine-readable report, if anywhere.
    pub report_out: Option<String>,
    /// Transient peripheral-fault configuration (plan + retry policy).
    pub fault: FaultSpec,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            app: AppSpec::Named("dma".into()),
            kernel: KernelKind::EaseIo,
            supply: SupplySpec::Timer,
            seed: 42,
            runs: 1,
            jobs: 1,
            trace_out: None,
            report_out: None,
            fault: FaultSpec::none(),
        }
    }
}

impl SimConfig {
    /// The kernel builder for this config, standard factory installed and
    /// the fault configuration attached.
    pub fn kernel_builder(&self) -> KernelBuilder {
        kernel_builder(self.kernel).with_faults(self.fault)
    }

    /// Builds the configured app on `mcu`, applying the kernel's
    /// `Exclude`-variant pairing automatically.
    pub fn build_app(&self, mcu: &mut Mcu) -> Result<App, String> {
        self.app.build(self.kernel.excludes_const_dma(), mcu)
    }

    /// The supply for run `i` of an aggregate (seed advances per run).
    pub fn supply_for_run(&self, i: u64) -> Supply {
        self.supply.make(self.seed + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_app_builds() {
        for name in APP_NAMES {
            let spec = AppSpec::Named(name.into());
            let mut mcu = Mcu::new(Supply::continuous());
            let app = spec.build(false, &mut mcu).expect(name);
            assert!(!app.tasks.is_empty(), "{name}");
        }
    }

    #[test]
    fn deterministic_set_matches_the_strict_memory_contract() {
        let det: Vec<&str> = APP_NAMES
            .iter()
            .copied()
            .filter(|n| AppSpec::Named((*n).into()).is_deterministic())
            .collect();
        assert_eq!(det, ["dma", "lea", "fir", "fir-long"]);
    }

    #[test]
    fn config_builds_kernel_and_app_consistently() {
        let cfg = SimConfig {
            kernel: KernelKind::EaseIoOp,
            app: AppSpec::Named("fir".into()),
            ..SimConfig::default()
        };
        let rt = cfg.kernel_builder().build();
        assert_eq!(rt.name(), "EaseIO");
        let mut mcu = Mcu::new(Supply::continuous());
        cfg.build_app(&mut mcu).unwrap();
    }

    #[test]
    fn supply_labels_are_stable() {
        assert_eq!(SupplySpec::Rf(58).label(), "rf:58");
        assert_eq!(SupplySpec::TimerOnMs(15).label(), "timer:15ms");
        assert_eq!(SupplySpec::parse("timer", 61), Ok(SupplySpec::Timer));
        assert!(SupplySpec::parse("solar", 61).is_err());
    }
}
