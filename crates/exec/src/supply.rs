//! Power-supply models shared by the CLI, the experiment grid, and the
//! paper's figure benches.

use mcu_emu::{Capacitor, RfHarvestConfig, Supply, TimerResetConfig};

/// The RF-harvesting supply of the real-world evaluation (§5.5): a 3 W
/// transmitter at 915 MHz charging a small storage capacitor, with the
/// combined antenna/rectifier gain calibrated so the no-failure /
/// intermittent crossover falls inside the paper's 52–64 inch sweep.
pub fn rf_supply(distance_inch: u64) -> Supply {
    rf_supply_phased(distance_inch, 0)
}

/// [`rf_supply`] with an explicit fading-wave phase: different phases give
/// independent-looking (but fully deterministic) harvesting trajectories.
pub fn rf_supply_phased(distance_inch: u64, phase_us: u64) -> Supply {
    Supply::harvester(RfHarvestConfig {
        tx_power_mw: 3_000,
        distance_centi_inch: distance_inch * 100,
        efficiency_ppm: 1_500_000,
        capacitor: Capacitor::with_usable_energy(4_500),
        boot_us: 300,
        fading_permille: 180,
        fading_period_us: 23_000,
        fading_phase_us: phase_us,
    })
}

/// A timer supply whose mean on-period is `on_ms` milliseconds, keeping the
/// default ±50% jitter shape of [`TimerResetConfig`] (the grid's on-time
/// axis).
pub fn timer_supply_with_mean_on(on_ms: u64, seed: u64) -> Supply {
    Supply::timer(
        TimerResetConfig {
            on_min_us: on_ms * 500,
            on_max_us: on_ms * 1500,
            ..TimerResetConfig::default()
        },
        seed,
    )
}
