//! A deterministic scoped worker pool.
//!
//! [`run_indexed`] fans a slice of work items across `jobs` OS threads and
//! returns the results **in item order**, no matter how the scheduler
//! interleaved the workers. Determinism comes from two properties:
//!
//! 1. every result is keyed by the index of the item that produced it, and
//!    the merge step places results by that key — thread arrival order
//!    never touches the output; and
//! 2. the per-item function receives only the item and worker-local state
//!    created by `init`, so (given a deterministic `f`) a result depends on
//!    the item alone, not on which worker ran it or what it ran before.
//!
//! Property 2 is the caller's obligation; the crash sweep satisfies it by
//! restoring every run from one shared machine snapshot (see
//! `crashcheck::run_from`). Under those two properties the pool's output at
//! `jobs = N` is byte-identical to the serial loop at `jobs = 1`.
//!
//! The pool is built on `std::thread::scope` — no extra dependencies, and
//! worker closures may borrow from the caller's stack. Work is pulled from
//! a single atomic cursor, so an expensive item does not stall the items
//! behind it: whichever worker frees up first takes the next index.

use easeio_trace::{Event, EventKind, SpanKind, Status, NO_SITE};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// What one pool invocation did, per worker — the utilization record the
/// bench report and the engine-level trace span are built from.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Worker threads the pool actually ran (1 for the serial path).
    pub jobs: usize,
    /// Items completed by each worker, indexed by worker id.
    pub items_per_worker: Vec<u64>,
    /// Exactly which item indices each worker processed, indexed by worker
    /// id — the utilization breakdown for the bench report.
    pub indices_per_worker: Vec<Vec<usize>>,
    /// Busy time of each worker in host-clock µs (first item start to last
    /// item end), indexed by worker id.
    pub busy_us_per_worker: Vec<u64>,
    /// Host wall-clock µs for the whole invocation, including the merge.
    pub wall_us: u64,
}

impl PoolStats {
    /// One [`SpanKind::Worker`] begin/end pair per worker, on the host
    /// wall-clock timebase, for appending to a trace document. `task`
    /// carries the worker index.
    pub fn worker_spans(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.busy_us_per_worker.len() * 2);
        for (w, &busy) in self.busy_us_per_worker.iter().enumerate() {
            let begin = Event {
                ts_us: 0,
                energy_nj: 0,
                task: w as u16,
                site: NO_SITE,
                name: "worker",
                kind: EventKind::SpanBegin(SpanKind::Worker),
            };
            let end = Event {
                ts_us: busy,
                kind: EventKind::SpanEnd(SpanKind::Worker, Status::Committed),
                ..begin
            };
            events.push(begin);
            events.push(end);
        }
        events
    }
}

/// Runs `f` over every item of `items` using up to `jobs` worker threads
/// and returns `(results, stats)` with `results[i] = f(state, i, &items[i])`
/// — always in item order.
///
/// `init` builds each worker's private state once, before it takes its
/// first item; the serial sweep's per-sweep setup (machine, app) maps onto
/// it directly. `jobs` is clamped to `1..=items.len()`; `jobs <= 1` runs
/// the plain serial loop on the calling thread with no pool machinery at
/// all, which keeps `--jobs 1` a true baseline.
pub fn run_indexed<T, R, S, I, F>(jobs: usize, items: &[T], init: I, f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let (results, _, stats) = run_indexed_collect(jobs, items, init, f, |_| ());
    (results, stats)
}

/// Like [`run_indexed`], but additionally reduces each worker's final
/// private state through `finish` (still on the worker's own thread) and
/// hands back the summaries in worker-id order.
///
/// This is what the streamed fleet path needs: each worker folds its
/// devices into a bounded per-worker aggregate (counts, sums, sketches)
/// instead of returning heavyweight per-device results, and the caller
/// merges the `jobs` aggregates afterwards. When every fold operation is
/// commutative and associative — sums, bucket counts, max — the merged
/// aggregate is independent of how the scheduler sliced the items, which
/// preserves the byte-identity guarantee with O(workers) memory.
///
/// `finish` runs before the worker thread joins, so the state itself never
/// crosses threads — only the `U` summary must be `Send`. That lets states
/// carry thread-bound machinery (a cached `Mcu`/`App` pair) alongside the
/// aggregate that outlives the pool.
/// One worker's parallel-path yield: its `(index, result)` pairs, its
/// finished state summary, and its busy µs.
type WorkerYield<R, U> = (Vec<(usize, R)>, U, u64);

pub fn run_indexed_collect<T, R, S, U, I, F, G>(
    jobs: usize,
    items: &[T],
    init: I,
    f: F,
    finish: G,
) -> (Vec<R>, Vec<U>, PoolStats)
where
    T: Sync,
    R: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    G: Fn(S) -> U + Sync,
{
    let started = Instant::now();
    let jobs = jobs.max(1).min(items.len().max(1));

    if jobs == 1 {
        let mut state = init();
        let worker_started = Instant::now();
        let results: Vec<R> = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
        let busy = worker_started.elapsed().as_micros() as u64;
        let stats = PoolStats {
            jobs: 1,
            items_per_worker: vec![items.len() as u64],
            indices_per_worker: vec![(0..items.len()).collect()],
            busy_us_per_worker: vec![busy],
            wall_us: started.elapsed().as_micros() as u64,
        };
        return (results, vec![finish(state)], stats);
    }

    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<WorkerYield<R, U>> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            handles.push(scope.spawn(|| {
                let mut state = init();
                let worker_started = Instant::now();
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&mut state, i, &items[i])));
                }
                (
                    local,
                    finish(state),
                    worker_started.elapsed().as_micros() as u64,
                )
            }));
        }
        for h in handles {
            // A worker can only panic if `f` or `init` did; propagate.
            per_worker.push(h.join().expect("pool worker panicked"));
        }
    });

    // Merge by item index: canonical order regardless of thread timing.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut items_per_worker = Vec::with_capacity(jobs);
    let mut indices_per_worker = Vec::with_capacity(jobs);
    let mut busy_us_per_worker = Vec::with_capacity(jobs);
    let mut states = Vec::with_capacity(jobs);
    for (local, state, busy) in per_worker {
        items_per_worker.push(local.len() as u64);
        indices_per_worker.push(local.iter().map(|(i, _)| *i).collect());
        busy_us_per_worker.push(busy);
        states.push(state);
        for (i, r) in local {
            debug_assert!(slots[i].is_none(), "item {i} produced twice");
            slots[i] = Some(r);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every item must produce exactly one result"))
        .collect();
    let stats = PoolStats {
        jobs,
        items_per_worker,
        indices_per_worker,
        busy_us_per_worker,
        wall_us: started.elapsed().as_micros() as u64,
    };
    (results, states, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let serial = run_indexed(1, &items, || (), |_, i, x| (i as u64) * 1000 + x).0;
        for jobs in [2, 3, 8] {
            let parallel = run_indexed(jobs, &items, || (), |_, i, x| (i as u64) * 1000 + x).0;
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn worker_state_is_initialized_per_worker() {
        let items = vec![(); 64];
        let (results, stats) = run_indexed(
            4,
            &items,
            || 0u64,
            |count, _, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(results.len(), 64);
        // Each worker's private counter starts at zero, so walking the item
        // indices a worker processed in order must read exactly 1..=n for
        // that worker's n items. Shared or recycled state would break the
        // sequence; a worker that inherited another's counter would start
        // above 1.
        let mut attributed = 0u64;
        for w in 0..stats.jobs {
            let indices = &stats.indices_per_worker[w];
            assert_eq!(indices.len() as u64, stats.items_per_worker[w]);
            for (k, &i) in indices.iter().enumerate() {
                assert_eq!(results[i], k as u64 + 1, "worker {w}, item {i}");
            }
            attributed += stats.items_per_worker[w];
        }
        assert_eq!(
            attributed, 64,
            "every item attributed to exactly one worker"
        );
    }

    #[test]
    fn empty_and_single_item_inputs_degrade_cleanly() {
        let none: Vec<u32> = vec![];
        let (r, stats) = run_indexed(8, &none, || (), |_, _, x| *x);
        assert!(r.is_empty());
        assert_eq!(stats.jobs, 1);
        let one = vec![9u32];
        let (r, _) = run_indexed(8, &one, || (), |_, _, x| *x * 2);
        assert_eq!(r, vec![18]);
    }

    #[test]
    fn collected_states_cover_every_item_once() {
        // Each worker's finished summary is its private item-count; the
        // summaries must line up with the stats attribution and sum to the
        // total regardless of width.
        for jobs in [1, 2, 4, 8] {
            let items = vec![(); 37];
            let (results, states, stats) = run_indexed_collect(
                jobs,
                &items,
                || 0u64,
                |count, _, _| {
                    *count += 1;
                },
                |count| count,
            );
            assert_eq!(results.len(), 37);
            assert_eq!(states.len(), stats.jobs, "one summary per worker");
            assert_eq!(states, stats.items_per_worker, "jobs = {jobs}");
            assert_eq!(states.iter().sum::<u64>(), 37, "jobs = {jobs}");
        }
    }

    #[test]
    fn worker_spans_pair_up() {
        let (_, stats) = run_indexed(3, &[1, 2, 3, 4, 5], || (), |_, _, x| *x);
        let spans = stats.worker_spans();
        assert_eq!(spans.len(), stats.jobs * 2);
        assert!(spans.iter().all(|e| matches!(
            e.kind,
            EventKind::SpanBegin(SpanKind::Worker) | EventKind::SpanEnd(SpanKind::Worker, _)
        )));
    }
}
