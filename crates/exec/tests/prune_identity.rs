//! Property test of the sweep engine's identity contract: for *any* app
//! shape, fault schedule, runtime, and worker width, the pruned parallel
//! sweep's full `SweepOutcome` — violations in order, per-boundary waste
//! series, per-cause energy totals — is byte-identical to the unpruned
//! serial sweep from `crashcheck`.
//!
//! This is the sweep-level closure over the record-level proofs in
//! `crashcheck` (materialized records equal real injected runs; boundaries
//! differing only in fault-plan position never merge): if any part of
//! classification, representative execution, materialization, batching, or
//! merge order were wrong for some input, the outcomes would diverge here.

use apps::dma_app;
use apps::harness::RuntimeKind;
use crashcheck::{sweep, SweepOutcome, SweepPlan};
use easeio_exec::{run_sweep, SweepOptions};
use kernel::FaultSpec;
use mcu_emu::Mcu;
use proptest::prelude::*;

fn assert_identical(serial: &SweepOutcome, engine: &SweepOutcome) {
    assert_eq!(serial.runtime, engine.runtime);
    assert_eq!(serial.app, engine.app);
    assert_eq!(serial.env_seed, engine.env_seed);
    assert_eq!(serial.oracle_boundaries, engine.oracle_boundaries);
    assert_eq!(serial.injections, engine.injections);
    assert_eq!(
        serial.violations.len(),
        engine.violations.len(),
        "violation count"
    );
    for (a, b) in serial.violations.iter().zip(&engine.violations) {
        assert_eq!(a.boundary, b.boundary);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.detail, b.detail);
    }
    assert_eq!(serial.boundary_waste_nj, engine.boundary_waste_nj);
    assert_eq!(serial.cause_energy_nj, engine.cause_energy_nj);
}

proptest! {
    // Each case runs one serial sweep plus one engine sweep end to end, so
    // a small case count still covers hundreds of injected runs.
    #![proptest_config(ProptestConfig { cases: 12 })]
    #[test]
    fn pruned_parallel_sweep_is_byte_identical_to_unpruned_serial(
        bytes in prop_oneof![Just(256u32), Just(1024u32), Just(2048u32), Just(4096u32)],
        chunks in 1u32..4,
        pre_compute in 0u64..3000,
        post_compute in 0u64..1200,
        env_seed in 0u64..1000,
        fault_rate in prop_oneof![Just(0u32), Just(60u32), Just(150u32)],
        fault_seed in 0u64..1000,
        naive in any::<bool>(),
        jobs in prop_oneof![Just(1usize), Just(4usize), Just(8usize)],
    ) {
        let cfg = dma_app::DmaAppCfg {
            bytes,
            chunks,
            iterations: 1,
            pre_compute,
            post_compute,
        };
        let build = move |m: &mut Mcu| dma_app::build(m, &cfg);
        let kind = if naive { RuntimeKind::Naive } else { RuntimeKind::EaseIo };
        let fault = if fault_rate == 0 {
            FaultSpec::none()
        } else {
            FaultSpec::with_rate(fault_seed, fault_rate)
        };
        let plan = SweepPlan {
            strict_memory: true,
            fault,
            ..SweepPlan::with_env_seed(env_seed)
        };
        let serial = sweep(&build, kind, &plan);
        let (pruned, timing) = run_sweep(&build, kind, &plan, &SweepOptions { jobs, prune: true });
        assert_identical(&serial, &pruned);
        prop_assert_eq!(
            timing.prune.injections_executed + timing.prune.injections_pruned,
            serial.injections
        );
        // The engine must also reproduce the serial outcome with pruning
        // off — the pure thread-parallel path.
        let (unpruned, _) = run_sweep(&build, kind, &plan, &SweepOptions { jobs, prune: false });
        assert_identical(&serial, &unpruned);
    }
}
