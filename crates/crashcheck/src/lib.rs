//! Deterministic power-failure sweep engine.
//!
//! The random failure schedules of the benchmark harness sample the crash
//! space; this crate *enumerates* it. A reference run on continuous power
//! counts every energy-spend boundary — the `Mcu::spend` slices at which a
//! supply may interrupt execution, i.e. every point where a power failure
//! can be observed. The sweep then re-runs the application once per chosen
//! boundary with [`Supply::injected`] firing exactly there, and checks each
//! injected run against crash-consistency invariants:
//!
//! * the run completes (a single failure must never wedge the executor);
//! * the application's own verdict is `Correct`;
//! * `Single` operations are never externally performed twice
//!   (`probe_single_redundant` stays zero — a re-execution is only legal
//!   when the completion record was itself interrupted);
//! * `Timely` restores never hand out a stale value (`probe_timely_stale`);
//! * commit pricing matches the distinct dirty control state
//!   (`probe_commit_overpriced`);
//! * a rebooted device resumes a coherent task-graph image — an in-flight
//!   OTA update is always old-or-new, never torn (`probe_version_torn`);
//!   the update-aware mode ([`SweepPlan::update_window`]) focuses the
//!   injection set on the stage→flip→activate span for this probe;
//! * optionally, final application FRAM is byte-identical to the oracle's
//!   (sound only for apps whose outputs don't depend on sensed time).
//!
//! Every run restores the machine from a snapshot taken after the app was
//! built — including the allocator cursors, so runtime-allocated control
//! blocks land at identical addresses — which makes any violation
//! reproducible from (app, runtime, seed, boundary index) alone.
//!
//! Exhaustive below a threshold; above it, boundaries are sampled without
//! replacement from a seeded [`StdRng`].

use apps::harness::{MakeRuntime, RuntimeKind};
use kernel::{run_app, App, ExecConfig, FaultSpec, Outcome, Verdict};
use mcu_emu::{AllocTag, Mcu, McuSnapshot, Region, SpendBoundary, Supply, CAUSE_COUNT};
use periph::Peripherals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// How boundaries are chosen from `0..oracle_boundaries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Inject at every boundary.
    Exhaustive,
    /// Inject at `n` distinct boundaries sampled without replacement
    /// (exhaustive anyway when `n` covers the whole range).
    Sample(u64),
    /// Inject at exactly this one boundary (empty sweep if it is out of
    /// range) — the minimal-repro mode forensics bundles point at.
    Boundary(u64),
}

impl SweepMode {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Exhaustive => "exhaustive",
            SweepMode::Sample(_) => "sample",
            SweepMode::Boundary(_) => "boundary",
        }
    }
}

/// Everything a sweep needs beyond (app, kernel): one plain struct shared
/// by the serial loop, the parallel engine, and the CLI, replacing the old
/// bool-and-scalar parameter tails.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Boundary-selection mode.
    pub mode: SweepMode,
    /// Seed for boundary sampling (and recorded for reproduction).
    pub seed: u64,
    /// Outage length of the injected failure (µs). Long outages let the
    /// sensed environment drift, which is what provokes stale-value bugs
    /// in runtimes without I/O semantics.
    pub off_us: u64,
    /// Compare final app-tagged FRAM byte-for-byte against the oracle.
    /// Only sound for deterministic apps: anything sensing a drifting
    /// environment legitimately diverges after an outage.
    pub strict_memory: bool,
    /// Environment seed every run (oracle and injected) shares.
    pub env_seed: u64,
    /// Transient peripheral-fault configuration applied to every *injected*
    /// run (the oracle stays fault-free: it defines intended behaviour).
    /// The schedule is deterministic, so the sweep explores the product
    /// space power-failure boundary x fault schedule reproducibly.
    pub fault: FaultSpec,
    /// Restrict injection to boundaries inside the app's OTA update window
    /// (the stage→flip→activate span bracketed by the
    /// `update_window_enter`/`update_window_exit` marker counters on the
    /// reference trace). Selection still composes with `mode` and the
    /// fault schedule; boundaries outside the window are dropped after
    /// [`select_boundaries`], identically in the serial and parallel
    /// engines.
    pub update_window: bool,
}

impl Default for SweepPlan {
    fn default() -> Self {
        Self {
            mode: SweepMode::Exhaustive,
            seed: 7,
            off_us: 100_000,
            strict_memory: false,
            env_seed: 7,
            fault: FaultSpec::none(),
            update_window: false,
        }
    }
}

impl SweepPlan {
    /// A default plan with its environment seed set — the common literal.
    pub fn with_env_seed(env_seed: u64) -> Self {
        Self {
            env_seed,
            ..Self::default()
        }
    }
}

/// Former name of [`SweepPlan`] (minus `env_seed`), kept as an alias so the
/// pre-plan spelling keeps compiling.
pub type SweepConfig = SweepPlan;

/// Classes of invariant violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The injected run hit the non-termination guard.
    NotCompleted,
    /// The injected run aborted on a runtime resource fault.
    Fault,
    /// The app's verdict was `Incorrect`.
    WrongVerdict,
    /// A completed `Single` operation was externally re-performed.
    SingleRedundant,
    /// A `Timely` restore handed out a value older than its window.
    TimelyStale,
    /// Commit priced more flag clears than distinct dirty sites exist.
    CommitOverpriced,
    /// Final app FRAM differs from the continuous-power oracle.
    MemoryDivergence,
    /// A fault whose external effect had completed was retried under
    /// `Single` semantics: the effect was duplicated.
    RetryDuplicatedEffect,
    /// A degraded `Timely` fallback served a value older than its window.
    DegradedStalenessExceeded,
    /// The per-cause energy ledgers did not sum to the run's energy totals
    /// — the attribution accounting itself is broken.
    AttributionUnbalanced,
    /// Recovery found the active task-graph image torn: its header hash no
    /// longer matched its payload, i.e. the device resumed on a version
    /// that is neither old nor new.
    VersionTorn,
}

impl ViolationKind {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::NotCompleted => "not_completed",
            ViolationKind::Fault => "fault",
            ViolationKind::WrongVerdict => "wrong_verdict",
            ViolationKind::SingleRedundant => "single_redundant",
            ViolationKind::TimelyStale => "timely_stale",
            ViolationKind::CommitOverpriced => "commit_overpriced",
            ViolationKind::MemoryDivergence => "memory_divergence",
            ViolationKind::RetryDuplicatedEffect => "retry_duplicated_effect",
            ViolationKind::DegradedStalenessExceeded => "degraded_staleness_exceeded",
            ViolationKind::AttributionUnbalanced => "attribution_unbalanced",
            ViolationKind::VersionTorn => "version_torn",
        }
    }
}

/// One invariant violation, reproducible from the sweep identity plus
/// `boundary`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Boundary index the failure was injected at.
    pub boundary: u64,
    /// Violation class.
    pub kind: ViolationKind,
    /// Human-readable divergence description.
    pub detail: String,
}

/// Result of a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Runtime display name.
    pub runtime: &'static str,
    /// App name.
    pub app: &'static str,
    /// Environment seed every run shared.
    pub env_seed: u64,
    /// The plan the sweep ran with.
    pub config: SweepPlan,
    /// Energy-spend boundaries counted in the oracle run.
    pub oracle_boundaries: u64,
    /// Injection runs performed.
    pub injections: u64,
    /// Invariant violations, in boundary order.
    pub violations: Vec<Violation>,
    /// Wasted energy of each injected run, in boundary order — the
    /// per-boundary waste distribution the sweep report folds into
    /// mean/p95. Same length as `injections`.
    pub boundary_waste_nj: Vec<u64>,
    /// Per-cause energy totals summed across every injected run, indexed
    /// by `EnergyCause::index`.
    pub cause_energy_nj: [u64; CAUSE_COUNT],
}

impl SweepOutcome {
    /// Whether every injected run upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Boundaries to inject at, in increasing order. Public so schedulers (the
/// parallel engine partitions this list into batches) select exactly the
/// set the serial sweep would.
pub fn select_boundaries(total: u64, mode: SweepMode, seed: u64) -> Vec<u64> {
    match mode {
        SweepMode::Sample(n) if n < total => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut set = BTreeSet::new();
            while (set.len() as u64) < n {
                set.insert(rng.random_range(0..total));
            }
            set.into_iter().collect()
        }
        SweepMode::Boundary(b) => {
            if b < total {
                vec![b]
            } else {
                Vec::new()
            }
        }
        _ => (0..total).collect(),
    }
}

/// Final contents of all app-tagged FRAM allocations, in allocation order.
pub fn app_fram(mcu: &Mcu) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (addr, len) in mcu.mem.tagged_ranges(Region::Fram, AllocTag::App) {
        bytes.extend_from_slice(mcu.mem.read_bytes(addr, len));
    }
    bytes
}

/// Everything the invariant checks need from one run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// How the executor finished.
    pub outcome: Outcome,
    /// The app's self-check verdict, if it completed.
    pub verdict: Option<Verdict>,
    /// Energy-spend boundaries crossed.
    pub boundaries: u64,
    /// `probe_single_redundant` counter.
    pub single_redundant: u64,
    /// `probe_timely_stale` counter.
    pub timely_stale: u64,
    /// `probe_commit_overpriced` counter.
    pub commit_overpriced: u64,
    /// `probe_retry_duplicated_effect` counter.
    pub retry_duplicated_effect: u64,
    /// `probe_degraded_staleness_exceeded` counter.
    pub degraded_staleness_exceeded: u64,
    /// `probe_version_torn` counter.
    pub version_torn: u64,
    /// Per-cause energy ledger of the run, indexed by
    /// `EnergyCause::index`.
    pub cause_energy_nj: [u64; CAUSE_COUNT],
    /// Total energy spent (app + overhead, nJ).
    pub total_energy_nj: u64,
    /// Energy spent on waste categories (nJ).
    pub waste_nj: u64,
    /// Whether the cause ledgers summed to the energy totals.
    pub attribution_balanced: bool,
    /// Final app-tagged FRAM bytes.
    pub fram: Vec<u8>,
}

/// One run from the snapshot under `supply`: fresh peripherals, fresh
/// runtime, restored machine — identical initial state every time. Public
/// so the parallel engine's workers replay exactly the serial recipe.
pub fn run_from(
    app: &App,
    kind: RuntimeKind,
    mcu: &mut Mcu,
    snap: &McuSnapshot,
    supply: Supply,
    env_seed: u64,
    fault: &FaultSpec,
) -> RunRecord {
    mcu.restore(snap);
    mcu.supply = supply;
    let mut periph = Peripherals::new(env_seed);
    fault.apply(&mut periph);
    let mut rt = kind.make();
    let cfg = ExecConfig {
        retry: fault.retry,
        ..ExecConfig::default()
    };
    let r = run_app(app, rt.as_mut(), mcu, &mut periph, &cfg);
    RunRecord {
        outcome: r.outcome,
        verdict: r.verdict,
        boundaries: r.stats.boundaries,
        single_redundant: r.stats.counter("probe_single_redundant"),
        timely_stale: r.stats.counter("probe_timely_stale"),
        commit_overpriced: r.stats.counter("probe_commit_overpriced"),
        retry_duplicated_effect: r.stats.counter("probe_retry_duplicated_effect"),
        degraded_staleness_exceeded: r.stats.counter("probe_degraded_staleness_exceeded"),
        version_torn: r.stats.counter("probe_version_torn"),
        cause_energy_nj: r.stats.cause_energy_nj,
        total_energy_nj: r.stats.app_energy_nj + r.stats.overhead_energy_nj,
        waste_nj: r.stats.waste_energy_nj(),
        attribution_balanced: r.stats.attribution_balanced(),
        fram: app_fram(mcu),
    }
}

/// The [`mcu_emu::RunStats`] counters a [`RunRecord`] exposes, in field
/// order — the counters a boundary trace must capture per slice so skipped
/// boundaries' records can be materialized from their representative.
pub const PROBE_COUNTERS: [&str; 6] = [
    "probe_single_redundant",
    "probe_timely_stale",
    "probe_commit_overpriced",
    "probe_retry_duplicated_effect",
    "probe_degraded_staleness_exceeded",
    "probe_version_torn",
];

/// The OTA window marker counters, recorded on the reference trace right
/// after [`PROBE_COUNTERS`] (slice indices `PROBE_COUNTERS.len()` and
/// `PROBE_COUNTERS.len() + 1`). Not probes: they never materialize into a
/// [`RunRecord`]; [`filter_update_window`] reads them to find which
/// boundaries fall inside the stage→flip→activate span.
pub const UPDATE_WINDOW_COUNTERS: [&str; 2] = ["update_window_enter", "update_window_exit"];

/// Per-boundary record of one reference run under the sweep's fault plan on
/// continuous power: which spend call each boundary's slice belongs to,
/// plus the cumulative ledger prefix right before it.
#[derive(Debug, Clone)]
pub struct BoundaryTrace {
    /// One record per energy-spend boundary, index = boundary.
    pub slices: Vec<SpendBoundary>,
    /// Whether the run observed wall-clock time in a way that can reach
    /// persistent state or a verdict (timestamp read, sensor sample, radio
    /// transmit, degraded-`Timely` age check). If so, no two boundaries may
    /// be merged: slices of one spend call resume at different clocks.
    pub time_observed: bool,
}

/// Records the sweep's reference run: the same restore-then-run recipe as
/// every injected run — same fault plan, same env seed — but on continuous
/// power and with the boundary recorder active. An injected run at boundary
/// `b` is *identical* to this run up to the injection (the not-yet-fired
/// injected supply charges exactly like the continuous one), so
/// `trace.slices[b]` is the injected run's exact pre-failure ledger prefix.
///
/// The run may legitimately end in `Fault`/`NonTermination` under an
/// aggressive fault plan; its prefix trace is valid regardless.
pub fn reference_trace(
    app: &App,
    kind: RuntimeKind,
    mcu: &mut Mcu,
    snap: &McuSnapshot,
    env_seed: u64,
    fault: &FaultSpec,
) -> BoundaryTrace {
    let mut tracked = PROBE_COUNTERS.to_vec();
    tracked.extend(UPDATE_WINDOW_COUNTERS);
    mcu.record_boundaries(tracked);
    let _ = run_from(app, kind, mcu, snap, Supply::continuous(), env_seed, fault);
    let (slices, time_observed) = mcu
        .take_boundary_recording()
        .expect("recorder was installed above");
    BoundaryTrace {
        slices,
        time_observed,
    }
}

/// Restricts `chosen` to the boundaries inside the app's OTA update
/// window, read off the reference trace's marker-counter prefixes: a
/// boundary is in the window iff, right before its slice, the app had
/// bumped `update_window_enter` more times than `update_window_exit`. On
/// the continuous-power reference each marker fires once, so this is
/// exactly the stage→flip→activate span. Boundaries past the reference
/// run's last slice never fire their injection and are dropped.
pub fn filter_update_window(chosen: &[u64], trace: &BoundaryTrace) -> Vec<u64> {
    let enter = PROBE_COUNTERS.len();
    let exit = enter + 1;
    chosen
        .iter()
        .copied()
        .filter(|&b| {
            trace
                .slices
                .get(b as usize)
                .is_some_and(|s| s.counters[enter] > s.counters[exit])
        })
        .collect()
}

/// Equivalence classes over the chosen boundaries of one sweep.
#[derive(Debug, Clone)]
pub struct PruneClasses {
    /// For each chosen boundary (parallel to the `chosen` slice passed to
    /// [`classify_boundaries`]), the index into `reps` of its class.
    pub class_of: Vec<usize>,
    /// One representative boundary per class: the first chosen member.
    /// Only representatives need real injected runs.
    pub reps: Vec<u64>,
    /// Copied from the trace: true means classification refused to merge
    /// anything and every class is a singleton.
    pub time_observed: bool,
}

/// Groups chosen boundaries into equivalence classes by the spend *call*
/// their slice interrupts.
///
/// Soundness: every layer of the simulator obeys spend-then-mutate, so no
/// simulator or host state changes between two slices of one spend call —
/// an injection at either boundary clears the same volatile state over the
/// same persistent state and replays the identical continuation. The only
/// distinguishing observable is the wall clock (later slices fail later),
/// which is why a time-observing run ([`BoundaryTrace::time_observed`])
/// gets singleton classes. Fault-plan position needs no key component:
/// peripheral attempt counters tick between spend calls, so two attempts
/// of one site are distinct spend calls and never share a class.
///
/// Boundaries at or past the reference run's last slice form one extra
/// class: the injection never fires there, so every such run *is* the
/// reference run.
pub fn classify_boundaries(chosen: &[u64], trace: &BoundaryTrace) -> PruneClasses {
    let mut class_of = Vec::with_capacity(chosen.len());
    let mut reps = Vec::new();
    if trace.time_observed {
        for (i, &b) in chosen.iter().enumerate() {
            class_of.push(i);
            reps.push(b);
        }
        return PruneClasses {
            class_of,
            reps,
            time_observed: true,
        };
    }
    let mut by_key: HashMap<Option<u64>, usize> = HashMap::new();
    for &b in chosen {
        let key = trace.slices.get(b as usize).map(|s| s.spend_seq);
        let id = *by_key.entry(key).or_insert_with(|| {
            reps.push(b);
            reps.len() - 1
        });
        class_of.push(id);
    }
    PruneClasses {
        class_of,
        reps,
        time_observed: false,
    }
}

/// Materializes the record of a pruned boundary from its class
/// representative's real record.
///
/// Same class means identical continuation, so every field is either copied
/// (outcome, verdict, final FRAM, balance flag) or corrected additively:
/// cumulative totals differ between class members exactly by the difference
/// of their pre-failure ledger prefixes, which the reference trace recorded.
/// The probe counters cannot change within one spend call, so their
/// correction is the identity — kept in the same additive form for
/// uniformity. `waste_nj` is re-derived from the corrected cause ledger,
/// matching how [`run_from`] derives it.
pub fn materialize_record(
    trace: &BoundaryTrace,
    rep: &RunRecord,
    rep_boundary: u64,
    boundary: u64,
) -> RunRecord {
    let (Some(rp), Some(tp)) = (
        trace.slices.get(rep_boundary as usize),
        trace.slices.get(boundary as usize),
    ) else {
        // Past the reference run's last boundary the injection never
        // fires: the run is the reference run, byte for byte.
        return rep.clone();
    };
    let shift = |total: u64, from: u64, to: u64| total - from + to;
    let mut cause_energy_nj = rep.cause_energy_nj;
    for (i, c) in cause_energy_nj.iter_mut().enumerate() {
        *c = shift(*c, rp.cause_energy_nj[i], tp.cause_energy_nj[i]);
    }
    let waste_nj = mcu_emu::EnergyCause::ALL
        .iter()
        .filter(|c| c.is_waste())
        .map(|c| cause_energy_nj[c.index()])
        .sum();
    RunRecord {
        outcome: rep.outcome,
        verdict: rep.verdict.clone(),
        boundaries: shift(rep.boundaries, rp.boundaries, tp.boundaries),
        single_redundant: shift(rep.single_redundant, rp.counters[0], tp.counters[0]),
        timely_stale: shift(rep.timely_stale, rp.counters[1], tp.counters[1]),
        commit_overpriced: shift(rep.commit_overpriced, rp.counters[2], tp.counters[2]),
        retry_duplicated_effect: shift(rep.retry_duplicated_effect, rp.counters[3], tp.counters[3]),
        degraded_staleness_exceeded: shift(
            rep.degraded_staleness_exceeded,
            rp.counters[4],
            tp.counters[4],
        ),
        version_torn: shift(rep.version_torn, rp.counters[5], tp.counters[5]),
        cause_energy_nj,
        total_energy_nj: shift(
            rep.total_energy_nj,
            rp.app_energy_nj + rp.overhead_energy_nj,
            tp.app_energy_nj + tp.overhead_energy_nj,
        ),
        waste_nj,
        attribution_balanced: rep.attribution_balanced,
        fram: rep.fram.clone(),
    }
}

/// The shared prefix of every sweep: the post-construction machine snapshot
/// and the continuous-power oracle record. The snapshot is an `Arc` under
/// the hood and `oracle_fram` is `Arc`-wrapped here, so cloning a
/// `SweepOracle` to N worker threads shares the 256 KB FRAM image instead
/// of copying it per worker.
#[derive(Clone)]
pub struct SweepOracle {
    /// Machine state right after app construction (allocator cursors
    /// included, so rebuilt apps land at identical addresses).
    pub snapshot: McuSnapshot,
    /// Energy-spend boundaries the oracle run crossed.
    pub boundaries: u64,
    /// App-tagged FRAM at oracle completion, for `strict_memory` compares.
    pub fram: Arc<Vec<u8>>,
    /// App display name.
    pub app: &'static str,
}

/// Builds the app once, snapshots the machine, and runs the
/// continuous-power oracle. Panics if the oracle does not complete — a
/// sweep of an app that cannot finish on wall power is meaningless.
pub fn prepare_oracle(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    env_seed: u64,
) -> SweepOracle {
    let mut mcu = Mcu::new(Supply::continuous());
    let app = builder(&mut mcu);
    let snap = mcu.snapshot();
    let oracle = run_from(
        &app,
        kind,
        &mut mcu,
        &snap,
        Supply::continuous(),
        env_seed,
        &FaultSpec::none(),
    );
    assert_eq!(
        oracle.outcome,
        Outcome::Completed,
        "oracle run must complete on continuous power"
    );
    SweepOracle {
        snapshot: snap,
        boundaries: oracle.boundaries,
        fram: Arc::new(oracle.fram),
        app: app.name,
    }
}

/// Checks one injected run against every invariant, returning the
/// violations for `boundary` in deterministic order. This is the single
/// judgement function — serial sweep and parallel engine both call it, so
/// their reports cannot drift apart.
pub fn check_record(
    r: &RunRecord,
    oracle_fram: &[u8],
    boundary: u64,
    strict_memory: bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut report = |kind: ViolationKind, detail: String| {
        violations.push(Violation {
            boundary,
            kind,
            detail,
        });
    };
    if !r.attribution_balanced {
        let cause_sum: u64 = r.cause_energy_nj.iter().sum();
        report(
            ViolationKind::AttributionUnbalanced,
            format!(
                "cause ledgers sum to {cause_sum} nJ but the run spent {} nJ",
                r.total_energy_nj
            ),
        );
    }
    match &r.outcome {
        Outcome::Completed => {}
        Outcome::NonTermination => {
            report(
                ViolationKind::NotCompleted,
                "hit the non-termination guard".into(),
            );
            return violations;
        }
        Outcome::Fault(e) => {
            report(ViolationKind::Fault, e.to_string());
            return violations;
        }
    }
    if let Some(Verdict::Incorrect(why)) = &r.verdict {
        report(ViolationKind::WrongVerdict, why.clone());
    }
    if r.single_redundant > 0 {
        report(
            ViolationKind::SingleRedundant,
            format!("probe_single_redundant = {}", r.single_redundant),
        );
    }
    if r.timely_stale > 0 {
        report(
            ViolationKind::TimelyStale,
            format!("probe_timely_stale = {}", r.timely_stale),
        );
    }
    if r.commit_overpriced > 0 {
        report(
            ViolationKind::CommitOverpriced,
            format!("probe_commit_overpriced = {}", r.commit_overpriced),
        );
    }
    if r.retry_duplicated_effect > 0 {
        report(
            ViolationKind::RetryDuplicatedEffect,
            format!(
                "probe_retry_duplicated_effect = {}",
                r.retry_duplicated_effect
            ),
        );
    }
    if r.degraded_staleness_exceeded > 0 {
        report(
            ViolationKind::DegradedStalenessExceeded,
            format!(
                "probe_degraded_staleness_exceeded = {}",
                r.degraded_staleness_exceeded
            ),
        );
    }
    if r.version_torn > 0 {
        report(
            ViolationKind::VersionTorn,
            format!("probe_version_torn = {}", r.version_torn),
        );
    }
    if strict_memory && r.fram != oracle_fram {
        let first = r
            .fram
            .iter()
            .zip(oracle_fram)
            .position(|(a, b)| a != b)
            .unwrap_or(oracle_fram.len().min(r.fram.len()));
        report(
            ViolationKind::MemoryDivergence,
            format!(
                "app FRAM diverges from the oracle at byte {first} of {}",
                oracle_fram.len()
            ),
        );
    }
    violations
}

/// Cap on the per-byte FRAM diff a forensics record carries — enough to
/// see the torn region's shape without shipping the whole image.
pub const FORENSICS_DIFF_CAP: usize = 32;

/// Plain-struct forensics data for one violating boundary: everything a
/// self-contained violation bundle needs from the engine layer. This
/// crate has no dependency on the report schema — the CLI marries this
/// record to the `kind: "forensics"` document and the repro command.
#[derive(Debug, Clone)]
pub struct BoundaryForensics {
    /// The injected boundary.
    pub boundary: u64,
    /// The spend call the boundary's slice interrupts on the reference
    /// trace (`None` past the reference run's last slice).
    pub spend_seq: Option<u64>,
    /// Boundary-space size of the oracle run, for context.
    pub oracle_boundaries: u64,
    /// The violations the injected run trips, in deterministic order.
    pub violations: Vec<Violation>,
    /// App-FRAM bytes that differ from the continuous-power oracle.
    pub divergent_bytes: u64,
    /// First [`FORENSICS_DIFF_CAP`] differing bytes as
    /// `(offset, oracle, observed)`, offsets into the app-tagged FRAM
    /// image in allocation order.
    pub fram_diff: Vec<(u64, u8, u8)>,
}

/// Re-runs one boundary of a sweep and collects the forensic record:
/// the violating run's invariant judgements, its spend-call coordinate on
/// the reference trace, and a capped byte diff of final app FRAM against
/// the continuous-power oracle. Deterministic in `(builder, kind, plan,
/// boundary)` — the same identity the sweep's own violations carry, so
/// the record always describes the run the sweep saw.
pub fn boundary_forensics(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    plan: &SweepPlan,
    boundary: u64,
) -> BoundaryForensics {
    let mut mcu = Mcu::new(Supply::continuous());
    let app = builder(&mut mcu);
    let oracle = prepare_oracle(builder, kind, plan.env_seed);
    mcu.restore(&oracle.snapshot);
    let trace = reference_trace(
        &app,
        kind,
        &mut mcu,
        &oracle.snapshot,
        plan.env_seed,
        &plan.fault,
    );
    let spend_seq = trace.slices.get(boundary as usize).map(|s| s.spend_seq);
    let r = run_from(
        &app,
        kind,
        &mut mcu,
        &oracle.snapshot,
        Supply::injected(boundary, plan.off_us),
        plan.env_seed,
        &plan.fault,
    );
    let violations = check_record(&r, &oracle.fram, boundary, plan.strict_memory);
    let mut divergent_bytes = 0u64;
    let mut fram_diff = Vec::new();
    for (i, (observed, expected)) in r.fram.iter().zip(oracle.fram.iter()).enumerate() {
        if observed != expected {
            divergent_bytes += 1;
            if fram_diff.len() < FORENSICS_DIFF_CAP {
                fram_diff.push((i as u64, *expected, *observed));
            }
        }
    }
    // A length mismatch (allocation divergence) counts every unpaired byte.
    divergent_bytes += r.fram.len().abs_diff(oracle.fram.len()) as u64;
    BoundaryForensics {
        boundary,
        spend_seq,
        oracle_boundaries: oracle.boundaries,
        violations,
        divergent_bytes,
        fram_diff,
    }
}

/// Runs the sweep serially: one continuous-power oracle run, then one
/// injected run per selected boundary, checking the invariants above.
pub fn sweep(
    builder: &dyn Fn(&mut Mcu) -> App,
    kind: RuntimeKind,
    plan: &SweepPlan,
) -> SweepOutcome {
    let mut mcu = Mcu::new(Supply::continuous());
    let app = builder(&mut mcu);
    let oracle = prepare_oracle(builder, kind, plan.env_seed);
    // Adopt the oracle's snapshot (full copy once, then page-wise CoW).
    mcu.restore(&oracle.snapshot);

    let mut chosen = select_boundaries(oracle.boundaries, plan.mode, plan.seed);
    if plan.update_window {
        let trace = reference_trace(
            &app,
            kind,
            &mut mcu,
            &oracle.snapshot,
            plan.env_seed,
            &plan.fault,
        );
        chosen = filter_update_window(&chosen, &trace);
    }
    let injections = chosen.len() as u64;
    let mut violations = Vec::new();
    let mut boundary_waste_nj = Vec::with_capacity(chosen.len());
    let mut cause_energy_nj = [0u64; CAUSE_COUNT];
    for b in chosen {
        let r = run_from(
            &app,
            kind,
            &mut mcu,
            &oracle.snapshot,
            Supply::injected(b, plan.off_us),
            plan.env_seed,
            &plan.fault,
        );
        violations.extend(check_record(&r, &oracle.fram, b, plan.strict_memory));
        boundary_waste_nj.push(r.waste_nj);
        for (total, c) in cause_energy_nj.iter_mut().zip(r.cause_energy_nj) {
            *total += c;
        }
    }

    SweepOutcome {
        runtime: kind.name(),
        app: oracle.app,
        env_seed: plan.env_seed,
        config: plan.clone(),
        oracle_boundaries: oracle.boundaries,
        injections,
        violations,
        boundary_waste_nj,
        cause_energy_nj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::{dma_app, flaky_radio, motion, temp_app, unsafe_branch};

    fn small_dma(m: &mut Mcu) -> App {
        dma_app::build(
            m,
            &dma_app::DmaAppCfg {
                bytes: 256,
                chunks: 3,
                iterations: 1,
                pre_compute: 200,
                post_compute: 200,
            },
        )
    }

    #[test]
    fn easeio_exhaustive_sweep_is_clean_on_the_dma_app() {
        let out = sweep(
            &small_dma,
            RuntimeKind::EaseIo,
            &SweepPlan {
                strict_memory: true,
                ..SweepPlan::with_env_seed(5)
            },
        );
        assert!(out.oracle_boundaries > 0, "a non-trivial boundary space");
        assert_eq!(out.injections, out.oracle_boundaries);
        assert!(
            out.is_clean(),
            "EaseIO violated invariants: {:?}",
            out.violations
        );
    }

    /// Regression for the atomic-completion fix: the motion app's verdict is
    /// the end-to-end exactly-once invariant (radio packets on the air ==
    /// alert counter in FRAM). Before the runtime pre-charged the completion
    /// bookkeeping, a failure injected between the `Single` send's effect
    /// and its lock store re-sent the alert on reboot — this exhaustive
    /// sweep found it as `WrongVerdict` at those exact boundaries.
    #[test]
    fn easeio_exhaustive_sweep_keeps_motion_alerts_exactly_once() {
        let out = sweep(
            &|m: &mut Mcu| motion::build(m, &motion::MotionCfg::default()).0,
            RuntimeKind::EaseIo,
            &SweepPlan::with_env_seed(7),
        );
        assert!(out.oracle_boundaries > 0);
        assert!(
            out.is_clean(),
            "a Single alert was externally re-performed: {:?}",
            out.violations
        );
    }

    #[test]
    fn naive_exhaustive_sweep_detects_dma_violations() {
        // The same app under a runtime with no DMA flags: a failure after a
        // completed transfer re-runs it, which the redundancy probe and the
        // checksum verdict both expose.
        let out = sweep(
            &small_dma,
            RuntimeKind::Naive,
            &SweepPlan {
                strict_memory: true,
                ..SweepPlan::with_env_seed(5)
            },
        );
        assert!(
            !out.is_clean(),
            "naive re-execution must violate at some boundary"
        );
    }

    #[test]
    fn alpaca_sweep_detects_the_branch_double_actuation() {
        // Fig. 2c: a failure between the sensed branch and commit can set
        // both actuation flags under Alpaca; the app's verdict catches it.
        // A long outage lets the sensed temperature drift across the
        // threshold on re-execution.
        let build = |m: &mut Mcu| unsafe_branch::build(m, &unsafe_branch::BranchCfg::default()).0;
        let out = sweep(
            &build,
            RuntimeKind::Alpaca,
            &SweepPlan {
                off_us: 2_000_000,
                ..SweepPlan::with_env_seed(11)
            },
        );
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == ViolationKind::WrongVerdict
                    || v.kind == ViolationKind::SingleRedundant),
            "Alpaca must trip the branch hazard somewhere: {:?}",
            out.violations
        );
        // And EaseIO survives the identical schedule.
        let clean = sweep(
            &build,
            RuntimeKind::EaseIo,
            &SweepPlan {
                off_us: 2_000_000,
                ..SweepPlan::with_env_seed(11)
            },
        );
        assert!(clean.is_clean(), "{:?}", clean.violations);
    }

    /// The boundary × fault-schedule product space, probe one: retrying a
    /// radio NACK — whose packet is already in the air — under `Single`
    /// semantics duplicates the external effect. Baselines retry blindly
    /// and trip `retry_duplicated_effect`; EaseIO's pre-charged completion
    /// record absorbs the NACK, so the identical plan stays clean.
    #[test]
    fn fault_sweep_flags_naive_retry_duplication_and_easeio_stays_clean() {
        let build = |m: &mut Mcu| flaky_radio::build(m, &flaky_radio::FlakyRadioCfg::default()).0;
        let plan = SweepPlan {
            mode: SweepMode::Sample(40),
            fault: FaultSpec::with_rate(3, 80),
            ..SweepPlan::with_env_seed(5)
        };
        let naive = sweep(&build, RuntimeKind::Naive, &plan);
        assert!(
            naive
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::RetryDuplicatedEffect),
            "Naive must duplicate a NACKed send somewhere: {:?}",
            naive.violations
        );
        let clean = sweep(&build, RuntimeKind::EaseIo, &plan);
        assert!(
            clean.is_clean(),
            "EaseIO violated under the identical fault schedule: {:?}",
            clean.violations
        );
    }

    /// Probe two: with the retry budget squeezed to one, a `Timely` sense
    /// degrades to the runtime's fallback. The baseline default serves the
    /// cached value blindly; when the degraded activation lands right after
    /// a 100 ms outage that value predates the outage and is far older than
    /// the 10 ms window — `degraded_staleness_exceeded` fires. The temp app
    /// is the vehicle because its only I/O *is* the Timely sense: no
    /// `Single` site can exhaust its budget first and abort the run.
    #[test]
    fn fault_sweep_flags_blind_stale_fallback_in_baselines() {
        let build = |m: &mut Mcu| temp_app::build(m, &temp_app::TempAppCfg::default());
        let mut fault = FaultSpec::with_rate(9, 500);
        fault.retry.max_retries = 1;
        let out = sweep(
            &build,
            RuntimeKind::Naive,
            &SweepPlan {
                mode: SweepMode::Sample(60),
                fault,
                ..SweepPlan::with_env_seed(5)
            },
        );
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == ViolationKind::DegradedStalenessExceeded),
            "the blind fallback must serve a stale value somewhere: {:?}",
            out.violations
        );
    }

    #[test]
    fn sweep_collects_a_full_waste_ledger_per_boundary() {
        let out = sweep(&small_dma, RuntimeKind::Naive, &SweepPlan::with_env_seed(5));
        assert_eq!(out.boundary_waste_nj.len() as u64, out.injections);
        // Cross-check: the per-boundary waste series and the summed cause
        // ledgers are two views of the same attribution — they must agree.
        let series_sum: u64 = out.boundary_waste_nj.iter().sum();
        let cause_waste: u64 = mcu_emu::EnergyCause::ALL
            .iter()
            .filter(|c| c.is_waste())
            .map(|c| out.cause_energy_nj[c.index()])
            .sum();
        assert_eq!(series_sum, cause_waste);
        assert!(series_sum > 0, "naive re-execution wastes energy somewhere");
        // No run may ever report an unbalanced ledger.
        assert!(out
            .violations
            .iter()
            .all(|v| v.kind != ViolationKind::AttributionUnbalanced));
    }

    /// The tentpole invariant at the crashcheck layer: the update-window
    /// sweep injects a failure at every boundary of the stage→flip→activate
    /// span. The two-phase protocol must resume old-or-new everywhere; the
    /// in-place baseline must be pinned torn (and re-notify its activation).
    #[test]
    fn update_window_sweep_separates_two_phase_from_in_place() {
        use apps::ota_update::{self, OtaUpdateCfg};

        let plan = SweepPlan {
            update_window: true,
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        for kind in [RuntimeKind::EaseIo, RuntimeKind::Alpaca, RuntimeKind::Ink] {
            let build = move |m: &mut Mcu| {
                ota_update::build(
                    m,
                    &OtaUpdateCfg {
                        two_phase: kind.two_phase_update(),
                        ..OtaUpdateCfg::default()
                    },
                )
                .0
            };
            let out = sweep(&build, kind, &plan);
            assert!(out.injections > 0, "{}: empty update window", kind.name());
            assert!(
                out.injections < out.oracle_boundaries,
                "{}: the window filter must drop boundaries outside the span",
                kind.name()
            );
            assert!(
                out.is_clean(),
                "{} resumed a torn or wrong version: {:?}",
                kind.name(),
                out.violations
            );
        }
        let naive = sweep(
            &|m: &mut Mcu| {
                ota_update::build(
                    m,
                    &OtaUpdateCfg {
                        two_phase: false,
                        ..OtaUpdateCfg::default()
                    },
                )
                .0
            },
            RuntimeKind::Naive,
            &plan,
        );
        assert!(
            naive
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::VersionTorn),
            "the in-place rewrite must strand a torn image somewhere: {:?}",
            naive.violations
        );
    }

    /// The window filter composes with the fault-schedule product space:
    /// a peripheral fault plan shifts boundary numbering, and the filter
    /// still lands inside the (I/O-free) update window cleanly.
    #[test]
    fn update_window_sweep_composes_with_fault_schedules() {
        use apps::ota_update::{self, OtaUpdateCfg};

        let plan = SweepPlan {
            update_window: true,
            fault: FaultSpec::with_rate(3, 80),
            ..SweepPlan::with_env_seed(5)
        };
        let out = sweep(
            &|m: &mut Mcu| ota_update::build(m, &OtaUpdateCfg::default()).0,
            RuntimeKind::EaseIo,
            &plan,
        );
        assert!(out.injections > 0);
        assert!(out.is_clean(), "{:?}", out.violations);
    }

    /// The forensics contract on the pinned Naive `version_torn` case:
    /// the record re-trips the violation the sweep saw, carries the
    /// spend-call coordinate and a non-empty FRAM diff against the
    /// oracle, and a `Boundary(b)` re-sweep — the bundle's embedded
    /// minimal repro — reproduces the violation verbatim.
    #[test]
    fn boundary_forensics_reproduces_the_naive_torn_image() {
        use apps::ota_update::{self, OtaUpdateCfg};

        let build = |m: &mut Mcu| {
            ota_update::build(
                m,
                &OtaUpdateCfg {
                    two_phase: false,
                    ..OtaUpdateCfg::default()
                },
            )
            .0
        };
        let plan = SweepPlan {
            update_window: true,
            ..SweepPlan::with_env_seed(5)
        };
        let out = sweep(&build, RuntimeKind::Naive, &plan);
        let torn = out
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::VersionTorn)
            .expect("the in-place rewrite must strand a torn image");

        let f = boundary_forensics(&build, RuntimeKind::Naive, &plan, torn.boundary);
        assert_eq!(f.boundary, torn.boundary);
        assert!(f.spend_seq.is_some(), "window boundaries are on the trace");
        assert!(f
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::VersionTorn && v.detail == torn.detail));
        // The torn image is repaired by re-execution, so the *final* FRAM
        // may converge with the oracle — the diff is structural evidence
        // when present, not a required symptom.
        assert!(f.fram_diff.len() as u64 <= f.divergent_bytes);
        for &(_, oracle, observed) in &f.fram_diff {
            assert_ne!(oracle, observed);
        }

        // The minimal repro: a Boundary-mode sweep at the same identity
        // yields exactly the violations of that one boundary.
        let repro = sweep(
            &build,
            RuntimeKind::Naive,
            &SweepPlan {
                mode: SweepMode::Boundary(torn.boundary),
                update_window: false,
                ..plan.clone()
            },
        );
        assert_eq!(repro.injections, 1);
        assert!(repro.violations.iter().any(|v| v.boundary == torn.boundary
            && v.kind == ViolationKind::VersionTorn
            && v.detail == torn.detail));
    }

    /// A violation that *does* leave divergent persistent state: the
    /// Naive runtime's re-executed DMA under `strict_memory`. The
    /// forensics record must carry a non-empty, capped byte diff.
    #[test]
    fn forensics_fram_diff_is_populated_and_capped_on_memory_divergence() {
        let plan = SweepPlan {
            strict_memory: true,
            ..SweepPlan::with_env_seed(5)
        };
        let out = sweep(&small_dma, RuntimeKind::Naive, &plan);
        let div = out
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::MemoryDivergence)
            .expect("naive re-execution must diverge somewhere");
        let f = boundary_forensics(&small_dma, RuntimeKind::Naive, &plan, div.boundary);
        assert!(f.divergent_bytes > 0);
        assert!(!f.fram_diff.is_empty());
        assert!(f.fram_diff.len() <= FORENSICS_DIFF_CAP);
        assert!(f.fram_diff.len() as u64 <= f.divergent_bytes);
        for &(_, oracle, observed) in &f.fram_diff {
            assert_ne!(oracle, observed);
        }
        assert!(f
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::MemoryDivergence));
    }

    #[test]
    fn boundary_mode_out_of_range_is_an_empty_sweep() {
        assert_eq!(select_boundaries(10, SweepMode::Boundary(3), 1), vec![3]);
        assert!(select_boundaries(10, SweepMode::Boundary(10), 1).is_empty());
    }

    #[test]
    fn sampling_is_seeded_and_deterministic() {
        let a = select_boundaries(1000, SweepMode::Sample(20), 42);
        let b = select_boundaries(1000, SweepMode::Sample(20), 42);
        let c = select_boundaries(1000, SweepMode::Sample(20), 43);
        assert_eq!(a, b, "same seed, same boundaries");
        assert_ne!(a, c, "different seed, different boundaries");
        assert_eq!(a.len(), 20);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "distinct and sorted");
        // Sample size covering the range degrades to exhaustive.
        let all = select_boundaries(10, SweepMode::Sample(50), 1);
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    fn records_equal(a: &RunRecord, b: &RunRecord) -> bool {
        a.outcome == b.outcome
            && a.verdict == b.verdict
            && a.boundaries == b.boundaries
            && a.single_redundant == b.single_redundant
            && a.timely_stale == b.timely_stale
            && a.commit_overpriced == b.commit_overpriced
            && a.retry_duplicated_effect == b.retry_duplicated_effect
            && a.degraded_staleness_exceeded == b.degraded_staleness_exceeded
            && a.version_torn == b.version_torn
            && a.cause_energy_nj == b.cause_energy_nj
            && a.total_energy_nj == b.total_energy_nj
            && a.waste_nj == b.waste_nj
            && a.attribution_balanced == b.attribution_balanced
            && a.fram == b.fram
    }

    /// Multi-millisecond DMA bursts and compute blocks: spend calls that
    /// span several ≤1 ms slices, giving classification real runs of
    /// equivalent boundaries to merge.
    fn chunky_dma(m: &mut Mcu) -> App {
        dma_app::build(
            m,
            &dma_app::DmaAppCfg {
                bytes: 4096,
                chunks: 2,
                iterations: 1,
                pre_compute: 2500,
                post_compute: 500,
            },
        )
    }

    /// The pruning soundness core, checked at the record level: for every
    /// boundary of an exhaustive sweep, the record materialized from its
    /// class representative must equal the record of a *real* injected run
    /// at that boundary, field for field. Run for a clean runtime and a
    /// violating one, with and without a peripheral-fault plan.
    #[test]
    fn materialized_records_match_real_injected_runs() {
        for (kind, fault) in [
            (RuntimeKind::EaseIo, FaultSpec::none()),
            (RuntimeKind::Naive, FaultSpec::none()),
            (RuntimeKind::EaseIo, FaultSpec::with_rate(3, 120)),
        ] {
            let plan = SweepPlan {
                fault,
                ..SweepPlan::with_env_seed(5)
            };
            let mut mcu = Mcu::new(Supply::continuous());
            let app = chunky_dma(&mut mcu);
            let oracle = prepare_oracle(&chunky_dma, kind, plan.env_seed);
            mcu.restore(&oracle.snapshot);
            let trace = reference_trace(
                &app,
                kind,
                &mut mcu,
                &oracle.snapshot,
                plan.env_seed,
                &plan.fault,
            );
            assert!(!trace.time_observed, "the DMA app never observes time");
            let chosen = select_boundaries(oracle.boundaries, plan.mode, plan.seed);
            let classes = classify_boundaries(&chosen, &trace);
            assert!(
                classes.reps.len() < chosen.len(),
                "multi-slice DMA bursts must yield mergeable boundaries"
            );
            let rep_records: Vec<RunRecord> = classes
                .reps
                .iter()
                .map(|&b| {
                    run_from(
                        &app,
                        kind,
                        &mut mcu,
                        &oracle.snapshot,
                        Supply::injected(b, plan.off_us),
                        plan.env_seed,
                        &plan.fault,
                    )
                })
                .collect();
            for (i, &b) in chosen.iter().enumerate() {
                let class = classes.class_of[i];
                let materialized =
                    materialize_record(&trace, &rep_records[class], classes.reps[class], b);
                let real = run_from(
                    &app,
                    kind,
                    &mut mcu,
                    &oracle.snapshot,
                    Supply::injected(b, plan.off_us),
                    plan.env_seed,
                    &plan.fault,
                );
                assert!(
                    records_equal(&materialized, &real),
                    "{kind:?} boundary {b} (rep {}): materialized {materialized:?} != real {real:?}",
                    classes.reps[class],
                );
            }
        }
    }

    /// Pinned case: two boundaries whose restored machine state is
    /// byte-identical but whose *fault-plan position* (the peripheral's
    /// physical attempt counter) differs must never merge. A faulted LEA
    /// call charges its full cost without any memory effect, so the retry
    /// attempt starts from the exact memory state of the first — a key
    /// hashing machine state alone would merge their slices. Attempt
    /// counters tick between spend calls, so the spend-call key keeps them
    /// apart, and the remaining fault schedule stays part of the identity.
    #[test]
    fn boundaries_differing_only_in_fault_plan_position_never_merge() {
        use kernel::{io::perform_io, IoOp, TaskId};
        use periph::{FaultPlan, PeriphClass};

        // A seed where attempt 0 faults and attempt 1 succeeds.
        let seed = (0..u64::MAX)
            .find(|&s| {
                let p = FaultPlan::new(s, 500);
                p.decide(PeriphClass::Lea, 0, 0, 0).is_some()
                    && p.decide(PeriphClass::Lea, 0, 0, 1).is_none()
            })
            .unwrap();
        let mut mcu = Mcu::new(Supply::continuous());
        let x = mcu.mem.alloc(Region::LeaRam, 256, AllocTag::App);
        let h = mcu.mem.alloc(Region::LeaRam, 128, AllocTag::App);
        let y = mcu.mem.alloc(Region::LeaRam, 128, AllocTag::App);
        let op = IoOp::LeaFir {
            x,
            h,
            y,
            n_out: 64,
            taps: 64,
        };
        let mut periph = Peripherals::with_fault_plan(1, FaultPlan::new(seed, 500));
        mcu.record_boundaries(PROBE_COUNTERS.to_vec());
        // Attempt 0: full cost charged (64·64 µs ≈ 5 slices), LeaStall, no
        // memory effect. Attempt 1: identical burst, succeeds.
        assert!(perform_io(&mut mcu, &mut periph, &op, TaskId(0), 0).is_err());
        assert!(perform_io(&mut mcu, &mut periph, &op, TaskId(0), 0).is_ok());
        let (slices, time_observed) = mcu.take_boundary_recording().unwrap();
        assert!(!time_observed, "LEA work never observes time");
        let trace = BoundaryTrace {
            slices,
            time_observed,
        };
        let chosen: Vec<u64> = (0..trace.slices.len() as u64).collect();
        let classes = classify_boundaries(&chosen, &trace);
        // Both attempts produced multi-slice bursts…
        let first = classes.class_of[1];
        let last = *classes.class_of.last().unwrap();
        assert_eq!(
            classes.class_of[0], first,
            "slices within one attempt share a class"
        );
        // …but the two attempts must be distinct classes.
        assert_ne!(
            first, last,
            "attempt 0 and attempt 1 differ only in fault-plan position and must not merge"
        );
    }

    #[test]
    fn violations_are_reproducible_from_seed_and_boundary() {
        let plan = SweepPlan {
            strict_memory: true,
            mode: SweepMode::Sample(40),
            ..SweepPlan::with_env_seed(5)
        };
        let a = sweep(&small_dma, RuntimeKind::Naive, &plan);
        let b = sweep(&small_dma, RuntimeKind::Naive, &plan);
        assert_eq!(a.violations.len(), b.violations.len());
        for (x, y) in a.violations.iter().zip(&b.violations) {
            assert_eq!(x.boundary, y.boundary);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.detail, y.detail);
        }
    }
}
