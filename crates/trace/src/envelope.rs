//! The versioned report envelope shared by every report kind.
//!
//! Schema v1 had two independent flat layouts (run and sweep) telling
//! themselves apart by the free-form `tool` string. v2 unifies them under
//! one envelope — `{schema_version, kind, tool, report: {…}}` — produced
//! by the generic [`Report`] wrapper over a [`ReportBody`], with
//! [`validate_any_report`] as the single validator entry point for both
//! versions: v2 documents dispatch on `kind`, v1 documents fall back to
//! the legacy flat validators so existing archived reports keep reading.
//!
//! Reports may carry a `timing` block inside the body (host wall-clock,
//! worker utilization). Timing is honest measurement, not result: two runs
//! of the same sweep produce the same violations but never the same
//! nanoseconds. [`identity_document`] strips it, yielding the canonical
//! form that serial-vs-parallel comparisons (the determinism test, the CI
//! divergence gate) are defined over.

use crate::json::Value;
use crate::report::validate_report_v1;
use crate::sweep::validate_sweep_report_v1;

/// Version of the report document layout.
pub const SCHEMA_VERSION: u64 = 2;

/// The previous flat layout, still accepted by [`validate_any_report`].
pub const LEGACY_SCHEMA_VERSION: u64 = 1;

/// A report payload that knows its kind, its producing tool, how to render
/// itself, and how to check a rendered body.
pub trait ReportBody {
    /// Envelope `kind` discriminator (`"run"`, `"sweep"`).
    const KIND: &'static str;
    /// Envelope `tool` string.
    const TOOL: &'static str;
    /// Renders the body object.
    fn body(&self) -> Value;
    /// Returns every schema violation in a rendered body (empty = valid).
    fn validate_body(body: &Value) -> Vec<String>;
}

/// The generic envelope: wraps any [`ReportBody`] into the versioned
/// document layout.
#[derive(Debug, Clone)]
pub struct Report<T> {
    /// The payload.
    pub body: T,
}

impl<T: ReportBody> Report<T> {
    /// Wraps a body.
    pub fn new(body: T) -> Self {
        Self { body }
    }

    /// Renders the full versioned document.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("schema_version".into(), Value::u64(SCHEMA_VERSION)),
            ("kind".into(), Value::str(T::KIND)),
            ("tool".into(), Value::str(T::TOOL)),
            ("report".into(), self.body.body()),
        ])
    }

    /// Validates a parsed v2 document of this kind.
    pub fn validate(v: &Value) -> Result<(), Vec<String>> {
        let mut errs = validate_envelope(v, Some(T::KIND));
        match v.get("report") {
            None => errs.push("missing key 'report'".into()),
            Some(body) => errs.extend(T::validate_body(body)),
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

/// Envelope-level checks shared by every v2 kind.
fn validate_envelope(v: &Value, expect_kind: Option<&str>) -> Vec<String> {
    let mut errs = Vec::new();
    match v.get("schema_version").and_then(Value::as_u64) {
        Some(SCHEMA_VERSION) => {}
        _ => errs.push(format!(
            "'schema_version' must be the integer {SCHEMA_VERSION}"
        )),
    }
    match v.get("kind").and_then(Value::as_str) {
        Some(k) if expect_kind.is_none_or(|e| e == k) => {}
        Some(k) => errs.push(format!(
            "'kind' is '{k}', expected '{}'",
            expect_kind.unwrap_or("?")
        )),
        None => errs.push("missing key 'kind'".into()),
    }
    if v.get("tool").and_then(Value::as_str).is_none() {
        errs.push("'tool' must be a string".into());
    }
    errs
}

/// What a document turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A single-run report (v1 flat or v2 envelope).
    Run,
    /// A crash-sweep report (v1 flat or v2 envelope).
    Sweep,
    /// An energy-attribution metrics report (v2 only).
    Metrics,
    /// A fleet-scale simulation report (v2 only).
    Fleet,
    /// A violation-forensics bundle (v2 only).
    Forensics,
}

impl ReportKind {
    /// The envelope `kind` string.
    pub fn label(self) -> &'static str {
        match self {
            ReportKind::Run => "run",
            ReportKind::Sweep => "sweep",
            ReportKind::Metrics => "metrics",
            ReportKind::Fleet => "fleet",
            ReportKind::Forensics => "forensics",
        }
    }
}

/// The single validator entry point: accepts v2 envelopes (dispatching on
/// `kind`) and v1 flat documents (dispatching on the legacy `tool`
/// string), returning what the document was.
pub fn validate_any_report(v: &Value) -> Result<ReportKind, Vec<String>> {
    match v.get("schema_version").and_then(Value::as_u64) {
        Some(SCHEMA_VERSION) => {
            let (kind, result) = match v.get("kind").and_then(Value::as_str) {
                Some("sweep") => (
                    ReportKind::Sweep,
                    Report::<crate::sweep::SweepInputs>::validate(v),
                ),
                Some("metrics") => (
                    ReportKind::Metrics,
                    Report::<crate::metrics::MetricsInputs>::validate(v),
                ),
                Some("fleet") => (
                    ReportKind::Fleet,
                    Report::<crate::fleet::FleetInputs>::validate(v),
                ),
                Some("forensics") => (
                    ReportKind::Forensics,
                    Report::<crate::forensics::ForensicsInputs>::validate(v),
                ),
                Some("run") | None => (
                    ReportKind::Run,
                    Report::<crate::report::RunReportDoc>::validate(v),
                ),
                Some(other) => {
                    return Err(vec![format!("unknown report kind '{other}'")]);
                }
            };
            result.map(|()| kind)
        }
        Some(LEGACY_SCHEMA_VERSION) => {
            // v1 had no `kind`; the tool string is the discriminator.
            if v.get("tool").and_then(Value::as_str) == Some("easeio-sim sweep") {
                validate_sweep_report_v1(v).map(|()| ReportKind::Sweep)
            } else {
                validate_report_v1(v).map(|()| ReportKind::Run)
            }
        }
        Some(other) => Err(vec![format!(
            "unsupported schema_version {other} (this tool reads \
             {LEGACY_SCHEMA_VERSION} and {SCHEMA_VERSION})"
        )]),
        None => Err(vec!["missing key 'schema_version'".into()]),
    }
}

/// The canonical identity form of a report: the document with every
/// `timing` block removed. Two reports are *the same result* iff their
/// identity forms serialize identically — this is the comparison the
/// jobs-determinism guarantee is stated over.
pub fn identity_document(v: &Value) -> Value {
    match v {
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "timing")
                .map(|(k, val)| (k.clone(), identity_document(val)))
                .collect(),
        ),
        Value::Arr(items) => Value::Arr(items.iter().map(identity_document).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn identity_strips_timing_recursively() {
        let doc = parse(
            r#"{"report": {"timing": {"wall_us": 5}, "injections": 3,
                 "nested": [{"timing": 1, "keep": 2}]}, "kind": "sweep"}"#,
        )
        .unwrap();
        let id = identity_document(&doc);
        let s = id.to_pretty();
        assert!(!s.contains("timing"));
        assert!(s.contains("injections"));
        assert!(s.contains("keep"));
    }

    #[test]
    fn unknown_versions_are_rejected_with_guidance() {
        let doc = parse(r#"{"schema_version": 9}"#).unwrap();
        let errs = validate_any_report(&doc).unwrap_err();
        assert!(errs[0].contains("unsupported schema_version 9"), "{errs:?}");
    }
}
