//! Compact JSONL exporter: one event per line.
//!
//! The line format is stable and self-describing, meant for `grep`/`jq`
//! post-processing of long runs where the Chrome document would be unwieldy.

use crate::event::{Event, EventKind, NO_SITE, NO_TASK};
use crate::json::Value;

/// Converts one event to its JSON object form.
pub fn event_value(ev: &Event) -> Value {
    let mut pairs: Vec<(String, Value)> = vec![
        ("ts_us".to_string(), Value::u64(ev.ts_us)),
        ("energy_nj".to_string(), Value::u64(ev.energy_nj)),
    ];
    if ev.task != NO_TASK {
        pairs.push(("task".to_string(), Value::u64(ev.task as u64)));
    }
    if ev.site != NO_SITE {
        pairs.push(("site".to_string(), Value::u64(ev.site as u64)));
    }
    pairs.push(("name".to_string(), Value::str(ev.name)));
    match ev.kind {
        EventKind::SpanBegin(k) => {
            pairs.push(("ev".to_string(), Value::str("begin")));
            pairs.push(("kind".to_string(), Value::str(k.label())));
        }
        EventKind::SpanEnd(k, status) => {
            pairs.push(("ev".to_string(), Value::str("end")));
            pairs.push(("kind".to_string(), Value::str(k.label())));
            pairs.push(("status".to_string(), Value::str(status.label())));
        }
        EventKind::Instant(k) => {
            pairs.push(("ev".to_string(), Value::str("instant")));
            pairs.push(("kind".to_string(), Value::str(k.label())));
        }
    }
    Value::Obj(pairs)
}

/// Serializes the stream as newline-delimited JSON (one object per line).
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_value(ev).to_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InstantKind, SpanKind, Status};
    use crate::json;

    #[test]
    fn one_parseable_object_per_line() {
        let events = [
            Event::instant(1, 2, InstantKind::Boot, "boot"),
            Event {
                ts_us: 3,
                energy_nj: 4,
                task: 1,
                site: 0,
                name: "sense",
                kind: EventKind::SpanEnd(SpanKind::IoCall, Status::Executed),
            },
        ];
        let text = jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ev").unwrap().as_str(), Some("instant"));
        assert_eq!(first.get("task"), None, "unattributed fields are omitted");
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("status").unwrap().as_str(), Some("executed"));
        assert_eq!(second.get("task").unwrap().as_u64(), Some(1));
    }
}
