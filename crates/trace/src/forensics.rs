//! Violation forensics bundles — `kind: "forensics"` documents.
//!
//! A fired probe used to yield a counter; reproducing it meant re-deriving
//! the sweep by hand. A forensics bundle is the self-contained artifact
//! the formal-foundation line of work asks for: it names the exact
//! boundary (and its energy-spend sequence number), the fault-plan
//! coordinates, the first divergent FRAM bytes against the
//! continuous-power oracle, and a ready-to-paste minimal-repro CLI
//! command that re-executes exactly that injection.
//!
//! The document lives under the same versioned [`Report`]
//! envelope as every other kind and is validated by
//! [`validate_forensics_report`] / dispatched by
//! [`validate_any_report`](crate::validate_any_report).

use crate::envelope::{Report, ReportBody};
use crate::json::Value;
use crate::sweep::FaultSpecDoc;

/// How many divergent FRAM bytes a bundle spells out; the total count is
/// always recorded.
pub const FRAM_DIFF_CAP: usize = 32;

/// The violation being documented.
#[derive(Debug, Clone, Default)]
pub struct ForensicsViolationDoc {
    /// Stable probe name (`"version_torn"`, `"air_duplicate"`, …).
    pub kind: String,
    /// Human-readable detail from the probe.
    pub detail: String,
    /// Injected boundary index, for crash-sweep violations.
    pub boundary: Option<u64>,
    /// The boundary's energy-spend sequence number in the continuous
    /// reference trace — the coordinate the formal semantics names.
    pub spend_seq: Option<u64>,
    /// Offending device, for fleet/rollout violations.
    pub device: Option<u64>,
    /// 1-based rollout wave the device was updated in.
    pub wave: Option<u64>,
}

/// One divergent FRAM byte against the continuous-power oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramDiffByte {
    /// FRAM offset.
    pub addr: u64,
    /// What the oracle holds there.
    pub oracle: u8,
    /// What the violating run holds there.
    pub observed: u8,
}

/// FRAM divergence summary: total count plus the first
/// [`FRAM_DIFF_CAP`] bytes.
#[derive(Debug, Clone, Default)]
pub struct FramDiffDoc {
    /// Total divergent bytes.
    pub divergent_bytes: u64,
    /// The first divergent bytes, ascending by address.
    pub first: Vec<FramDiffByte>,
}

/// The `kind: "forensics"` payload.
#[derive(Debug, Clone, Default)]
pub struct ForensicsInputs {
    /// Producing mode: `"sweep"`, `"fleet"`, or `"rollout"`.
    pub source: String,
    /// Kernel under test.
    pub runtime: String,
    /// App label.
    pub app: String,
    /// Scenario seed.
    pub seed: u64,
    /// The violation itself.
    pub violation: ForensicsViolationDoc,
    /// Fault plan in effect, if any.
    pub fault_spec: Option<FaultSpecDoc>,
    /// Sweep/fleet context: mode label, injections explored, update
    /// window, device count — whatever the producer knows.
    pub context: Vec<(String, u64)>,
    /// FRAM diff against the oracle (crash-sweep violations only).
    pub fram_diff: Option<FramDiffDoc>,
    /// Ready-to-paste minimal-repro command.
    pub repro_command: String,
}

impl ReportBody for ForensicsInputs {
    const KIND: &'static str = "forensics";
    const TOOL: &'static str = "easeio-sim";

    fn body(&self) -> Value {
        let v = &self.violation;
        let mut violation = vec![
            ("kind".into(), Value::str(v.kind.clone())),
            ("detail".into(), Value::str(v.detail.clone())),
        ];
        for (key, val) in [
            ("boundary", v.boundary),
            ("spend_seq", v.spend_seq),
            ("device", v.device),
            ("wave", v.wave),
        ] {
            if let Some(n) = val {
                violation.push((key.into(), Value::u64(n)));
            }
        }
        let mut fields = vec![
            ("source".into(), Value::str(self.source.clone())),
            ("runtime".into(), Value::str(self.runtime.clone())),
            ("app".into(), Value::str(self.app.clone())),
            ("seed".into(), Value::u64(self.seed)),
            ("violation".into(), Value::Obj(violation)),
        ];
        if let Some(f) = &self.fault_spec {
            fields.push((
                "fault_spec".into(),
                Value::Obj(vec![
                    ("seed".into(), Value::u64(f.seed)),
                    ("rate_permille".into(), Value::u64(f.rate_permille)),
                    ("max_retries".into(), Value::u64(f.max_retries)),
                    ("backoff_base_us".into(), Value::u64(f.backoff_base_us)),
                ]),
            ));
        }
        if !self.context.is_empty() {
            fields.push((
                "context".into(),
                Value::Obj(
                    self.context
                        .iter()
                        .map(|(k, n)| (k.clone(), Value::u64(*n)))
                        .collect(),
                ),
            ));
        }
        if let Some(d) = &self.fram_diff {
            fields.push((
                "fram_diff".into(),
                Value::Obj(vec![
                    ("divergent_bytes".into(), Value::u64(d.divergent_bytes)),
                    (
                        "first".into(),
                        Value::Arr(
                            d.first
                                .iter()
                                .map(|b| {
                                    Value::Obj(vec![
                                        ("addr".into(), Value::u64(b.addr)),
                                        ("oracle".into(), Value::u64(b.oracle as u64)),
                                        ("observed".into(), Value::u64(b.observed as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        fields.push((
            "repro".into(),
            Value::Obj(vec![(
                "command".into(),
                Value::str(self.repro_command.clone()),
            )]),
        ));
        Value::Obj(fields)
    }

    fn validate_body(body: &Value) -> Vec<String> {
        let mut errs = Vec::new();
        for key in ["source", "runtime", "app"] {
            match body.get(key).and_then(Value::as_str) {
                Some(s) if !s.is_empty() => {}
                _ => errs.push(format!("'{key}' must be a nonempty string")),
            }
        }
        if body.get("seed").and_then(Value::as_u64).is_none() {
            errs.push("'seed' must be an unsigned integer".into());
        }
        match body.get("violation") {
            Some(v) => {
                match v.get("kind").and_then(Value::as_str) {
                    Some(k) if !k.is_empty() => {}
                    _ => errs.push("'violation.kind' must be a nonempty string".into()),
                }
                if v.get("detail").and_then(Value::as_str).is_none() {
                    errs.push("'violation.detail' must be a string".into());
                }
                for key in ["boundary", "spend_seq", "device", "wave"] {
                    if let Some(n) = v.get(key) {
                        if n.as_u64().is_none() {
                            errs.push(format!("'violation.{key}' must be an unsigned integer"));
                        }
                    }
                }
            }
            None => errs.push("missing key 'violation'".into()),
        }
        if let Some(d) = body.get("fram_diff") {
            let total = d.get("divergent_bytes").and_then(Value::as_u64);
            if total.is_none() {
                errs.push("'fram_diff.divergent_bytes' must be an unsigned integer".into());
            }
            match d.get("first").and_then(Value::as_arr) {
                Some(first) => {
                    if let Some(total) = total {
                        if (first.len() as u64) > total {
                            errs.push(
                                "'fram_diff.first' lists more bytes than 'divergent_bytes'".into(),
                            );
                        }
                    }
                    for (i, b) in first.iter().enumerate() {
                        let addr = b.get("addr").and_then(Value::as_u64);
                        let oracle = b.get("oracle").and_then(Value::as_u64);
                        let observed = b.get("observed").and_then(Value::as_u64);
                        match (addr, oracle, observed) {
                            (Some(_), Some(o), Some(b)) if o != b => {}
                            (Some(_), Some(_), Some(_)) => errs.push(format!(
                                "'fram_diff.first[{i}]' is not a divergence: oracle == observed"
                            )),
                            _ => errs.push(format!(
                                "'fram_diff.first[{i}]' needs addr/oracle/observed integers"
                            )),
                        }
                    }
                }
                None => errs.push("'fram_diff.first' must be an array".into()),
            }
        }
        match body
            .get("repro")
            .and_then(|r| r.get("command"))
            .and_then(Value::as_str)
        {
            Some(cmd) if cmd.starts_with("easeio-sim ") => {}
            Some(_) => errs.push("'repro.command' must start with 'easeio-sim '".into()),
            None => errs.push("'repro.command' must be a string".into()),
        }
        errs
    }
}

/// Renders the full versioned forensics document.
pub fn build_forensics_report(inputs: &ForensicsInputs) -> Value {
    Report::new(inputs.clone()).to_value()
}

/// Validates a parsed forensics document.
pub fn validate_forensics_report(v: &Value) -> Result<(), Vec<String>> {
    Report::<ForensicsInputs>::validate(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::validate_any_report;

    fn sample() -> ForensicsInputs {
        ForensicsInputs {
            source: "sweep".into(),
            runtime: "naive".into(),
            app: "ota-update".into(),
            seed: 7,
            violation: ForensicsViolationDoc {
                kind: "version_torn".into(),
                detail: "sealed header vouches for torn payload".into(),
                boundary: Some(12),
                spend_seq: Some(340),
                device: None,
                wave: None,
            },
            fault_spec: None,
            context: vec![("injections".into(), 34), ("update_window".into(), 1)],
            fram_diff: Some(FramDiffDoc {
                divergent_bytes: 40,
                first: vec![FramDiffByte {
                    addr: 0x180,
                    oracle: 0xAA,
                    observed: 0x00,
                }],
            }),
            repro_command: "easeio-sim sweep --app ota-update --kernel naive \
                            --seed 7 --boundary 12 --update-window --expect-violations"
                .into(),
        }
    }

    #[test]
    fn bundle_roundtrips_and_dispatches_as_forensics() {
        let doc = build_forensics_report(&sample());
        let parsed = parse(&doc.to_pretty()).unwrap();
        assert_eq!(
            validate_any_report(&parsed),
            Ok(crate::ReportKind::Forensics)
        );
        let body = parsed.get("report").unwrap();
        assert_eq!(
            body.get("violation")
                .and_then(|v| v.get("spend_seq"))
                .and_then(Value::as_u64),
            Some(340)
        );
        assert!(body
            .get("repro")
            .and_then(|r| r.get("command"))
            .and_then(Value::as_str)
            .unwrap()
            .contains("--boundary 12"));
    }

    #[test]
    fn validator_rejects_broken_bundles() {
        let mut inputs = sample();
        inputs.repro_command = "rm -rf /".into();
        let doc = build_forensics_report(&inputs);
        let errs = validate_forensics_report(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("repro.command")), "{errs:?}");

        let mut inputs = sample();
        inputs.fram_diff.as_mut().unwrap().first[0].observed = 0xAA;
        let doc = build_forensics_report(&inputs);
        let errs = validate_forensics_report(&doc).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("not a divergence")),
            "{errs:?}"
        );

        let mut inputs = sample();
        inputs.violation.kind.clear();
        let doc = build_forensics_report(&inputs);
        assert!(validate_forensics_report(&doc).is_err());
    }
}
