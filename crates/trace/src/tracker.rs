//! Cross-attempt activation tracking: which call sites already completed.
//!
//! The paper's Table 4 counts *redundant* re-executions: a site physically
//! executing again after it already completed in an earlier attempt of the
//! same task activation. That is an observer-side judgement (the logic
//! analyzer's view), not anything the MCU stores, so it lives here with the
//! rest of the observability machinery rather than in the kernel.

use std::collections::{HashMap, HashSet};

/// Tracks first completions of I/O and DMA sites per task activation.
#[derive(Debug, Default)]
pub struct ActivationTracker {
    io_done: HashSet<(u16, u16)>,
    dma_done: HashSet<(u16, u16)>,
    /// Last successfully executed value per I/O site: `(value, ts_us)`.
    /// Persistent across commits — it feeds the degraded fallback path,
    /// which by definition reaches back past the current activation.
    last_io: HashMap<(u16, u16), (i32, u64)>,
}

impl ActivationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that I/O site `(task, site)` executed; returns `true` on the
    /// first completion of this activation, `false` if it is redundant.
    pub fn first_io(&mut self, task: u16, site: u16) -> bool {
        self.io_done.insert((task, site))
    }

    /// Records that DMA site `(task, site)` executed; returns `true` on the
    /// first completion of this activation, `false` if it is redundant.
    pub fn first_dma(&mut self, task: u16, site: u16) -> bool {
        self.dma_done.insert((task, site))
    }

    /// Records the value and time of a successful execution of I/O site
    /// `(task, site)` — the candidate a later degraded fallback may serve.
    pub fn record_io_value(&mut self, task: u16, site: u16, value: i32, ts_us: u64) {
        self.last_io.insert((task, site), (value, ts_us));
    }

    /// The last successfully executed `(value, ts_us)` of I/O site
    /// `(task, site)`, if any. Survives commits.
    pub fn last_io_value(&self, task: u16, site: u16) -> Option<(i32, u64)> {
        self.last_io.get(&(task, site)).copied()
    }

    /// Clears `task`'s per-activation state after it commits.
    pub fn commit(&mut self, task: u16) {
        self.io_done.retain(|(t, _)| *t != task);
        self.dma_done.retain(|(t, _)| *t != task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_execution_same_activation_is_redundant() {
        let mut t = ActivationTracker::new();
        assert!(t.first_io(0, 0));
        assert!(!t.first_io(0, 0), "repeat within the activation");
        assert!(t.first_io(0, 1), "different site is fresh");
        assert!(t.first_dma(0, 0), "DMA sites are tracked separately");
    }

    #[test]
    fn commit_resets_only_that_task() {
        let mut t = ActivationTracker::new();
        t.first_io(0, 0);
        t.first_io(1, 0);
        t.commit(0);
        assert!(t.first_io(0, 0), "fresh activation after commit");
        assert!(!t.first_io(1, 0), "other task untouched");
    }

    #[test]
    fn last_values_survive_commit() {
        let mut t = ActivationTracker::new();
        assert_eq!(t.last_io_value(0, 0), None);
        t.record_io_value(0, 0, 21, 400);
        t.record_io_value(0, 0, 22, 900);
        t.commit(0);
        assert_eq!(t.last_io_value(0, 0), Some((22, 900)));
        assert_eq!(t.last_io_value(0, 1), None);
    }
}
