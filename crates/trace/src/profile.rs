//! Post-hoc profile construction from an event stream.
//!
//! The simulator is single-threaded, so spans form a stack per run and the
//! whole profile — per-call-site execution/skip/redundancy counts with their
//! time and energy, and per-task attempt-latency distributions — is
//! derivable from the flat event stream alone. Nothing here is counted
//! during execution; the recorder stays a dumb ring.

use crate::agg::percentile;
use crate::event::{Event, EventKind, InstantKind, SpanKind, Status, NO_TASK};
use std::collections::BTreeMap;

/// Aggregate for one I/O or DMA call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProfile {
    /// Owning task index.
    pub task: u16,
    /// Site index within the task.
    pub site: u16,
    /// `IoCall` or `DmaCopy`.
    pub kind: SpanKind,
    /// Operation name (I/O kind, or `"dma"`).
    pub name: String,
    /// Physical executions (first completions plus redundant repeats).
    pub executions: u64,
    /// Executions that were redundant — wasted work (paper Table 4).
    pub redundant: u64,
    /// Activations skipped with the previous output restored.
    pub skips: u64,
    /// Activations interrupted by a power failure.
    pub failed: u64,
    /// Total on-time spent at this site (µs), all activations.
    pub time_us: u64,
    /// Total energy spent at this site (nJ).
    pub energy_nj: u64,
    /// Time spent on redundant or interrupted activations (µs).
    pub wasted_time_us: u64,
    /// Energy spent on redundant or interrupted activations (nJ).
    pub wasted_energy_nj: u64,
}

impl SiteProfile {
    /// Share of this site's time that was wasted, in `[0, 1]`.
    pub fn wasted_share(&self) -> f64 {
        if self.time_us == 0 {
            0.0
        } else {
            self.wasted_time_us as f64 / self.time_us as f64
        }
    }
}

/// Attempt-latency distribution summary (µs of on-time per attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Median committed-attempt latency.
    pub p50_us: u64,
    /// 95th-percentile committed-attempt latency.
    pub p95_us: u64,
    /// Worst committed-attempt latency.
    pub max_us: u64,
}

/// Aggregate for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskProfile {
    /// Task index.
    pub task: u16,
    /// Task name.
    pub name: String,
    /// Execution attempts started.
    pub attempts: u64,
    /// Attempts that were re-executions of an interrupted activation.
    pub reexec_attempts: u64,
    /// Attempts that committed.
    pub commits: u64,
    /// Attempts interrupted by power failures.
    pub failures: u64,
    /// Attempts abandoned by the non-termination guard.
    pub giveups: u64,
    /// Latency distribution over committed attempts.
    pub latency: LatencySummary,
    latencies_us: Vec<u64>,
}

/// Everything derived from one run's events.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-call-site aggregates, ordered by (task, kind, site).
    pub sites: Vec<SiteProfile>,
    /// Per-task aggregates, ordered by task index.
    pub tasks: Vec<TaskProfile>,
    /// Instant-event counts keyed by [`InstantKind::label`]. The
    /// `timestamp_check` total splits into `timestamp_check_expired` via the
    /// event name.
    pub instants: BTreeMap<&'static str, u64>,
    /// Injected peripheral faults by fault-kind name (`PeriphFault` events
    /// carry the kind as their name).
    pub faults_by_kind: BTreeMap<&'static str, u64>,
    /// Degradation outcomes by mode (`"skip"` or `"fallback"`).
    pub degraded_by_mode: BTreeMap<&'static str, u64>,
    /// Retry counts per `(task, site)` — the per-site retry histogram, from
    /// `IoRetry` instants.
    pub retries_by_site: BTreeMap<(u16, u16), u64>,
    /// Total time the supply was off (µs), from `PowerOff` spans.
    pub power_off_us: u64,
    /// Span ends without a matching begin plus spans left open — zero on a
    /// well-formed trace (ring overflow can make this positive).
    pub unbalanced: u64,
}

struct Open {
    kind: SpanKind,
    task: u16,
    site: u16,
    ts_us: u64,
    energy_nj: u64,
}

/// Builds the profile for one run's event stream.
///
/// Conventions the emitters guarantee (and tests/properties.rs checks):
/// spans nest per `(kind, task, site)`; a `TaskAttempt` begin carries the
/// attempt index within the activation in its `site` field (`> 0` means
/// re-execution); every interrupted span is closed with `Status::Failed`
/// *after* the dead period, so a failed span's useful duration ends at the
/// preceding `PowerFailure` instant.
pub fn build_profile(events: &[Event]) -> Profile {
    let mut p = Profile::default();
    let mut open: Vec<Open> = Vec::new();
    let mut sites: BTreeMap<(u16, SpanKind, u16), SiteProfile> = BTreeMap::new();
    let mut tasks: BTreeMap<u16, TaskProfile> = BTreeMap::new();
    // Where useful work stopped for spans that end with `Failed`.
    let mut last_failure: Option<(u64, u64)> = None;

    for ev in events {
        match ev.kind {
            EventKind::Instant(kind) => {
                *p.instants.entry(kind.label()).or_insert(0) += 1;
                match kind {
                    InstantKind::PowerFailure => last_failure = Some((ev.ts_us, ev.energy_nj)),
                    InstantKind::TimestampCheck if ev.name == "expired" => {
                        *p.instants.entry("timestamp_check_expired").or_insert(0) += 1;
                    }
                    InstantKind::PeriphFault => {
                        *p.faults_by_kind.entry(ev.name).or_insert(0) += 1;
                    }
                    InstantKind::Degraded => {
                        *p.degraded_by_mode.entry(ev.name).or_insert(0) += 1;
                    }
                    InstantKind::IoRetry => {
                        *p.retries_by_site.entry((ev.task, ev.site)).or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
            EventKind::SpanBegin(kind) => {
                if kind == SpanKind::TaskAttempt && ev.task != NO_TASK {
                    let t = tasks.entry(ev.task).or_insert_with(|| TaskProfile {
                        task: ev.task,
                        name: ev.name.to_string(),
                        attempts: 0,
                        reexec_attempts: 0,
                        commits: 0,
                        failures: 0,
                        giveups: 0,
                        latency: LatencySummary::default(),
                        latencies_us: Vec::new(),
                    });
                    t.attempts += 1;
                    if ev.site > 0 {
                        t.reexec_attempts += 1;
                    }
                }
                open.push(Open {
                    kind,
                    task: ev.task,
                    site: ev.site,
                    ts_us: ev.ts_us,
                    energy_nj: ev.energy_nj,
                });
            }
            EventKind::SpanEnd(kind, status) => {
                // Pop the most recent matching open span. `TaskAttempt`
                // matches on task alone: its begin carries the attempt index
                // in `site`, which the end does not repeat.
                let idx = open.iter().rposition(|o| {
                    o.kind == kind
                        && o.task == ev.task
                        && (kind == SpanKind::TaskAttempt || o.site == ev.site)
                });
                let Some(idx) = idx else {
                    p.unbalanced += 1;
                    continue;
                };
                let o = open.remove(idx);
                // A failed span's end is emitted after the recharge period;
                // its useful extent stops at the failure itself.
                let (end_ts, end_energy) = match (status, last_failure) {
                    (Status::Failed, Some((fts, fe))) if fts >= o.ts_us => (fts, fe),
                    _ => (ev.ts_us, ev.energy_nj),
                };
                let dt = end_ts.saturating_sub(o.ts_us);
                let de = end_energy.saturating_sub(o.energy_nj);
                match kind {
                    SpanKind::IoCall | SpanKind::DmaCopy => {
                        let s =
                            sites
                                .entry((ev.task, kind, ev.site))
                                .or_insert_with(|| SiteProfile {
                                    task: ev.task,
                                    site: ev.site,
                                    kind,
                                    name: ev.name.to_string(),
                                    executions: 0,
                                    redundant: 0,
                                    skips: 0,
                                    failed: 0,
                                    time_us: 0,
                                    energy_nj: 0,
                                    wasted_time_us: 0,
                                    wasted_energy_nj: 0,
                                });
                        s.time_us += dt;
                        s.energy_nj += de;
                        match status {
                            Status::Executed => s.executions += 1,
                            Status::Redundant => {
                                s.executions += 1;
                                s.redundant += 1;
                                s.wasted_time_us += dt;
                                s.wasted_energy_nj += de;
                            }
                            Status::Skipped => s.skips += 1,
                            _ => {
                                s.failed += 1;
                                s.wasted_time_us += dt;
                                s.wasted_energy_nj += de;
                            }
                        }
                    }
                    SpanKind::TaskAttempt => {
                        if let Some(t) = tasks.get_mut(&ev.task) {
                            match status {
                                Status::Committed => {
                                    t.commits += 1;
                                    t.latencies_us.push(dt);
                                }
                                Status::GaveUp => t.giveups += 1,
                                _ => t.failures += 1,
                            }
                        }
                    }
                    SpanKind::PowerOff => p.power_off_us += ev.ts_us.saturating_sub(o.ts_us),
                    SpanKind::Commit | SpanKind::IoBlock | SpanKind::Worker => {}
                }
            }
        }
    }

    p.unbalanced += open.len() as u64;
    for t in tasks.values_mut() {
        t.latencies_us.sort_unstable();
        t.latency = LatencySummary {
            p50_us: percentile(&t.latencies_us, 50),
            p95_us: percentile(&t.latencies_us, 95),
            max_us: t.latencies_us.last().copied().unwrap_or(0),
        };
    }
    p.sites = sites.into_values().collect();
    p.tasks = tasks.into_values().collect();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_SITE, NO_TASK};

    fn span(ts: u64, e: u64, task: u16, site: u16, name: &'static str, kind: EventKind) -> Event {
        Event {
            ts_us: ts,
            energy_nj: e,
            task,
            site,
            name,
            kind,
        }
    }

    #[test]
    fn io_site_counts_split_by_status() {
        use EventKind::{SpanBegin, SpanEnd};
        use SpanKind::IoCall;
        let events = [
            span(0, 0, 0, 0, "sense", SpanBegin(IoCall)),
            span(10, 100, 0, 0, "sense", SpanEnd(IoCall, Status::Executed)),
            span(20, 120, 0, 0, "sense", SpanBegin(IoCall)),
            span(30, 220, 0, 0, "sense", SpanEnd(IoCall, Status::Redundant)),
            span(40, 240, 0, 0, "sense", SpanBegin(IoCall)),
            span(42, 244, 0, 0, "sense", SpanEnd(IoCall, Status::Skipped)),
        ];
        let p = build_profile(&events);
        assert_eq!(p.unbalanced, 0);
        let s = &p.sites[0];
        assert_eq!((s.executions, s.redundant, s.skips), (2, 1, 1));
        assert_eq!(s.time_us, 10 + 10 + 2);
        assert_eq!(s.wasted_time_us, 10);
        assert_eq!(s.wasted_energy_nj, 100);
        assert!((s.wasted_share() - 10.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn failed_span_duration_stops_at_the_failure() {
        use EventKind::{Instant, SpanBegin, SpanEnd};
        let events = [
            span(0, 0, 0, 0, "t0", SpanBegin(SpanKind::TaskAttempt)),
            span(5, 50, 0, 3, "cap", SpanBegin(SpanKind::IoCall)),
            Event::instant(8, 60, InstantKind::PowerFailure, "timer"),
            span(
                8,
                60,
                NO_TASK,
                NO_SITE,
                "off",
                SpanBegin(SpanKind::PowerOff),
            ),
            span(
                100,
                60,
                NO_TASK,
                NO_SITE,
                "off",
                SpanEnd(SpanKind::PowerOff, Status::None),
            ),
            span(
                100,
                60,
                0,
                3,
                "cap",
                SpanEnd(SpanKind::IoCall, Status::Failed),
            ),
            span(
                100,
                60,
                0,
                NO_SITE,
                "t0",
                SpanEnd(SpanKind::TaskAttempt, Status::Failed),
            ),
            Event {
                ts_us: 100,
                energy_nj: 60,
                task: NO_TASK,
                site: NO_SITE,
                name: "boot",
                kind: Instant(InstantKind::Boot),
            },
        ];
        let p = build_profile(&events);
        assert_eq!(p.unbalanced, 0);
        assert_eq!(p.power_off_us, 92);
        let s = &p.sites[0];
        assert_eq!(s.failed, 1);
        assert_eq!(
            s.time_us, 3,
            "useful extent ends at the failure, not after recharge"
        );
        assert_eq!(p.tasks[0].failures, 1);
        assert_eq!(p.instants["power_failure"], 1);
        assert_eq!(p.instants["boot"], 1);
    }

    #[test]
    fn task_latency_percentiles_cover_committed_attempts_only() {
        use EventKind::{SpanBegin, SpanEnd};
        use SpanKind::TaskAttempt;
        let mut events = Vec::new();
        let mut t = 0u64;
        for (i, d) in [10u64, 20, 30, 40, 1000].iter().enumerate() {
            events.push(span(t, t, 0, i as u16, "t0", SpanBegin(TaskAttempt)));
            t += d;
            events.push(span(
                t,
                t,
                0,
                NO_SITE,
                "t0",
                SpanEnd(TaskAttempt, Status::Committed),
            ));
        }
        let p = build_profile(&events);
        let tp = &p.tasks[0];
        assert_eq!(tp.attempts, 5);
        assert_eq!(
            tp.reexec_attempts, 4,
            "site field carries the attempt index"
        );
        assert_eq!(tp.commits, 5);
        assert_eq!(tp.latency.p50_us, 30);
        assert_eq!(tp.latency.max_us, 1000);
    }

    #[test]
    fn fault_retry_and_degradation_instants_are_sub_counted() {
        use EventKind::Instant;
        let at = |task, site, name, kind| Event {
            ts_us: 0,
            energy_nj: 0,
            task,
            site,
            name,
            kind: Instant(kind),
        };
        let events = [
            at(1, 4, "sensor_timeout", InstantKind::PeriphFault),
            at(1, 4, "io_retry", InstantKind::IoRetry),
            at(1, 4, "sensor_timeout", InstantKind::PeriphFault),
            at(1, 4, "io_retry", InstantKind::IoRetry),
            at(2, 0, "radio_nack", InstantKind::PeriphFault),
            at(2, 0, "io_retry", InstantKind::IoRetry),
            at(1, 4, "fallback", InstantKind::Degraded),
            at(3, 1, "skip", InstantKind::Degraded),
        ];
        let p = build_profile(&events);
        assert_eq!(p.instants["periph_fault"], 3);
        assert_eq!(p.instants["io_retry"], 3);
        assert_eq!(p.instants["degraded"], 2);
        assert_eq!(p.faults_by_kind["sensor_timeout"], 2);
        assert_eq!(p.faults_by_kind["radio_nack"], 1);
        assert_eq!(p.degraded_by_mode["fallback"], 1);
        assert_eq!(p.degraded_by_mode["skip"], 1);
        assert_eq!(p.retries_by_site[&(1, 4)], 2);
        assert_eq!(p.retries_by_site[&(2, 0)], 1);
    }

    #[test]
    fn unbalanced_stream_is_reported_not_panicked() {
        use EventKind::{SpanBegin, SpanEnd};
        let events = [
            span(0, 0, 0, 0, "x", SpanBegin(SpanKind::IoCall)),
            span(
                5,
                0,
                1,
                9,
                "y",
                SpanEnd(SpanKind::Commit, Status::Committed),
            ),
        ];
        let p = build_profile(&events);
        assert_eq!(p.unbalanced, 2, "one dangling begin + one orphan end");
    }
}
