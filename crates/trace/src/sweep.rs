//! Versioned machine-readable crash-sweep report.
//!
//! `easeio-sim sweep --report out.json` emits this document: sweep identity
//! (runtime, app, seed, outage length, sampling mode), the reference run's
//! boundary count, one entry per injection that violated an invariant, and —
//! when the parallel engine ran the sweep — an optional `timing` block with
//! wall-clock and per-worker utilization. Any violation is reproducible from
//! the document alone: re-run the same app/runtime/seed with a failure
//! injected at the recorded boundary.
//!
//! The body rides inside the shared [`Report`]
//! envelope (`{schema_version, kind: "sweep", tool, report: {…}}`); the old
//! v1 flat layout is still accepted by [`validate_sweep_report_v1`] and by
//! [`validate_any_report`](crate::envelope::validate_any_report).

use crate::agg::{percentile, tally};
use crate::envelope::{Report, ReportBody, LEGACY_SCHEMA_VERSION};
use crate::json::Value;

/// One injection run that broke a crash-consistency invariant.
#[derive(Debug, Clone)]
pub struct SweepViolation {
    /// Energy-spend boundary index the failure was injected at.
    pub boundary: u64,
    /// Violation class (e.g. `"single_redundant"`, `"wrong_verdict"`).
    pub kind: String,
    /// Human-readable divergence description.
    pub detail: String,
}

/// Host-side timing of a sweep run. Measurement, not result: stripped by
/// [`identity_document`](crate::envelope::identity_document) before
/// serial-vs-parallel comparison.
#[derive(Debug, Clone)]
pub struct SweepTimingDoc {
    /// Worker count the sweep ran with.
    pub jobs: u64,
    /// Host wall-clock for everything after the oracle (µs).
    pub wall_us: u64,
    /// Throughput in milli-injections per second (fixed point ×1000).
    /// `None` — and omitted from the document — when the sweep finished too
    /// fast for `wall_us` to measure: a literal 0 would misread as "no
    /// throughput".
    pub injections_per_sec_milli: Option<u64>,
    /// Oracle preparation µs (outside `wall_us`).
    pub oracle_us: u64,
    /// Reference-trace + boundary-classification µs (0 with pruning off).
    pub classify_us: u64,
    /// Injection-phase worker busy µs.
    pub inject_us: u64,
    /// Materialize + check + merge µs.
    pub merge_us: u64,
    /// Injections executed by each worker.
    pub injections_per_worker: Vec<u64>,
    /// Busy time of each worker (µs).
    pub busy_us_per_worker: Vec<u64>,
    /// Injection-point pruning statistics (present when run through an
    /// engine that classifies boundaries). Lives inside `timing` on
    /// purpose: pruning changes how the sweep was *computed*, never what it
    /// found, so identity stripping must drop it along with the clocks.
    pub prune: Option<SweepPruneDoc>,
}

/// What injection-point equivalence pruning did to one sweep.
#[derive(Debug, Clone)]
pub struct SweepPruneDoc {
    /// Whether pruning was enabled.
    pub enabled: bool,
    /// Injected runs actually executed (class representatives).
    pub injections_executed: u64,
    /// Injected runs materialized from a representative instead of run.
    pub injections_pruned: u64,
    /// Equivalence classes over the chosen boundaries.
    pub classes: u64,
    /// The reference run observed wall-clock time, so nothing merged.
    pub time_observed: bool,
}

/// Fault-injection configuration of a sweep. Result identity, not
/// measurement: two sweeps with different fault specs are different
/// experiments, so — unlike [`SweepTimingDoc`] — this block is *kept* by
/// [`identity_document`](crate::envelope::identity_document).
#[derive(Debug, Clone)]
pub struct FaultSpecDoc {
    /// Fault-plan seed.
    pub seed: u64,
    /// Per-attempt fault probability in permille.
    pub rate_permille: u64,
    /// Bounded re-attempts after the first faulted attempt.
    pub max_retries: u64,
    /// Base backoff before the first retry (µs, doubles per retry).
    pub backoff_base_us: u64,
}

/// Per-boundary energy-waste distribution of a sweep: every injection run
/// attributes its energy by cause, and this block folds those ledgers
/// across the sweep's boundaries. Result identity (kept by
/// [`identity_document`](crate::envelope::identity_document)): the waste a
/// runtime pays at each failure point is exactly what the sweep measures.
#[derive(Debug, Clone)]
pub struct SweepWasteDoc {
    /// Injection runs the distribution covers.
    pub boundaries: u64,
    /// Mean wasted energy per boundary (nJ, integer division).
    pub mean_waste_nj: u64,
    /// Median wasted energy per boundary (nJ).
    pub p50_waste_nj: u64,
    /// 95th-percentile wasted energy per boundary (nJ).
    pub p95_waste_nj: u64,
    /// Worst boundary's wasted energy (nJ).
    pub max_waste_nj: u64,
    /// Per-cause energy totals summed across every boundary run, in
    /// category order (`(category_name, nJ)`).
    pub cause_energy_nj: Vec<(String, u64)>,
}

impl SweepWasteDoc {
    /// Folds a per-boundary waste series (one entry per injection, in
    /// boundary order) and summed per-cause totals into the document block.
    pub fn from_series(waste_nj: &[u64], cause_energy_nj: Vec<(String, u64)>) -> Self {
        let mut sorted = waste_nj.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let sum: u64 = sorted.iter().sum();
        Self {
            boundaries: n,
            mean_waste_nj: sum.checked_div(n).unwrap_or(0),
            p50_waste_nj: percentile(&sorted, 50),
            p95_waste_nj: percentile(&sorted, 95),
            max_waste_nj: sorted.last().copied().unwrap_or(0),
            cause_energy_nj,
        }
    }
}

/// Inputs to the sweep report document.
#[derive(Debug, Clone)]
pub struct SweepInputs {
    /// Runtime display name.
    pub runtime: String,
    /// Application name.
    pub app: String,
    /// Environment seed shared by every run of the sweep.
    pub seed: u64,
    /// Outage length injected at each boundary (µs).
    pub off_us: u64,
    /// `"exhaustive"` or `"sample"`.
    pub mode: String,
    /// Energy-spend boundaries counted in the continuous-power oracle run.
    pub oracle_boundaries: u64,
    /// Whether final app FRAM was compared byte-for-byte with the oracle.
    pub strict_memory: bool,
    /// Number of injection runs performed.
    pub injections: u64,
    /// Invariant violations, in boundary order.
    pub violations: Vec<SweepViolation>,
    /// Fault-injection configuration (present when a fault plan was
    /// installed for the sweep's injected runs).
    pub fault_spec: Option<FaultSpecDoc>,
    /// Per-boundary energy-waste distribution (present when the sweep
    /// collected attribution ledgers).
    pub waste: Option<SweepWasteDoc>,
    /// Host timing (present when run through the parallel engine).
    pub timing: Option<SweepTimingDoc>,
}

impl ReportBody for SweepInputs {
    const KIND: &'static str = "sweep";
    const TOOL: &'static str = "easeio-sim sweep";

    fn body(&self) -> Value {
        sweep_body(self)
    }

    fn validate_body(body: &Value) -> Vec<String> {
        validate_sweep_body(body)
    }
}

/// Renders the body object (shared by the v2 envelope; v1 used the same
/// fields flat at top level).
fn sweep_body(inp: &SweepInputs) -> Value {
    let violations = inp
        .violations
        .iter()
        .map(|v| {
            Value::Obj(vec![
                ("boundary".into(), Value::u64(v.boundary)),
                ("kind".into(), Value::str(v.kind.clone())),
                ("detail".into(), Value::str(v.detail.clone())),
            ])
        })
        .collect();
    let mut fields = vec![
        ("runtime".into(), Value::str(inp.runtime.clone())),
        ("app".into(), Value::str(inp.app.clone())),
        ("seed".into(), Value::u64(inp.seed)),
        ("off_us".into(), Value::u64(inp.off_us)),
        ("mode".into(), Value::str(inp.mode.clone())),
        (
            "oracle_boundaries".into(),
            Value::u64(inp.oracle_boundaries),
        ),
        ("strict_memory".into(), Value::Bool(inp.strict_memory)),
        ("injections".into(), Value::u64(inp.injections)),
        (
            "violation_count".into(),
            Value::u64(inp.violations.len() as u64),
        ),
        ("violations".into(), Value::Arr(violations)),
    ];
    // Per-probe counts, derived from the violation list so they can never
    // disagree with it.
    let by_kind = tally(inp.violations.iter().map(|v| v.kind.as_str()));
    fields.push((
        "violations_by_kind".into(),
        Value::Obj(
            by_kind
                .into_iter()
                .map(|(k, n)| (k.to_string(), Value::u64(n)))
                .collect(),
        ),
    ));
    if let Some(f) = &inp.fault_spec {
        fields.push((
            "fault_spec".into(),
            Value::Obj(vec![
                ("seed".into(), Value::u64(f.seed)),
                ("rate_permille".into(), Value::u64(f.rate_permille)),
                ("max_retries".into(), Value::u64(f.max_retries)),
                ("backoff_base_us".into(), Value::u64(f.backoff_base_us)),
            ]),
        ));
    }
    if let Some(w) = &inp.waste {
        fields.push((
            "waste".into(),
            Value::Obj(vec![
                ("boundaries".into(), Value::u64(w.boundaries)),
                ("mean_waste_nj".into(), Value::u64(w.mean_waste_nj)),
                ("p50_waste_nj".into(), Value::u64(w.p50_waste_nj)),
                ("p95_waste_nj".into(), Value::u64(w.p95_waste_nj)),
                ("max_waste_nj".into(), Value::u64(w.max_waste_nj)),
                (
                    "cause_energy_nj".into(),
                    Value::Obj(
                        w.cause_energy_nj
                            .iter()
                            .map(|(k, n)| (k.clone(), Value::u64(*n)))
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(t) = &inp.timing {
        let mut timing = vec![
            ("jobs".into(), Value::u64(t.jobs)),
            ("wall_us".into(), Value::u64(t.wall_us)),
        ];
        if let Some(rate) = t.injections_per_sec_milli {
            timing.push(("injections_per_sec_milli".into(), Value::u64(rate)));
        }
        timing.extend([
            ("oracle_us".into(), Value::u64(t.oracle_us)),
            ("classify_us".into(), Value::u64(t.classify_us)),
            ("inject_us".into(), Value::u64(t.inject_us)),
            ("merge_us".into(), Value::u64(t.merge_us)),
            (
                "injections_per_worker".into(),
                Value::Arr(
                    t.injections_per_worker
                        .iter()
                        .map(|&n| Value::u64(n))
                        .collect(),
                ),
            ),
            (
                "busy_us_per_worker".into(),
                Value::Arr(
                    t.busy_us_per_worker
                        .iter()
                        .map(|&n| Value::u64(n))
                        .collect(),
                ),
            ),
        ]);
        if let Some(p) = &t.prune {
            timing.push((
                "prune".into(),
                Value::Obj(vec![
                    ("enabled".into(), Value::Bool(p.enabled)),
                    (
                        "injections_executed".into(),
                        Value::u64(p.injections_executed),
                    ),
                    ("injections_pruned".into(), Value::u64(p.injections_pruned)),
                    ("classes".into(), Value::u64(p.classes)),
                    ("time_observed".into(), Value::Bool(p.time_observed)),
                ]),
            ));
        }
        fields.push(("timing".into(), Value::Obj(timing)));
    }
    Value::Obj(fields)
}

/// Builds the sweep report document (v2 envelope).
pub fn build_sweep_report(inp: &SweepInputs) -> Value {
    Report::new(inp.clone()).to_value()
}

/// Checks a parsed v2 sweep report. Returns every violation found, not just
/// the first.
pub fn validate_sweep_report(v: &Value) -> Result<(), Vec<String>> {
    Report::<SweepInputs>::validate(v)
}

/// Checks a v1 flat sweep document (schema_version 1, fields at top level).
pub fn validate_sweep_report_v1(v: &Value) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    match v.get("schema_version").and_then(Value::as_u64) {
        Some(LEGACY_SCHEMA_VERSION) => {}
        _ => errs.push(format!(
            "'schema_version' must be the integer {LEGACY_SCHEMA_VERSION}"
        )),
    }
    if v.get("tool").and_then(Value::as_str).is_none() {
        errs.push("'tool' must be a string".into());
    }
    errs.extend(validate_sweep_body(v));
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Body-level checks shared by both schema versions.
fn validate_sweep_body(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    let mut need = |key: &str, pred: &dyn Fn(&Value) -> bool, what: &str| match v.get(key) {
        None => errs.push(format!("missing key '{key}'")),
        Some(val) if !pred(val) => errs.push(format!("'{key}' must be {what}")),
        _ => {}
    };
    need("runtime", &|x| x.as_str().is_some(), "a string");
    need("app", &|x| x.as_str().is_some(), "a string");
    need("seed", &|x| x.as_u64().is_some(), "an unsigned integer");
    need("off_us", &|x| x.as_u64().is_some(), "an unsigned integer");
    need(
        "mode",
        &|x| matches!(x.as_str(), Some("exhaustive" | "sample")),
        "'exhaustive' or 'sample'",
    );
    need(
        "oracle_boundaries",
        &|x| x.as_u64().is_some(),
        "an unsigned integer",
    );
    need("strict_memory", &|x| matches!(x, Value::Bool(_)), "a bool");
    need(
        "injections",
        &|x| x.as_u64().is_some(),
        "an unsigned integer",
    );
    need(
        "violation_count",
        &|x| x.as_u64().is_some(),
        "an unsigned integer",
    );
    match v.get("violations").and_then(Value::as_arr) {
        None => errs.push("'violations' must be an array".into()),
        Some(rows) => {
            if v.get("violation_count").and_then(Value::as_u64) != Some(rows.len() as u64) {
                errs.push("'violation_count' disagrees with 'violations' length".into());
            }
            for (i, row) in rows.iter().enumerate() {
                for k in ["boundary", "kind", "detail"] {
                    if row.get(k).is_none() {
                        errs.push(format!("violations[{i}] missing '{k}'"));
                    }
                }
            }
        }
    }
    // Both fault blocks are optional: pre-fault v2 documents carry neither.
    if let Some(b) = v.get("violations_by_kind") {
        match b.as_obj() {
            None => errs.push("'violations_by_kind' must be an object".into()),
            Some(entries) => {
                for (k, n) in entries {
                    if n.as_u64().is_none() {
                        errs.push(format!(
                            "'violations_by_kind.{k}' must be an unsigned integer"
                        ));
                    }
                }
            }
        }
    }
    if let Some(f) = v.get("fault_spec") {
        for k in ["seed", "rate_permille", "max_retries", "backoff_base_us"] {
            if f.get(k).and_then(Value::as_u64).is_none() {
                errs.push(format!("'fault_spec.{k}' must be an unsigned integer"));
            }
        }
    }
    if let Some(w) = v.get("waste") {
        for k in [
            "boundaries",
            "mean_waste_nj",
            "p50_waste_nj",
            "p95_waste_nj",
            "max_waste_nj",
        ] {
            if w.get(k).and_then(Value::as_u64).is_none() {
                errs.push(format!("'waste.{k}' must be an unsigned integer"));
            }
        }
        match w.get("cause_energy_nj").and_then(Value::as_obj) {
            None => errs.push("'waste.cause_energy_nj' must be an object".into()),
            Some(entries) => {
                for (k, n) in entries {
                    if n.as_u64().is_none() {
                        errs.push(format!("'waste.cause_energy_nj.{k}' must be an integer"));
                    }
                }
            }
        }
    }
    if let Some(t) = v.get("timing") {
        for k in ["jobs", "wall_us"] {
            if t.get(k).and_then(Value::as_u64).is_none() {
                errs.push(format!("'timing.{k}' must be an unsigned integer"));
            }
        }
        // Optional: absent on sweeps too fast to time (and the stage
        // clocks are absent from pre-pruning documents).
        for k in [
            "injections_per_sec_milli",
            "oracle_us",
            "classify_us",
            "inject_us",
            "merge_us",
        ] {
            if let Some(val) = t.get(k) {
                if val.as_u64().is_none() {
                    errs.push(format!("'timing.{k}' must be an unsigned integer"));
                }
            }
        }
        for k in ["injections_per_worker", "busy_us_per_worker"] {
            if t.get(k).and_then(Value::as_arr).is_none() {
                errs.push(format!("'timing.{k}' must be an array"));
            }
        }
        if let Some(p) = t.get("prune") {
            for k in ["injections_executed", "injections_pruned", "classes"] {
                if p.get(k).and_then(Value::as_u64).is_none() {
                    errs.push(format!("'timing.prune.{k}' must be an unsigned integer"));
                }
            }
            for k in ["enabled", "time_observed"] {
                if !matches!(p.get(k), Some(Value::Bool(_))) {
                    errs.push(format!("'timing.prune.{k}' must be a bool"));
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::identity_document;
    use crate::json::parse;

    fn inputs() -> SweepInputs {
        SweepInputs {
            runtime: "Alpaca".into(),
            app: "branch".into(),
            seed: 7,
            off_us: 100_000,
            mode: "exhaustive".into(),
            oracle_boundaries: 42,
            strict_memory: false,
            injections: 42,
            violations: vec![SweepViolation {
                boundary: 17,
                kind: "single_redundant".into(),
                detail: "probe_single_redundant = 1".into(),
            }],
            fault_spec: None,
            waste: None,
            timing: None,
        }
    }

    #[test]
    fn waste_block_renders_and_validates() {
        let mut inp = inputs();
        inp.waste = Some(SweepWasteDoc::from_series(
            &[40, 10, 20, 1000],
            vec![("progress".into(), 900), ("retry".into(), 170)],
        ));
        let doc = build_sweep_report(&inp);
        let parsed = parse(&doc.to_pretty()).unwrap();
        validate_sweep_report(&parsed).unwrap();
        let w = parsed.get("report").unwrap().get("waste").unwrap();
        assert_eq!(w.get("boundaries").and_then(Value::as_u64), Some(4));
        assert_eq!(w.get("mean_waste_nj").and_then(Value::as_u64), Some(267));
        assert_eq!(w.get("p50_waste_nj").and_then(Value::as_u64), Some(20));
        assert_eq!(w.get("p95_waste_nj").and_then(Value::as_u64), Some(40));
        assert_eq!(w.get("max_waste_nj").and_then(Value::as_u64), Some(1000));
        assert_eq!(
            w.get("cause_energy_nj")
                .and_then(|c| c.get("retry"))
                .and_then(Value::as_u64),
            Some(170)
        );
    }

    #[test]
    fn built_report_round_trips_and_validates() {
        let doc = build_sweep_report(&inputs());
        let parsed = parse(&doc.to_pretty()).unwrap();
        validate_sweep_report(&parsed).unwrap();
        assert_eq!(parsed.get("kind").and_then(Value::as_str), Some("sweep"));
        let body = parsed.get("report").unwrap();
        assert_eq!(body.get("violation_count").and_then(Value::as_u64), Some(1));
        let rows = body.get("violations").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].get("boundary").and_then(Value::as_u64), Some(17));
        assert_eq!(
            rows[0].get("kind").and_then(Value::as_str),
            Some("single_redundant")
        );
    }

    #[test]
    fn validation_catches_missing_and_inconsistent_fields() {
        let mut doc = build_sweep_report(&inputs());
        // Corrupt the count so it disagrees with the array.
        if let Value::Obj(top) = &mut doc {
            for (k, body) in top.iter_mut() {
                if k != "report" {
                    continue;
                }
                if let Value::Obj(fields) = body {
                    for (k, v) in fields.iter_mut() {
                        if k == "violation_count" {
                            *v = Value::u64(9);
                        }
                    }
                }
            }
        }
        let errs = validate_sweep_report(&doc).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("violation_count")),
            "{errs:?}"
        );

        let errs = validate_sweep_report(&Value::Obj(vec![])).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("schema_version")));
        assert!(errs.iter().any(|e| e.contains("'report'")));
    }

    #[test]
    fn fault_spec_is_emitted_validated_and_kept_by_identity() {
        let mut inp = inputs();
        inp.violations.push(SweepViolation {
            boundary: 23,
            kind: "retry_duplicated_effect".into(),
            detail: "probe = 1".into(),
        });
        inp.fault_spec = Some(FaultSpecDoc {
            seed: 9,
            rate_permille: 50,
            max_retries: 4,
            backoff_base_us: 40,
        });
        let doc = build_sweep_report(&inp);
        validate_sweep_report(&doc).unwrap();
        let body = doc.get("report").unwrap();
        assert_eq!(
            body.get("fault_spec")
                .and_then(|f| f.get("rate_permille"))
                .and_then(Value::as_u64),
            Some(50)
        );
        let by_kind = body.get("violations_by_kind").unwrap();
        assert_eq!(
            by_kind
                .get("retry_duplicated_effect")
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            by_kind.get("single_redundant").and_then(Value::as_u64),
            Some(1)
        );
        // The fault spec is experiment identity: identity_document keeps it
        // (unlike timing), so differently-faulted sweeps never compare equal.
        assert!(identity_document(&doc)
            .get("report")
            .unwrap()
            .get("fault_spec")
            .is_some());
    }

    #[test]
    fn v2_report_without_the_fault_block_keeps_validating() {
        // Frozen pre-fault v2 document (the exact shape earlier releases
        // wrote): no 'violations_by_kind', no 'fault_spec'. This must stay
        // accepted forever.
        let frozen = r#"{
            "schema_version": 2,
            "kind": "sweep",
            "tool": "easeio-sim sweep",
            "report": {
                "runtime": "Alpaca",
                "app": "branch",
                "seed": 7,
                "off_us": 100000,
                "mode": "exhaustive",
                "oracle_boundaries": 42,
                "strict_memory": false,
                "injections": 42,
                "violation_count": 0,
                "violations": []
            }
        }"#;
        let doc = parse(frozen).unwrap();
        validate_sweep_report(&doc).expect("pre-fault v2 sweep reports must keep validating");
        crate::envelope::validate_any_report(&doc)
            .expect("validate_any_report must accept the frozen document");
    }

    #[test]
    fn timing_is_emitted_validated_and_stripped_by_identity() {
        let mut inp = inputs();
        inp.timing = Some(SweepTimingDoc {
            jobs: 4,
            wall_us: 123_456,
            injections_per_sec_milli: Some(340_211),
            oracle_us: 2_000,
            classify_us: 1_500,
            inject_us: 118_000,
            merge_us: 3_956,
            injections_per_worker: vec![11, 11, 10, 10],
            busy_us_per_worker: vec![30_000, 31_000, 29_000, 30_500],
            prune: Some(SweepPruneDoc {
                enabled: true,
                injections_executed: 12,
                injections_pruned: 30,
                classes: 12,
                time_observed: false,
            }),
        });
        let doc = build_sweep_report(&inp);
        validate_sweep_report(&doc).unwrap();
        let body = doc.get("report").unwrap();
        assert_eq!(
            body.get("timing")
                .and_then(|t| t.get("jobs"))
                .and_then(Value::as_u64),
            Some(4)
        );
        assert_eq!(
            body.get("timing")
                .and_then(|t| t.get("prune"))
                .and_then(|p| p.get("injections_pruned"))
                .and_then(Value::as_u64),
            Some(30)
        );
        // Identity form equals the untimed document.
        let untimed = build_sweep_report(&inputs());
        assert_eq!(
            identity_document(&doc).to_pretty(),
            identity_document(&untimed).to_pretty()
        );
        assert_eq!(identity_document(&untimed).to_pretty(), untimed.to_pretty());
    }

    /// A sweep too fast for `wall_us` to measure carries no throughput
    /// field at all — never a misleading 0 — and the document still
    /// validates.
    #[test]
    fn unmeasurable_throughput_is_omitted_not_zero() {
        let mut inp = inputs();
        inp.timing = Some(SweepTimingDoc {
            jobs: 1,
            wall_us: 0,
            injections_per_sec_milli: None,
            oracle_us: 0,
            classify_us: 0,
            inject_us: 0,
            merge_us: 0,
            injections_per_worker: vec![42],
            busy_us_per_worker: vec![0],
            prune: None,
        });
        let doc = build_sweep_report(&inp);
        validate_sweep_report(&doc).unwrap();
        let timing = doc.get("report").unwrap().get("timing").unwrap();
        assert!(timing.get("injections_per_sec_milli").is_none());
        assert!(timing.get("prune").is_none());
    }
}
