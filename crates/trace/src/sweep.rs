//! Versioned machine-readable crash-sweep report.
//!
//! `easeio-sim sweep --report out.json` emits this document: sweep identity
//! (runtime, app, seed, outage length, sampling mode), the reference run's
//! boundary count, and one entry per injection that violated an invariant.
//! Any violation is reproducible from the document alone: re-run the same
//! app/runtime/seed with a failure injected at the recorded boundary.
//!
//! The document shares [`SCHEMA_VERSION`] with the run report — both layouts
//! version together.

use crate::json::Value;
use crate::report::SCHEMA_VERSION;

/// One injection run that broke a crash-consistency invariant.
#[derive(Debug, Clone)]
pub struct SweepViolation {
    /// Energy-spend boundary index the failure was injected at.
    pub boundary: u64,
    /// Violation class (e.g. `"single_redundant"`, `"wrong_verdict"`).
    pub kind: String,
    /// Human-readable divergence description.
    pub detail: String,
}

/// Inputs to the sweep report document.
#[derive(Debug, Clone)]
pub struct SweepInputs {
    /// Runtime display name.
    pub runtime: String,
    /// Application name.
    pub app: String,
    /// Environment seed shared by every run of the sweep.
    pub seed: u64,
    /// Outage length injected at each boundary (µs).
    pub off_us: u64,
    /// `"exhaustive"` or `"sample"`.
    pub mode: String,
    /// Energy-spend boundaries counted in the continuous-power oracle run.
    pub oracle_boundaries: u64,
    /// Whether final app FRAM was compared byte-for-byte with the oracle.
    pub strict_memory: bool,
    /// Number of injection runs performed.
    pub injections: u64,
    /// Invariant violations, in boundary order.
    pub violations: Vec<SweepViolation>,
}

/// Builds the sweep report document.
pub fn build_sweep_report(inp: &SweepInputs) -> Value {
    let violations = inp
        .violations
        .iter()
        .map(|v| {
            Value::Obj(vec![
                ("boundary".into(), Value::u64(v.boundary)),
                ("kind".into(), Value::str(v.kind.clone())),
                ("detail".into(), Value::str(v.detail.clone())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema_version".into(), Value::u64(SCHEMA_VERSION)),
        ("tool".into(), Value::str("easeio-sim sweep")),
        ("runtime".into(), Value::str(inp.runtime.clone())),
        ("app".into(), Value::str(inp.app.clone())),
        ("seed".into(), Value::u64(inp.seed)),
        ("off_us".into(), Value::u64(inp.off_us)),
        ("mode".into(), Value::str(inp.mode.clone())),
        (
            "oracle_boundaries".into(),
            Value::u64(inp.oracle_boundaries),
        ),
        ("strict_memory".into(), Value::Bool(inp.strict_memory)),
        ("injections".into(), Value::u64(inp.injections)),
        (
            "violation_count".into(),
            Value::u64(inp.violations.len() as u64),
        ),
        ("violations".into(), Value::Arr(violations)),
    ])
}

/// Checks a parsed sweep report against the schema. Returns every violation
/// found, not just the first.
pub fn validate_sweep_report(v: &Value) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let mut need = |key: &str, pred: &dyn Fn(&Value) -> bool, what: &str| match v.get(key) {
        None => errs.push(format!("missing key '{key}'")),
        Some(val) if !pred(val) => errs.push(format!("'{key}' must be {what}")),
        _ => {}
    };
    need(
        "schema_version",
        &|x| x.as_u64() == Some(SCHEMA_VERSION),
        &format!("the integer {SCHEMA_VERSION}"),
    );
    need("tool", &|x| x.as_str().is_some(), "a string");
    need("runtime", &|x| x.as_str().is_some(), "a string");
    need("app", &|x| x.as_str().is_some(), "a string");
    need("seed", &|x| x.as_u64().is_some(), "an unsigned integer");
    need("off_us", &|x| x.as_u64().is_some(), "an unsigned integer");
    need(
        "mode",
        &|x| matches!(x.as_str(), Some("exhaustive" | "sample")),
        "'exhaustive' or 'sample'",
    );
    need(
        "oracle_boundaries",
        &|x| x.as_u64().is_some(),
        "an unsigned integer",
    );
    need("strict_memory", &|x| matches!(x, Value::Bool(_)), "a bool");
    need(
        "injections",
        &|x| x.as_u64().is_some(),
        "an unsigned integer",
    );
    need(
        "violation_count",
        &|x| x.as_u64().is_some(),
        "an unsigned integer",
    );
    match v.get("violations").and_then(Value::as_arr) {
        None => errs.push("'violations' must be an array".into()),
        Some(rows) => {
            if v.get("violation_count").and_then(Value::as_u64) != Some(rows.len() as u64) {
                errs.push("'violation_count' disagrees with 'violations' length".into());
            }
            for (i, row) in rows.iter().enumerate() {
                for k in ["boundary", "kind", "detail"] {
                    if row.get(k).is_none() {
                        errs.push(format!("violations[{i}] missing '{k}'"));
                    }
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn inputs() -> SweepInputs {
        SweepInputs {
            runtime: "Alpaca".into(),
            app: "branch".into(),
            seed: 7,
            off_us: 100_000,
            mode: "exhaustive".into(),
            oracle_boundaries: 42,
            strict_memory: false,
            injections: 42,
            violations: vec![SweepViolation {
                boundary: 17,
                kind: "single_redundant".into(),
                detail: "probe_single_redundant = 1".into(),
            }],
        }
    }

    #[test]
    fn built_report_round_trips_and_validates() {
        let doc = build_sweep_report(&inputs());
        let parsed = parse(&doc.to_pretty()).unwrap();
        validate_sweep_report(&parsed).unwrap();
        assert_eq!(
            parsed.get("violation_count").and_then(Value::as_u64),
            Some(1)
        );
        let rows = parsed.get("violations").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].get("boundary").and_then(Value::as_u64), Some(17));
        assert_eq!(
            rows[0].get("kind").and_then(Value::as_str),
            Some("single_redundant")
        );
    }

    #[test]
    fn validation_catches_missing_and_inconsistent_fields() {
        let mut doc = build_sweep_report(&inputs());
        // Corrupt the count so it disagrees with the array.
        if let Value::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "violation_count" {
                    *v = Value::u64(9);
                }
            }
        }
        let errs = validate_sweep_report(&doc).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("violation_count")),
            "{errs:?}"
        );

        let errs = validate_sweep_report(&Value::Obj(vec![])).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("schema_version")));
        assert!(errs.iter().any(|e| e.contains("violations")));
    }
}
