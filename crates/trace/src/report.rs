//! Versioned machine-readable run report.
//!
//! `easeio-sim --report out.json` emits this document: run identity
//! (runtime, app, supply, seed), the paper's five metrics (§5.2 — wasted
//! work, energy, correctness, runtime overhead, memory overhead), the
//! per-call-site profile and per-task latency table, inside the shared
//! [`Report`] envelope of [`crate::envelope`]. Downstream tooling pins
//! `schema_version`; [`validate_report`] is the schema check CI runs
//! against a fresh report, and [`validate_report_v1`] still reads the
//! pre-envelope flat layout.

use crate::envelope::{Report, ReportBody, LEGACY_SCHEMA_VERSION};
use crate::json::Value;
use crate::profile::Profile;

pub use crate::envelope::SCHEMA_VERSION;

/// Ledger-level inputs the simulator supplies alongside the event profile.
#[derive(Debug, Clone)]
pub struct ReportInputs {
    /// Runtime display name (`"EaseIO"`, `"Alpaca"`, …).
    pub runtime: String,
    /// Application name.
    pub app: String,
    /// Supply description (free-form object, e.g. kind + timer bounds).
    pub supply: Value,
    /// Failure-schedule / environment seed.
    pub seed: u64,
    /// `"completed"`, `"non_termination"`, or `"fault"`.
    pub outcome: String,
    /// Application correctness verdict, if the app defines a check.
    pub correct: Option<bool>,
    /// Wall-clock time including off periods (µs).
    pub wall_us: u64,
    /// Powered time (µs).
    pub on_us: u64,
    /// App-classified time (µs).
    pub app_time_us: u64,
    /// Overhead-classified time (µs).
    pub overhead_time_us: u64,
    /// App-classified energy (nJ).
    pub app_energy_nj: u64,
    /// Overhead-classified energy (nJ).
    pub overhead_energy_nj: u64,
    /// Golden (continuous-power) app time (µs), for wasted-work.
    pub golden_app_time_us: u64,
    /// Golden app energy (nJ).
    pub golden_app_energy_nj: u64,
    /// Power failures.
    pub power_failures: u64,
    /// Task attempts / commits.
    pub task_attempts: u64,
    /// Task commits.
    pub task_commits: u64,
    /// I/O physically executed.
    pub io_executed: u64,
    /// I/O skipped with restored outputs.
    pub io_skipped: u64,
    /// Redundant I/O re-executions.
    pub io_reexecutions: u64,
    /// DMA transfers performed.
    pub dma_executed: u64,
    /// DMA transfers skipped.
    pub dma_skipped: u64,
    /// Redundant DMA re-executions.
    pub dma_reexecutions: u64,
    /// Memory overhead `(text, ram, fram)` bytes, if measured.
    pub memory: Option<(u32, u32, u32)>,
    /// Events recorded / dropped by the ring.
    pub events_recorded: u64,
    /// Events lost to ring overflow.
    pub events_dropped: u64,
}

fn pct(part: u64, whole: u64) -> Value {
    if whole == 0 {
        Value::Num(0.0)
    } else {
        Value::Num((part as f64 / whole as f64 * 1000.0).round() / 10.0)
    }
}

/// A complete run-report payload: ledger inputs plus the event profile.
/// [`ReportBody`] implementation — wrap in [`Report`] (or call
/// [`build_report`]) to render the versioned document.
#[derive(Debug, Clone)]
pub struct RunReportDoc {
    /// Ledger-level inputs.
    pub inputs: ReportInputs,
    /// The per-site / per-task profile derived from the event stream.
    pub profile: Profile,
}

impl ReportBody for RunReportDoc {
    const KIND: &'static str = "run";
    const TOOL: &'static str = "easeio-sim";

    fn body(&self) -> Value {
        run_body(&self.inputs, &self.profile)
    }

    fn validate_body(body: &Value) -> Vec<String> {
        validate_run_body(body)
    }
}

/// Builds the versioned report document (v2 envelope).
pub fn build_report(inp: &ReportInputs, profile: &Profile) -> Value {
    Report::new(RunReportDoc {
        inputs: inp.clone(),
        profile: profile.clone(),
    })
    .to_value()
}

/// The report body: everything under the envelope's `report` key.
fn run_body(inp: &ReportInputs, profile: &Profile) -> Value {
    let wasted_us = inp.app_time_us.saturating_sub(inp.golden_app_time_us);
    let wasted_nj = inp.app_energy_nj.saturating_sub(inp.golden_app_energy_nj);
    let total_us = inp.app_time_us + inp.overhead_time_us;
    let metrics = Value::Obj(vec![
        ("wall_us".into(), Value::u64(inp.wall_us)),
        ("on_us".into(), Value::u64(inp.on_us)),
        ("app_time_us".into(), Value::u64(inp.app_time_us)),
        ("overhead_time_us".into(), Value::u64(inp.overhead_time_us)),
        ("app_energy_nj".into(), Value::u64(inp.app_energy_nj)),
        (
            "overhead_energy_nj".into(),
            Value::u64(inp.overhead_energy_nj),
        ),
        (
            "total_energy_nj".into(),
            Value::u64(inp.app_energy_nj + inp.overhead_energy_nj),
        ),
        (
            "golden_app_time_us".into(),
            Value::u64(inp.golden_app_time_us),
        ),
        (
            "golden_app_energy_nj".into(),
            Value::u64(inp.golden_app_energy_nj),
        ),
        ("wasted_time_us".into(), Value::u64(wasted_us)),
        ("wasted_energy_nj".into(), Value::u64(wasted_nj)),
        ("wasted_work_pct".into(), pct(wasted_us, inp.app_time_us)),
        (
            "runtime_overhead_pct".into(),
            pct(inp.overhead_time_us, total_us),
        ),
        ("power_failures".into(), Value::u64(inp.power_failures)),
        ("task_attempts".into(), Value::u64(inp.task_attempts)),
        ("task_commits".into(), Value::u64(inp.task_commits)),
        ("io_executed".into(), Value::u64(inp.io_executed)),
        ("io_skipped".into(), Value::u64(inp.io_skipped)),
        ("io_reexecutions".into(), Value::u64(inp.io_reexecutions)),
        ("dma_executed".into(), Value::u64(inp.dma_executed)),
        ("dma_skipped".into(), Value::u64(inp.dma_skipped)),
        ("dma_reexecutions".into(), Value::u64(inp.dma_reexecutions)),
        (
            "memory".into(),
            match inp.memory {
                Some((text, ram, fram)) => Value::Obj(vec![
                    ("text".into(), Value::u64(text as u64)),
                    ("ram".into(), Value::u64(ram as u64)),
                    ("fram".into(), Value::u64(fram as u64)),
                ]),
                None => Value::Null,
            },
        ),
    ]);

    let sites = profile
        .sites
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("task".into(), Value::u64(s.task as u64)),
                ("site".into(), Value::u64(s.site as u64)),
                ("kind".into(), Value::str(s.kind.label())),
                ("name".into(), Value::str(s.name.clone())),
                ("executions".into(), Value::u64(s.executions)),
                ("redundant".into(), Value::u64(s.redundant)),
                ("skips".into(), Value::u64(s.skips)),
                ("failed".into(), Value::u64(s.failed)),
                ("time_us".into(), Value::u64(s.time_us)),
                ("energy_nj".into(), Value::u64(s.energy_nj)),
                ("wasted_time_us".into(), Value::u64(s.wasted_time_us)),
                ("wasted_energy_nj".into(), Value::u64(s.wasted_energy_nj)),
                (
                    "wasted_share".into(),
                    Value::Num((s.wasted_share() * 1000.0).round() / 1000.0),
                ),
            ])
        })
        .collect();

    let tasks = profile
        .tasks
        .iter()
        .map(|t| {
            Value::Obj(vec![
                ("task".into(), Value::u64(t.task as u64)),
                ("name".into(), Value::str(t.name.clone())),
                ("attempts".into(), Value::u64(t.attempts)),
                ("reexec_attempts".into(), Value::u64(t.reexec_attempts)),
                ("commits".into(), Value::u64(t.commits)),
                ("failures".into(), Value::u64(t.failures)),
                ("giveups".into(), Value::u64(t.giveups)),
                (
                    "latency_us".into(),
                    Value::Obj(vec![
                        ("p50".into(), Value::u64(t.latency.p50_us)),
                        ("p95".into(), Value::u64(t.latency.p95_us)),
                        ("max".into(), Value::u64(t.latency.max_us)),
                    ]),
                ),
            ])
        })
        .collect();

    let instants = profile
        .instants
        .iter()
        .map(|(k, v)| (k.to_string(), Value::u64(*v)))
        .collect();

    let mut fields = vec![
        ("runtime".into(), Value::str(inp.runtime.clone())),
        ("app".into(), Value::str(inp.app.clone())),
        ("supply".into(), inp.supply.clone()),
        ("seed".into(), Value::u64(inp.seed)),
        ("outcome".into(), Value::str(inp.outcome.clone())),
        (
            "correct".into(),
            match inp.correct {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            },
        ),
        ("metrics".into(), metrics),
        ("sites".into(), Value::Arr(sites)),
        ("tasks".into(), Value::Arr(tasks)),
        ("instants".into(), Value::Obj(instants)),
        (
            "trace".into(),
            Value::Obj(vec![
                ("events_recorded".into(), Value::u64(inp.events_recorded)),
                ("events_dropped".into(), Value::u64(inp.events_dropped)),
                ("power_off_us".into(), Value::u64(profile.power_off_us)),
                ("unbalanced_spans".into(), Value::u64(profile.unbalanced)),
            ]),
        ),
    ];
    // Peripheral-fault telemetry: optional block, present only when the run
    // actually saw injected faults, retries, or degradations — older v2
    // readers and fault-free runs are unaffected.
    if !profile.faults_by_kind.is_empty()
        || !profile.degraded_by_mode.is_empty()
        || !profile.retries_by_site.is_empty()
    {
        let by_kind = profile
            .faults_by_kind
            .iter()
            .map(|(k, v)| (k.to_string(), Value::u64(*v)))
            .collect();
        let degraded = profile
            .degraded_by_mode
            .iter()
            .map(|(k, v)| (k.to_string(), Value::u64(*v)))
            .collect();
        let retries = profile
            .retries_by_site
            .iter()
            .map(|(&(task, site), &n)| {
                Value::Obj(vec![
                    ("task".into(), Value::u64(task as u64)),
                    ("site".into(), Value::u64(site as u64)),
                    ("retries".into(), Value::u64(n)),
                ])
            })
            .collect();
        fields.push((
            "faults".into(),
            Value::Obj(vec![
                ("by_kind".into(), Value::Obj(by_kind)),
                ("degraded".into(), Value::Obj(degraded)),
                ("retries_by_site".into(), Value::Arr(retries)),
            ]),
        ));
    }
    Value::Obj(fields)
}

/// Required numeric keys inside `metrics`.
const METRIC_KEYS: &[&str] = &[
    "wall_us",
    "on_us",
    "app_time_us",
    "overhead_time_us",
    "app_energy_nj",
    "overhead_energy_nj",
    "total_energy_nj",
    "wasted_time_us",
    "wasted_energy_nj",
    "wasted_work_pct",
    "runtime_overhead_pct",
    "power_failures",
    "task_attempts",
    "task_commits",
    "io_executed",
    "io_skipped",
    "io_reexecutions",
    "dma_executed",
    "dma_skipped",
    "dma_reexecutions",
];

const SITE_KEYS: &[&str] = &[
    "task",
    "site",
    "kind",
    "name",
    "executions",
    "redundant",
    "skips",
    "failed",
    "time_us",
    "energy_nj",
    "wasted_time_us",
    "wasted_energy_nj",
    "wasted_share",
];

const TASK_KEYS: &[&str] = &[
    "task",
    "name",
    "attempts",
    "reexec_attempts",
    "commits",
    "failures",
    "giveups",
    "latency_us",
];

/// Checks a parsed v2 report document (envelope + body). Returns every
/// violation found, not just the first.
pub fn validate_report(v: &Value) -> Result<(), Vec<String>> {
    Report::<RunReportDoc>::validate(v)
}

/// Checks a parsed **v1** (pre-envelope, flat) report document — the
/// reader kept for archived reports.
pub fn validate_report_v1(v: &Value) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    {
        let mut need = |key: &str, pred: &dyn Fn(&Value) -> bool, what: &str| match v.get(key) {
            None => errs.push(format!("missing key '{key}'")),
            Some(val) if !pred(val) => errs.push(format!("'{key}' must be {what}")),
            _ => {}
        };
        need(
            "schema_version",
            &|x| x.as_u64() == Some(LEGACY_SCHEMA_VERSION),
            &format!("the integer {LEGACY_SCHEMA_VERSION}"),
        );
        need("tool", &|x| x.as_str().is_some(), "a string");
    }
    errs.extend(validate_run_body(v));
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Body-level checks shared by the v2 validator (against the `report`
/// object) and the v1 validator (against the flat document).
fn validate_run_body(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    let mut need = |key: &str, pred: &dyn Fn(&Value) -> bool, what: &str| match v.get(key) {
        None => errs.push(format!("missing key '{key}'")),
        Some(val) if !pred(val) => errs.push(format!("'{key}' must be {what}")),
        _ => {}
    };
    need("runtime", &|x| x.as_str().is_some(), "a string");
    need("app", &|x| x.as_str().is_some(), "a string");
    need("supply", &|x| x.as_obj().is_some(), "an object");
    need("seed", &|x| x.as_u64().is_some(), "an unsigned integer");
    need(
        "outcome",
        &|x| matches!(x.as_str(), Some("completed" | "non_termination" | "fault")),
        "'completed', 'non_termination', or 'fault'",
    );
    need(
        "correct",
        &|x| matches!(x, Value::Null | Value::Bool(_)),
        "a bool or null",
    );

    match v.get("metrics") {
        None => errs.push("missing key 'metrics'".into()),
        Some(m) => {
            for k in METRIC_KEYS {
                if m.get(k).and_then(Value::as_f64).is_none() {
                    errs.push(format!("metrics.{k} must be a number"));
                }
            }
        }
    }
    for (key, required) in [("sites", SITE_KEYS), ("tasks", TASK_KEYS)] {
        match v.get(key).and_then(Value::as_arr) {
            None => errs.push(format!("'{key}' must be an array")),
            Some(rows) => {
                for (i, row) in rows.iter().enumerate() {
                    for k in required {
                        if row.get(k).is_none() {
                            errs.push(format!("{key}[{i}] missing '{k}'"));
                        }
                    }
                }
            }
        }
    }
    match v.get("trace") {
        None => errs.push("missing key 'trace'".into()),
        Some(t) => {
            for k in ["events_recorded", "events_dropped", "unbalanced_spans"] {
                if t.get(k).and_then(Value::as_u64).is_none() {
                    errs.push(format!("trace.{k} must be an unsigned integer"));
                }
            }
        }
    }
    // 'faults' is optional (absent for fault-free runs and older v2 docs);
    // when present its three sub-fields must be well-formed.
    if let Some(f) = v.get("faults") {
        for k in ["by_kind", "degraded"] {
            if f.get(k).and_then(Value::as_obj).is_none() {
                errs.push(format!("'faults.{k}' must be an object"));
            }
        }
        match f.get("retries_by_site").and_then(Value::as_arr) {
            None => errs.push("'faults.retries_by_site' must be an array".into()),
            Some(rows) => {
                for (i, row) in rows.iter().enumerate() {
                    for k in ["task", "site", "retries"] {
                        if row.get(k).and_then(Value::as_u64).is_none() {
                            errs.push(format!("faults.retries_by_site[{i}] missing '{k}'"));
                        }
                    }
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_inputs() -> ReportInputs {
        ReportInputs {
            runtime: "EaseIO".into(),
            app: "weather".into(),
            supply: Value::Obj(vec![("kind".into(), Value::str("timer"))]),
            seed: 7,
            outcome: "completed".into(),
            correct: Some(true),
            wall_us: 1000,
            on_us: 800,
            app_time_us: 600,
            overhead_time_us: 200,
            app_energy_nj: 6000,
            overhead_energy_nj: 2000,
            golden_app_time_us: 450,
            golden_app_energy_nj: 4500,
            power_failures: 3,
            task_attempts: 9,
            task_commits: 6,
            io_executed: 4,
            io_skipped: 2,
            io_reexecutions: 1,
            dma_executed: 1,
            dma_skipped: 1,
            dma_reexecutions: 0,
            memory: Some((1480, 128, 512)),
            events_recorded: 42,
            events_dropped: 0,
        }
    }

    #[test]
    fn built_report_validates_and_roundtrips() {
        let report = build_report(&sample_inputs(), &Profile::default());
        validate_report(&report).expect("fresh report must satisfy its own schema");
        let reparsed = json::parse(&report.to_pretty()).unwrap();
        validate_report(&reparsed).unwrap();
        assert_eq!(
            reparsed.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(reparsed.get("kind").and_then(Value::as_str), Some("run"));
        let body = reparsed.get("report").unwrap();
        assert_eq!(
            body.get("metrics")
                .unwrap()
                .get("wasted_time_us")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert_eq!(
            body.get("metrics")
                .unwrap()
                .get("wasted_work_pct")
                .unwrap()
                .as_f64(),
            Some(25.0)
        );
    }

    #[test]
    fn fault_block_is_emitted_only_when_faults_occurred() {
        let clean = build_report(&sample_inputs(), &Profile::default());
        assert!(clean.get("report").unwrap().get("faults").is_none());
        validate_report(&clean).unwrap();

        let mut p = Profile::default();
        p.faults_by_kind.insert("radio_nack", 3);
        p.degraded_by_mode.insert("fallback", 1);
        p.retries_by_site.insert((4, 2), 3);
        let doc = build_report(&sample_inputs(), &p);
        validate_report(&doc).expect("fault block must satisfy the schema");
        let f = doc.get("report").unwrap().get("faults").unwrap();
        assert_eq!(
            f.get("by_kind")
                .and_then(|b| b.get("radio_nack"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let rows = f.get("retries_by_site").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].get("retries").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn malformed_fault_block_is_rejected() {
        let mut doc = build_report(&sample_inputs(), &Profile::default());
        if let Value::Obj(top) = &mut doc {
            for (k, body) in top.iter_mut() {
                if k != "report" {
                    continue;
                }
                if let Value::Obj(fields) = body {
                    fields.push(("faults".into(), Value::str("bogus")));
                }
            }
        }
        let errs = validate_report(&doc).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("faults.by_kind")),
            "{errs:?}"
        );
    }

    #[test]
    fn validator_reports_every_violation() {
        let doc = json::parse(r#"{"schema_version": 2, "kind": "run", "report": {"runtime": 5}}"#)
            .unwrap();
        let errs = validate_report(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("'tool' must be")));
        assert!(errs.iter().any(|e| e.contains("'runtime' must be")));
        assert!(errs.iter().any(|e| e.contains("missing key 'metrics'")));
        assert!(errs.len() > 5, "all violations collected: {errs:?}");
    }

    #[test]
    fn v1_reader_still_accepts_the_flat_layout() {
        // A minimal synthetic v1 document: flat fields, schema_version 1.
        let flat = {
            let body = super::run_body(&sample_inputs(), &Profile::default());
            let Value::Obj(mut fields) = body else {
                panic!("body must be an object")
            };
            fields.insert(0, ("tool".into(), Value::str("easeio-sim")));
            fields.insert(
                0,
                ("schema_version".into(), Value::u64(LEGACY_SCHEMA_VERSION)),
            );
            Value::Obj(fields)
        };
        validate_report_v1(&flat).expect("v1 layout must keep validating");
        // And the v2 validator must NOT accept it.
        assert!(validate_report(&flat).is_err());
    }
}
