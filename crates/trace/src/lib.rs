//! Observability for the EaseIO simulator stack.
//!
//! Every layer of the simulator — the MCU/power substrate, the task
//! executor, the baselines, and the EaseIO core runtime — records into one
//! flat, ring-buffered stream of structured [`Event`]s through a
//! [`TraceSink`]. The stream has a single vocabulary across all runtimes, so
//! a Naive trace and an EaseIO trace of the same app are directly
//! comparable. From the stream this crate derives:
//!
//! * a Chrome `trace_event` document ([`chrome_trace`]) viewable in
//!   `chrome://tracing` / Perfetto, with power-off intervals on their own
//!   track;
//! * compact JSONL ([`jsonl`](fn@jsonl)) for `jq`-style post-processing;
//! * a per-call-site / per-task profile ([`build_profile`]): executions,
//!   skips, redundant re-executions, µs/nJ, wasted-work share, and
//!   attempt-latency percentiles;
//! * a versioned machine-readable run report ([`build_report`] /
//!   [`validate_report`]).
//!
//! The sink is disabled by default and its fast path is a single `Option`
//! check with the event construction behind a closure, so an untraced run
//! pays effectively nothing (`crates/bench/benches/micro.rs` measures this).
//! This crate has no dependencies; it sits below `mcu-emu` in the workspace
//! graph.

pub mod agg;
pub mod chrome;
pub mod envelope;
pub mod event;
pub mod fleet;
pub mod forensics;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod report;
pub mod ring;
pub mod sketch;
pub mod stream;
pub mod sweep;
pub mod tracker;

pub use chrome::{chrome_trace, chrome_trace_with_counters, counter_events, CounterTrack};
pub use envelope::{
    identity_document, validate_any_report, Report, ReportBody, ReportKind, LEGACY_SCHEMA_VERSION,
    SCHEMA_VERSION,
};
pub use event::{Event, EventKind, InstantKind, SpanKind, Status, NO_SITE, NO_TASK};
pub use fleet::{
    build_fleet_report, validate_fleet_report, FleetDeliveryDoc, FleetEnergyDoc, FleetInputs,
    FleetMediumDoc, FleetOutcomesDoc, FleetStragglerDoc, FleetTimingDoc,
};
pub use forensics::{
    build_forensics_report, validate_forensics_report, ForensicsInputs, ForensicsViolationDoc,
    FramDiffByte, FramDiffDoc, FRAM_DIFF_CAP,
};
pub use json::{parse as parse_json, Value};
pub use jsonl::jsonl;
pub use metrics::{
    build_metrics_report, compare_metrics, flamegraph, validate_metrics_report, MetricsEntry,
    MetricsInputs, Regression, SiteWasteRow, SkippedApp, TaskWasteRow, CATEGORY_COUNT,
    CATEGORY_NAMES, WASTE_CATEGORY_NAMES,
};
pub use profile::{build_profile, LatencySummary, Profile, SiteProfile, TaskProfile};
pub use progress::{Progress, ProgressSnapshot};
pub use report::{build_report, validate_report, ReportInputs};
pub use ring::{RingRecorder, DEFAULT_CAPACITY};
pub use sketch::Sketch;
pub use stream::{flush_registered, register_for_flush, JsonlWriter, ShardedSink, StreamStats};
pub use sweep::{
    build_sweep_report, validate_sweep_report, FaultSpecDoc, SweepInputs, SweepPruneDoc,
    SweepTimingDoc, SweepViolation, SweepWasteDoc,
};
pub use tracker::ActivationTracker;

/// The recording endpoint embedded in the simulated MCU.
///
/// Disabled (the default) it is a `None` and [`TraceSink::emit_with`]
/// returns after one branch without evaluating the event closure; enabled it
/// appends to a bounded [`RingRecorder`].
#[derive(Debug, Default)]
pub struct TraceSink(Option<RingRecorder>);

impl TraceSink {
    /// A sink that records nothing.
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// A sink recording into a ring of [`DEFAULT_CAPACITY`] events.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sink recording into a ring of `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Some(RingRecorder::new(capacity)))
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event produced by `f`, if enabled. The closure is not
    /// evaluated on a disabled sink — callers may freely gather timestamps
    /// and names inside it.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> Event) {
        if let Some(ring) = &mut self.0 {
            ring.push(f());
        }
    }

    /// Events lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, RingRecorder::dropped)
    }

    /// Drains all recorded events, oldest first. Empty on a disabled sink.
    pub fn take(&mut self) -> Vec<Event> {
        self.0.as_mut().map_or_else(Vec::new, RingRecorder::take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_never_evaluates_the_closure() {
        let mut sink = TraceSink::disabled();
        let mut evaluated = false;
        sink.emit_with(|| {
            evaluated = true;
            Event::instant(0, 0, InstantKind::Boot, "boot")
        });
        assert!(!evaluated);
        assert!(!sink.is_enabled());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn enabled_sink_records_and_drains() {
        let mut sink = TraceSink::enabled();
        sink.emit_with(|| Event::instant(1, 0, InstantKind::Boot, "boot"));
        sink.emit_with(|| Event::instant(2, 0, InstantKind::PowerFailure, "timer"));
        assert!(sink.is_enabled());
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts_us, 1);
        assert_eq!(sink.dropped(), 0);
    }
}
