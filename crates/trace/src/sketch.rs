//! Deterministic fixed-bucket histogram/quantile sketches.
//!
//! Fleet-scale aggregation (ISSUE 10) must not hold whole-population
//! vectors: a 100k-device fleet's straggler percentiles were previously
//! computed by sorting a `Vec<u64>` of every device's wall-clock. A
//! [`Sketch`] replaces that vector with a fixed array of log-spaced
//! buckets — HdrHistogram-style, 32 sub-buckets per octave — so memory is
//! O(1) per distribution regardless of population size, and quantile
//! estimates carry a pinned relative error bound of 1/32.
//!
//! Determinism is load-bearing: bucket counts are pure functions of the
//! recorded values, and [`Sketch::merge`] is a bucket-wise sum, which is
//! commutative and associative. Per-worker sketches merged in *any* order
//! therefore equal the sketch of the whole population recorded serially —
//! the property that lets the streamed fleet path reproduce the in-memory
//! report byte-for-byte at any `--jobs` width.
//!
//! ## Error bound (pinned by proptest in `tests/streaming.rs`)
//!
//! Values below [`LINEAR_MAX`] land in exact unit buckets. A larger value
//! `v` with most-significant bit `m` lands in a bucket of width
//! `2^(m-5)`, whose lower bound `L` satisfies `L ≥ 32 · 2^(m-5)`; hence
//!
//! ```text
//! quantile(q) ≤ exact_percentile(q) ≤ quantile(q) + quantile(q)/32
//! ```
//!
//! where `exact_percentile` is [`crate::agg::percentile`] over the sorted
//! population at the same floor-index rank. The sketch's quantiles are
//! monotone in `q` and never exceed the exactly-tracked [`Sketch::max`].

/// Sub-buckets per octave: 32 (5 bits), giving relative error ≤ 1/32.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Values strictly below this are recorded exactly (unit-width buckets).
pub const LINEAR_MAX: u64 = 2 * SUB; // 64

/// Total bucket count: 64 exact + 32 per octave for msb 6..=63.
pub const BUCKETS: usize = (LINEAR_MAX as usize) + 32 * (64 - (SUB_BITS as usize + 1));

/// Bucket index for a value. Exact below [`LINEAR_MAX`]; otherwise the
/// value's top `SUB_BITS + 1` significant bits select the bucket.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB; // 0..32 within the octave
    LINEAR_MAX as usize + ((msb - SUB_BITS - 1) * 32 + sub as u32) as usize
}

/// Smallest value mapping to bucket `idx` — the quantile estimate for any
/// sample in that bucket (estimate ≤ sample, within sample/32 of it).
fn bucket_floor(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_MAX as usize;
    let octave = (rel / 32) as u32;
    let sub = (rel % 32) as u64;
    (SUB + sub) << (octave + 1)
}

/// A bounded-memory distribution sketch over `u64` samples.
///
/// ~15 KB flat, independent of how many samples it absorbs.
#[derive(Clone)]
pub struct Sketch {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    max: u64,
    min: u64,
    sum: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sketch")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sum", &self.sum)
            .finish_non_exhaustive()
    }
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u64; BUCKETS]),
            count: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Absorbs one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
        self.sum = self.sum.saturating_add(v);
    }

    /// Bucket-wise sum of another sketch into this one. Commutative and
    /// associative: merging per-worker sketches in any order reproduces
    /// the serially-recorded population sketch exactly.
    pub fn merge(&mut self, other: &Sketch) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample (0 on an empty sketch).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum sample (0 on an empty sketch).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Quantile estimate at integer percent `q` (clamped to 100), using
    /// the same floor-index rank as [`crate::agg::percentile`]:
    /// `rank = (count - 1) * q / 100`. Returns the lower bound of the
    /// bucket holding the rank-th sample, so the estimate never exceeds
    /// the exact percentile and is monotone in `q`. 0 on an empty sketch.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count - 1) * q.min(100) / 100;
        if rank == self.count - 1 {
            // The top rank is the maximum, which is tracked exactly.
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                // The floor of the first bucket can undershoot the exact
                // minimum only within the same 1/32 bound; clamp to the
                // tracked min so quantile(0) is exact.
                return bucket_floor(idx).max(self.min());
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::percentile;

    #[test]
    fn empty_sketch_is_all_zeros() {
        let s = Sketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        for q in [0, 50, 99, 100] {
            assert_eq!(s.quantile(q), 0);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = Sketch::new();
        for v in [0u64, 1, 5, 31, 63] {
            s.record(v);
        }
        assert_eq!(s.quantile(0), 0);
        assert_eq!(s.quantile(50), 5);
        assert_eq!(s.quantile(100), 63);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 63);
        assert_eq!(s.sum(), 100);
    }

    #[test]
    fn bucket_roundtrip_floor_is_a_lower_bound_within_a_32nd() {
        for v in (0..200u64)
            .chain((1u64..60).map(|k| 1u64 << k))
            .chain((1u64..60).map(|k| (1u64 << k) + (1 << k) / 3))
            .chain([u64::MAX, u64::MAX / 2, 1_000_000_007])
        {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v, "floor {floor} > value {v}");
            assert!(
                v - floor <= floor / 32,
                "bucket too wide at {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn quantiles_match_exact_percentiles_within_bound() {
        let mut s = Sketch::new();
        let mut pop: Vec<u64> = (0..500u64).map(|i| i * i * 37 + 11).collect();
        for &v in &pop {
            s.record(v);
        }
        pop.sort_unstable();
        for q in [0u64, 10, 50, 90, 99, 100] {
            let exact = percentile(&pop, q);
            let est = s.quantile(q);
            assert!(est <= exact, "q{q}: est {est} > exact {exact}");
            assert!(
                exact <= est + est / 32,
                "q{q}: est {est} too far from {exact}"
            );
        }
        // Monotone and bounded by the exact max.
        assert!(s.quantile(50) <= s.quantile(90));
        assert!(s.quantile(90) <= s.quantile(99));
        assert!(s.quantile(99) <= s.max());
        assert_eq!(s.quantile(100), s.max());
    }

    #[test]
    fn merge_equals_serial_recording_in_any_order() {
        let pop: Vec<u64> = (0..300u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9) >> 20)
            .collect();
        let mut serial = Sketch::new();
        for &v in &pop {
            serial.record(v);
        }
        // Three shards, merged in a non-worker order.
        let mut shards: Vec<Sketch> = (0..3).map(|_| Sketch::new()).collect();
        for (i, &v) in pop.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut merged = Sketch::new();
        for k in [2usize, 0, 1] {
            merged.merge(&shards[k]);
        }
        assert_eq!(merged.count(), serial.count());
        assert_eq!(merged.max(), serial.max());
        assert_eq!(merged.min(), serial.min());
        assert_eq!(merged.sum(), serial.sum());
        for q in 0..=100u64 {
            assert_eq!(merged.quantile(q), serial.quantile(q), "q{q}");
        }
    }
}
