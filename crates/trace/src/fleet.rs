//! Versioned machine-readable fleet report.
//!
//! `easeio-sim fleet --report-out out.json` emits this document: fleet
//! identity (runtime, app, device count, seeds, supply, medium), the
//! per-device outcome tally, the gateway's end-to-end delivery accounting,
//! the fleet-wide energy ledger by cause, straggler percentiles over
//! per-device wall-clock, and — when sharded across the parallel engine —
//! an optional `timing` block. The body rides inside the shared
//! [`Report`] envelope as `kind: "fleet"`.
//!
//! The delivery block is where the paper's `Single` semantics becomes a
//! fleet-level claim: `air_duplicates` counts transmissions of a
//! (device, sequence) pair beyond the first — exactly-once violations on
//! the air. Under EaseIO it must be zero; the Naive baseline pins it
//! positive. The validator enforces the accounting *structurally*: every
//! transmission must be delivered, lost to collision, or lost to the
//! channel, and the duplicate/unique splits must sum — a document whose
//! ledger does not balance is rejected as malformed.

use crate::envelope::{Report, ReportBody};
use crate::json::Value;
use crate::metrics::{CATEGORY_COUNT, CATEGORY_NAMES};
use crate::sweep::FaultSpecDoc;

/// The shared radio-medium configuration a fleet ran over. Experiment
/// identity, kept by
/// [`identity_document`](crate::envelope::identity_document).
#[derive(Debug, Clone, Default)]
pub struct FleetMediumDoc {
    /// Seed of the per-packet loss draws.
    pub seed: u64,
    /// Channel loss probability in permille.
    pub loss_permille: u64,
    /// Fixed per-transmission airtime (µs).
    pub airtime_base_us: u64,
    /// Additional airtime per payload word (µs).
    pub airtime_us_per_word: u64,
}

/// Per-device outcome tally. The three outcome counts partition the fleet;
/// so do the three verdict counts (devices whose app defines no
/// correctness check land in `unverified`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetOutcomesDoc {
    /// Devices whose final task completed.
    pub completed: u64,
    /// Devices that exhausted the attempt budget.
    pub non_terminated: u64,
    /// Devices aborted by a non-recoverable fault.
    pub faulted: u64,
    /// Devices whose output check passed.
    pub correct: u64,
    /// Devices whose output check failed.
    pub incorrect: u64,
    /// Devices with no output check (or that never reached it).
    pub unverified: u64,
}

/// The gateway's exactly-once accounting over the whole fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetDeliveryDoc {
    /// Packets put on the air by all devices.
    pub transmissions: u64,
    /// Distinct (device, sequence) pairs among them.
    pub unique_sent: u64,
    /// Transmissions beyond the first of their (device, sequence) pair —
    /// `Single`-semantics violations on the air. Zero under EaseIO.
    pub air_duplicates: u64,
    /// Packets the gateway received (survived collision and loss).
    pub delivered: u64,
    /// Distinct (device, sequence) pairs among the received packets.
    pub delivered_unique: u64,
    /// Received packets whose (device, sequence) pair had already been
    /// received — duplicates the gateway must deduplicate.
    pub gateway_duplicates: u64,
    /// Packets destroyed by overlapping transmit windows.
    pub lost_collision: u64,
    /// Collision-free packets dropped by the seeded channel loss.
    pub lost_channel: u64,
    /// `delivered_unique * 1000 / unique_sent` (0 when nothing was sent).
    pub delivery_rate_milli: u64,
}

/// Fleet-wide energy ledger: every device's attribution summed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetEnergyDoc {
    /// Total on-time across all devices (µs).
    pub total_time_us: u64,
    /// Total energy across all devices (nJ).
    pub total_energy_nj: u64,
    /// Energy by cause, aligned to [`CATEGORY_NAMES`].
    pub cause_energy_nj: [u64; CATEGORY_COUNT],
}

/// Straggler percentiles over per-device wall-clock (virtual µs, dead time
/// included) — how unevenly the fleet finishes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStragglerDoc {
    /// Median device wall-clock (µs).
    pub p50_wall_us: u64,
    /// 90th-percentile device wall-clock (µs).
    pub p90_wall_us: u64,
    /// 99th-percentile device wall-clock (µs).
    pub p99_wall_us: u64,
    /// Slowest device wall-clock (µs).
    pub max_wall_us: u64,
}

/// Version-convergence accounting of a rolling over-the-air update.
/// Result data, not measurement: part of the report identity, so rollout
/// reports must be byte-identical at any `--jobs` width.
///
/// The device buckets partition the fleet:
/// `updated + update_failed + stragglers + stale == devices`, and
/// `offered == updated + update_failed + stragglers`. The rendered
/// `versions` object maps each image sequence number to the devices that
/// converged on it (`update_failed` devices — torn or otherwise incorrect
/// — are on no coherent version and appear in no bucket). Under EaseIO the
/// crash-safe two-phase commit pins `duplicate_activations` and
/// `version_torn` to zero; the Naive in-place baseline does not.
#[derive(Debug, Clone, Default)]
pub struct FleetRolloutDoc {
    /// Sequence number of the image being rolled out.
    pub target_seq: u64,
    /// Devices per rollout wave.
    pub wave_size: u64,
    /// Total waves the fleet partitions into.
    pub waves: u64,
    /// Waves actually offered the update (fewer than `waves` after abort).
    pub waves_rolled_out: u64,
    /// Whether the rollout stopped early on a wave regression.
    pub aborted: bool,
    /// Devices the gateway attempted a downlink to.
    pub offered: u64,
    /// Offered devices that completed correctly on the target version.
    pub updated: u64,
    /// Offered devices that received the image but did not end correct.
    pub update_failed: u64,
    /// Offered devices whose downlink never completed — still on the old
    /// version.
    pub stragglers: u64,
    /// Devices never offered the update (waves after an abort).
    pub stale: u64,
    /// Downlink chunk transmissions, retries included.
    pub downlink_chunks_sent: u64,
    /// Downlink chunk transmissions lost to the channel.
    pub downlink_chunks_lost: u64,
    /// Activation notifications recorded beyond the first, fleet-wide.
    pub duplicate_activations: u64,
    /// Torn-image recoveries observed by devices, fleet-wide.
    pub version_torn: u64,
}

/// Host-side timing of a fleet run. Measurement, not result: stripped by
/// [`identity_document`](crate::envelope::identity_document) before the
/// `--jobs` byte-identity comparison.
#[derive(Debug, Clone)]
pub struct FleetTimingDoc {
    /// Worker count the fleet was sharded across.
    pub jobs: u64,
    /// Host wall-clock of the device phase (µs).
    pub wall_us: u64,
    /// Devices executed by each worker.
    pub devices_per_worker: Vec<u64>,
    /// Busy time of each worker (µs).
    pub busy_us_per_worker: Vec<u64>,
    /// Peak resident-set size of the host process (bytes), when the
    /// platform exposes it — the number the CI flat-memory gate reads.
    pub peak_rss_bytes: Option<u64>,
    /// Per-device records streamed to `--stream-out` (present on streamed
    /// runs; deterministic, but reported here because it describes how the
    /// run was executed, not what it computed).
    pub streamed_records: Option<u64>,
}

/// Inputs to the fleet report document.
#[derive(Debug, Clone)]
pub struct FleetInputs {
    /// Runtime display name.
    pub runtime: String,
    /// Application name.
    pub app: String,
    /// Number of devices.
    pub devices: u64,
    /// Scenario base seed (device `i` derives seed + i).
    pub seed: u64,
    /// Supply label (`"timer"`, `"rf:58"`, …).
    pub supply: String,
    /// The shared radio medium.
    pub medium: FleetMediumDoc,
    /// Fault-injection configuration (present when a plan was installed).
    pub fault_spec: Option<FaultSpecDoc>,
    /// Per-device outcome tally.
    pub outcomes: FleetOutcomesDoc,
    /// Power-failure reboots summed across the fleet.
    pub power_failures: u64,
    /// Gateway delivery accounting.
    pub delivery: FleetDeliveryDoc,
    /// Fleet-wide energy ledger.
    pub energy: FleetEnergyDoc,
    /// Straggler percentiles.
    pub stragglers: FleetStragglerDoc,
    /// Rolling-update convergence (present when the fleet ran a rollout).
    pub rollout: Option<FleetRolloutDoc>,
    /// Host timing (present when run through the parallel engine).
    pub timing: Option<FleetTimingDoc>,
}

impl ReportBody for FleetInputs {
    const KIND: &'static str = "fleet";
    const TOOL: &'static str = "easeio-sim fleet";

    fn body(&self) -> Value {
        fleet_body(self)
    }

    fn validate_body(body: &Value) -> Vec<String> {
        validate_fleet_body(body)
    }
}

fn fleet_body(inp: &FleetInputs) -> Value {
    let mut fields = vec![
        ("runtime".into(), Value::str(inp.runtime.clone())),
        ("app".into(), Value::str(inp.app.clone())),
        ("devices".into(), Value::u64(inp.devices)),
        ("seed".into(), Value::u64(inp.seed)),
        ("supply".into(), Value::str(inp.supply.clone())),
        (
            "medium".into(),
            Value::Obj(vec![
                ("seed".into(), Value::u64(inp.medium.seed)),
                ("loss_permille".into(), Value::u64(inp.medium.loss_permille)),
                (
                    "airtime_base_us".into(),
                    Value::u64(inp.medium.airtime_base_us),
                ),
                (
                    "airtime_us_per_word".into(),
                    Value::u64(inp.medium.airtime_us_per_word),
                ),
            ]),
        ),
    ];
    if let Some(f) = &inp.fault_spec {
        fields.push((
            "fault_spec".into(),
            Value::Obj(vec![
                ("seed".into(), Value::u64(f.seed)),
                ("rate_permille".into(), Value::u64(f.rate_permille)),
                ("max_retries".into(), Value::u64(f.max_retries)),
                ("backoff_base_us".into(), Value::u64(f.backoff_base_us)),
            ]),
        ));
    }
    let o = &inp.outcomes;
    fields.push((
        "outcomes".into(),
        Value::Obj(vec![
            ("completed".into(), Value::u64(o.completed)),
            ("non_terminated".into(), Value::u64(o.non_terminated)),
            ("faulted".into(), Value::u64(o.faulted)),
            ("correct".into(), Value::u64(o.correct)),
            ("incorrect".into(), Value::u64(o.incorrect)),
            ("unverified".into(), Value::u64(o.unverified)),
        ]),
    ));
    fields.push(("power_failures".into(), Value::u64(inp.power_failures)));
    let d = &inp.delivery;
    fields.push((
        "delivery".into(),
        Value::Obj(vec![
            ("transmissions".into(), Value::u64(d.transmissions)),
            ("unique_sent".into(), Value::u64(d.unique_sent)),
            ("air_duplicates".into(), Value::u64(d.air_duplicates)),
            ("delivered".into(), Value::u64(d.delivered)),
            ("delivered_unique".into(), Value::u64(d.delivered_unique)),
            (
                "gateway_duplicates".into(),
                Value::u64(d.gateway_duplicates),
            ),
            ("lost_collision".into(), Value::u64(d.lost_collision)),
            ("lost_channel".into(), Value::u64(d.lost_channel)),
            (
                "delivery_rate_milli".into(),
                Value::u64(d.delivery_rate_milli),
            ),
        ]),
    ));
    let e = &inp.energy;
    fields.push((
        "energy".into(),
        Value::Obj(vec![
            ("total_time_us".into(), Value::u64(e.total_time_us)),
            ("total_energy_nj".into(), Value::u64(e.total_energy_nj)),
            (
                "cause_energy_nj".into(),
                Value::Obj(
                    (0..CATEGORY_COUNT)
                        .map(|i| {
                            (
                                CATEGORY_NAMES[i].to_string(),
                                Value::u64(e.cause_energy_nj[i]),
                            )
                        })
                        .collect(),
                ),
            ),
        ]),
    ));
    let s = &inp.stragglers;
    fields.push((
        "stragglers".into(),
        Value::Obj(vec![
            ("p50_wall_us".into(), Value::u64(s.p50_wall_us)),
            ("p90_wall_us".into(), Value::u64(s.p90_wall_us)),
            ("p99_wall_us".into(), Value::u64(s.p99_wall_us)),
            ("max_wall_us".into(), Value::u64(s.max_wall_us)),
        ]),
    ));
    if let Some(r) = &inp.rollout {
        fields.push((
            "rollout".into(),
            Value::Obj(vec![
                ("target_seq".into(), Value::u64(r.target_seq)),
                ("wave_size".into(), Value::u64(r.wave_size)),
                ("waves".into(), Value::u64(r.waves)),
                ("waves_rolled_out".into(), Value::u64(r.waves_rolled_out)),
                ("aborted".into(), Value::Bool(r.aborted)),
                ("offered".into(), Value::u64(r.offered)),
                ("updated".into(), Value::u64(r.updated)),
                ("update_failed".into(), Value::u64(r.update_failed)),
                ("stragglers".into(), Value::u64(r.stragglers)),
                ("stale".into(), Value::u64(r.stale)),
                (
                    "downlink_chunks_sent".into(),
                    Value::u64(r.downlink_chunks_sent),
                ),
                (
                    "downlink_chunks_lost".into(),
                    Value::u64(r.downlink_chunks_lost),
                ),
                (
                    "duplicate_activations".into(),
                    Value::u64(r.duplicate_activations),
                ),
                ("version_torn".into(), Value::u64(r.version_torn)),
                (
                    "versions".into(),
                    Value::Obj(vec![
                        ("1".into(), Value::u64(r.stragglers + r.stale)),
                        (r.target_seq.to_string(), Value::u64(r.updated)),
                    ]),
                ),
            ]),
        ));
    }
    if let Some(t) = &inp.timing {
        fields.push((
            "timing".into(),
            Value::Obj(vec![
                ("jobs".into(), Value::u64(t.jobs)),
                ("wall_us".into(), Value::u64(t.wall_us)),
                (
                    "devices_per_worker".into(),
                    Value::Arr(
                        t.devices_per_worker
                            .iter()
                            .map(|&n| Value::u64(n))
                            .collect(),
                    ),
                ),
                (
                    "busy_us_per_worker".into(),
                    Value::Arr(
                        t.busy_us_per_worker
                            .iter()
                            .map(|&n| Value::u64(n))
                            .collect(),
                    ),
                ),
            ]),
        ));
        if let Value::Obj(timing) = fields.last_mut().map(|(_, v)| v).unwrap() {
            if let Some(rss) = t.peak_rss_bytes {
                timing.push(("peak_rss_bytes".into(), Value::u64(rss)));
            }
            if let Some(n) = t.streamed_records {
                timing.push(("streamed_records".into(), Value::u64(n)));
            }
        }
    }
    Value::Obj(fields)
}

/// Builds the full versioned fleet report document.
pub fn build_fleet_report(inp: &FleetInputs) -> Value {
    Report::new(inp.clone()).to_value()
}

/// Validates a parsed fleet report document (envelope and body).
pub fn validate_fleet_report(v: &Value) -> Result<(), Vec<String>> {
    Report::<FleetInputs>::validate(v)
}

/// Body-level validation, including the delivery-accounting invariants.
fn validate_fleet_body(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    for key in ["runtime", "app", "supply"] {
        if v.get(key).and_then(Value::as_str).is_none() {
            errs.push(format!("'{key}' must be a string"));
        }
    }
    for key in ["devices", "seed", "power_failures"] {
        if v.get(key).and_then(Value::as_u64).is_none() {
            errs.push(format!("'{key}' must be an unsigned integer"));
        }
    }
    let devices = v.get("devices").and_then(Value::as_u64).unwrap_or(0);
    if v.get("devices").and_then(Value::as_u64) == Some(0) {
        errs.push("'devices' must be at least 1".into());
    }

    match v.get("medium") {
        None => errs.push("missing key 'medium'".into()),
        Some(m) => {
            for key in [
                "seed",
                "loss_permille",
                "airtime_base_us",
                "airtime_us_per_word",
            ] {
                if m.get(key).and_then(Value::as_u64).is_none() {
                    errs.push(format!("'medium.{key}' must be an unsigned integer"));
                }
            }
        }
    }

    if let Some(f) = v.get("fault_spec") {
        for k in ["seed", "rate_permille", "max_retries", "backoff_base_us"] {
            if f.get(k).and_then(Value::as_u64).is_none() {
                errs.push(format!("'fault_spec.{k}' must be an unsigned integer"));
            }
        }
    }

    match v.get("outcomes") {
        None => errs.push("missing key 'outcomes'".into()),
        Some(o) => {
            let get = |k: &str| o.get(k).and_then(Value::as_u64);
            let keys = [
                "completed",
                "non_terminated",
                "faulted",
                "correct",
                "incorrect",
                "unverified",
            ];
            if keys.iter().any(|k| get(k).is_none()) {
                errs.push("'outcomes' must carry six unsigned-integer counts".into());
            } else {
                let by_outcome = get("completed").unwrap()
                    + get("non_terminated").unwrap()
                    + get("faulted").unwrap();
                let by_verdict = get("correct").unwrap()
                    + get("incorrect").unwrap()
                    + get("unverified").unwrap();
                if by_outcome != devices {
                    errs.push(format!(
                        "'outcomes': completed + non_terminated + faulted is \
                         {by_outcome} but 'devices' is {devices}"
                    ));
                }
                if by_verdict != devices {
                    errs.push(format!(
                        "'outcomes': correct + incorrect + unverified is \
                         {by_verdict} but 'devices' is {devices}"
                    ));
                }
            }
        }
    }

    match v.get("delivery") {
        None => errs.push("missing key 'delivery'".into()),
        Some(d) => {
            let get = |k: &str| d.get(k).and_then(Value::as_u64);
            let keys = [
                "transmissions",
                "unique_sent",
                "air_duplicates",
                "delivered",
                "delivered_unique",
                "gateway_duplicates",
                "lost_collision",
                "lost_channel",
                "delivery_rate_milli",
            ];
            if keys.iter().any(|k| get(k).is_none()) {
                errs.push("'delivery' must carry nine unsigned-integer counts".into());
            } else {
                let tx = get("transmissions").unwrap();
                let unique = get("unique_sent").unwrap();
                let air_dup = get("air_duplicates").unwrap();
                let delivered = get("delivered").unwrap();
                let del_unique = get("delivered_unique").unwrap();
                let gw_dup = get("gateway_duplicates").unwrap();
                let collided = get("lost_collision").unwrap();
                let dropped = get("lost_channel").unwrap();
                let rate = get("delivery_rate_milli").unwrap();
                if unique + air_dup != tx {
                    errs.push(format!(
                        "'delivery': unique_sent + air_duplicates is {} but \
                         transmissions is {tx}",
                        unique + air_dup
                    ));
                }
                if delivered + collided + dropped != tx {
                    errs.push(format!(
                        "'delivery': delivered + lost_collision + lost_channel \
                         is {} but transmissions is {tx} (every packet must be \
                         accounted for)",
                        delivered + collided + dropped
                    ));
                }
                if del_unique + gw_dup != delivered {
                    errs.push(format!(
                        "'delivery': delivered_unique + gateway_duplicates is \
                         {} but delivered is {delivered}",
                        del_unique + gw_dup
                    ));
                }
                if del_unique > unique {
                    errs.push("'delivery': delivered_unique exceeds unique_sent".into());
                }
                let expect_rate = (del_unique * 1000).checked_div(unique).unwrap_or(0);
                if rate != expect_rate {
                    errs.push(format!(
                        "'delivery.delivery_rate_milli' is {rate}, expected \
                         {expect_rate} (delivered_unique * 1000 / unique_sent)"
                    ));
                }
            }
        }
    }

    match v.get("energy") {
        None => errs.push("missing key 'energy'".into()),
        Some(e) => {
            for key in ["total_time_us", "total_energy_nj"] {
                if e.get(key).and_then(Value::as_u64).is_none() {
                    errs.push(format!("'energy.{key}' must be an unsigned integer"));
                }
            }
            match e.get("cause_energy_nj").and_then(Value::as_obj) {
                None => errs.push("'energy.cause_energy_nj' must be an object".into()),
                Some(cells) => {
                    let keys: Vec<&str> = cells.iter().map(|(k, _)| k.as_str()).collect();
                    if keys != CATEGORY_NAMES {
                        errs.push(format!(
                            "'energy.cause_energy_nj' keys must be exactly \
                             {CATEGORY_NAMES:?}"
                        ));
                    }
                    let mut sum = 0u64;
                    let mut complete = true;
                    for (k, n) in cells {
                        match n.as_u64() {
                            Some(n) => sum += n,
                            None => {
                                complete = false;
                                errs.push(format!(
                                    "'energy.cause_energy_nj.{k}' must be an integer"
                                ));
                            }
                        }
                    }
                    let total = e.get("total_energy_nj").and_then(Value::as_u64);
                    if complete && total.is_some_and(|t| t != sum) {
                        errs.push(format!(
                            "'energy': categories sum to {sum} nJ but \
                             total_energy_nj is {} (attribution invariant \
                             violated)",
                            total.unwrap()
                        ));
                    }
                }
            }
        }
    }

    match v.get("stragglers") {
        None => errs.push("missing key 'stragglers'".into()),
        Some(s) => {
            let get = |k: &str| s.get(k).and_then(Value::as_u64);
            let keys = ["p50_wall_us", "p90_wall_us", "p99_wall_us", "max_wall_us"];
            if keys.iter().any(|k| get(k).is_none()) {
                errs.push("'stragglers' must carry four unsigned-integer percentiles".into());
            } else {
                let series: Vec<u64> = keys.iter().map(|k| get(k).unwrap()).collect();
                if series.windows(2).any(|w| w[0] > w[1]) {
                    errs.push(
                        "'stragglers' percentiles must be non-decreasing \
                         (p50 <= p90 <= p99 <= max)"
                            .into(),
                    );
                }
            }
        }
    }

    if let Some(r) = v.get("rollout") {
        let get = |k: &str| r.get(k).and_then(Value::as_u64);
        let keys = [
            "target_seq",
            "wave_size",
            "waves",
            "waves_rolled_out",
            "offered",
            "updated",
            "update_failed",
            "stragglers",
            "stale",
            "downlink_chunks_sent",
            "downlink_chunks_lost",
            "duplicate_activations",
            "version_torn",
        ];
        if r.get("aborted").and_then(Value::as_bool).is_none() {
            errs.push("'rollout.aborted' must be a boolean".into());
        }
        if keys.iter().any(|k| get(k).is_none()) {
            errs.push("'rollout' must carry thirteen unsigned-integer counts".into());
        } else {
            let target = get("target_seq").unwrap();
            if target < 2 {
                errs.push("'rollout.target_seq' must be at least 2".into());
            }
            let updated = get("updated").unwrap();
            let failed = get("update_failed").unwrap();
            let stragglers = get("stragglers").unwrap();
            let stale = get("stale").unwrap();
            let by_bucket = updated + failed + stragglers + stale;
            if by_bucket != devices {
                errs.push(format!(
                    "'rollout': updated + update_failed + stragglers + stale \
                     is {by_bucket} but 'devices' is {devices} (buckets must \
                     partition the fleet)"
                ));
            }
            if get("offered").unwrap() != updated + failed + stragglers {
                errs.push(
                    "'rollout': offered must equal updated + update_failed + \
                     stragglers"
                        .into(),
                );
            }
            if get("waves_rolled_out").unwrap() > get("waves").unwrap() {
                errs.push("'rollout.waves_rolled_out' exceeds 'rollout.waves'".into());
            }
            if get("downlink_chunks_lost").unwrap() > get("downlink_chunks_sent").unwrap() {
                errs.push(
                    "'rollout.downlink_chunks_lost' exceeds \
                     'rollout.downlink_chunks_sent'"
                        .into(),
                );
            }
            match r.get("versions").and_then(Value::as_obj) {
                None => errs.push("'rollout.versions' must be an object".into()),
                Some(cells) => {
                    let lookup = |k: &str| {
                        cells
                            .iter()
                            .find(|(key, _)| key == k)
                            .and_then(|(_, n)| n.as_u64())
                    };
                    if lookup("1") != Some(stragglers + stale) {
                        errs.push(
                            "'rollout.versions' must count stragglers + stale \
                             devices on version 1"
                                .into(),
                        );
                    }
                    if lookup(&target.to_string()) != Some(updated) {
                        errs.push(format!(
                            "'rollout.versions' must count updated devices on \
                             version {target}"
                        ));
                    }
                }
            }
        }
    }

    if let Some(t) = v.get("timing") {
        for k in ["jobs", "wall_us"] {
            if t.get(k).and_then(Value::as_u64).is_none() {
                errs.push(format!("'timing.{k}' must be an unsigned integer"));
            }
        }
        for k in ["devices_per_worker", "busy_us_per_worker"] {
            if t.get(k).and_then(Value::as_arr).is_none() {
                errs.push(format!("'timing.{k}' must be an array"));
            }
        }
        for k in ["peak_rss_bytes", "streamed_records"] {
            if let Some(n) = t.get(k) {
                if n.as_u64().is_none() {
                    errs.push(format!("'timing.{k}' must be an unsigned integer"));
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{identity_document, validate_any_report, ReportKind};
    use crate::json::parse;

    fn inputs() -> FleetInputs {
        FleetInputs {
            runtime: "EaseIO".into(),
            app: "flaky-radio".into(),
            devices: 4,
            seed: 42,
            supply: "timer".into(),
            medium: FleetMediumDoc {
                seed: 7,
                loss_permille: 100,
                airtime_base_us: 32,
                airtime_us_per_word: 4,
            },
            fault_spec: None,
            outcomes: FleetOutcomesDoc {
                completed: 4,
                non_terminated: 0,
                faulted: 0,
                correct: 4,
                incorrect: 0,
                unverified: 0,
            },
            power_failures: 17,
            delivery: FleetDeliveryDoc {
                transmissions: 32,
                unique_sent: 32,
                air_duplicates: 0,
                delivered: 27,
                delivered_unique: 27,
                gateway_duplicates: 0,
                lost_collision: 2,
                lost_channel: 3,
                delivery_rate_milli: 27 * 1000 / 32,
            },
            energy: FleetEnergyDoc {
                total_time_us: 100,
                total_energy_nj: 28,
                cause_energy_nj: [10, 5, 0, 6, 0, 3, 4, 0],
            },
            stragglers: FleetStragglerDoc {
                p50_wall_us: 900,
                p90_wall_us: 1_200,
                p99_wall_us: 1_500,
                max_wall_us: 1_501,
            },
            rollout: None,
            timing: None,
        }
    }

    fn rollout_doc() -> FleetRolloutDoc {
        FleetRolloutDoc {
            target_seq: 2,
            wave_size: 2,
            waves: 2,
            waves_rolled_out: 2,
            aborted: false,
            offered: 4,
            updated: 3,
            update_failed: 0,
            stragglers: 1,
            stale: 0,
            downlink_chunks_sent: 14,
            downlink_chunks_lost: 4,
            duplicate_activations: 0,
            version_torn: 0,
        }
    }

    #[test]
    fn round_trips_and_dispatches_as_fleet() {
        let doc = build_fleet_report(&inputs());
        let parsed = parse(&doc.to_pretty()).unwrap();
        assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Fleet));
        let body = parsed.get("report").unwrap();
        assert_eq!(
            body.get("delivery")
                .and_then(|d| d.get("air_duplicates"))
                .and_then(Value::as_u64),
            Some(0)
        );
        assert_eq!(
            body.get("energy")
                .and_then(|e| e.get("cause_energy_nj"))
                .and_then(|c| c.get("progress"))
                .and_then(Value::as_u64),
            Some(10)
        );
    }

    #[test]
    fn unbalanced_delivery_ledger_is_rejected() {
        let mut inp = inputs();
        inp.delivery.lost_channel += 1; // a packet appears from nowhere
        let errs = validate_fleet_report(&build_fleet_report(&inp)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("every packet must be accounted for")),
            "{errs:?}"
        );

        let mut inp = inputs();
        inp.delivery.air_duplicates = 5; // splits no longer sum
        let errs = validate_fleet_report(&build_fleet_report(&inp)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("unique_sent + air_duplicates")),
            "{errs:?}"
        );

        let mut inp = inputs();
        inp.delivery.delivery_rate_milli += 1;
        let errs = validate_fleet_report(&build_fleet_report(&inp)).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("delivery_rate_milli")),
            "{errs:?}"
        );
    }

    #[test]
    fn outcome_tallies_must_partition_the_fleet() {
        let mut inp = inputs();
        inp.outcomes.completed = 3; // 3 + 0 + 0 != 4 devices
        let errs = validate_fleet_report(&build_fleet_report(&inp)).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("'devices' is 4")),
            "{errs:?}"
        );
    }

    #[test]
    fn energy_attribution_must_sum_and_use_the_canonical_categories() {
        let mut inp = inputs();
        inp.energy.total_energy_nj += 1;
        let errs = validate_fleet_report(&build_fleet_report(&inp)).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("attribution invariant")),
            "{errs:?}"
        );
    }

    #[test]
    fn rollout_block_round_trips_and_enforces_the_partition() {
        let mut inp = inputs();
        inp.rollout = Some(rollout_doc());
        let doc = build_fleet_report(&inp);
        validate_fleet_report(&doc).unwrap();
        let parsed = parse(&doc.to_pretty()).unwrap();
        let versions = parsed
            .get("report")
            .and_then(|b| b.get("rollout"))
            .and_then(|r| r.get("versions"))
            .cloned()
            .unwrap();
        assert_eq!(versions.get("1").and_then(Value::as_u64), Some(1));
        assert_eq!(versions.get("2").and_then(Value::as_u64), Some(3));

        // A device bucket that does not partition the fleet is rejected.
        let mut bad = inputs();
        bad.rollout = Some(FleetRolloutDoc {
            updated: 4, // 4 + 0 + 1 + 0 != 4 devices
            ..rollout_doc()
        });
        let errs = validate_fleet_report(&build_fleet_report(&bad)).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("partition the fleet")),
            "{errs:?}"
        );

        // Rollout numbers are identity: a --jobs comparison must see them.
        let stripped = identity_document(&doc);
        assert!(stripped
            .get("report")
            .and_then(|b| b.get("rollout"))
            .is_some());
    }

    #[test]
    fn timing_is_stripped_by_identity() {
        let mut inp = inputs();
        inp.timing = Some(FleetTimingDoc {
            jobs: 8,
            wall_us: 123,
            devices_per_worker: vec![1; 8],
            busy_us_per_worker: vec![10; 8],
            peak_rss_bytes: Some(64 << 20),
            streamed_records: Some(4),
        });
        let timed = build_fleet_report(&inp);
        validate_fleet_report(&timed).unwrap();
        let untimed = build_fleet_report(&inputs());
        assert_eq!(
            identity_document(&timed).to_pretty(),
            identity_document(&untimed).to_pretty()
        );
    }
}
