//! Small aggregation helpers shared by the profile, sweep, and metrics
//! builders.
//!
//! Both `profile.rs` and `sweep.rs` grew private copies of the same two
//! patterns — "take a sorted series, read a percentile" and "count items
//! into an ordered map" — and `metrics.rs` needs them again for the
//! per-boundary waste distribution. One definition here keeps the three
//! report builders numerically identical.

use std::collections::BTreeMap;

/// Percentile of an ascending-sorted series by floor-index rank
/// (`(len-1)·q/100`); 0 on empty input.
///
/// `q` is in percent (50 = median, 95 = p95). The rank is computed with
/// integer arithmetic only, so every report builder rounds identically —
/// this is the exact formula the profile reports have always used, kept
/// bit-for-bit so archived goldens stay valid.
pub fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * q / 100) as usize]
}

/// Counts occurrences of each key into an ordered map (deterministic
/// iteration order for report rendering).
pub fn tally<K: Ord>(keys: impl IntoIterator<Item = K>) -> BTreeMap<K, u64> {
    let mut out = BTreeMap::new();
    for k in keys {
        *out.entry(k).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_floor_index_rank() {
        let s = [10, 20, 30, 40, 1000];
        assert_eq!(percentile(&s, 0), 10);
        assert_eq!(percentile(&s, 50), 30);
        assert_eq!(percentile(&s, 95), 40);
        assert_eq!(percentile(&s, 100), 1000);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 95), 7);
    }

    #[test]
    fn percentile_edge_cases_are_total() {
        // Empty series: every quantile is 0, including the extremes.
        for q in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[], q), 0);
        }
        // Single sample: every quantile is that sample.
        for q in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[42], q), 42);
        }
        // All-equal samples: every quantile is the common value, at any
        // length (the floor-index rank can touch any slot).
        for len in [2usize, 3, 7, 100] {
            let s = vec![13u64; len];
            for q in [0, 25, 50, 75, 99, 100] {
                assert_eq!(percentile(&s, q), 13, "len {len} q {q}");
            }
        }
        // Two samples: the median floor-rounds down to the first.
        assert_eq!(percentile(&[1, 100], 50), 1);
        assert_eq!(percentile(&[1, 100], 99), 1);
        assert_eq!(percentile(&[1, 100], 100), 100);
    }

    #[test]
    fn tally_counts_in_order() {
        let t = tally(["b", "a", "b", "b"]);
        let pairs: Vec<_> = t.into_iter().collect();
        assert_eq!(pairs, vec![("a", 1), ("b", 3)]);
    }
}
