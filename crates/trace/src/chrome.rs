//! Chrome `trace_event` exporter.
//!
//! Produces the JSON object format consumed by `chrome://tracing` and
//! Perfetto: one track (tid) per task plus a dedicated power track (tid 0)
//! carrying the off-period spans and supply instants, so power failures line
//! up visually under the task attempts they interrupted. Timestamps are
//! already in microseconds, the unit the format expects. Cumulative series
//! (the per-cause energy ledger) render as stacked counter tracks
//! ([`CounterTrack`] / [`counter_events`], `"ph": "C"`).

use crate::event::{Event, EventKind, InstantKind, SpanKind, NO_SITE, NO_TASK};
use crate::json::Value;

/// Tid of the power/supply track.
const POWER_TID: u64 = 0;

fn tid_for(ev: &Event) -> u64 {
    match ev.kind {
        EventKind::SpanBegin(SpanKind::PowerOff) | EventKind::SpanEnd(SpanKind::PowerOff, _) => {
            POWER_TID
        }
        EventKind::Instant(
            InstantKind::Boot | InstantKind::PowerFailure | InstantKind::ChargeCycle,
        ) => POWER_TID,
        _ if ev.task == NO_TASK => POWER_TID,
        _ => ev.task as u64 + 1,
    }
}

fn meta(name: &str, tid: Option<u64>, value: &str) -> Value {
    let mut args = vec![("name".to_string(), Value::str(value))];
    let mut pairs = vec![
        ("name".to_string(), Value::str(name)),
        ("ph".to_string(), Value::str("M")),
        ("pid".to_string(), Value::u64(1)),
    ];
    if let Some(t) = tid {
        pairs.push(("tid".to_string(), Value::u64(t)));
    }
    pairs.push(("args".to_string(), Value::Obj(std::mem::take(&mut args))));
    Value::Obj(pairs)
}

/// A cumulative multi-series counter rendered as one stacked Chrome track.
///
/// Each sample is `(ts_us, values)` with `values` aligned to `series`;
/// Perfetto draws the series as a stacked area chart, so cumulative
/// per-cause energy samples read directly as "where the joules went so
/// far".
#[derive(Debug, Clone)]
pub struct CounterTrack {
    /// Track display name (e.g. `"energy by cause (nJ)"`).
    pub name: String,
    /// Series names, in stacking order.
    pub series: Vec<String>,
    /// `(ts_us, per-series value)` samples; each inner vec must be
    /// `series.len()` long.
    pub samples: Vec<(u64, Vec<u64>)>,
}

/// Renders a counter track into `"ph": "C"` records ready to splice into a
/// trace document's `traceEvents` array.
pub fn counter_events(track: &CounterTrack) -> Vec<Value> {
    track
        .samples
        .iter()
        .map(|(ts, values)| {
            let args: Vec<(String, Value)> = track
                .series
                .iter()
                .zip(values)
                .map(|(name, v)| (name.clone(), Value::u64(*v)))
                .collect();
            Value::Obj(vec![
                ("name".to_string(), Value::str(&track.name)),
                ("ph".to_string(), Value::str("C")),
                ("ts".to_string(), Value::u64(*ts)),
                ("pid".to_string(), Value::u64(1)),
                ("args".to_string(), Value::Obj(args)),
            ])
        })
        .collect()
}

/// Converts an event stream into a Chrome trace document.
///
/// `process_name` labels the single process row (conventionally
/// `"<runtime>/<app>"`); task display names are taken from the first
/// `TaskAttempt` begin seen per task. Counter tracks, if any, are appended
/// after the event records.
pub fn chrome_trace_with_counters(
    events: &[Event],
    process_name: &str,
    counters: &[CounterTrack],
) -> Value {
    let mut doc = chrome_trace(events, process_name);
    if let Value::Obj(fields) = &mut doc {
        if let Some((_, Value::Arr(records))) = fields.iter_mut().find(|(k, _)| k == "traceEvents")
        {
            for track in counters {
                records.extend(counter_events(track));
            }
        }
    }
    doc
}

/// Converts an event stream into a Chrome trace document (no counters).
pub fn chrome_trace(events: &[Event], process_name: &str) -> Value {
    let mut records = Vec::with_capacity(events.len() + 8);
    records.push(meta("process_name", None, process_name));
    records.push(meta("thread_name", Some(POWER_TID), "power"));

    // Name each task track after the task itself.
    let mut named: Vec<u16> = Vec::new();
    for ev in events {
        if let EventKind::SpanBegin(SpanKind::TaskAttempt) = ev.kind {
            if ev.task != NO_TASK && !named.contains(&ev.task) {
                named.push(ev.task);
                records.push(meta("thread_name", Some(ev.task as u64 + 1), ev.name));
            }
        }
    }

    for ev in events {
        let mut pairs: Vec<(String, Value)> = Vec::with_capacity(7);
        let mut args: Vec<(String, Value)> =
            vec![("energy_nj".to_string(), Value::u64(ev.energy_nj))];
        if ev.site != NO_SITE {
            args.push(("site".to_string(), Value::u64(ev.site as u64)));
        }
        let (ph, name, cat) = match ev.kind {
            EventKind::SpanBegin(k) => ("B", ev.name, k.label()),
            EventKind::SpanEnd(k, status) => {
                args.push(("status".to_string(), Value::str(status.label())));
                ("E", ev.name, k.label())
            }
            EventKind::Instant(k) => ("i", ev.name, k.label()),
        };
        pairs.push(("name".to_string(), Value::str(name)));
        pairs.push(("cat".to_string(), Value::str(cat)));
        pairs.push(("ph".to_string(), Value::str(ph)));
        pairs.push(("ts".to_string(), Value::u64(ev.ts_us)));
        pairs.push(("pid".to_string(), Value::u64(1)));
        pairs.push(("tid".to_string(), Value::u64(tid_for(ev))));
        if ph == "i" {
            pairs.push(("s".to_string(), Value::str("t")));
        }
        pairs.push(("args".to_string(), Value::Obj(args)));
        records.push(Value::Obj(pairs));
    }

    Value::Obj(vec![
        ("traceEvents".to_string(), Value::Arr(records)),
        ("displayTimeUnit".to_string(), Value::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Status;

    #[test]
    fn power_events_land_on_the_power_track() {
        let events = [
            Event::instant(5, 1, InstantKind::PowerFailure, "timer"),
            Event {
                ts_us: 5,
                energy_nj: 1,
                task: NO_TASK,
                site: NO_SITE,
                name: "off",
                kind: EventKind::SpanBegin(SpanKind::PowerOff),
            },
            Event {
                ts_us: 50,
                energy_nj: 1,
                task: NO_TASK,
                site: NO_SITE,
                name: "off",
                kind: EventKind::SpanEnd(SpanKind::PowerOff, Status::None),
            },
            Event {
                ts_us: 60,
                energy_nj: 2,
                task: 3,
                site: 0,
                name: "sense",
                kind: EventKind::SpanBegin(SpanKind::IoCall),
            },
        ];
        let doc = chrome_trace(&events, "easeio/demo");
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Skip the metadata records, check the tids of the real events.
        let tids: Vec<u64> = recs
            .iter()
            .filter(|r| r.get("ph").unwrap().as_str() != Some("M"))
            .map(|r| r.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids, vec![0, 0, 0, 4]);
    }

    #[test]
    fn task_tracks_are_named_from_attempt_begins() {
        let events = [Event {
            ts_us: 0,
            energy_nj: 0,
            task: 2,
            site: 0,
            name: "capture",
            kind: EventKind::SpanBegin(SpanKind::TaskAttempt),
        }];
        let doc = chrome_trace(&events, "p");
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let thread_meta: Vec<&Value> = recs
            .iter()
            .filter(|r| r.get("name").unwrap().as_str() == Some("thread_name"))
            .collect();
        assert_eq!(thread_meta.len(), 2, "power + one task");
        let named = thread_meta
            .iter()
            .find(|r| r.get("tid").unwrap().as_u64() == Some(3))
            .unwrap();
        assert_eq!(
            named.get("args").unwrap().get("name").unwrap().as_str(),
            Some("capture")
        );
    }

    #[test]
    fn counter_tracks_append_stacked_samples() {
        let track = CounterTrack {
            name: "energy by cause (nJ)".into(),
            series: vec!["progress".into(), "retry".into()],
            samples: vec![(10, vec![5, 0]), (20, vec![9, 3])],
        };
        let doc = chrome_trace_with_counters(&[], "p", &[track]);
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<&Value> = recs
            .iter()
            .filter(|r| r.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(
            counters[1]
                .get("args")
                .unwrap()
                .get("retry")
                .unwrap()
                .as_u64(),
            Some(3)
        );
    }

    #[test]
    fn span_ends_carry_their_status() {
        let events = [Event {
            ts_us: 9,
            energy_nj: 7,
            task: 0,
            site: 1,
            name: "sense",
            kind: EventKind::SpanEnd(SpanKind::IoCall, Status::Skipped),
        }];
        let doc = chrome_trace(&events, "p");
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let e = recs.last().unwrap();
        assert_eq!(e.get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(
            e.get("args").unwrap().get("status").unwrap().as_str(),
            Some("skipped")
        );
        assert_eq!(
            e.get("args").unwrap().get("site").unwrap().as_u64(),
            Some(1)
        );
    }
}
