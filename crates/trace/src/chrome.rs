//! Chrome `trace_event` exporter.
//!
//! Produces the JSON object format consumed by `chrome://tracing` and
//! Perfetto: one track (tid) per task plus a dedicated power track (tid 0)
//! carrying the off-period spans and supply instants, so power failures line
//! up visually under the task attempts they interrupted. Timestamps are
//! already in microseconds, the unit the format expects.

use crate::event::{Event, EventKind, InstantKind, SpanKind, NO_SITE, NO_TASK};
use crate::json::Value;

/// Tid of the power/supply track.
const POWER_TID: u64 = 0;

fn tid_for(ev: &Event) -> u64 {
    match ev.kind {
        EventKind::SpanBegin(SpanKind::PowerOff) | EventKind::SpanEnd(SpanKind::PowerOff, _) => {
            POWER_TID
        }
        EventKind::Instant(
            InstantKind::Boot | InstantKind::PowerFailure | InstantKind::ChargeCycle,
        ) => POWER_TID,
        _ if ev.task == NO_TASK => POWER_TID,
        _ => ev.task as u64 + 1,
    }
}

fn meta(name: &str, tid: Option<u64>, value: &str) -> Value {
    let mut args = vec![("name".to_string(), Value::str(value))];
    let mut pairs = vec![
        ("name".to_string(), Value::str(name)),
        ("ph".to_string(), Value::str("M")),
        ("pid".to_string(), Value::u64(1)),
    ];
    if let Some(t) = tid {
        pairs.push(("tid".to_string(), Value::u64(t)));
    }
    pairs.push(("args".to_string(), Value::Obj(std::mem::take(&mut args))));
    Value::Obj(pairs)
}

/// Converts an event stream into a Chrome trace document.
///
/// `process_name` labels the single process row (conventionally
/// `"<runtime>/<app>"`); task display names are taken from the first
/// `TaskAttempt` begin seen per task.
pub fn chrome_trace(events: &[Event], process_name: &str) -> Value {
    let mut records = Vec::with_capacity(events.len() + 8);
    records.push(meta("process_name", None, process_name));
    records.push(meta("thread_name", Some(POWER_TID), "power"));

    // Name each task track after the task itself.
    let mut named: Vec<u16> = Vec::new();
    for ev in events {
        if let EventKind::SpanBegin(SpanKind::TaskAttempt) = ev.kind {
            if ev.task != NO_TASK && !named.contains(&ev.task) {
                named.push(ev.task);
                records.push(meta("thread_name", Some(ev.task as u64 + 1), ev.name));
            }
        }
    }

    for ev in events {
        let mut pairs: Vec<(String, Value)> = Vec::with_capacity(7);
        let mut args: Vec<(String, Value)> =
            vec![("energy_nj".to_string(), Value::u64(ev.energy_nj))];
        if ev.site != NO_SITE {
            args.push(("site".to_string(), Value::u64(ev.site as u64)));
        }
        let (ph, name, cat) = match ev.kind {
            EventKind::SpanBegin(k) => ("B", ev.name, k.label()),
            EventKind::SpanEnd(k, status) => {
                args.push(("status".to_string(), Value::str(status.label())));
                ("E", ev.name, k.label())
            }
            EventKind::Instant(k) => ("i", ev.name, k.label()),
        };
        pairs.push(("name".to_string(), Value::str(name)));
        pairs.push(("cat".to_string(), Value::str(cat)));
        pairs.push(("ph".to_string(), Value::str(ph)));
        pairs.push(("ts".to_string(), Value::u64(ev.ts_us)));
        pairs.push(("pid".to_string(), Value::u64(1)));
        pairs.push(("tid".to_string(), Value::u64(tid_for(ev))));
        if ph == "i" {
            pairs.push(("s".to_string(), Value::str("t")));
        }
        pairs.push(("args".to_string(), Value::Obj(args)));
        records.push(Value::Obj(pairs));
    }

    Value::Obj(vec![
        ("traceEvents".to_string(), Value::Arr(records)),
        ("displayTimeUnit".to_string(), Value::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Status;

    #[test]
    fn power_events_land_on_the_power_track() {
        let events = [
            Event::instant(5, 1, InstantKind::PowerFailure, "timer"),
            Event {
                ts_us: 5,
                energy_nj: 1,
                task: NO_TASK,
                site: NO_SITE,
                name: "off",
                kind: EventKind::SpanBegin(SpanKind::PowerOff),
            },
            Event {
                ts_us: 50,
                energy_nj: 1,
                task: NO_TASK,
                site: NO_SITE,
                name: "off",
                kind: EventKind::SpanEnd(SpanKind::PowerOff, Status::None),
            },
            Event {
                ts_us: 60,
                energy_nj: 2,
                task: 3,
                site: 0,
                name: "sense",
                kind: EventKind::SpanBegin(SpanKind::IoCall),
            },
        ];
        let doc = chrome_trace(&events, "easeio/demo");
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Skip the metadata records, check the tids of the real events.
        let tids: Vec<u64> = recs
            .iter()
            .filter(|r| r.get("ph").unwrap().as_str() != Some("M"))
            .map(|r| r.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids, vec![0, 0, 0, 4]);
    }

    #[test]
    fn task_tracks_are_named_from_attempt_begins() {
        let events = [Event {
            ts_us: 0,
            energy_nj: 0,
            task: 2,
            site: 0,
            name: "capture",
            kind: EventKind::SpanBegin(SpanKind::TaskAttempt),
        }];
        let doc = chrome_trace(&events, "p");
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let thread_meta: Vec<&Value> = recs
            .iter()
            .filter(|r| r.get("name").unwrap().as_str() == Some("thread_name"))
            .collect();
        assert_eq!(thread_meta.len(), 2, "power + one task");
        let named = thread_meta
            .iter()
            .find(|r| r.get("tid").unwrap().as_u64() == Some(3))
            .unwrap();
        assert_eq!(
            named.get("args").unwrap().get("name").unwrap().as_str(),
            Some("capture")
        );
    }

    #[test]
    fn span_ends_carry_their_status() {
        let events = [Event {
            ts_us: 9,
            energy_nj: 7,
            task: 0,
            site: 1,
            name: "sense",
            kind: EventKind::SpanEnd(SpanKind::IoCall, Status::Skipped),
        }];
        let doc = chrome_trace(&events, "p");
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let e = recs.last().unwrap();
        assert_eq!(e.get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(
            e.get("args").unwrap().get("status").unwrap().as_str(),
            Some("skipped")
        );
        assert_eq!(
            e.get("args").unwrap().get("site").unwrap().as_u64(),
            Some(1)
        );
    }
}
